"""Shared helpers for the benchmark suite.

Every benchmark module regenerates one experiment of the reconstructed
evaluation (DESIGN.md section 4), prints its paper-shaped report, and saves
it under ``benchmarks/_results/`` so the numbers persist after the run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "_results"


def emit(report) -> None:
    """Print a harness Report and persist it to the results directory."""
    text = str(report)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    name = report.experiment.split()[0].replace("/", "-")
    # Benchmarks run reduced parameter sets; suffix them so they never
    # shadow the full-parameter sweep outputs (E<k>.txt).
    (RESULTS_DIR / f"{name}.bench.txt").write_text(text + "\n")
