"""A1-A4: ablations of the design choices (reflux, W cap, floor, CFL)."""

import pytest

from repro.harness.experiments_ablations import ABLATIONS

from .conftest import emit


@pytest.fixture(scope="module")
def reports():
    return {eid: fn() for eid, fn in ABLATIONS.items()}


def test_bench_ablation_suite(benchmark, reports):
    for report in reports.values():
        emit(report)
    # Benchmark the cheapest ablation as the timed unit.
    report = benchmark(ABLATIONS["A4"], 100)
    assert len(report.rows) == 4


def test_a1_reflux_restores_conservation(reports):
    rows = {r[0]: r for r in reports["A1"].rows}
    assert abs(rows["True"][1]) < 1e-12  # mass drift with refluxing
    assert abs(rows["False"][1]) > 1e-5  # the leak it fixes

def test_a2_cap_neither_too_tight_nor_absent(reports):
    rows = {r[0]: r for r in reports["A2"].rows}
    assert rows[100.0][1] == "completed"  # the default works
    # An extreme cap either completes with a distorted flow or the
    # uncapped run reveals why the guard exists; both must be recorded.
    assert len(reports["A2"].rows) == 4


def test_a3_floor_engages_only_above_ambient(reports):
    rows = reports["A3"].rows
    far_right = reports["A3"].column("far_right_rho")
    # Tenuous floors preserve the 1e-6 ambient medium...
    assert far_right[0] == pytest.approx(1e-6, rel=0.5)
    assert far_right[1] == pytest.approx(1e-6, rel=0.5)
    # ...aggressive floors overwrite it with the floor value.
    assert far_right[2] == pytest.approx(1e-4, rel=0.5)
    assert far_right[3] == pytest.approx(1e-2, rel=0.5)


def test_a4_cfl_insensitive_error(reports):
    errs = reports["A4"].column("rel_L1(rho)")
    steps = reports["A4"].column("steps")
    assert max(errs) / min(errs) < 1.6
    assert steps[0] > 4 * steps[-1]  # cost scales inversely with CFL
