"""E11 (Table IV): AMR efficiency vs unigrid."""

import pytest

from repro import Grid, IdealGasEOS, SolverConfig, SRHDSystem
from repro.core.amr_solver import AMRConfig, AMRSolver
from repro.harness import experiment_e11_amr_efficiency
from repro.physics.initial_data import RP1, shock_tube

from .conftest import emit


@pytest.fixture(scope="module")
def report():
    return experiment_e11_amr_efficiency(root_n=64, max_levels=3)


def test_bench_amr_step(benchmark, report):
    emit(report)
    eos = IdealGasEOS(gamma=RP1.gamma)
    system = SRHDSystem(eos, ndim=1)
    amr = AMRSolver(
        system,
        Grid((64,), ((0.0, 1.0),)),
        lambda s, g: shock_tube(s, g, RP1),
        SolverConfig(cfl=0.4),
        AMRConfig(block_size=16, max_levels=3),
    )
    dt = amr.compute_dt()
    benchmark(amr.step, dt)


def test_amr_efficiency_shape(report):
    """AMR must land near the fine-unigrid error at a fraction of the
    cell updates."""
    rows = {str(r[0]): r for r in report.rows}
    fine_key = [k for k in rows if k.startswith("unigrid N=") and k != "unigrid N=64"][0]
    err_fine = rows[fine_key][1]
    updates_fine = rows[fine_key][2]
    amr_key = [k for k in rows if k.startswith("AMR")][0]
    err_amr = rows[amr_key][1]
    updates_amr = rows[amr_key][2]
    err_coarse = rows["unigrid N=64"][1]
    assert err_amr < 0.5 * err_coarse  # far better than the coarse grid
    assert err_amr < 2.0 * err_fine  # near the fine grid
    assert updates_amr < 0.8 * updates_fine  # with meaningfully less work
