"""Distributed-AMR process backend benchmark (BENCH_amr_parallel.json).

Runs an *off-center* 2-D blast under the adaptive forest on the real
process backend at increasing worker counts and reports, per count:

``cells_per_s``
    Cells updated per wall-clock second (the AMR analogue of the
    unigrid throughput number; ``amr.cells_updated`` summed over steps).

``imbalance_max`` / ``imbalance_final``
    The measured rank-work imbalance (max/mean) over the run.  The
    blast is deliberately off-center and the refine/coarsen thresholds
    straddle the shell's gradient, so the topology keeps changing
    asymmetrically — each regrid skews the rank loads, trips the low
    rebalance threshold, and forces a Morton-curve recut with real
    block migrations.  When at least one repartition fires, the final
    imbalance must not exceed the maximum observed — the dynamic
    rebalancer decays imbalance, never grows it.

The sweep doubles as a cross-executor bit-exactness check: every worker
count must reproduce the 1-worker forest byte for byte, block by block.

Smoke mode (REPRO_BENCH_SMOKE=1, used by CI) shrinks the grid, steps,
and worker counts; the JSON artifact layout is identical.
"""

import json
import os
import time

from repro.core import SolverConfig
from repro.core.amr_parallel import AMRProcessSolver
from repro.core.amr_solver import AMRConfig
from repro.eos import IdealGasEOS
from repro.harness import Report
from repro.mesh.grid import Grid
from repro.obs import BufferSink, StepRecorder
from repro.obs.events import steps_of
from repro.physics.initial_data import blast_wave_2d
from repro.physics.srhd import SRHDSystem

from .conftest import RESULTS_DIR, emit


def _measured_case(n: int, workers: int, n_steps: int) -> dict:
    system = SRHDSystem(IdealGasEOS(), ndim=2)
    grid = Grid((n, n), ((0.0, 1.0), (0.0, 1.0)))
    amr = AMRConfig(
        block_size=8, max_levels=2, refine_threshold=0.3,
        coarsen_threshold=0.15, regrid_interval=2, rebalance_threshold=1.02,
    )
    sink = BufferSink()
    solver = AMRProcessSolver(
        system, grid,
        lambda s, g: blast_wave_2d(s, g, p_in=50.0, radius=0.12,
                                   center=(0.3, 0.35), smoothing=0.02),
        config=SolverConfig(cfl=0.4, executor="process"),
        amr=amr,
        recorder=StepRecorder(sink, meta={"bench": "amr-parallel"}),
        n_ranks=workers,
    )
    try:
        t0 = time.perf_counter()
        for _ in range(n_steps):
            solver.step()
        wall_s = time.perf_counter() - t0
        blocks = solver.gather_blocks()
    finally:
        solver.close()
    steps = steps_of(sink.records)
    imbalance = [s["amr"]["imbalance"] for s in steps]
    rebalances = [
        {k: r[k] for k in ("step", "imbalance_after", "migrated_blocks",
                           "repartitions") if k in r}
        for r in sink.records if r.get("event") == "amr_rebalance"
    ]
    return {
        "workers": workers,
        "grid": [n, n],
        "steps": len(steps),
        "wall_s": wall_s,
        "cells_updated": int(sum(s["amr"]["cells_updated"] for s in steps)),
        "cells_per_s": sum(s["amr"]["cells_updated"] for s in steps) / wall_s,
        "n_leaves_final": steps[-1]["amr"]["n_leaves"],
        "imbalance_series": imbalance,
        "imbalance_max": max(imbalance),
        "imbalance_final": imbalance[-1],
        "repartitions": steps[-1]["amr"]["repartitions"],
        "migrated_blocks": steps[-1]["amr"]["migrated_blocks"],
        "rebalances": rebalances,
        "blocks": blocks,
    }


def test_bench_amr_parallel():
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    n, n_steps = (16, 3) if smoke else (32, 12)
    worker_counts = (1, 2) if smoke else (1, 2, 4, 8)
    host_cpus = os.cpu_count() or 1

    runs = [_measured_case(n, w, n_steps) for w in worker_counts]

    # Cross-executor bit-exactness: identical forest at every count.
    base_blocks = runs[0].pop("blocks")
    for run in runs[1:]:
        blocks = run.pop("blocks")
        assert set(blocks) == set(base_blocks), (
            f"{run['workers']}-worker leaf set diverged"
        )
        for key, ref in base_blocks.items():
            assert blocks[key].tobytes() == ref.tobytes(), (
                f"{run['workers']}-worker block {key} diverged"
            )

    report = Report(
        experiment="BENCH-amr-parallel",
        title=f"distributed AMR, {n}x{n} blast, {n_steps} steps",
        headers=[
            "workers", "wall_s", "cells_per_s", "imbalance_max",
            "imbalance_final", "repartitions", "migrated",
        ],
    )
    for run in runs:
        report.add_row(
            run["workers"], run["wall_s"], run["cells_per_s"],
            run["imbalance_max"], run["imbalance_final"],
            run["repartitions"], run["migrated_blocks"],
        )
    report.add_note(f"host_cpus={host_cpus}, rebalance_threshold=1.02")
    report.add_note("every worker count bit-identical to the 1-worker forest")
    emit(report)

    result = {
        "experiment": "distributed AMR process-backend throughput",
        "grid": [n, n],
        "steps": n_steps,
        "smoke": smoke,
        "host_cpus": host_cpus,
        "runs": runs,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_amr_parallel.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\namr-parallel benchmark -> {path}")

    for run in runs:
        assert run["cells_per_s"] > 0
        assert run["imbalance_final"] >= 1.0
        # Imbalance decay: whenever the rebalancer fired, the run must not
        # end worse than its worst observed cut.
        if run["repartitions"] > 0:
            assert run["imbalance_final"] <= run["imbalance_max"] + 1e-9, (
                f"{run['workers']}-worker imbalance grew after rebalancing"
            )
        for ev in run["rebalances"]:
            assert ev["imbalance_after"] <= run["imbalance_max"] + 1e-9
