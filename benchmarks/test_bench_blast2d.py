"""E4 (Fig. 2): 2-D cylindrical relativistic blast wave."""

import numpy as np
import pytest

from repro import Grid, IdealGasEOS, Solver, SolverConfig, SRHDSystem
from repro.harness import experiment_e4_blast2d
from repro.physics.initial_data import blast_wave_2d

from .conftest import emit


@pytest.fixture(scope="module")
def report():
    return experiment_e4_blast2d(n=64, p_in=100.0, t_final=0.15)


def test_bench_2d_step(benchmark, report):
    emit(report)
    eos = IdealGasEOS()
    system = SRHDSystem(eos, ndim=2)
    grid = Grid((64, 64), ((0, 1), (0, 1)))
    prim0 = blast_wave_2d(system, grid, p_in=10.0, radius=0.15)
    solver = Solver(system, grid, prim0, SolverConfig(cfl=0.4))
    dt = solver.compute_dt()
    benchmark(solver.step, dt)
    assert np.all(np.isfinite(solver.cons))


def test_blast_shape(report):
    """The shock front: density peaks at a finite radius, outward radial
    velocity inside the front, quiescent exterior."""
    r = np.asarray(report.column("r"))
    rho = np.asarray(report.column("rho_mean"))
    vr = np.asarray(report.column("v_r_mean"))
    peak = np.argmax(rho)
    assert 0.1 < r[peak] < 0.45  # front has moved off the initial radius
    assert vr[: peak + 1].max() > 0.2  # strong outward flow behind the front
    assert abs(vr[-1]) < 0.05  # undisturbed far field
