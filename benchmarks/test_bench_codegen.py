"""E12 (Fig. 8): generated-kernel throughput vs handwritten reference."""

import numpy as np
import pytest

from repro.codegen import KernelGenerator, load_kernel
from repro.harness import experiment_e12_codegen

from .conftest import emit


@pytest.fixture(scope="module")
def report():
    return experiment_e12_codegen(n_cells=200_000, ndim=2)


def test_bench_generated_kernel(benchmark, report):
    emit(report)
    kernel = load_kernel("flux", ndim=2, axis=0)
    rng = np.random.default_rng(0)
    n = 200_000
    prim = np.stack(
        [
            rng.uniform(0.5, 2, n),
            rng.uniform(-0.4, 0.4, n),
            rng.uniform(-0.4, 0.4, n),
            rng.uniform(0.5, 2, n),
        ]
    )
    out = np.empty_like(prim)
    result = benchmark(kernel, prim, out, 5.0 / 3.0)
    assert np.all(np.isfinite(result))


def test_bench_generation_cost(benchmark):
    """Generating a full kernel module is an offline cost; keep it bounded."""
    source = benchmark(KernelGenerator(2).generate_module)
    assert "def prim_to_con_2d_numpy" in source


def test_codegen_competitive(report):
    """Generated kernels must stay within 3x of handwritten throughput."""
    for kernel, variant, mcells, ratio in report.rows:
        if variant != "handwritten":
            assert ratio > 1.0 / 3.0, (kernel, variant, ratio)
