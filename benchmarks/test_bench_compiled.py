"""Compiled-kernel benchmark (BENCH_compiled.json).

Times the same 2-D blast evolution under each kernel target — handwritten
``numpy``, SymPy-generated ``flat``, and cffi-compiled ``cext`` — on the
serial solver and on the 4-worker process executor.  The comparison basis
is CPU seconds per step (``time.process_time``, per-worker critical path
on the process backend), which is robust against host oversubscription in
CI containers; wall time is reported alongside.

The run doubles as an end-to-end parity check: all targets must land on
the same solution (numpy within a tight tolerance, flat vs cext
bit-identical — the C emitter prints the same CSE'd expression tree).

Smoke mode (REPRO_BENCH_SMOKE=1) shrinks grid/steps; layout is identical.
When no C toolchain is available the cext rows are omitted and the
speedup assertions are skipped — the fallback path itself is covered by
the test suite.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.boundary import make_boundaries
from repro.codegen import cext_available
from repro.core import SolverConfig
from repro.core.parallel import ProcessSolver
from repro.core.solver import Solver
from repro.eos import IdealGasEOS
from repro.harness import Report
from repro.mesh.decomposition import choose_dims
from repro.mesh.grid import Grid
from repro.physics.initial_data import blast_wave_2d
from repro.physics.srhd import SRHDSystem

from .conftest import RESULTS_DIR, emit


def _setup(n):
    system = SRHDSystem(IdealGasEOS(), ndim=2)
    grid = Grid((n, n), ((0.0, 1.0), (0.0, 1.0)))
    return system, grid, blast_wave_2d(system, grid)


# Benchmark "targets" are solver configurations, not just codegen targets:
# cext_pointwise is the PR 7 shape of the compiled backend (pointwise
# kernels compiled, stencil stages interpreted), cext is the fused sweep.
TARGET_CONFIGS = {
    "numpy": {"kernel_target": "numpy"},
    "flat": {"kernel_target": "flat"},
    "cext_pointwise": {"kernel_target": "cext", "fused_stencils": False},
    "cext": {"kernel_target": "cext"},
}

# Per-kernel stage timers worth a column.  "reconstruct"/"riemann" only
# tick on the interpreted stencil path, "face_flux" only on the fused one;
# absent stages report 0.0 so every row has the same columns.
STAGE_NAMES = ("con2prim", "reconstruct", "riemann", "face_flux", "update")


def _serial_case(target: str, n: int, n_steps: int) -> dict:
    system, grid, prim = _setup(n)
    solver = Solver(
        system,
        grid,
        prim,
        SolverConfig(cfl=0.4, **TARGET_CONFIGS[target]),
        make_boundaries("outflow"),
    )
    # Warm-up step: generates/compiles/loads kernels, allocates scratch.
    solver.run(t_final=1.0, max_steps=1)
    solver.timers.reset()  # stage columns must cover the timed window only
    cpu0, wall0 = time.process_time(), time.perf_counter()
    solver.run(t_final=1.0, max_steps=1 + n_steps)
    cpu_s = time.process_time() - cpu0
    wall_s = time.perf_counter() - wall0
    stages = {
        name: (solver.timers[name].elapsed / n_steps if name in solver.timers
               else 0.0)
        for name in STAGE_NAMES
    }
    return {
        "target": target,
        "steps": n_steps,
        "cpu_s": cpu_s,
        "wall_s": wall_s,
        "cpu_per_step": cpu_s / n_steps,
        "stage_per_step": stages,
        "prims": grid.interior_of(solver.primitives()).copy(),
    }


def _process_case(target: str, n: int, n_steps: int, workers: int = 4) -> dict:
    system, grid, prim = _setup(n)
    dims = choose_dims(workers, 2)
    with ProcessSolver(
        system, grid, prim, dims,
        config=SolverConfig(cfl=0.4, executor="process", **TARGET_CONFIGS[target]),
    ) as solver:
        solver.step()  # warm-up: per-worker kernel build/load
        snaps0 = solver.worker_snapshots()
        wall0 = time.perf_counter()
        solver.run(t_final=1.0, max_steps=1 + n_steps)
        wall_s = time.perf_counter() - wall0
        snaps1 = solver.worker_snapshots()
        prims = solver.gather_primitives().copy()
    cpu_s = max(
        s1["process_seconds"] - s0["process_seconds"]
        for s0, s1 in zip(snaps0, snaps1)
    )
    return {
        "target": target,
        "workers": workers,
        "steps": n_steps,
        "cpu_s": cpu_s,
        "wall_s": wall_s,
        "cpu_per_step": cpu_s / n_steps,
        "prims": prims,
    }


def _best_per_target(reps: int, targets, case_fn, *args) -> dict:
    """Best (min CPU) of *reps* measurements per target.

    Reps are interleaved round-robin across targets rather than run
    back-to-back, so slow drift on an oversubscribed CI host (another
    container waking up mid-benchmark) penalizes every target equally
    instead of whichever one happened to run last.  Taking the minimum
    then discards the scheduling noise.  All reps of a target are
    bit-identical by construction, which doubles as a determinism check.
    """
    best: dict[str, dict] = {}
    for _ in range(reps):
        for t in targets:
            cand = case_fn(t, *args)
            cur = best.get(t)
            if cur is None:
                best[t] = cand
            else:
                assert cand["prims"].tobytes() == cur["prims"].tobytes(), (
                    f"{t}: repeated run was not bit-identical"
                )
                if cand["cpu_per_step"] < cur["cpu_per_step"]:
                    best[t] = cand
    for case in best.values():
        case["reps"] = reps
    return best


def test_bench_compiled_kernels():
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    n, n_steps, reps = (24, 3, 2) if smoke else (64, 12, 4)
    n_big, big_steps, big_reps = (32, 2, 1) if smoke else (128, 8, 2)
    workers = 4
    have_cext = cext_available(ndim=2)
    targets = (
        ("numpy", "flat", "cext_pointwise", "cext")
        if have_cext
        else ("numpy", "flat")
    )
    proc_targets = ("numpy", "flat", "cext") if have_cext else ("numpy", "flat")
    big_targets = (
        ("numpy", "cext_pointwise", "cext") if have_cext else ("numpy",)
    )

    serial = _best_per_target(reps, targets, _serial_case, n, n_steps)
    proc = _best_per_target(reps, proc_targets, _process_case, n, n_steps, workers)
    big = _best_per_target(big_reps, big_targets, _serial_case, n_big, big_steps)

    # Parity: every target lands on the same blast solution.
    for cases, tgts in ((serial, targets), (big, big_targets)):
        ref = cases["numpy"]["prims"]
        for t in tgts[1:]:
            assert np.allclose(cases[t]["prims"], ref, rtol=1e-11, atol=1e-13), (
                f"serial {t} solution diverged from numpy"
            )
    if have_cext:
        # Same expression tree, same per-op rounding: flat == cext bitwise,
        # and the fused stencil sweep does not change a single bit.
        flat_bytes = serial["flat"]["prims"].tobytes()
        assert flat_bytes == serial["cext"]["prims"].tobytes()
        assert flat_bytes == serial["cext_pointwise"]["prims"].tobytes()
        assert (
            big["cext"]["prims"].tobytes()
            == big["cext_pointwise"]["prims"].tobytes()
        )
    for t in proc_targets:
        # Each target is serial-vs-process bit-exact (4-worker decomposition).
        assert proc[t]["prims"].tobytes() == serial[t]["prims"].tobytes(), (
            f"{t}: process-executor solution diverged from serial"
        )

    report = Report(
        experiment="BENCH-compiled",
        title=f"kernel-target rhs cost, {n}x{n} blast, {n_steps} steps",
        headers=[
            "target", "serial_cpu_per_step", "serial_speedup",
            "con2prim", "recon", "riemann", "face_flux", "update",
        ],
    )
    base_s = serial["numpy"]["cpu_per_step"]
    for t in targets:
        st = serial[t]["stage_per_step"]
        report.add_row(
            t,
            serial[t]["cpu_per_step"],
            base_s / serial[t]["cpu_per_step"],
            st["con2prim"], st["reconstruct"], st["riemann"],
            st["face_flux"], st["update"],
        )
    if not have_cext:
        report.add_note("no C toolchain: cext rows omitted")
    report.add_note(
        f"process arm ({workers} workers) and {n_big}x{n_big} arm in "
        "BENCH_compiled.json"
    )
    emit(report)

    result = {
        "experiment": "compiled kernel target comparison",
        "grid": [n, n],
        "grid_big": [n_big, n_big],
        "steps": n_steps,
        "workers": workers,
        "smoke": smoke,
        "cext_available": have_cext,
        "serial": {
            t: {k: v for k, v in c.items() if k != "prims"}
            for t, c in serial.items()
        },
        "serial_big": {
            t: {k: v for k, v in c.items() if k != "prims"}
            for t, c in big.items()
        },
        "process": {
            t: {k: v for k, v in c.items() if k != "prims"}
            for t, c in proc.items()
        },
    }
    for arm, cases in (
        ("serial", serial), ("serial_big", big), ("process", proc)
    ):
        base = cases["numpy"]["cpu_per_step"]
        for t, c in cases.items():
            result[arm][t]["speedup_vs_numpy"] = base / c["cpu_per_step"]
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_compiled.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\ncompiled-kernel benchmark -> {path}")

    if not have_cext:
        pytest.skip("no C toolchain: speedup assertions skipped")
    if smoke:
        # Smoke windows are ~10 ms of CPU — too short for a strict win to
        # be reproducible on a shared CI core.  Bound the damage instead;
        # the full-size run asserts the strict speedup.
        assert (
            serial["cext"]["cpu_per_step"]
            < serial["numpy"]["cpu_per_step"] * 1.5
        )
        assert proc["cext"]["cpu_per_step"] < proc["numpy"]["cpu_per_step"] * 1.5
        return
    # The point of the compiled target: strictly faster than the numpy
    # path on both executors, and the fused stencil sweep strictly faster
    # than the PR 7 pointwise-only compiled path.
    assert serial["cext"]["cpu_per_step"] < serial["numpy"]["cpu_per_step"], (
        "cext not faster than numpy on the serial solver"
    )
    assert proc["cext"]["cpu_per_step"] < proc["numpy"]["cpu_per_step"], (
        "cext not faster than numpy on the process executor"
    )
    for cases, label in ((serial, f"{n}x{n}"), (big, f"{n_big}x{n_big}")):
        assert (
            cases["cext"]["cpu_per_step"]
            < cases["cext_pointwise"]["cpu_per_step"]
        ), f"{label}: fused stencils not faster than pointwise cext"
    assert (
        big["numpy"]["cpu_per_step"] >= 1.5 * big["cext"]["cpu_per_step"]
    ), "128x128: fused cext below the 1.5x-over-numpy bar"
