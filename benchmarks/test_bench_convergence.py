"""E1 (Table I): shock-tube convergence per reconstruction scheme.

Regenerates the L1-error-vs-resolution table against the exact Riemann
solution and benchmarks the full solver at the mid resolution.
"""

import pytest

from repro import Grid, IdealGasEOS, Solver, SolverConfig, SRHDSystem
from repro.harness import experiment_e1_convergence
from repro.physics.initial_data import RP1, shock_tube

from .conftest import emit

RESOLUTIONS = (50, 100, 200)
SCHEMES = ("pc", "mc", "ppm", "weno5")


@pytest.fixture(scope="module")
def report():
    return experiment_e1_convergence(
        resolutions=RESOLUTIONS, reconstructions=SCHEMES
    )


def test_bench_rp1_solver(benchmark, report):
    emit(report)
    eos = IdealGasEOS(gamma=RP1.gamma)
    system = SRHDSystem(eos, ndim=1)
    grid = Grid((100,), ((0.0, 1.0),))

    def run():
        solver = Solver(
            system, grid, shock_tube(system, grid, RP1), SolverConfig(cfl=0.4)
        )
        solver.run(t_final=RP1.t_final)
        return solver

    solver = benchmark(run)
    assert solver.t == pytest.approx(RP1.t_final)


def test_convergence_shape(report):
    """Errors must fall under refinement once resolved (RP2's thin shell is
    pre-asymptotic at the coarsest N), and high-order schemes must beat
    piecewise-constant."""
    for row in report.rows:
        errors = row[2:-1]
        # Monotone decrease from the second resolution onward.
        assert errors[-1] <= errors[1] * 1.02
    by_scheme = {(r[0], r[1]): r[2:-1] for r in report.rows}
    for problem in ("RP1", "RP2"):
        assert by_scheme[(problem, "weno5")][-1] < by_scheme[(problem, "pc")][-1]
    # RP1 is in the asymptotic regime everywhere: fully monotone.
    for (problem, scheme), errors in by_scheme.items():
        if problem == "RP1":
            assert errors[0] > errors[-1]
