"""E8 (Table III): per-kernel device speedups (calibrated CPU, modelled GPU)."""

import numpy as np
import pytest

from repro import Grid, Solver, SolverConfig, IdealGasEOS, SRHDSystem
from repro.harness import experiment_e8_kernel_speedups
from repro.physics.con2prim import con_to_prim
from repro.physics.initial_data import RP1, shock_tube

from .conftest import emit


@pytest.fixture(scope="module")
def report():
    return experiment_e8_kernel_speedups(block_cells=256 * 256)


def test_bench_con2prim_kernel(benchmark, report):
    """con2prim is the calibration anchor: benchmark the real kernel."""
    emit(report)
    system = SRHDSystem(IdealGasEOS(), ndim=2)
    rng = np.random.default_rng(2)
    n = 128
    prim = np.empty((4, n, n))
    prim[0] = rng.uniform(0.5, 2.0, (n, n))
    prim[1] = rng.uniform(-0.5, 0.5, (n, n))
    prim[2] = rng.uniform(-0.5, 0.5, (n, n))
    prim[3] = rng.uniform(0.5, 2.0, (n, n))
    cons = system.prim_to_con(prim)
    recovered = benchmark(con_to_prim, system, cons)
    np.testing.assert_allclose(recovered, prim, rtol=1e-8)


def test_speedup_shape(report):
    """Streaming kernels gain the most; iterative/copy kernels the least;
    PCIe staging eats into the full-step speedup."""
    rows = {r[0]: r for r in report.rows}
    assert rows["update"][3] > rows["con2prim"][3]
    assert rows["riemann"][3] > rows["boundary"][3]
    full = rows["full step (+PCIe)"][3]
    assert 1.0 < full < rows["update"][3]
