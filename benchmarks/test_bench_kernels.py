"""E8 (Table III): per-kernel device speedups (calibrated CPU, modelled GPU),
plus the scratch-workspace vs fresh-allocation benchmark (BENCH_kernels.json)."""

import gc
import json
import os
import time
import tracemalloc

import numpy as np
import pytest

from repro import Grid, Solver, SolverConfig, IdealGasEOS, SRHDSystem
from repro.boundary import make_boundaries
from repro.core.pipeline import HydroPipeline
from repro.harness import experiment_e8_kernel_speedups
from repro.physics.con2prim import con_to_prim
from repro.physics.initial_data import RP1, blast_wave_2d, shock_tube
from repro.utils.timers import TimerRegistry

from .conftest import RESULTS_DIR, emit


@pytest.fixture(scope="module")
def report():
    return experiment_e8_kernel_speedups(block_cells=256 * 256)


def test_bench_con2prim_kernel(benchmark, report):
    """con2prim is the calibration anchor: benchmark the real kernel."""
    emit(report)
    system = SRHDSystem(IdealGasEOS(), ndim=2)
    rng = np.random.default_rng(2)
    n = 128
    prim = np.empty((4, n, n))
    prim[0] = rng.uniform(0.5, 2.0, (n, n))
    prim[1] = rng.uniform(-0.5, 0.5, (n, n))
    prim[2] = rng.uniform(-0.5, 0.5, (n, n))
    prim[3] = rng.uniform(0.5, 2.0, (n, n))
    cons = system.prim_to_con(prim)
    recovered = benchmark(con_to_prim, system, cons)
    np.testing.assert_allclose(recovered, prim, rtol=1e-8)


def test_speedup_shape(report):
    """Streaming kernels gain the most; iterative/copy kernels the least;
    PCIe staging eats into the full-step speedup."""
    rows = {r[0]: r for r in report.rows}
    assert rows["update"][3] > rows["con2prim"][3]
    assert rows["riemann"][3] > rows["boundary"][3]
    full = rows["full step (+PCIe)"][3]
    assert 1.0 < full < rows["update"][3]


# ---------------------------------------------------------------------------
# Scratch-workspace benchmark: fresh-allocation path vs preallocated buffers
# on the 2-D blast rhs. Smoke mode (REPRO_BENCH_SMOKE=1, used by CI) shrinks
# the grid and repetition count; the JSON artifact layout is identical.


def _workspace_case(use_workspace: bool, n: int, n_steps: int):
    """Time and trace one pipeline mode; returns (stats, final dU copy)."""
    system = SRHDSystem(IdealGasEOS(), ndim=2)
    grid = Grid((n, n), ((0.0, 1.0), (0.0, 1.0)))
    timers = TimerRegistry()
    pipe = HydroPipeline(
        system, grid, make_boundaries("outflow"),
        SolverConfig(scratch_workspace=use_workspace), timers,
    )
    cons = system.prim_to_con(blast_wave_2d(system, grid))
    # Warm-up: applies the floors to *cons* and lazily creates every
    # workspace buffer, so the measured loop is the steady state.
    pipe.rhs(cons)
    for _, tm in timers.items():
        tm.reset()
    gc.collect()
    t0 = time.perf_counter()
    for _ in range(n_steps):
        dU = pipe.rhs(cons)
    seconds = time.perf_counter() - t0
    kernel_seconds = {name: tm.elapsed for name, tm in timers.items()}
    # Allocation churn is measured separately (tracemalloc slows the loop):
    # the traced peak over one steady-state rhs is the per-step transient
    # working set the mode allocates.
    gc.collect()
    tracemalloc.start()
    pipe.rhs(cons)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    stats = {
        "seconds": seconds,
        "per_step_seconds": seconds / n_steps,
        "kernel_seconds": kernel_seconds,
        "alloc_peak_bytes_per_step": int(peak),
        "workspace_bytes": int(pipe.workspace.nbytes) if pipe.workspace else 0,
    }
    return stats, dU.copy()


def test_bench_workspace_vs_fresh():
    """Emit BENCH_kernels.json: the scratch-workspace pass must be bit-exact
    and either >=1.3x faster or allocate >=5x less per step."""
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    n, n_steps = (32, 3) if smoke else (96, 20)
    fresh, dU_fresh = _workspace_case(False, n, n_steps)
    ws, dU_ws = _workspace_case(True, n, n_steps)
    bit_identical = bool(np.array_equal(dU_fresh, dU_ws))
    result = {
        "experiment": "kernel scratch-workspace",
        "grid": [n, n],
        "steps": n_steps,
        "smoke": smoke,
        "fresh": fresh,
        "workspace": ws,
        "speedup": fresh["seconds"] / ws["seconds"],
        "alloc_ratio": fresh["alloc_peak_bytes_per_step"]
        / max(ws["alloc_peak_bytes_per_step"], 1),
        "bit_identical": bit_identical,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_kernels.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nworkspace benchmark ({n}x{n}, {n_steps} steps): "
          f"speedup {result['speedup']:.2f}x, "
          f"alloc ratio {result['alloc_ratio']:.1f}x, "
          f"bit_identical={bit_identical} -> {path}")
    assert bit_identical
    assert result["speedup"] >= 1.3 or result["alloc_ratio"] >= 5.0
