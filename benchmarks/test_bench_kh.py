"""E5 (Fig. 3): Kelvin-Helmholtz growth-rate convergence."""

import pytest

from repro import Grid, IdealGasEOS, Solver, SolverConfig, SRHDSystem
from repro.boundary import make_boundaries
from repro.harness import experiment_e5_kelvin_helmholtz
from repro.physics.initial_data import kelvin_helmholtz_2d

from .conftest import emit


@pytest.fixture(scope="module")
def report():
    return experiment_e5_kelvin_helmholtz(resolutions=(32, 64), t_final=3.0)


def test_bench_kh_step(benchmark, report):
    emit(report)
    eos = IdealGasEOS()
    system = SRHDSystem(eos, ndim=2)
    grid = Grid((64, 64), ((0, 1), (0, 1)))
    prim0 = kelvin_helmholtz_2d(system, grid)
    solver = Solver(
        system, grid, prim0, SolverConfig(cfl=0.4), make_boundaries("periodic")
    )
    dt = solver.compute_dt()
    benchmark(solver.step, dt)


def test_instability_grows(report):
    """The seeded mode must grow at every resolution, at a rate of order
    the shear rate, and not explode unphysically."""
    for n, gamma_fit, a0, a_final in report.rows:
        assert a_final > 3 * a0  # clear growth past the early transient
        assert 0.1 < gamma_fit < 20.0
