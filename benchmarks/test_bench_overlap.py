"""E10 (Fig. 7): communication/computation overlap benefit."""

import pytest

from repro.comm import SimCommunicator, exchange_halos
from repro.harness import calibrated_cost_model, experiment_e10_overlap
from repro.mesh.decomposition import CartesianDecomposition
from repro.mesh.grid import Grid

from .conftest import emit

NODES = (16, 64, 256, 1024, 4096)


@pytest.fixture(scope="module")
def report():
    return experiment_e10_overlap(node_counts=NODES, grid_shape=(2048, 2048))


def test_bench_halo_exchange(benchmark, report):
    """Benchmark the real (in-process) halo exchange the model prices."""
    emit(report)
    grid = Grid((128, 128), ((0, 1), (0, 1)))
    decomp = CartesianDecomposition(grid, (2, 2))

    def exchange():
        comm = SimCommunicator(4)
        states = {
            r: decomp.subgrid(r).allocate(4) for r in range(4)
        }
        exchange_halos(decomp, comm, states)
        return comm

    comm = benchmark(exchange)
    assert comm.pending() == 0


def test_overlap_shape(report):
    """Overlap must never hurt, must help meaningfully while compute still
    dominates, and the halo fraction must grow with node count."""
    savings = report.column("saving_pct")
    halo_frac = report.column("halo_frac_pct")
    assert all(s >= -1e-9 for s in savings)
    assert max(savings) > 1.0  # visible benefit somewhere in the sweep
    assert halo_frac[-1] > halo_frac[0]  # surface-to-volume grows
