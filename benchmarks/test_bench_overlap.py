"""E10 (Fig. 7): communication/computation overlap benefit, plus the
measured overlapped-exchange benchmark (BENCH_overlap.json)."""

import json
import os
import time

import numpy as np
import pytest

from repro.comm import SimCommunicator, exchange_halos
from repro.core import SolverConfig
from repro.core.distributed import DistributedSolver
from repro.eos import IdealGasEOS
from repro.harness import calibrated_cost_model, experiment_e10_overlap
from repro.mesh.decomposition import CartesianDecomposition
from repro.mesh.grid import Grid
from repro.physics.initial_data import blast_wave_2d
from repro.physics.srhd import SRHDSystem

from .conftest import RESULTS_DIR, emit

NODES = (16, 64, 256, 1024, 4096)


@pytest.fixture(scope="module")
def report():
    return experiment_e10_overlap(node_counts=NODES, grid_shape=(2048, 2048))


def test_bench_halo_exchange(benchmark, report):
    """Benchmark the real (in-process) halo exchange the model prices."""
    emit(report)
    grid = Grid((128, 128), ((0, 1), (0, 1)))
    decomp = CartesianDecomposition(grid, (2, 2))

    def exchange():
        comm = SimCommunicator(4)
        states = {
            r: decomp.subgrid(r).allocate(4) for r in range(4)
        }
        exchange_halos(decomp, comm, states)
        return comm

    comm = benchmark(exchange)
    assert comm.pending() == 0


def test_overlap_shape(report):
    """Overlap must never hurt, must help meaningfully while compute still
    dominates, and the halo fraction must grow with node count."""
    savings = report.column("saving_pct")
    halo_frac = report.column("halo_frac_pct")
    assert all(s >= -1e-9 for s in savings)
    assert max(savings) > 1.0  # visible benefit somewhere in the sweep
    assert halo_frac[-1] > halo_frac[0]  # surface-to-volume grows


# ---------------------------------------------------------------------------
# Measured overlapped exchange: the real DistributedSolver in blocking vs
# overlapped mode on the 2-D blast. Smoke mode (REPRO_BENCH_SMOKE=1, used by
# CI) shrinks the grid and step count; the JSON artifact layout is identical.


def _distributed_case(overlap: bool, n: int, n_steps: int):
    """Run one exchange mode; returns (stats, gathered primitives, solver)."""
    system = SRHDSystem(IdealGasEOS(), ndim=2)
    grid = Grid((n, n), ((0.0, 1.0), (0.0, 1.0)))
    solver = DistributedSolver(
        system, grid, blast_wave_2d(system, grid), (2, 2),
        config=SolverConfig(cfl=0.4, overlap_exchange=overlap),
    )
    t0 = time.perf_counter()
    solver.run(t_final=1.0, max_steps=n_steps)
    seconds = time.perf_counter() - t0
    stats = {"seconds": seconds, "per_step_seconds": seconds / solver.steps}
    return stats, solver.gather_primitives().copy(), solver


def test_bench_overlap_measured():
    """Emit BENCH_overlap.json: the overlapped exchange must be bit-exact
    and must hide a positive fraction of the modelled wire time."""
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    n, n_steps = (24, 4) if smoke else (64, 16)
    blocking, prim_blk, _ = _distributed_case(False, n, n_steps)
    lapped, prim_ovl, solver = _distributed_case(True, n, n_steps)
    bit_identical = bool(np.array_equal(prim_blk, prim_ovl))

    snap = solver.metrics.snapshot()["counters"]
    modeled = snap["comm.overlap.modeled_comm_s"]
    hidden = snap["comm.overlap.hidden_s"]
    efficiency = hidden / modeled if modeled > 0 else 0.0
    lapped.update(
        exchanges=int(snap["comm.overlap.exchanges"]),
        modeled_comm_s=modeled,
        hidden_s=hidden,
        exposed_s=snap["comm.overlap.exposed_s"],
        hidden_frac=efficiency,
        interior_seconds=snap["comm.overlap.interior_seconds"],
        strip_seconds=snap["comm.overlap.strip_seconds"],
    )
    # The analytic E10 model at this problem size gives the prediction the
    # measured hidden fraction is read against (same Hockney link pricing).
    e10 = experiment_e10_overlap(node_counts=(4,), grid_shape=(n, n))
    result = {
        "experiment": "measured overlapped halo exchange",
        "grid": [n, n],
        "dims": [2, 2],
        "steps": n_steps,
        "smoke": smoke,
        "blocking": blocking,
        "overlap": lapped,
        "overlap_efficiency": efficiency,
        "model_e10": dict(zip(e10.headers, e10.rows[0])),
        "bit_identical": bit_identical,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_overlap.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\noverlap benchmark ({n}x{n}, {n_steps} steps, 4 ranks): "
          f"hidden {efficiency:.1%} of modeled comm, "
          f"bit_identical={bit_identical} -> {path}")
    assert bit_identical
    assert efficiency > 0.0
