"""Measured multi-core strong scaling (BENCH_parallel.json).

Runs the 2-D blast on the real process backend at increasing worker
counts and reports *measured* wall-clock speedup next to the E6 modelled
CPU curve at the same rank counts.  Two speedup bases are reported:

``speedup_wall``
    End-to-end wall-clock ratio vs the 1-worker run.  On a machine with
    fewer cores than workers (CI containers are often single-core) this
    is flat or worse by construction — the workers time-share one core —
    so it is reported, not asserted.

``speedup_cpu_critical_path``
    Ratio of the maximum per-rank CPU seconds (``time.process_time``
    measured inside each worker) vs the 1-worker run.  This is the wall
    time the same decomposition would take with one free core per
    worker, so it measures the backend's actual scalability — parallel
    overheads included — independently of host oversubscription.

The measured sweep is additionally distilled into per-size
:class:`~repro.harness.scaling.StepCost` records and exported as a
``source: "measured"`` event stream, diffed against the E6 (strong) and
E7 (weak) modelled streams with :meth:`Report.diff_metrics` — the ratio
column in the emitted diff tables is the model error, and it lands in
the JSON artifact for CI trending.

Smoke mode (REPRO_BENCH_SMOKE=1, used by CI) shrinks the grid, steps,
and worker counts; the JSON artifact layout is identical.
"""

import json
import os
import time

import numpy as np

from repro.core import SolverConfig
from repro.core.parallel import ProcessSolver
from repro.eos import IdealGasEOS
from repro.harness import Report, experiment_e6_strong_scaling
from repro.harness.calibrate import calibrated_cost_model
from repro.harness.scaling import StepCost, strong_scaling, weak_scaling
from repro.mesh.decomposition import CartesianDecomposition, choose_dims
from repro.mesh.grid import Grid
from repro.physics.initial_data import blast_wave_2d
from repro.physics.srhd import SRHDSystem
from repro.runtime.cluster import cpu_cluster
from repro.runtime.trace import scaling_to_metrics_records

from .conftest import RESULTS_DIR, emit


def _measured_case(shape: tuple[int, int], workers: int, n_steps: int) -> dict:
    system = SRHDSystem(IdealGasEOS(), ndim=2)
    grid = Grid(shape, ((0.0, 1.0), (0.0, 1.0)))
    dims = choose_dims(workers, 2)
    decomp = CartesianDecomposition(grid, dims)
    with ProcessSolver(
        system, grid, blast_wave_2d(system, grid), dims,
        config=SolverConfig(cfl=0.4, executor="process"),
    ) as solver:
        t0 = time.perf_counter()
        solver.run(t_final=1.0, max_steps=n_steps)
        wall_s = time.perf_counter() - t0
        snaps = solver.worker_snapshots()
        prims = solver.gather_primitives().copy()
        steps = solver.steps
    return {
        "workers": workers,
        "dims": list(dims),
        "grid": list(shape),
        "steps": steps,
        "wall_s": wall_s,
        "cpu_critical_s": max(s["process_seconds"] for s in snaps),
        "cpu_total_s": sum(s["process_seconds"] for s in snaps),
        # Critical-path seconds inside the timed hydro kernels (the rest
        # of the wall time is comm + sync + untimed overhead).
        "kernel_critical_s": max(sum(s["timers"].values()) for s in snaps),
        "local_cells_max": max(
            decomp.local_cells(r) for r in range(len(snaps))
        ),
        "prims": prims,
    }


def _measured_step_costs(runs: list[dict]) -> list[StepCost]:
    """Distill measured runs into the modelled sweeps' StepCost shape.

    Per step on the critical path: ``compute_s`` is the timed hydro-kernel
    time, the remaining wall time is attributed to the halo/sync phase
    (the measured analogue of the model's exposed-communication term).
    """
    costs = []
    for run in runs:
        total = run["wall_s"] / run["steps"]
        compute = min(run["kernel_critical_s"] / run["steps"], total)
        costs.append(
            StepCost(
                n_nodes=run["workers"],
                local_cells_max=run["local_cells_max"],
                compute_s=compute,
                halo_s=total - compute,
                allreduce_s=0.0,
                total_s=total,
            )
        )
    return costs


def test_bench_parallel_strong_scaling():
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    n, n_steps = (24, 3) if smoke else (64, 8)
    worker_counts = (1, 2) if smoke else (1, 2, 4, 8)
    host_cpus = os.cpu_count() or 1

    runs = [_measured_case((n, n), w, n_steps) for w in worker_counts]
    base_wall = runs[0]["wall_s"]
    base_cpu = runs[0]["cpu_critical_s"]
    for run in runs:
        run["speedup_wall"] = base_wall / run["wall_s"]
        run["speedup_cpu_critical_path"] = base_cpu / run["cpu_critical_s"]

    # Every worker count must produce the identical solution (the scaling
    # sweep doubles as a bit-exactness check across decompositions).
    for run in runs[1:]:
        assert np.array_equal(run.pop("prims"), runs[0]["prims"]), (
            f"{run['workers']}-worker solution diverged from 1-worker run"
        )
    runs[0].pop("prims")

    # The E6 analytic model at the same rank counts is the curve the
    # measurement is read against (modelled: perfect per-node compute
    # split plus Hockney-priced halo/allreduce terms).
    e6 = experiment_e6_strong_scaling(
        grid_shape=(n, n), node_counts=worker_counts
    )
    modelled_speedup = dict(zip(e6.column("nodes"), e6.column("cpu_speedup")))

    report = Report(
        experiment="BENCH-parallel",
        title=f"measured strong scaling, {n}x{n} blast, {n_steps} steps",
        headers=[
            "workers", "wall_s", "speedup_wall",
            "cpu_critical_s", "speedup_cpu", "modelled_speedup",
        ],
    )
    for run in runs:
        report.add_row(
            run["workers"], run["wall_s"], run["speedup_wall"],
            run["cpu_critical_s"], run["speedup_cpu_critical_path"],
            modelled_speedup[run["workers"]],
        )
    oversubscribed = max(worker_counts) > host_cpus
    basis = (
        "cpu_critical_path (host oversubscribed: workers time-share "
        f"{host_cpus} core(s), wall speedup is not meaningful)"
        if oversubscribed
        else "wall"
    )
    report.add_note(f"host_cpus={host_cpus}, speedup_basis={basis}")
    emit(report)

    # Measured-vs-modelled diff: distill the measured sweep into StepCost
    # records, export both sides in the event schema, and join on metric
    # name — the ratio column is the model error (E6 CPU arm).
    measured_stream = scaling_to_metrics_records(
        _measured_step_costs(runs),
        meta={"experiment": "BENCH-parallel", "grid_shape": [n, n]},
        source="measured",
    )
    model = calibrated_cost_model()
    modelled_stream = scaling_to_metrics_records(
        strong_scaling(
            Grid((n, n), ((0.0, 1.0), (0.0, 1.0))),
            worker_counts,
            lambda p: cpu_cluster(p, model),
            model,
            prefer_gpu=False,
        ),
        meta={"experiment": "E6", "grid_shape": [n, n]},
    )
    diff = Report.diff_metrics(
        measured_stream,
        modelled_stream,
        experiment="BENCH-parallel vs E6",
        title="measured process-executor strong scaling vs modelled CPU curve",
    )
    diff.add_note("ratio = measured/modelled; systematic model error is a "
                  "column of ratios far from 1")
    emit(diff)

    result = {
        "experiment": "measured multi-core strong scaling",
        "grid": [n, n],
        "steps": n_steps,
        "smoke": smoke,
        "host_cpus": host_cpus,
        "oversubscribed": oversubscribed,
        "speedup_basis": basis,
        "runs": runs,
        "modelled_e6_cpu_speedup": {
            str(w): modelled_speedup[w] for w in worker_counts
        },
        "model_diff_e6": {
            "headers": list(diff.headers),
            "rows": [list(r) for r in diff.rows],
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_parallel.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nparallel benchmark -> {path}")

    # Scalability assertions live on the oversubscription-independent
    # basis.  No run may beat the perfect 1/P split, and at a production
    # problem size the deepest decomposition must cut the critical-path
    # CPU time per rank.  Smoke grids are small enough that fixed
    # per-rank overhead (metrics, pickling, allreduce star) can exceed
    # the saved compute, so there we only bound the overhead.
    for run in runs[1:]:
        assert run["speedup_cpu_critical_path"] <= run["workers"] * 1.05
        assert run["cpu_critical_s"] < base_cpu * (2.5 if smoke else 1.5), (
            f"{run['workers']}-worker per-rank CPU time blew up"
        )
    if not smoke:
        assert runs[-1]["cpu_critical_s"] < base_cpu, (
            f"{runs[-1]['workers']} workers did not reduce per-rank CPU time"
        )


def test_bench_parallel_weak_scaling_model_diff():
    """Measured weak scaling (fixed per-worker grid) vs the E7 CPU model.

    Grows the global grid with the worker count so each rank keeps the
    same local block, runs the real process backend, and diffs the
    measured per-size StepCost stream against the E7 modelled stream at
    the same sizes.  Reported (BENCH_parallel_weak.json), not asserted:
    the interesting output is the ratio column.
    """
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    cells_per_worker_axis, n_steps = (12, 2) if smoke else (32, 4)
    worker_counts = (1, 2) if smoke else (1, 2, 4)

    runs = []
    for w in worker_counts:
        dims = choose_dims(w, 2)
        shape = (
            cells_per_worker_axis * dims[0],
            cells_per_worker_axis * dims[1],
        )
        runs.append(_measured_case(shape, w, n_steps))
    for run in runs:
        run.pop("prims")

    measured_stream = scaling_to_metrics_records(
        _measured_step_costs(runs),
        meta={
            "experiment": "BENCH-parallel-weak",
            "cells_per_worker_axis": cells_per_worker_axis,
        },
        source="measured",
    )
    model = calibrated_cost_model()
    modelled_stream = scaling_to_metrics_records(
        weak_scaling(
            cells_per_worker_axis,
            worker_counts,
            lambda p: cpu_cluster(p, model),
            model,
            prefer_gpu=False,
        ),
        meta={
            "experiment": "E7",
            "cells_per_worker_axis": cells_per_worker_axis,
        },
    )
    diff = Report.diff_metrics(
        measured_stream,
        modelled_stream,
        experiment="BENCH-parallel vs E7",
        title="measured process-executor weak scaling vs modelled CPU curve",
    )
    diff.add_note("ratio = measured/modelled; fixed per-worker block of "
                  f"{cells_per_worker_axis}^2 cells")
    emit(diff)

    result = {
        "experiment": "measured multi-core weak scaling vs E7 model",
        "cells_per_worker_axis": cells_per_worker_axis,
        "steps": n_steps,
        "smoke": smoke,
        "runs": runs,
        "model_diff_e7": {
            "headers": list(diff.headers),
            "rows": [list(r) for r in diff.rows],
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_parallel_weak.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nweak-scaling model diff -> {path}")

    # Structural sanity: the join produced overlapping metrics with real
    # ratios (model error may be large; it must at least be computable).
    ratios = [
        row for row in diff.rows
        if isinstance(row[3], float) and str(row[0]).startswith("kernel.")
    ]
    assert ratios, "diff produced no measured/modelled kernel ratios"
