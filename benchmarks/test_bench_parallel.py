"""Measured multi-core strong scaling (BENCH_parallel.json).

Runs the 2-D blast on the real process backend at increasing worker
counts and reports *measured* wall-clock speedup next to the E6 modelled
CPU curve at the same rank counts.  Two speedup bases are reported:

``speedup_wall``
    End-to-end wall-clock ratio vs the 1-worker run.  On a machine with
    fewer cores than workers (CI containers are often single-core) this
    is flat or worse by construction — the workers time-share one core —
    so it is reported, not asserted.

``speedup_cpu_critical_path``
    Ratio of the maximum per-rank CPU seconds (``time.process_time``
    measured inside each worker) vs the 1-worker run.  This is the wall
    time the same decomposition would take with one free core per
    worker, so it measures the backend's actual scalability — parallel
    overheads included — independently of host oversubscription.

Smoke mode (REPRO_BENCH_SMOKE=1, used by CI) shrinks the grid, steps,
and worker counts; the JSON artifact layout is identical.
"""

import json
import os
import time

import numpy as np

from repro.core import SolverConfig
from repro.core.parallel import ProcessSolver
from repro.eos import IdealGasEOS
from repro.harness import Report, experiment_e6_strong_scaling
from repro.mesh.decomposition import choose_dims
from repro.mesh.grid import Grid
from repro.physics.initial_data import blast_wave_2d
from repro.physics.srhd import SRHDSystem

from .conftest import RESULTS_DIR, emit


def _measured_case(n: int, workers: int, n_steps: int) -> dict:
    system = SRHDSystem(IdealGasEOS(), ndim=2)
    grid = Grid((n, n), ((0.0, 1.0), (0.0, 1.0)))
    dims = choose_dims(workers, 2)
    with ProcessSolver(
        system, grid, blast_wave_2d(system, grid), dims,
        config=SolverConfig(cfl=0.4, executor="process"),
    ) as solver:
        t0 = time.perf_counter()
        solver.run(t_final=1.0, max_steps=n_steps)
        wall_s = time.perf_counter() - t0
        snaps = solver.worker_snapshots()
        prims = solver.gather_primitives().copy()
        steps = solver.steps
    return {
        "workers": workers,
        "dims": list(dims),
        "steps": steps,
        "wall_s": wall_s,
        "cpu_critical_s": max(s["process_seconds"] for s in snaps),
        "cpu_total_s": sum(s["process_seconds"] for s in snaps),
        "prims": prims,
    }


def test_bench_parallel_strong_scaling():
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    n, n_steps = (24, 3) if smoke else (64, 8)
    worker_counts = (1, 2) if smoke else (1, 2, 4, 8)
    host_cpus = os.cpu_count() or 1

    runs = [_measured_case(n, w, n_steps) for w in worker_counts]
    base_wall = runs[0]["wall_s"]
    base_cpu = runs[0]["cpu_critical_s"]
    for run in runs:
        run["speedup_wall"] = base_wall / run["wall_s"]
        run["speedup_cpu_critical_path"] = base_cpu / run["cpu_critical_s"]

    # Every worker count must produce the identical solution (the scaling
    # sweep doubles as a bit-exactness check across decompositions).
    for run in runs[1:]:
        assert np.array_equal(run.pop("prims"), runs[0]["prims"]), (
            f"{run['workers']}-worker solution diverged from 1-worker run"
        )
    runs[0].pop("prims")

    # The E6 analytic model at the same rank counts is the curve the
    # measurement is read against (modelled: perfect per-node compute
    # split plus Hockney-priced halo/allreduce terms).
    e6 = experiment_e6_strong_scaling(
        grid_shape=(n, n), node_counts=worker_counts
    )
    modelled_speedup = dict(zip(e6.column("nodes"), e6.column("cpu_speedup")))

    report = Report(
        experiment="BENCH-parallel",
        title=f"measured strong scaling, {n}x{n} blast, {n_steps} steps",
        headers=[
            "workers", "wall_s", "speedup_wall",
            "cpu_critical_s", "speedup_cpu", "modelled_speedup",
        ],
    )
    for run in runs:
        report.add_row(
            run["workers"], run["wall_s"], run["speedup_wall"],
            run["cpu_critical_s"], run["speedup_cpu_critical_path"],
            modelled_speedup[run["workers"]],
        )
    oversubscribed = max(worker_counts) > host_cpus
    basis = (
        "cpu_critical_path (host oversubscribed: workers time-share "
        f"{host_cpus} core(s), wall speedup is not meaningful)"
        if oversubscribed
        else "wall"
    )
    report.add_note(f"host_cpus={host_cpus}, speedup_basis={basis}")
    emit(report)

    result = {
        "experiment": "measured multi-core strong scaling",
        "grid": [n, n],
        "steps": n_steps,
        "smoke": smoke,
        "host_cpus": host_cpus,
        "oversubscribed": oversubscribed,
        "speedup_basis": basis,
        "runs": runs,
        "modelled_e6_cpu_speedup": {
            str(w): modelled_speedup[w] for w in worker_counts
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_parallel.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nparallel benchmark -> {path}")

    # Scalability assertions live on the oversubscription-independent
    # basis.  No run may beat the perfect 1/P split, and at a production
    # problem size the deepest decomposition must cut the critical-path
    # CPU time per rank.  Smoke grids are small enough that fixed
    # per-rank overhead (metrics, pickling, allreduce star) can exceed
    # the saved compute, so there we only bound the overhead.
    for run in runs[1:]:
        assert run["speedup_cpu_critical_path"] <= run["workers"] * 1.05
        assert run["cpu_critical_s"] < base_cpu * (2.5 if smoke else 1.5), (
            f"{run['workers']}-worker per-rank CPU time blew up"
        )
    if not smoke:
        assert runs[-1]["cpu_critical_s"] < base_cpu, (
            f"{runs[-1]['workers']} workers did not reduce per-rank CPU time"
        )
