"""E14: SFC vs baseline partitioning of an adapted AMR mesh."""

import pytest

from repro import Grid, IdealGasEOS, SolverConfig, SRHDSystem
from repro.core.amr_solver import AMRConfig, AMRSolver
from repro.harness import experiment_e14_partitioning
from repro.mesh.amr.partition import partition_sfc
from repro.physics.initial_data import blast_wave_2d

from .conftest import emit


@pytest.fixture(scope="module")
def report():
    return experiment_e14_partitioning(root_n=128, rank_counts=(4, 16, 64))


def test_bench_sfc_partition(benchmark, report):
    emit(report)
    eos = IdealGasEOS()
    system = SRHDSystem(eos, ndim=2)
    grid = Grid((128, 128), ((0, 1), (0, 1)))
    amr = AMRSolver(
        system,
        grid,
        lambda s, g: blast_wave_2d(s, g, p_in=50.0, radius=0.15, smoothing=0.02),
        SolverConfig(cfl=0.3),
        AMRConfig(block_size=16, max_levels=3, refine_threshold=0.1),
    )
    part = benchmark(partition_sfc, amr.forest, 64)
    assert part.imbalance < 1.3


def test_partition_quality_shape(report):
    """SFC must dominate: comparable balance, several-fold lower traffic."""
    by = {(r[0], r[1]): r for r in report.rows}
    ranks_seen = sorted({r[0] for r in report.rows})
    for ranks in ranks_seen:
        sfc = by[(ranks, "sfc")]
        rr = by[(ranks, "round-robin")]
        rnd = by[(ranks, "random")]
        assert sfc[2] <= 1.3  # imbalance
        assert sfc[4] < 0.6 * rr[4]  # comm volume
        assert sfc[4] < 0.6 * rnd[4]
    # Edge cut grows with rank count for every strategy.
    sfc_cuts = [by[(r, "sfc")][3] for r in ranks_seen]
    assert sfc_cuts == sorted(sfc_cuts)
