"""E2 (Table II): approximate Riemann-solver accuracy/cost comparison."""

import numpy as np
import pytest

from repro.eos import IdealGasEOS
from repro.harness import experiment_e2_riemann_solvers
from repro.physics.srhd import SRHDSystem
from repro.riemann import make_riemann_solver

from .conftest import emit


@pytest.fixture(scope="module")
def report():
    return experiment_e2_riemann_solvers(n=200)


@pytest.mark.parametrize("name", ["llf", "hll", "hllc"])
def test_bench_flux_kernel(benchmark, name, report):
    if name == "llf":
        emit(report)
    system = SRHDSystem(IdealGasEOS(), ndim=1)
    rng = np.random.default_rng(0)
    n = 100_000
    primL = np.stack([rng.uniform(0.5, 2, n), rng.uniform(-0.5, 0.5, n), rng.uniform(0.5, 2, n)])
    primR = np.stack([rng.uniform(0.5, 2, n), rng.uniform(-0.5, 0.5, n), rng.uniform(0.5, 2, n)])
    solver = make_riemann_solver(name)
    flux = benchmark(solver.flux, system, primL, primR, 0)
    assert np.all(np.isfinite(flux))


def test_accuracy_ordering(report):
    """HLLC resolves contacts HLL smears; both beat LLF."""
    err = dict(zip(report.column("solver"), report.column("rel L1(rho)")))
    assert err["hllc"] <= err["hll"] * 1.02
    assert err["hll"] <= err["llf"] * 1.02
