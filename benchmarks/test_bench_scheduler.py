"""E9 (Fig. 6): scheduler comparison on heterogeneous nodes."""

import pytest

from repro.harness import calibrated_cost_model, experiment_e9_schedulers
from repro.harness.experiments_scaling import _hydro_step_dag
from repro.runtime import ClusterSimulator, imbalanced_node, make_scheduler

from .conftest import emit


@pytest.fixture(scope="module")
def report():
    return experiment_e9_schedulers(n_blocks=32, slow_factors=(1.0, 2.0, 4.0, 8.0))


def test_bench_dag_simulation(benchmark, report):
    emit(report)
    model = calibrated_cost_model()
    node = imbalanced_node(model, slow_factor=4.0)
    cost = lambda t, d: d.kernel_time(t.kernel, t.n_cells)

    def simulate():
        graph = _hydro_step_dag(32, 64 * 64)
        sim = ClusterSimulator(list(node.devices), cost, make_scheduler("work-stealing"))
        return sim.run(graph)

    timeline = benchmark(simulate)
    timeline.validate_dependencies()


def test_scheduler_ordering(report):
    """Dynamic/work-stealing must beat static, and the gap must widen as
    the device imbalance grows."""
    gaps = []
    for sf, static, dynamic, stealing, *_ in report.rows:
        assert dynamic <= static * 1.01
        assert stealing <= static * 1.01
        gaps.append(static / dynamic)
    assert gaps[-1] > gaps[0]  # imbalance widens the static penalty
