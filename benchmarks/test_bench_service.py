"""Scenario-sweep service benchmark (BENCH_service.json).

Serves the same family of 64 RP1 shock tubes (left-state pressure varied
linearly) through :class:`repro.serve.BatchService` at 1-, 8-, and 64-way
batching for the ``flat`` and ``cext`` kernel targets, and reports
scenarios/sec plus p50/p99 end-to-end request latency per arm.

The width sweep is the point of the batch axis: at width 1 every request
pays the full per-step Python dispatch cost alone; at width 64 one kernel
invocation sweeps all 64 scenarios, so throughput must rise superlinearly
with occupancy until the arrays leave cache.  Request latency tells the
complementary story — wide batches also *finish together*, collapsing the
p99 queue-wait tail that serial service accumulates.

Smoke mode (REPRO_BENCH_SMOKE=1) shrinks the family and the grid; the
report layout is identical.  When no C toolchain is available the cext
arm degrades to flat (the service's resolver logs the fallback), and the
cross-target assertions are skipped.
"""

import json
import os
import time

import pytest

from repro.codegen import cext_available
from repro.harness import Report
from repro.physics.initial_data import RP1
from repro.serve import BatchService, ScenarioSpec

from .conftest import RESULTS_DIR, emit


def _family(count: int, nx: int, t_final: float, target: str) -> list[ScenarioSpec]:
    """*count* RP1 variants differing only in diaphragm pressure — one
    batch-compatible family (shared batch_key)."""
    specs = []
    for i in range(count):
        p_left = 10.0 + 6.0 * i / max(count - 1, 1)
        specs.append(
            ScenarioSpec(
                kind="shock_tube", problem="RP1", nx=nx, t_final=t_final,
                gamma=RP1.gamma, kernel_target=target,
                left={"rho": RP1.left.rho, "v": RP1.left.v, "p": p_left},
            )
        )
    return specs


def _serve_case(target: str, width: int, count: int, nx: int, t_final: float) -> dict:
    svc = BatchService(max_queue_depth=count, max_batch=width)
    # Warm-up: resolve + build kernels outside the timed window (codegen
    # artifacts are content-hash cached on disk; the service additionally
    # caches the resolved system in memory).
    svc.sweep(_family(1, nx, t_final, target))
    svc.metrics.reset()
    specs = _family(count, nx, t_final, target)
    wall0 = time.perf_counter()
    requests = svc.sweep(specs)
    wall_s = time.perf_counter() - wall0
    assert all(r.status == "ok" for r in requests)
    snap = svc.metrics.snapshot()
    lat = snap["histograms"]["serve.request_latency_s"]
    return {
        "target": target,
        "width": width,
        "scenarios": count,
        "batches": snap["counters"]["serve.batches"],
        "wall_s": wall_s,
        "scenarios_per_sec": count / wall_s,
        "latency_p50_s": lat["p50"],
        "latency_p99_s": lat["p99"],
        "latency_max_s": lat["max"],
        "rho_max": [r.result["rho_max"] for r in requests],
    }


def _best_per_width(reps, target, widths, count, nx, t_final) -> dict:
    """Best (max scenarios/sec) of *reps* interleaved measurements per
    width; repeated runs must agree on every scenario's result."""
    best: dict[int, dict] = {}
    for _ in range(reps):
        for w in widths:
            cand = _serve_case(target, w, count, nx, t_final)
            cur = best.get(w)
            if cur is None:
                best[w] = cand
            else:
                assert cand["rho_max"] == cur["rho_max"], (
                    f"{target}/{w}-way: repeated sweep changed results"
                )
                if cand["scenarios_per_sec"] > cur["scenarios_per_sec"]:
                    best[w] = cand
    for case in best.values():
        case["reps"] = reps
        case.pop("rho_max")
    return best


def test_bench_service():
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    if smoke:
        count, nx, t_final, reps, widths = 8, 48, 0.02, 1, (1, 8)
    else:
        count, nx, t_final, reps, widths = 64, 128, 0.05, 3, (1, 8, 64)
    have_cext = cext_available(ndim=1)
    targets = ("flat", "cext")

    results = {
        t: _best_per_width(reps, t, widths, count, nx, t_final) for t in targets
    }

    report = Report(
        experiment="BENCH-service",
        title=f"batch service: {count} RP1 scenarios, nx={nx}, t={t_final}",
        headers=[
            "target", "width", "scenarios_per_sec", "speedup_vs_1way",
            "latency_p50_ms", "latency_p99_ms",
        ],
    )
    for t in targets:
        base = results[t][widths[0]]["scenarios_per_sec"]
        for w in widths:
            case = results[t][w]
            case["speedup_vs_1way"] = case["scenarios_per_sec"] / base
            report.add_row(
                t, w, case["scenarios_per_sec"], case["speedup_vs_1way"],
                case["latency_p50_s"] * 1e3, case["latency_p99_s"] * 1e3,
            )
    if not have_cext:
        report.add_note("no C toolchain: cext arm served by the flat fallback")
    emit(report)

    payload = {
        "experiment": "scenario-sweep batch service throughput/latency",
        "scenarios": count,
        "nx": nx,
        "t_final": t_final,
        "widths": list(widths),
        "smoke": smoke,
        "cext_available": have_cext,
        "results": {t: {str(w): results[t][w] for w in widths} for t in targets},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_service.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nservice benchmark -> {path}")

    widest = widths[-1]
    if smoke:
        # ~10 ms windows on a shared CI core: require batching to not
        # lose, leave the strict 3x bar to the full-size run.
        for t in targets:
            assert results[t][widest]["speedup_vs_1way"] > 1.0
        return
    for t in targets:
        speedup = results[t][widest]["speedup_vs_1way"]
        assert speedup >= 3.0, (
            f"{t}: {widest}-way batching {speedup:.2f}x over 1-way, need >= 3x"
        )
        # Wide batches finish together: the latency tail must not exceed
        # the serial arm's accumulated queue-wait tail.
        assert (
            results[t][widest]["latency_p99_s"]
            <= results[t][widths[0]]["latency_p99_s"]
        )
    if not have_cext:
        pytest.skip("no C toolchain: cext arm ran the flat fallback")
