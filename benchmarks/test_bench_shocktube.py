"""E3 (Fig. 1): shock-tube profiles vs the exact solution."""

import numpy as np
import pytest

from repro.harness import experiment_e3_profiles
from repro.physics.exact_riemann import ExactRiemannSolver
from repro.physics.initial_data import RP1, RP2

from .conftest import emit


@pytest.fixture(scope="module")
def report():
    return experiment_e3_profiles(problem=RP1, n=400)


def test_bench_exact_solver(benchmark, report):
    emit(report)
    emit(experiment_e3_profiles(problem=RP2, n=400))
    xi = np.linspace(-0.9, 0.95, 2000)

    def solve_and_sample():
        ex = ExactRiemannSolver(RP1.left, RP1.right, RP1.gamma)
        return ex.sample(xi)

    rho, v, p = benchmark(solve_and_sample)
    assert np.all(np.isfinite(rho))


def test_profiles_track_exact(report):
    """Pointwise agreement away from discontinuities: the sampled star and
    far-field rows must match the exact columns closely."""
    rho = np.asarray(report.column("rho"))
    rho_e = np.asarray(report.column("rho_exact"))
    # At least 2/3 of sample points within 5% (discontinuity cells excluded).
    close = np.abs(rho - rho_e) <= 0.05 * np.abs(rho_e) + 0.05
    assert close.mean() > 0.66
