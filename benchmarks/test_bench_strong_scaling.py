"""E6 (Fig. 4): strong scaling on simulated CPU-only and CPU+GPU clusters."""

import pytest

from repro.harness import calibrated_cost_model, experiment_e6_strong_scaling
from repro.mesh.grid import Grid
from repro.runtime.cluster import gpu_cluster
from repro.harness.scaling import simulate_step

from .conftest import emit

NODES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@pytest.fixture(scope="module")
def model():
    return calibrated_cost_model()


@pytest.fixture(scope="module")
def report(model):
    return experiment_e6_strong_scaling(
        grid_shape=(1024, 1024), node_counts=NODES, model=model
    )


def test_bench_step_simulation(benchmark, model, report):
    emit(report)
    grid = Grid((1024, 1024), ((0, 1), (0, 1)))
    cluster = gpu_cluster(64, model)
    cost = benchmark(simulate_step, grid, cluster, model)
    assert cost.total_s > 0


def test_strong_scaling_shape(report):
    """Near-linear speedup at small counts; efficiency decays monotonically
    in the tail; GPU efficiency decays faster (smaller per-node work)."""
    cpu_eff = report.column("cpu_eff")
    gpu_eff = report.column("gpu_eff")
    assert cpu_eff[0] == pytest.approx(1.0)
    assert cpu_eff[2] > 0.9  # still near-ideal at 4 nodes
    assert gpu_eff[-1] < cpu_eff[-1]  # GPUs starve first
    # GPU remains faster in absolute terms everywhere.
    for cpu_t, gpu_t in zip(report.column("cpu_time_s"), report.column("gpu_time_s")):
        assert gpu_t < cpu_t
