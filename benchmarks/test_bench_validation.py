"""E13: cost-model validation — predicted vs measured step times/traffic."""

import pytest

from repro.harness import calibrated_cost_model, experiment_e13_model_validation

from .conftest import emit


@pytest.fixture(scope="module")
def report():
    return experiment_e13_model_validation(sizes=(200, 400, 1600), n_steps=15)


def test_bench_calibration(benchmark, report):
    emit(report)
    # Benchmark one cost-model evaluation sweep (the pricing hot path).
    model = calibrated_cost_model()

    def sweep():
        total = 0.0
        for n in (1_000, 10_000, 100_000, 1_000_000):
            total += model.step_time(model.cpu, n)
            total += model.step_time(model.gpu(), n)
        return total

    assert benchmark(sweep) > 0


def test_prediction_within_2x(report):
    """Calibration must transfer across problem sizes within a factor 2."""
    for row in report.rows:
        quantity, predicted, measured, ratio = row
        if str(quantity).startswith("step time"):
            assert 0.5 < ratio < 2.0, row


def test_traffic_prediction_exact(report):
    rows = {str(r[0]): r for r in report.rows}
    halo = [r for q, r in rows.items() if q.startswith("halo bytes")][0]
    assert halo[3] == pytest.approx(1.0)
