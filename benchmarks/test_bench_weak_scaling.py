"""E7 (Fig. 5): weak scaling at fixed per-node work."""

import pytest

from repro.harness import calibrated_cost_model, experiment_e7_weak_scaling

from .conftest import emit

NODES = (1, 4, 16, 64, 256)


@pytest.fixture(scope="module")
def report():
    return experiment_e7_weak_scaling(
        cells_per_node_axis=256, node_counts=NODES
    )


def test_bench_weak_sweep(benchmark, report):
    emit(report)
    model = calibrated_cost_model()
    result = benchmark(
        experiment_e7_weak_scaling,
        cells_per_node_axis=128,
        node_counts=(1, 4, 16),
        model=model,
    )
    assert len(result.rows) == 3


def test_weak_scaling_shape(report):
    """Efficiency stays high (halo/allreduce grow slowly) and decays
    monotonically with node count."""
    for col in ("cpu_eff", "gpu_eff"):
        eff = report.column(col)
        assert eff[0] == pytest.approx(1.0)
        assert eff[-1] > 0.5  # the model cluster weak-scales reasonably
        assert all(a >= b - 1e-9 for a, b in zip(eff, eff[1:]))  # monotone decay
