#!/usr/bin/env python3
"""2-D relativistic blast wave on the adaptive (quadtree) mesh.

Shows the AMR machinery end to end: gradient-driven refinement tracks the
cylindrical shock front, coarse blocks cover the quiescent exterior, and
the cell-update accounting quantifies the saving over a uniform fine grid.

Usage::

    python examples/amr_blast.py [root_N] [t_final]
"""

import sys

import numpy as np

from repro import Grid, IdealGasEOS, SolverConfig, SRHDSystem
from repro.core.amr_solver import AMRConfig, AMRSolver
from repro.physics.initial_data import blast_wave_2d


def main(root_n: int = 32, t_final: float = 0.15) -> None:
    eos = IdealGasEOS(gamma=5.0 / 3.0)
    system = SRHDSystem(eos, ndim=2)
    root = Grid((root_n, root_n), ((0.0, 1.0), (0.0, 1.0)))

    amr = AMRSolver(
        system,
        root,
        lambda s, g: blast_wave_2d(s, g, p_in=50.0, radius=0.12, smoothing=0.02),
        SolverConfig(cfl=0.3),
        AMRConfig(block_size=16, max_levels=3, refine_threshold=0.08),
    )
    print(f"Initial leaf blocks by level: {amr.leaf_count_by_level()}")
    print(f"Evolving to t = {t_final} ...")
    amr.run(t_final=t_final)

    grid_f, prim = amr.composite_primitives()
    rho = prim[0]
    fine_n = grid_f.shape[0]
    updates_uniform = fine_n**2 * amr.steps * 3

    print(f"  steps                : {amr.steps}")
    print(f"  regrids              : {amr.regrids}")
    print(f"  final leaves by level: {amr.leaf_count_by_level()}")
    print(f"  cell updates (AMR)   : {amr.cells_updated}")
    print(f"  cell updates (fine)  : {updates_uniform}")
    print(f"  work saved           : {(1 - amr.cells_updated / updates_uniform) * 100:.1f}%")
    print(f"  rho range            : [{rho.min():.4f}, {rho.max():.4f}]")
    print(f"  symmetry violation   : {np.max(np.abs(rho - rho.T)):.2e}")

    # Coarse ASCII rendering of the density on the composite grid.
    print()
    print("Density map (composite solution):")
    step = max(fine_n // 32, 1)
    shades = " .:-=+*#%@"
    lo, hi = rho.min(), rho.max()
    for row in rho[::step]:
        line = "".join(
            shades[min(int((v - lo) / (hi - lo + 1e-30) * (len(shades) - 1)), 9)]
            for v in row[::step]
        )
        print("  " + line)


if __name__ == "__main__":
    root_n = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    t_final = float(sys.argv[2]) if len(sys.argv) > 2 else 0.15
    main(root_n, t_final)
