#!/usr/bin/env python3
"""Distributed (simulated-MPI) run of a 2-D blast wave.

Splits the domain over a rank grid, evolves through the simulated
communicator with halo exchange, verifies the result is identical to a
single-grid run, and reports the communication profile — the code path the
scaling experiments price.

Usage::

    python examples/distributed_run.py [N] [ranks_per_axis]
"""

import sys

import numpy as np

from repro import Grid, IdealGasEOS, Solver, SolverConfig, SRHDSystem
from repro.comm import make_link
from repro.core import DistributedSolver
from repro.physics.initial_data import blast_wave_2d


def main(n: int = 32, ranks_axis: int = 2, t_final: float = 0.08) -> None:
    eos = IdealGasEOS(gamma=5.0 / 3.0)
    system = SRHDSystem(eos, ndim=2)
    grid = Grid((n, n), ((0.0, 1.0), (0.0, 1.0)))
    prim0 = blast_wave_2d(system, grid, p_in=10.0, radius=0.2)
    config = SolverConfig(cfl=0.4)

    print(f"Single-grid reference run ({n}x{n}) ...")
    single = Solver(system, grid, prim0.copy(), config)
    single.run(t_final=t_final)

    dims = (ranks_axis, ranks_axis)
    print(f"Distributed run on a {dims} rank grid ...")
    dist = DistributedSolver(system, grid, prim0.copy(), dims=dims, config=config)
    dist.run(t_final=t_final)

    diff = np.max(np.abs(dist.gather_primitives() - single.interior_primitives()))
    traffic = dist.comm.traffic
    link = make_link("infiniband-fdr")

    print(f"  steps                  : {dist.steps}")
    print(f"  max |distributed - single| : {diff:.3e}  (bit-exact expected)")
    print(f"  messages sent          : {traffic.n_messages}")
    print(f"  bytes exchanged        : {traffic.n_bytes}")
    print(f"  collectives (dt)       : {traffic.n_collectives}")
    print(
        f"  modelled wire time     : {traffic.point_to_point_time(link) * 1e3:.3f} ms "
        f"(InfiniBand FDR Hockney model)"
    )
    busiest = max(traffic.by_pair.items(), key=lambda kv: kv[1])
    print(f"  busiest pair           : ranks {busiest[0]} ({busiest[1]} bytes)")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    ranks = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    main(n, ranks)
