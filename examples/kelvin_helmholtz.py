#!/usr/bin/env python3
"""Relativistic Kelvin-Helmholtz instability on a periodic 2-D grid.

Evolves a seeded shear layer and measures the exponential growth rate of
the transverse velocity amplitude — the classic resolution-sensitive test
the paper's introduction motivates (shear flows in relativistic jets).

Usage::

    python examples/kelvin_helmholtz.py [N] [t_final]
"""

import sys

import numpy as np

from repro import Grid, IdealGasEOS, Solver, SolverConfig, SRHDSystem
from repro.analysis import fit_exponential_growth, transverse_kinetic_amplitude
from repro.boundary import make_boundaries
from repro.physics.initial_data import kelvin_helmholtz_2d


def main(n: int = 64, t_final: float = 2.0) -> None:
    eos = IdealGasEOS(gamma=5.0 / 3.0)
    system = SRHDSystem(eos, ndim=2)
    grid = Grid((n, n), ((0.0, 1.0), (0.0, 1.0)))
    prim0 = kelvin_helmholtz_2d(
        system, grid, shear_v=0.5, perturb_amplitude=0.01, mode=2
    )
    solver = Solver(
        system, grid, prim0, SolverConfig(cfl=0.4), make_boundaries("periodic")
    )

    times, amps = [], []

    def record(s):
        if not times or s.t - times[-1] > t_final / 50:
            times.append(s.t)
            amps.append(transverse_kinetic_amplitude(system, grid, s.primitives()))

    record(solver)
    print(f"Evolving {n}x{n} Kelvin-Helmholtz to t = {t_final} ...")
    solver.run(t_final=t_final, callback=record)

    gamma_fit, a0 = fit_exponential_growth(
        times, np.maximum(amps, 1e-12), window=(0.2, 0.7 * t_final)
    )
    print(f"  steps           : {solver.summary.steps}")
    print(f"  amplitude 0 -> T: {amps[0]:.4e} -> {amps[-1]:.4e}")
    print(f"  fitted growth   : gamma = {gamma_fit:.3f} (A ~ A0 exp(gamma t))")
    print()
    print("Amplitude history (t, sqrt(<v_y^2>)):")
    for t, a in zip(times[::5], amps[::5]):
        bar = "#" * int(60 * a / max(amps))
        print(f"  {t:6.3f}  {a:.4e}  {bar}")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    t_final = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0
    main(n, t_final)
