#!/usr/bin/env python3
"""Quickstart: solve a relativistic shock tube and compare to the exact
solution.

Runs the Marti & Muller Problem 1 (RP1) with the production configuration
(MC reconstruction, HLLC fluxes, SSP-RK3) and prints the solution profile
against the exact Riemann solution.

Usage::

    python examples/quickstart.py [N]
"""

import sys

import numpy as np

from repro import Grid, IdealGasEOS, Solver, SolverConfig, SRHDSystem
from repro.analysis import relative_l1_error
from repro.boundary import make_boundaries
from repro.physics.exact_riemann import ExactRiemannSolver
from repro.physics.initial_data import RP1, shock_tube


def main(n_cells: int = 400) -> None:
    # 1. Physics: ideal-gas EOS closing the 1-D SRHD system.
    eos = IdealGasEOS(gamma=RP1.gamma)
    system = SRHDSystem(eos, ndim=1)

    # 2. Mesh and initial data.
    grid = Grid((n_cells,), ((0.0, 1.0),))
    prim0 = shock_tube(system, grid, RP1)

    # 3. Solver with production defaults.
    solver = Solver(
        system, grid, prim0, SolverConfig(cfl=0.4), make_boundaries("outflow")
    )
    summary = solver.run(t_final=RP1.t_final)

    # 4. Compare against the exact solution.
    exact = ExactRiemannSolver(RP1.left, RP1.right, RP1.gamma)
    x = grid.coords(0)
    rho_e, v_e, p_e = exact.solution_on_grid(x, RP1.t_final, RP1.x0)
    prim = solver.interior_primitives()

    print(f"RP1 at t = {RP1.t_final} on N = {n_cells} cells")
    print(f"  steps taken        : {summary.steps}")
    print(f"  exact star state   : p* = {exact.p_star:.4f}, v* = {exact.v_star:.4f}")
    print(f"  rel. L1(rho) error : {relative_l1_error(prim[0], rho_e):.5f}")
    print(f"  mass drift         : {summary.conservation_drift['mass']:.2e}")
    print()
    print(f"{'x':>8} {'rho':>9} {'rho_ex':>9} {'v':>8} {'v_ex':>8} {'p':>9} {'p_ex':>9}")
    for i in np.linspace(0, n_cells - 1, 15).astype(int):
        print(
            f"{x[i]:8.3f} {prim[0][i]:9.4f} {rho_e[i]:9.4f} "
            f"{prim[1][i]:8.4f} {v_e[i]:8.4f} {prim[2][i]:9.4f} {p_e[i]:9.4f}"
        )
    print()
    print("Density profile (numeric vs exact):")
    from repro.viz import profile_compare

    print(profile_compare(x, prim[0], rho_e))
    print()
    print("Kernel wall-clock profile:")
    print(solver.timers.summary())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
