#!/usr/bin/env python3
"""Relativistic jet propagating into an ambient medium (2-D).

A Lorentz-factor-7 beam is injected through a nozzle on the low-x boundary
and drilled into a uniform ambient medium — the astrophysical workload
(AGN/GRB jets) the paper's introduction motivates. A passive tracer marks
beam material, separating the jet, the cocoon, and the shocked ambient gas.

Usage::

    python examples/relativistic_jet.py [N] [t_final]
"""

import sys

import numpy as np

from repro import Grid, IdealGasEOS, Solver, SolverConfig, SRHDSystem, TracerSystem
from repro.boundary import BoundarySet, JetInflowBC, Outflow
from repro.physics.initial_data import JetInflow


def main(n: int = 64, t_final: float = 0.6) -> None:
    eos = IdealGasEOS(gamma=5.0 / 3.0)
    system = TracerSystem(SRHDSystem(eos, ndim=2), n_tracers=1)
    grid = Grid((n, n), ((0.0, 1.0), (0.0, 1.0)))

    # Quiescent ambient medium, tracer = 0 (ambient material).
    prim0 = grid.allocate(system.nvars)
    prim0[system.RHO] = 1.0
    prim0[system.V(0)] = 0.0
    prim0[system.V(1)] = 0.0
    prim0[system.P] = 0.01
    prim0[system.Y(0)] = 0.0

    jet = JetInflow(rho_beam=0.1, lorentz=7.0, p_beam=0.01, radius=0.08)
    bcs = BoundarySet(
        default=Outflow(),
        faces={(0, 0): JetInflowBC(jet, center=0.5, tracer_value=1.0)},
    )
    solver = Solver(system, grid, prim0, SolverConfig(cfl=0.25, w_max=50.0), bcs)

    print(f"Injecting W={jet.lorentz} beam (v={jet.v_beam:.5f}) into {n}x{n} ambient ...")
    solver.run(t_final=t_final)
    prim = solver.interior_primitives()
    tracer = prim[system.Y(0)]

    # Jet head position: farthest x with beam material on the axis.
    axis_band = np.abs(grid.coords(1) - 0.5) < jet.radius
    beam_on_axis = tracer[:, axis_band].max(axis=1) > 0.5
    head = grid.coords(0)[beam_on_axis].max() if beam_on_axis.any() else 0.0

    print(f"  steps          : {solver.summary.steps}")
    print(f"  jet head at x  : {head:.3f} (head speed ~ {head / t_final:.3f} c)")
    v2 = np.clip(prim[1] ** 2 + prim[2] ** 2, 0.0, 1.0 - 1e-12)
    print(f"  max W in domain: {(1.0 / np.sqrt(1.0 - v2)).max():.2f}")
    print(f"  beam fraction  : {float((tracer > 0.5).mean()) * 100:.1f}% of cells")
    print()
    print("Beam-material map (tracer Y > 0.5 shown as #, cocoon 0.05<Y<0.5 as +):")
    step = max(n // 32, 1)
    for row in tracer.T[::-step]:  # y decreasing downward, x rightward
        line = "".join(
            "#" if v > 0.5 else ("+" if v > 0.05 else ".") for v in row[::step]
        )
        print("  " + line)


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    t_final = float(sys.argv[2]) if len(sys.argv) > 2 else 0.6
    main(n, t_final)
