#!/usr/bin/env python3
"""Heterogeneous-cluster scaling study on the simulated runtime.

Calibrates the kernel cost model from a real (measured) solver run, then
sweeps strong and weak scaling over simulated CPU-only and CPU+GPU
clusters — regenerating the shapes of the paper's scaling figures.

Usage::

    python examples/scaling_study.py
"""

from repro.harness import (
    calibrated_cost_model,
    experiment_e6_strong_scaling,
    experiment_e7_weak_scaling,
    experiment_e8_kernel_speedups,
)


def main() -> None:
    print("Calibrating kernel cost model from a measured solver run ...")
    model = calibrated_cost_model()
    print("  CPU throughput (Mcells/s):")
    for kernel, rate in sorted(model.cpu.throughput.items()):
        print(f"    {kernel:12s} {rate / 1e6:8.2f}")
    print()
    print(experiment_e8_kernel_speedups(model=model))
    print()
    print(
        experiment_e6_strong_scaling(
            grid_shape=(1024, 1024),
            node_counts=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            model=model,
        )
    )
    print()
    print(
        experiment_e7_weak_scaling(
            cells_per_node_axis=256,
            node_counts=(1, 4, 16, 64, 256),
            model=model,
        )
    )


if __name__ == "__main__":
    main()
