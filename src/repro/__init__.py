"""repro — Scalable Relativistic High-Resolution Shock-Capturing for
Heterogeneous Computing (reproduction).

Public API re-exports the pieces a downstream user needs for the common
workflow: build an EOS and :class:`SRHDSystem`, lay out a :class:`Grid`,
generate initial data, and run a :class:`Solver` — or hand the problem to
the simulated heterogeneous cluster via :mod:`repro.runtime` and
:mod:`repro.harness`.
"""

from .core import Solver, SolverConfig
from .eos import EOS, HybridEOS, IdealGasEOS, PolytropicEOS, TabulatedEOS
from .mesh import Grid
from .obs import JsonlEventSink, MetricsRegistry, StepRecorder, read_events
from .physics import ExactRiemannSolver, RiemannState, SRHDSystem, TracerSystem

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "EOS",
    "IdealGasEOS",
    "PolytropicEOS",
    "HybridEOS",
    "TabulatedEOS",
    "SRHDSystem",
    "TracerSystem",
    "ExactRiemannSolver",
    "RiemannState",
    "Grid",
    "Solver",
    "SolverConfig",
    "MetricsRegistry",
    "StepRecorder",
    "JsonlEventSink",
    "read_events",
]
