"""Analysis helpers: norms, convergence orders, growth-rate fits."""

from .convergence import convergence_order, pairwise_orders, richardson_extrapolate
from .growth import fit_exponential_growth, transverse_kinetic_amplitude
from .norms import l1_error, l1_norm, l2_norm, linf_norm, relative_l1_error

__all__ = [
    "l1_norm",
    "l2_norm",
    "linf_norm",
    "l1_error",
    "relative_l1_error",
    "convergence_order",
    "pairwise_orders",
    "richardson_extrapolate",
    "fit_exponential_growth",
    "transverse_kinetic_amplitude",
]
