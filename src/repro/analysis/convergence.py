"""Convergence-order estimation from error sequences."""

from __future__ import annotations

import numpy as np

from ..utils.errors import ConfigurationError


def convergence_order(resolutions, errors) -> float:
    """Least-squares slope of log(error) vs log(1/N): the observed order.

    Parameters
    ----------
    resolutions:
        Increasing sequence of cell counts (N).
    errors:
        Matching error norms.
    """
    n = np.asarray(resolutions, dtype=float)
    e = np.asarray(errors, dtype=float)
    if n.size != e.size or n.size < 2:
        raise ConfigurationError("need at least two (N, error) pairs")
    if np.any(e <= 0) or np.any(n <= 0):
        raise ConfigurationError("resolutions and errors must be positive")
    slope, _ = np.polyfit(np.log(n), np.log(e), 1)
    return float(-slope)


def pairwise_orders(resolutions, errors) -> list[float]:
    """Order estimate between each consecutive resolution pair."""
    n = np.asarray(resolutions, dtype=float)
    e = np.asarray(errors, dtype=float)
    if n.size != e.size or n.size < 2:
        raise ConfigurationError("need at least two (N, error) pairs")
    return [
        float(np.log(e[i] / e[i + 1]) / np.log(n[i + 1] / n[i]))
        for i in range(n.size - 1)
    ]


def richardson_extrapolate(coarse: float, fine: float, ratio: float, order: float) -> float:
    """Richardson-extrapolated limit value from two resolutions."""
    if ratio <= 1:
        raise ConfigurationError("refinement ratio must exceed 1")
    factor = ratio**order
    return (factor * fine - coarse) / (factor - 1.0)
