"""Instability growth-rate fits (for the Kelvin-Helmholtz experiment)."""

from __future__ import annotations

import numpy as np

from ..utils.errors import ConfigurationError


def fit_exponential_growth(times, amplitudes, window: tuple[float, float] | None = None):
    """Fit A(t) = A0 exp(gamma t) over an optional time window.

    Returns (gamma, A0). Amplitudes must be positive (use an L2 mode
    amplitude, not a signed quantity).
    """
    t = np.asarray(times, dtype=float)
    a = np.asarray(amplitudes, dtype=float)
    if t.size != a.size or t.size < 3:
        raise ConfigurationError("need at least three samples")
    if window is not None:
        mask = (t >= window[0]) & (t <= window[1])
        t, a = t[mask], a[mask]
        if t.size < 3:
            raise ConfigurationError("window leaves fewer than three samples")
    if np.any(a <= 0):
        raise ConfigurationError("amplitudes must be positive for a log fit")
    slope, intercept = np.polyfit(t, np.log(a), 1)
    return float(slope), float(np.exp(intercept))


def transverse_kinetic_amplitude(system, grid, prim) -> float:
    """KH growth proxy: L2 amplitude of the transverse velocity.

    The standard diagnostic for single-mode Kelvin-Helmholtz growth
    (e.g. sqrt(<v_y^2>) over the interior).
    """
    vy = grid.interior_of(prim[system.V(1)])
    return float(np.sqrt(np.mean(vy**2)))
