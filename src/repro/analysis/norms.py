"""Grid-function norms and error measures."""

from __future__ import annotations

import numpy as np

from ..utils.errors import ConfigurationError


def l1_norm(field: np.ndarray, cell_volume: float = 1.0) -> float:
    """Discrete L1 norm: sum |f| dV."""
    return float(np.sum(np.abs(field))) * cell_volume


def l2_norm(field: np.ndarray, cell_volume: float = 1.0) -> float:
    """Discrete L2 norm: sqrt(sum f^2 dV)."""
    return float(np.sqrt(np.sum(field**2) * cell_volume))


def linf_norm(field: np.ndarray) -> float:
    """Max norm."""
    return float(np.max(np.abs(field)))


def l1_error(numeric: np.ndarray, reference: np.ndarray, cell_volume: float = 1.0) -> float:
    """L1 norm of the pointwise error."""
    if numeric.shape != reference.shape:
        raise ConfigurationError(
            f"shape mismatch: {numeric.shape} vs {reference.shape}"
        )
    return l1_norm(numeric - reference, cell_volume)


def relative_l1_error(numeric: np.ndarray, reference: np.ndarray) -> float:
    """L1 error normalized by the L1 norm of the reference."""
    denom = np.sum(np.abs(reference))
    if denom == 0:
        raise ConfigurationError("reference field is identically zero")
    return float(np.sum(np.abs(numeric - reference)) / denom)
