"""Ghost-zone boundary conditions."""

from .conditions import (
    BoundaryCondition,
    BoundarySet,
    FixedState,
    InteriorFace,
    JetInflowBC,
    Outflow,
    Periodic,
    Reflecting,
    make_boundaries,
)

__all__ = [
    "BoundaryCondition",
    "BoundarySet",
    "InteriorFace",
    "Outflow",
    "Periodic",
    "Reflecting",
    "FixedState",
    "JetInflowBC",
    "make_boundaries",
]
