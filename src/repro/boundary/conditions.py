"""Ghost-zone boundary conditions.

A :class:`BoundaryCondition` fills the ghost layers of one face of a ghosted
primitive array; a :class:`BoundarySet` maps every ``(axis, side)`` face of a
grid to a condition and applies them all. Sides are 0 (low) and 1 (high).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..mesh.grid import Grid
from ..physics.initial_data import JetInflow
from ..physics.srhd import SRHDSystem
from ..utils.errors import ConfigurationError


def _ghost_slices(grid: Grid, axis: int, side: int):
    """(ghost, source-interior) slice tuples for one face, variable axis first."""
    g = grid.n_ghost
    n = grid.shape[axis]

    def along(sl):
        idx = [slice(None)] * (grid.ndim + 1)
        idx[axis + 1] = sl
        return tuple(idx)

    if side == 0:
        return along(slice(0, g)), along(slice(g, 2 * g))
    return along(slice(g + n, g + n + 2 * g)), along(slice(n, g + n))


class BoundaryCondition(ABC):
    """Fills ghost zones on one face of a ghosted primitive array."""

    name = "abstract"

    @abstractmethod
    def apply(
        self, system: SRHDSystem, grid: Grid, prim: np.ndarray, axis: int, side: int
    ) -> None:
        """Fill the ghost layers of face (axis, side) in place."""


class InteriorFace(BoundaryCondition):
    """No-op placeholder for faces whose ghosts are filled by halo exchange
    (distributed runs) or fine-coarse prolongation (AMR)."""

    name = "interior"

    def apply(self, system, grid, prim, axis, side):
        return None


class Outflow(BoundaryCondition):
    """Zero-gradient: copy the outermost interior cell into every ghost layer."""

    name = "outflow"

    def apply(self, system, grid, prim, axis, side):
        g = grid.n_ghost
        n = grid.shape[axis]
        edge = g if side == 0 else g + n - 1

        def at(i):
            idx = [slice(None)] * (grid.ndim + 1)
            idx[axis + 1] = i
            return tuple(idx)

        ghosts = range(g) if side == 0 else range(g + n, g + n + g)
        for gi in ghosts:
            prim[at(gi)] = prim[at(edge)]


class Periodic(BoundaryCondition):
    """Wrap-around ghost fill."""

    name = "periodic"

    def apply(self, system, grid, prim, axis, side):
        g = grid.n_ghost
        n = grid.shape[axis]
        if n < g:
            raise ConfigurationError(
                f"periodic BC needs at least {g} interior cells along axis {axis}"
            )

        def at(sl):
            idx = [slice(None)] * (grid.ndim + 1)
            idx[axis + 1] = sl
            return tuple(idx)

        if side == 0:
            prim[at(slice(0, g))] = prim[at(slice(n, n + g))]
        else:
            prim[at(slice(g + n, 2 * g + n))] = prim[at(slice(g, 2 * g))]


class Reflecting(BoundaryCondition):
    """Mirror the interior and flip the normal velocity component."""

    name = "reflecting"

    def apply(self, system, grid, prim, axis, side):
        g = grid.n_ghost
        n = grid.shape[axis]

        def at(i):
            idx = [slice(None)] * (grid.ndim + 1)
            idx[axis + 1] = i
            return tuple(idx)

        for k in range(g):
            if side == 0:
                ghost, src = g - 1 - k, g + k
            else:
                ghost, src = g + n + k, g + n - 1 - k
            prim[at(ghost)] = prim[at(src)]
            prim[(system.V(axis),) + at(ghost)[1:]] *= -1.0


class FixedState(BoundaryCondition):
    """Dirichlet: ghost zones pinned to a constant primitive state."""

    name = "fixed"

    def __init__(self, state):
        self.state = np.asarray(state, dtype=float)

    def apply(self, system, grid, prim, axis, side):
        if self.state.shape != (system.nvars,):
            raise ConfigurationError(
                f"fixed state has shape {self.state.shape}, "
                f"expected ({system.nvars},)"
            )
        ghost, _ = _ghost_slices(grid, axis, side)
        region = prim[ghost]
        for var in range(system.nvars):
            region[var] = self.state[var]


class JetInflowBC(BoundaryCondition):
    """Jet nozzle on the low-x face: beam state inside the nozzle radius,
    outflow elsewhere. 2-D only; the transverse coordinate is axis 1."""

    name = "jet-inflow"

    def __init__(self, jet: JetInflow, center: float = 0.5, tracer_value: float = 1.0):
        self.jet = jet
        self.center = float(center)
        self.tracer_value = float(tracer_value)
        self._outflow = Outflow()

    def apply(self, system, grid, prim, axis, side):
        if grid.ndim != 2 or axis != 0 or side != 0:
            raise ConfigurationError("JetInflowBC applies to the low-x face of a 2-D grid")
        self._outflow.apply(system, grid, prim, axis, side)
        y = grid.coords_with_ghosts(1)
        nozzle = np.abs(y - self.center) <= self.jet.radius
        g = grid.n_ghost
        region = prim[:, 0:g, :]  # (nvars, g, ny_tot)
        region[system.RHO][:, nozzle] = self.jet.rho_beam
        region[system.V(0)][:, nozzle] = self.jet.v_beam
        region[system.V(1)][:, nozzle] = 0.0
        region[system.P][:, nozzle] = self.jet.p_beam
        # Mark beam material when the system carries tracers.
        if hasattr(system, "Y"):
            for m in range(system.n_tracers):
                region[system.Y(m)][:, nozzle] = self.tracer_value


class BoundarySet:
    """Per-face boundary conditions for a grid.

    Construct with a single condition for all faces, or a mapping
    ``{(axis, side): BoundaryCondition}`` (missing faces default to
    *default*).
    """

    def __init__(self, default: BoundaryCondition | None = None, faces: dict | None = None):
        self.default = default or Outflow()
        self.faces = dict(faces or {})

    def condition(self, axis: int, side: int) -> BoundaryCondition:
        return self.faces.get((axis, side), self.default)

    def apply(self, system: SRHDSystem, grid: Grid, prim: np.ndarray) -> None:
        """Fill all ghost zones of *prim* in place."""
        for axis in range(grid.ndim):
            for side in (0, 1):
                self.condition(axis, side).apply(system, grid, prim, axis, side)


def make_boundaries(name: str = "outflow", **kwargs) -> BoundarySet:
    """Uniform boundary set by name: outflow, periodic, or reflecting."""
    table = {"outflow": Outflow, "periodic": Periodic, "reflecting": Reflecting}
    if name not in table:
        raise ConfigurationError(
            f"unknown boundary {name!r}; choose from {sorted(table)}"
        )
    return BoundarySet(default=table[name](**kwargs))
