"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Evolve a named problem on a uniform grid, report the summary, and
    optionally write a snapshot or checkpoint.
``amr``
    Evolve a named problem on the adaptive block forest, optionally
    distributed over simulated ranks or real worker processes with
    dynamic Morton-curve rebalancing.
``experiment``
    Regenerate one table/figure of the evaluation by id (E1..E12).
``info``
    List available problems, schemes, solvers, and experiments.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis import relative_l1_error
from .boundary import make_boundaries
from .core import Solver, SolverConfig
from .eos import IdealGasEOS
from .mesh.amr.partition import PARTITIONERS
from .mesh.grid import Grid
from .physics.initial_data import (
    SHOCK_TUBES,
    blast_wave_2d,
    kelvin_helmholtz_2d,
    shock_tube,
)
from .physics.srhd import SRHDSystem
from .reconstruct import SCHEMES
from .riemann import SOLVERS
from .utils.errors import ReproError

#: named problems runnable from the CLI: name -> (ndim, default t_final)
PROBLEMS = {
    "rp1": (1, 0.4),
    "rp2": (1, 0.35),
    "blast2d": (2, 0.2),
    "kh": (2, 2.0),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalable relativistic HRSC for heterogeneous computing "
        "(reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="evolve a named problem")
    run.add_argument("problem", choices=sorted(PROBLEMS))
    run.add_argument("--n", type=int, default=200, help="cells per axis")
    run.add_argument("--t-final", type=float, default=None)
    run.add_argument("--cfl", type=float, default=0.4)
    run.add_argument("--reconstruction", choices=SCHEMES, default="mc")
    run.add_argument("--riemann", choices=sorted(SOLVERS), default="hllc")
    run.add_argument("--snapshot", metavar="PATH", help="write final .npz snapshot")
    run.add_argument("--checkpoint", metavar="PATH", help="write final checkpoint")
    run.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="stream per-step structured metrics (JSONL) to PATH and print "
        "the aggregated summary table",
    )
    run.add_argument(
        "--faults",
        metavar="PLAN.json",
        help="chaos-test the run against a seeded FaultPlan JSON file "
        "(see repro.resilience)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint every N steps to the --checkpoint path during the "
        "run (0 disables; the final checkpoint is written either way)",
    )
    run.add_argument(
        "--failsafe-frac",
        type=float,
        default=0.0,
        metavar="F",
        help="max fraction of cells per con2prim sweep that may be "
        "atmosphere-reset instead of aborting the run (0 disables)",
    )
    run.add_argument(
        "--ranks",
        type=int,
        default=0,
        metavar="P",
        help="run on the distributed solver with P simulated ranks "
        "(near-cubic process grid; 0 = single-grid solver)",
    )
    run.add_argument(
        "--overlap",
        action="store_true",
        help="with --ranks: overlap halo exchanges with interior compute "
        "(bit-identical to blocking; prints the comm.overlap.* summary)",
    )
    run.add_argument(
        "--executor",
        choices=("serial", "process"),
        default="serial",
        help="distributed execution backend: 'serial' simulates all ranks "
        "in one process, 'process' runs each rank as a worker process over "
        "shared memory (bit-identical results, real parallel wall-clock)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="P",
        help="with --executor process: number of worker processes (one per "
        "rank of the decomposition)",
    )
    run.add_argument(
        "--max-rank-restarts",
        type=int,
        default=None,
        metavar="N",
        help="with --executor process: supervise the workers and respawn "
        "crashed or hung ranks in-run, up to N respawns (bit-identical "
        "recovery from the last consistent step snapshot)",
    )
    run.add_argument(
        "--degrade",
        action="store_true",
        help="with --max-rank-restarts: when the respawn budget is "
        "exhausted, degrade gracefully to the serial executor from the "
        "last snapshot instead of failing the run",
    )
    run.add_argument(
        "--kernel-target",
        choices=("numpy", "flat", "cext"),
        default="numpy",
        help="codegen target for the hot kernels: 'numpy' handwritten "
        "reference (default), 'flat' SymPy-generated SoA kernels, 'cext' "
        "cffi-compiled C kernels (falls back to 'flat' with a warning when "
        "no C toolchain is available)",
    )

    run.set_defaults(_subparser=run)

    amr = sub.add_parser(
        "amr",
        help="evolve a named problem on the adaptive (AMR) block forest",
    )
    amr.add_argument("problem", choices=("blast2d", "rp1", "rp2"))
    amr.add_argument("--n", type=int, default=64, help="root cells per axis")
    amr.add_argument("--t-final", type=float, default=None)
    amr.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="stop after N coarse steps even if --t-final is not reached",
    )
    amr.add_argument("--cfl", type=float, default=0.4)
    amr.add_argument(
        "--block-size", type=int, default=None, metavar="B",
        help="cells per block per axis (AMRConfig default when omitted)",
    )
    amr.add_argument("--max-levels", type=int, default=None, metavar="L")
    amr.add_argument("--refine-threshold", type=float, default=None)
    amr.add_argument("--coarsen-threshold", type=float, default=None)
    amr.add_argument("--regrid-interval", type=int, default=None, metavar="N")
    amr.add_argument(
        "--rebalance-threshold", type=float, default=None, metavar="R",
        help="recut the Morton curve and migrate blocks when the measured "
        "rank imbalance (max/mean work) exceeds R after a regrid",
    )
    amr.add_argument(
        "--partitioner", choices=sorted(PARTITIONERS), default=None,
        help="leaf-to-rank partitioner used for the initial cut and every "
        "rebalance recut",
    )
    amr.add_argument(
        "--ranks", type=int, default=0, metavar="P",
        help="distribute the forest over P simulated ranks "
        "(0 = plain serial AMR solver)",
    )
    amr.add_argument(
        "--executor", choices=("serial", "process"), default="serial",
        help="distributed execution backend: 'serial' simulates all ranks "
        "in one process, 'process' runs one worker process per rank over "
        "shared memory (bit-identical forests, real parallel wall-clock)",
    )
    amr.add_argument(
        "--workers", type=int, default=0, metavar="P",
        help="with --executor process: number of worker processes "
        "(one per rank of the Morton-curve partition)",
    )
    amr.add_argument(
        "--max-rank-restarts", type=int, default=None, metavar="N",
        help="with --executor process: supervise the workers and respawn "
        "crashed or hung ranks in-run, up to N respawns",
    )
    amr.add_argument(
        "--metrics-out", metavar="PATH",
        help="stream per-step structured metrics (JSONL) to PATH and print "
        "the aggregated summary table",
    )
    amr.set_defaults(_subparser=amr)

    exp = sub.add_parser("experiment", help="regenerate a table/figure")
    exp.add_argument("id", metavar="EID", help="experiment id, e.g. E2")

    sub.add_parser("info", help="list problems, schemes, and experiments")

    serve = sub.add_parser(
        "serve",
        help="run a batch of scenario requests from a file through the "
        "admission-queue service",
    )
    serve.add_argument(
        "requests",
        metavar="REQUESTS.json",
        help="JSON array (or JSONL stream) of scenario spec dicts; see "
        "repro.serve.ScenarioSpec for the schema",
    )
    serve.add_argument(
        "--max-queue", type=int, default=1024, metavar="N",
        help="admission-queue depth; requests beyond it are rejected",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64, metavar="N",
        help="largest number of compatible scenarios per batched solve",
    )
    serve.add_argument(
        "--out", metavar="PATH", help="write per-request results JSON to PATH"
    )
    serve.add_argument(
        "--metrics-out", metavar="PATH",
        help="stream per-request/per-batch service events (JSONL) to PATH",
    )
    serve.set_defaults(_subparser=serve)

    sweep = sub.add_parser(
        "sweep",
        help="generate and serve a parametric family of shock-tube scenarios",
    )
    sweep.add_argument("problem", choices=("rp1", "rp2"))
    sweep.add_argument(
        "--count", type=int, default=8, metavar="N",
        help="number of scenarios in the family",
    )
    sweep.add_argument("--n", type=int, default=128, help="cells per scenario")
    sweep.add_argument("--t-final", type=float, default=None)
    sweep.add_argument(
        "--vary", metavar="SIDE.FIELD:LO:HI",
        help="vary one diaphragm-state field linearly across the family, "
        "e.g. left.p:5:20 (SIDE in {left,right}, FIELD in {rho,v,p})",
    )
    sweep.add_argument(
        "--kernel-target", choices=("numpy", "flat", "cext"), default="numpy",
        help="codegen target for the batched kernels",
    )
    sweep.add_argument(
        "--max-batch", type=int, default=64, metavar="N",
        help="largest number of scenarios per batched solve",
    )
    sweep.add_argument(
        "--out", metavar="PATH", help="write per-request results JSON to PATH"
    )
    sweep.add_argument(
        "--metrics-out", metavar="PATH",
        help="stream per-request/per-batch service events (JSONL) to PATH",
    )
    sweep.set_defaults(_subparser=sweep)

    cache = sub.add_parser(
        "cache",
        help="inspect (and optionally prune) the compiled-kernel artifact "
        "cache ($REPRO_CEXT_CACHE)",
    )
    cache.add_argument(
        "--max-bytes", metavar="SIZE", default=None,
        help="prune least-recently-used artifacts until the cache fits in "
        "SIZE bytes (suffixes K/M/G accepted, e.g. 64M); without it the "
        "command only reports",
    )
    cache.add_argument(
        "--json", action="store_true",
        help="emit the report (and any pruned artifact names) as JSON",
    )
    cache.set_defaults(_subparser=cache)
    return parser


_SIZE_SUFFIXES = {"K": 1024, "M": 1024**2, "G": 1024**3}


def _parse_size(text: str):
    """``'64M'`` -> 67108864; returns None on malformed input."""
    s = text.strip().upper().removesuffix("B")
    scale = 1
    if s and s[-1] in _SIZE_SUFFIXES:
        scale = _SIZE_SUFFIXES[s[-1]]
        s = s[:-1]
    try:
        value = float(s)
    except ValueError:
        return None
    if value < 0:
        return None
    return int(value * scale)


def _cmd_cache(args) -> int:
    import json

    from .codegen import cache_report, prune_cache

    removed: list[str] = []
    if args.max_bytes is not None:
        bound = _parse_size(args.max_bytes)
        if bound is None:
            args._subparser.error(
                f"--max-bytes wants a non-negative size like 512K or 64M, "
                f"got {args.max_bytes!r}"
            )
        removed = prune_cache(bound)
    report = cache_report()
    if args.json:
        report["pruned"] = removed
        print(json.dumps(report, indent=2))
        return 0
    print(f"cache dir : {report['dir']}")
    print(f"artifacts : {report['n_artifacts']} "
          f"({report['total_bytes'] / 1024:.1f} KiB)")
    for art in report["artifacts"]:  # oldest (least recently served) first
        print(f"  {art['bytes']:>10d}  {art['name']}")
    if args.max_bytes is not None:
        print(f"pruned    : {len(removed)} artifact(s)")
        for name in removed:
            print(f"  - {name}")
    return 0


def _validate_run_args(args) -> None:
    """Fail fast on flag combinations that would silently ignore each other.

    Every rejected combination names *both* flags involved, through the
    ``run`` subparser's own ``error`` (usage + message, exit code 2) —
    running something other than what was asked is never an option.
    """
    err = args._subparser.error
    if args.checkpoint_every and not args.checkpoint:
        err("--checkpoint-every requires --checkpoint")
    if args.executor == "process":
        if args.workers < 1:
            err("--executor process requires --workers >= 1")
        if args.ranks and args.ranks != args.workers:
            err("--ranks and --workers disagree; with --executor process "
                "give just --workers")
    elif args.workers:
        err("--workers requires --executor process (the serial executor "
            "would ignore --workers)")
    if args.overlap and not (args.ranks or args.workers):
        err("--overlap requires --ranks (or --executor process with "
            "--workers); the single-grid solver would ignore --overlap")
    if args.max_rank_restarts is not None and args.executor != "process":
        err("--max-rank-restarts requires --executor process")
    if args.degrade and args.max_rank_restarts is None:
        err("--degrade requires --max-rank-restarts")


def _cmd_run(args) -> int:
    ndim, default_t = PROBLEMS[args.problem]
    t_final = args.t_final if args.t_final is not None else default_t
    eos_gamma = SHOCK_TUBES[args.problem.upper()].gamma if args.problem in (
        "rp1",
        "rp2",
    ) else 5.0 / 3.0
    system = SRHDSystem(IdealGasEOS(gamma=eos_gamma), ndim=ndim)
    shape = (args.n,) * ndim
    grid = Grid(shape, tuple((0.0, 1.0) for _ in shape))
    config = SolverConfig(
        cfl=args.cfl,
        reconstruction=args.reconstruction,
        riemann=args.riemann,
        failsafe_frac=args.failsafe_frac,
        overlap_exchange=bool(args.overlap),
        executor=args.executor,
        kernel_target=args.kernel_target,
    )
    _validate_run_args(args)
    n_ranks = args.workers if args.executor == "process" else args.ranks
    if args.problem in ("rp1", "rp2"):
        prim0 = shock_tube(system, grid, SHOCK_TUBES[args.problem.upper()])
        bcs = make_boundaries("outflow")
    elif args.problem == "blast2d":
        prim0 = blast_wave_2d(system, grid, p_in=100.0, radius=0.1, smoothing=0.02)
        bcs = make_boundaries("outflow")
    else:  # kh
        prim0 = kelvin_helmholtz_2d(system, grid)
        bcs = make_boundaries("periodic")

    recorder = None
    if args.metrics_out:
        from .obs import JsonlEventSink, StepRecorder

        recorder = StepRecorder(
            JsonlEventSink(args.metrics_out),
            meta={
                "problem": args.problem,
                "n": args.n,
                "ndim": ndim,
                "t_final": t_final,
                "cfl": args.cfl,
                "reconstruction": args.reconstruction,
                "riemann": args.riemann,
                "ranks": n_ranks,
                "overlap": bool(args.overlap),
                "executor": args.executor,
                "kernel_target": args.kernel_target,
            },
        )

    fault_injector = None
    if args.faults:
        from .resilience import FaultInjector, FaultPlan

        fault_injector = FaultInjector(FaultPlan.load(args.faults))

    if n_ranks:
        from .core.parallel import make_distributed_solver
        from .mesh.decomposition import choose_dims

        halo_policy = None
        if args.faults:
            # Chaos runs over the distributed solver need the resilient
            # exchange, or the first dropped halo message kills the run.
            from .resilience import HaloRetryPolicy

            halo_policy = HaloRetryPolicy()
        supervision = None
        if args.max_rank_restarts is not None:
            from .resilience import SupervisionPolicy

            supervision = SupervisionPolicy(
                max_rank_restarts=args.max_rank_restarts,
                degrade=bool(args.degrade),
            )
        solver = make_distributed_solver(
            system, grid, prim0, choose_dims(n_ranks, ndim),
            config=config, boundaries=bcs, recorder=recorder,
            fault_injector=fault_injector, halo_policy=halo_policy,
            supervision=supervision,
        )
        sup_info = None
        if supervision is not None and config.executor == "process":
            from .core.parallel import run_supervised

            solver, sup_info = run_supervised(
                solver, t_final,
                checkpoint_every=args.checkpoint_every,
                checkpoint_path=(
                    args.checkpoint if args.checkpoint_every else None
                ),
            )
        else:
            solver.run(
                t_final=t_final,
                checkpoint_every=args.checkpoint_every,
                checkpoint_path=(
                    args.checkpoint if args.checkpoint_every else None
                ),
            )
        if recorder is not None:
            recorder.finish(t_end=solver.t)
            recorder.close()
        prim = solver.gather_primitives()
        steps = solver.steps
        mode = "overlapped" if args.overlap else "blocking"
        print(f"{args.problem}: t = {solver.t:.4f}, steps = {steps}")
        print(f"  ranks     : {n_ranks} (dims {solver.decomp.dims}, "
              f"{mode} exchange, {args.executor} executor)")
        if sup_info is not None:
            state = "degraded to serial" if sup_info["degraded"] else "held"
            print(f"  supervise : {state}, "
                  f"{sup_info['worker_restarts']} rank respawn(s)")
    else:
        solver = Solver(
            system, grid, prim0, config, bcs,
            recorder=recorder, fault_injector=fault_injector,
        )
        summary = solver.run(
            t_final=t_final,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.checkpoint if args.checkpoint_every else None,
        )
        if recorder is not None:
            recorder.finish(
                t_end=solver.t, conservation_drift=summary.conservation_drift
            )
            recorder.close()
        prim = solver.interior_primitives()
        print(f"{args.problem}: t = {solver.t:.4f}, steps = {summary.steps}")
    print(f"  rho range : [{prim[system.RHO].min():.4g}, {prim[system.RHO].max():.4g}]")
    print(f"  max |v|   : {max(np.abs(prim[system.V(ax)]).max() for ax in range(ndim)):.4f}")
    if not n_ranks:
        drift = summary.conservation_drift
        print(f"  mass drift: {drift['mass']:.2e}")
    if args.overlap:
        snap = solver.metrics.snapshot()["counters"]
        modeled = snap.get("comm.overlap.modeled_comm_s", 0.0)
        hidden = snap.get("comm.overlap.hidden_s", 0.0)
        frac = hidden / modeled if modeled > 0 else 1.0
        print(f"  overlap   : hidden {frac:.1%} of modeled comm "
              f"({snap.get('comm.overlap.exchanges', 0):g} exchanges)")
        for name in sorted(snap):
            if name.startswith("comm.overlap."):
                print(f"    {name}: {snap[name]:g}")
    if args.faults:
        snap = solver.metrics.snapshot()["counters"]
        resilience = {k: v for k, v in sorted(snap.items()) if k.startswith("resilience.")}
        print(f"  faults    : {args.faults}")
        for name, value in resilience.items():
            print(f"    {name}: {value:g}")
    if args.problem in ("rp1", "rp2"):
        from .physics.exact_riemann import ExactRiemannSolver

        prob = SHOCK_TUBES[args.problem.upper()]
        exact = ExactRiemannSolver(prob.left, prob.right, prob.gamma)
        rho_e, _, _ = exact.solution_on_grid(grid.coords(0), solver.t, prob.x0)
        print(f"  rel L1(rho) vs exact: {relative_l1_error(prim[0], rho_e):.5f}")
    if args.snapshot:
        from .io import save_solution

        names = ["rho"] + [f"v{i}" for i in range(ndim)] + ["p"]
        save_solution(args.snapshot, grid, prim, solver.t, names)
        print(f"  snapshot  : {args.snapshot}")
    if args.checkpoint:
        if n_ranks:
            from .io.checkpoint import save_distributed_checkpoint

            save_distributed_checkpoint(solver, args.checkpoint)
        else:
            from .io import save_checkpoint

            save_checkpoint(solver, args.checkpoint)
        print(f"  checkpoint: {args.checkpoint}")
    if args.executor == "process" and hasattr(solver, "close"):
        # Workers must stay up through the final checkpoint gather above.
        # (After a degraded run the solver is serial and has no workers.)
        solver.close()  # shut workers down, release shared memory
    if args.metrics_out:
        from .harness.report import Report
        from .obs import read_events

        print(f"  metrics   : {args.metrics_out}")
        print(Report.from_metrics(read_events(args.metrics_out)))
    return 0


def _validate_amr_args(args) -> None:
    """Fail fast on amr flag combos that would silently ignore each other."""
    err = args._subparser.error
    if args.executor == "process":
        if args.workers < 1:
            err("--executor process requires --workers >= 1")
        if args.ranks and args.ranks != args.workers:
            err("--ranks and --workers disagree; with --executor process "
                "give just --workers")
    elif args.workers:
        err("--workers requires --executor process (the serial executor "
            "would ignore --workers)")
    if args.max_rank_restarts is not None and args.executor != "process":
        err("--max-rank-restarts requires --executor process")


def _cmd_amr(args) -> int:
    from .core.amr_parallel import make_distributed_amr_solver
    from .core.amr_solver import AMRConfig, AMRSolver

    _validate_amr_args(args)
    ndim, default_t = PROBLEMS[args.problem]
    t_final = args.t_final if args.t_final is not None else default_t
    eos_gamma = (
        SHOCK_TUBES[args.problem.upper()].gamma
        if args.problem in ("rp1", "rp2")
        else 5.0 / 3.0
    )
    system = SRHDSystem(IdealGasEOS(gamma=eos_gamma), ndim=ndim)
    grid = Grid((args.n,) * ndim, tuple((0.0, 1.0) for _ in range(ndim)))
    config = SolverConfig(cfl=args.cfl, executor=args.executor)
    # Omitted knobs fall through to the AMRConfig defaults.
    amr_cfg = AMRConfig(**{
        name: value
        for name, value in dict(
            block_size=args.block_size,
            max_levels=args.max_levels,
            refine_threshold=args.refine_threshold,
            coarsen_threshold=args.coarsen_threshold,
            regrid_interval=args.regrid_interval,
            rebalance_threshold=args.rebalance_threshold,
            partitioner=args.partitioner,
        ).items()
        if value is not None
    })
    if args.problem in ("rp1", "rp2"):
        prob = SHOCK_TUBES[args.problem.upper()]
        init = lambda sys_, g: shock_tube(sys_, g, prob)  # noqa: E731
    else:
        init = lambda sys_, g: blast_wave_2d(  # noqa: E731
            sys_, g, p_in=100.0, radius=0.1, smoothing=0.02
        )

    recorder = None
    if args.metrics_out:
        from .obs import JsonlEventSink, StepRecorder

        recorder = StepRecorder(
            JsonlEventSink(args.metrics_out),
            meta={
                "problem": f"{args.problem}-amr",
                "n": args.n,
                "ndim": ndim,
                "cfl": args.cfl,
                "ranks": args.workers or args.ranks,
                "executor": args.executor,
            },
        )

    n_ranks = args.workers if args.executor == "process" else args.ranks
    if n_ranks:
        supervision = None
        if args.max_rank_restarts is not None:
            from .resilience import SupervisionPolicy

            supervision = SupervisionPolicy(
                max_rank_restarts=args.max_rank_restarts
            )
        solver = make_distributed_amr_solver(
            system, grid, init, config=config, amr=amr_cfg,
            n_ranks=n_ranks, recorder=recorder, supervision=supervision,
        )
    else:
        solver = AMRSolver(
            system, grid, init, config, amr_cfg, recorder=recorder
        )
    try:
        solver.run(t_final, max_steps=args.max_steps)
        if recorder is not None:
            recorder.finish(t_end=solver.t)
            recorder.close()
        if args.executor == "process":
            prims = solver.gather_block_primitives()
            levels: dict[int, int] = {}
            for key in prims:
                levels[key.level] = levels.get(key.level, 0) + 1
            rho_min = min(p[system.RHO].min() for p in prims.values())
            rho_max = max(p[system.RHO].max() for p in prims.values())
        else:
            levels = solver.leaf_count_by_level()
            _, prim = solver.composite_primitives()
            rho_min = prim[system.RHO].min()
            rho_max = prim[system.RHO].max()
    finally:
        if args.executor == "process":
            solver.close()  # workers stay up through the gathers above

    print(f"{args.problem} [amr]: t = {solver.t:.4f}, steps = {solver.steps}")
    by_level = " ".join(f"{lvl}:{n}" for lvl, n in sorted(levels.items()))
    n_leaves = sum(levels.values())
    regrids = getattr(solver, "regrids", None)
    forest_line = f"  forest    : {n_leaves} leaves (level {by_level})"
    if regrids is not None:
        forest_line += f", {regrids} regrids"
    print(forest_line)
    if n_ranks:
        print(f"  ranks     : {n_ranks} ({args.executor} executor, "
              f"{amr_cfg.partitioner} partitioner)")
        print(f"  balance   : imbalance {solver.imbalance:.3f}, "
              f"{solver.repartitions} repartition(s), "
              f"{solver.migrated_blocks} block(s) migrated")
        if args.max_rank_restarts is not None:
            print(f"  supervise : {solver.restarts_used} rank respawn(s) "
                  f"of {args.max_rank_restarts} allowed")
    print(f"  rho range : [{rho_min:.4g}, {rho_max:.4g}]")
    if args.metrics_out:
        from .harness.report import Report
        from .obs import read_events

        print(f"  metrics   : {args.metrics_out}")
        print(Report.from_metrics(read_events(args.metrics_out)))
    return 0


def _cmd_experiment(args) -> int:
    from .harness import EXPERIMENTS

    eid = args.id.upper()
    if eid not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; choose from {sorted(EXPERIMENTS)}")
        return 2
    print(EXPERIMENTS[eid]())
    return 0


def _service_report(svc, requests, extra_rejected=0) -> None:
    """Print the service-side outcome summary shared by serve and sweep."""
    snap = svc.metrics.snapshot()
    counters = snap["counters"]
    hists = snap["histograms"]
    n_ok = sum(1 for r in requests if r.status == "ok")
    n_failed = sum(1 for r in requests if r.status == "failed")
    print(f"requests  : {len(requests) + extra_rejected} "
          f"(ok {n_ok}, failed {n_failed}, rejected {extra_rejected})")
    print(f"batches   : {counters.get('serve.batches', 0):g} "
          f"(kernel cache: {counters.get('serve.kernel_cache.hits', 0):g} hits, "
          f"{counters.get('serve.kernel_cache.misses', 0):g} misses)")
    lat = hists.get("serve.request_latency_s")
    if lat and lat["count"]:
        print(f"latency   : p50 {lat['p50'] * 1e3:.2f} ms, "
              f"p99 {lat['p99'] * 1e3:.2f} ms")
    sps = hists.get("serve.scenarios_per_sec")
    if sps and sps["count"]:
        print(f"throughput: {sps['mean']:.1f} scenarios/sec "
              f"(best batch {sps['max']:.1f})")


def _write_service_results(path, requests, rejected) -> None:
    import json

    payload = {
        "results": [r.summary() for r in requests],
        "rejected": rejected,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"results   : {path}")


def _make_service(args, meta: dict, max_queue: int | None = None):
    from .serve import BatchService

    recorder = None
    if args.metrics_out:
        from .obs import JsonlEventSink, StepRecorder

        recorder = StepRecorder(JsonlEventSink(args.metrics_out), meta=meta)
    return BatchService(
        max_queue_depth=max_queue if max_queue is not None else 1024,
        max_batch=args.max_batch,
        recorder=recorder,
    ), recorder


def _cmd_serve(args) -> int:
    import json

    from .utils.errors import AdmissionError

    with open(args.requests, encoding="utf-8") as fh:
        text = fh.read()
    try:
        payloads = json.loads(text)
        if not isinstance(payloads, list):
            raise ValueError("top level must be a JSON array")
    except ValueError:
        # JSONL fallback: one spec dict per non-empty line.
        payloads = [json.loads(line) for line in text.splitlines() if line.strip()]

    svc, recorder = _make_service(
        args, {"mode": "serve", "requests": args.requests},
        max_queue=args.max_queue,
    )
    rejected = []
    for i, payload in enumerate(payloads):
        try:
            svc.submit(payload)
        except AdmissionError as exc:
            rejected.append({"index": i, "status": "rejected", "error": str(exc)})
    requests = svc.drain()
    _service_report(svc, requests, extra_rejected=len(rejected))
    if args.out:
        _write_service_results(args.out, requests, rejected)
    if recorder is not None:
        recorder.close()
        print(f"metrics   : {args.metrics_out}")
    return 0 if all(r.status == "ok" for r in requests) and not rejected else 1


_SWEEP_FIELDS = ("rho", "v", "p")


def _parse_vary(args) -> tuple[str, str, float, float]:
    spec = args.vary
    err = args._subparser.error
    head, sep, rest = spec.partition(":")
    side, dot, field = head.partition(".")
    if not sep or not dot or side not in ("left", "right") or field not in _SWEEP_FIELDS:
        err(f"--vary must look like SIDE.FIELD:LO:HI with SIDE in "
            f"{{left,right}} and FIELD in {{rho,v,p}}, got {spec!r}")
    lo_s, sep2, hi_s = rest.partition(":")
    try:
        lo, hi = float(lo_s), float(hi_s)
    except ValueError:
        sep2 = ""
    if not sep2:
        err(f"--vary needs numeric LO:HI bounds, got {spec!r}")
    return side, field, lo, hi


def _cmd_sweep(args) -> int:
    import dataclasses

    from .physics.initial_data import SHOCK_TUBES
    from .serve import ScenarioSpec

    if args.count < 1:
        args._subparser.error(f"--count must be >= 1, got {args.count}")
    problem = SHOCK_TUBES[args.problem.upper()]
    t_final = args.t_final if args.t_final is not None else problem.t_final
    base = dict(
        kind="shock_tube", problem=problem.name, nx=args.n, t_final=t_final,
        gamma=problem.gamma, kernel_target=args.kernel_target,
    )
    specs = []
    if args.vary:
        side, field, lo, hi = _parse_vary(args)
        values = np.linspace(lo, hi, args.count)
        for value in values:
            state = dataclasses.replace(
                getattr(problem, side), **{field: float(value)}
            )
            specs.append(ScenarioSpec(**base, **{side: state}))
        print(f"sweep     : {args.problem} x{args.count}, "
              f"{side}.{field} in [{lo:g}, {hi:g}]")
    else:
        specs = [ScenarioSpec(**base) for _ in range(args.count)]
        print(f"sweep     : {args.problem} x{args.count}")

    svc, recorder = _make_service(
        args,
        {"mode": "sweep", "problem": args.problem, "count": args.count,
         "n": args.n, "t_final": t_final, "vary": args.vary,
         "kernel_target": args.kernel_target},
    )
    requests = svc.sweep(specs)
    _service_report(svc, requests)
    if args.out:
        _write_service_results(args.out, requests, [])
    if recorder is not None:
        recorder.close()
        print(f"metrics   : {args.metrics_out}")
    return 0 if all(r.status == "ok" for r in requests) else 1


def _cmd_info(_args) -> int:
    from .harness import EXPERIMENTS

    print("problems      :", ", ".join(sorted(PROBLEMS)))
    print("reconstruction:", ", ".join(SCHEMES))
    print("riemann       :", ", ".join(sorted(SOLVERS)))
    print("experiments   :", ", ".join(sorted(EXPERIMENTS, key=lambda e: int(e[1:]))))
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "amr":
            return _cmd_amr(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "cache":
            return _cmd_cache(args)
        return _cmd_info(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
