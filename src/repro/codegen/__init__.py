"""Automatic kernel generation from symbolic physics (SymPy).

Write the SRHD equations once (:class:`SRHDSymbols`), emit per-architecture
kernels (:class:`KernelGenerator`: ``numpy`` host flavour, ``flat`` SoA
accelerator flavour), compile and cache them (:func:`load_kernel`), and
verify every generated kernel against the handwritten reference
(:func:`verify_kernels`).
"""

from .cache import (
    cache_size,
    clear_cache,
    load_kernel,
    run_flat_kernel,
    verify_kernels,
)
from .generator import KernelGenerator
from .symbols import SRHDSymbols
from .system import GeneratedSRHDSystem

__all__ = [
    "SRHDSymbols",
    "KernelGenerator",
    "GeneratedSRHDSystem",
    "load_kernel",
    "run_flat_kernel",
    "verify_kernels",
    "clear_cache",
    "cache_size",
]
