"""Automatic kernel generation from symbolic physics (SymPy).

Write the SRHD equations once (:class:`SRHDSymbols`), emit per-architecture
kernels (:class:`KernelGenerator`: ``numpy`` host flavour, ``flat`` SoA
accelerator flavour, ``cext`` compiled-C flavour), compile and cache them
(:func:`load_kernel`, :mod:`repro.codegen.cext`), and verify every
generated kernel against the handwritten reference
(:func:`verify_kernels`).
"""

from .cache import (
    ALL_TARGETS,
    cache_size,
    clear_cache,
    load_kernel,
    run_flat_kernel,
    verify_kernels,
)
from .cext import (
    cache_report,
    cext_available,
    load_cext_module,
    load_cext_stencil_module,
    prune_cache,
)
from .generator import KernelGenerator
from .symbols import SRHDSymbols
from .system import (
    CompiledSRHDSystem,
    GeneratedSRHDSystem,
    make_kernel_system,
    stencil_scheme_ids,
)

__all__ = [
    "SRHDSymbols",
    "KernelGenerator",
    "GeneratedSRHDSystem",
    "CompiledSRHDSystem",
    "make_kernel_system",
    "stencil_scheme_ids",
    "load_kernel",
    "run_flat_kernel",
    "verify_kernels",
    "clear_cache",
    "cache_size",
    "cext_available",
    "load_cext_module",
    "load_cext_stencil_module",
    "cache_report",
    "prune_cache",
    "ALL_TARGETS",
]
