"""Compilation and caching of generated kernels.

Generated source is executed into a private namespace (the Python analogue
of nvcc + dlopen) and memoized **by source hash**: every
:func:`load_kernel` call regenerates the source from the symbolic spec and
keys the compiled function on ``sha256(source)``, so editing
``symbols.py``/``generator.py`` (or monkeypatching the spec, as the
regression tests do) can never serve a stale kernel.  The compiled
``cext`` target gets the same treatment one layer down, in
:mod:`repro.codegen.cext`, where the on-disk artifact name embeds a hash
of the C source plus the toolchain fingerprint.

A verifier cross-checks every generated kernel against the handwritten
:class:`~repro.physics.srhd.SRHDSystem` reference — the guardrail any code
generator needs.
"""

from __future__ import annotations

import hashlib
from typing import Callable

import numpy as np

from ..eos.ideal import IdealGasEOS
from ..physics.srhd import SRHDSystem
from ..utils.errors import CodegenError
from .generator import KernelGenerator

_cache: dict[tuple[str, str], Callable] = {}

#: number of exec-compilations this process performed (test hook)
compile_count = 0


def source_fingerprint(source: str) -> str:
    """The cache key of one kernel's generated source."""
    return hashlib.sha256(source.encode()).hexdigest()


def load_kernel(kind: str, ndim: int, axis: int = 0, target: str = "numpy") -> Callable:
    """Get (generating + compiling if needed) a kernel function.

    The source is regenerated on every call and the compiled function is
    memoized by its hash — a change in the generator or the symbolic spec
    is picked up immediately, at the cost of re-printing a few small SymPy
    expressions per call.
    """
    global compile_count
    if target == "cext":
        # Compiled kernels live in a shared library with a different calling
        # convention; repro.codegen.cext wraps them in flat-compatible
        # callables and owns the artifact cache.
        from .cext import load_cext_kernel

        return load_cext_kernel(kind, ndim, axis)
    gen = KernelGenerator(ndim)
    source = gen.generate(kind, axis, target)
    name = gen.kernel_name(kind, axis, target)
    key = (name, source_fingerprint(source))
    if key not in _cache:
        namespace: dict = {}
        try:
            exec(compile(source, f"<generated {name}>", "exec"), namespace)
        except SyntaxError as exc:  # pragma: no cover - generator bug guard
            raise CodegenError(f"generated source failed to compile: {exc}") from exc
        compile_count += 1
        _cache[key] = namespace[name]
    return _cache[key]


def clear_cache() -> None:
    _cache.clear()


def cache_size() -> int:
    return len(_cache)


def run_flat_kernel(kernel: Callable, prim: np.ndarray, n_out: int, gamma: float):
    """Drive a flat/SoA kernel from a stacked primitive array.

    Splits ``prim`` into per-variable flat views (zero-copy), allocates flat
    outputs, and restacks the result — the host-side marshalling a real GPU
    launch performs.  Works unchanged for the compiled ``cext`` wrappers,
    which share the flat calling convention.
    """
    shape = prim.shape[1:]
    ins = [prim[i].reshape(-1) for i in range(prim.shape[0])]
    outs = [np.empty(ins[0].shape) for _ in range(n_out)]
    kernel(*ins, *outs, gamma)
    return np.stack([o.reshape(shape) for o in outs])


#: All kernel targets, in emission order.
ALL_TARGETS = ("numpy", "flat", "cext")


def _sample_states(system: SRHDSystem, n_samples: int, rng) -> np.ndarray:
    prim = np.empty((system.nvars, n_samples))
    prim[system.RHO] = rng.uniform(0.1, 10.0, n_samples)
    budget = rng.uniform(0, 0.9**2, n_samples)
    direction = rng.normal(size=(system.ndim, n_samples))
    direction /= np.maximum(np.sqrt((direction**2).sum(axis=0)), 1e-12)
    for ax in range(system.ndim):
        prim[system.V(ax)] = direction[ax] * np.sqrt(budget)
    prim[system.P] = rng.uniform(0.01, 10.0, n_samples)
    return prim


def verify_kernels(
    ndim: int,
    gamma: float = 5.0 / 3.0,
    n_samples: int = 256,
    rtol: float = 1e-12,
    seed: int = 7,
    targets: tuple[str, ...] | None = None,
    con2prim_rtol: float = 1e-10,
) -> dict[str, float]:
    """Compare every generated kernel against the handwritten reference.

    *targets* defaults to ``("numpy", "flat")`` plus ``"cext"`` whenever the
    compiled target is actually buildable here — pass an explicit tuple to
    force (or forbid) it.  For ``cext`` the fused con2prim Newton kernel is
    additionally checked by running a full
    :func:`~repro.physics.con2prim.con_to_prim` recovery through
    :class:`~repro.codegen.system.CompiledSRHDSystem` and comparing the
    recovered primitives at *con2prim_rtol* (the inversion is iterative, so
    its tolerance is its convergence tolerance, not machine epsilon).

    Returns the max relative deviation per kernel; raises
    :class:`CodegenError` if any exceeds its tolerance.
    """
    if targets is None:
        from .cext import cext_available

        targets = ("numpy", "flat") + (("cext",) if cext_available(ndim) else ())

    rng = np.random.default_rng(seed)
    system = SRHDSystem(IdealGasEOS(gamma=gamma), ndim=ndim)
    prim = _sample_states(system, n_samples, rng)

    cons_ref = system.prim_to_con(prim)
    deviations: dict[str, float] = {}

    def check(name, got, ref, tol=rtol):
        scale = np.maximum(np.abs(ref), 1e-30)
        dev = float(np.max(np.abs(got - ref) / scale))
        deviations[name] = dev
        if dev > tol:
            raise CodegenError(f"kernel {name} deviates by {dev:.3e} (> {tol:.0e})")

    for target in targets:
        k = load_kernel("prim_to_con", ndim, 0, target)
        if target == "numpy":
            got = k(prim, np.empty_like(cons_ref), gamma)
        else:
            got = run_flat_kernel(k, prim, system.nvars, gamma)
        check(f"prim_to_con/{target}", got, cons_ref)

        for axis in range(ndim):
            F_ref = system.flux(prim, cons_ref, axis)
            k = load_kernel("flux", ndim, axis, target)
            if target == "numpy":
                got = k(prim, np.empty_like(F_ref), gamma)
            else:
                got = run_flat_kernel(k, prim, system.nvars, gamma)
            check(f"flux{axis}/{target}", got, F_ref)

            lam_ref = np.stack(system.char_speeds(prim, axis))
            k = load_kernel("char_speeds", ndim, axis, target)
            if target == "numpy":
                got = k(prim, np.empty_like(lam_ref), gamma)
            else:
                got = run_flat_kernel(k, prim, 2, gamma)
            check(f"char_speeds{axis}/{target}", got, lam_ref)

        if target == "cext":
            from ..physics.con2prim import con_to_prim
            from .system import CompiledSRHDSystem

            compiled = CompiledSRHDSystem(gamma=gamma, ndim=ndim)
            prim_ref = con_to_prim(system, cons_ref.copy())
            prim_got = con_to_prim(compiled, cons_ref.copy())
            check(f"con2prim/{target}", prim_got, prim_ref, tol=con2prim_rtol)

    return deviations
