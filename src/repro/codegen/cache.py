"""Compilation and caching of generated kernels.

Generated source is executed into a private namespace (the Python analogue
of nvcc + dlopen) and memoized per (ndim, kind, axis, target). A verifier
cross-checks every generated kernel against the handwritten
:class:`~repro.physics.srhd.SRHDSystem` reference — the guardrail any code
generator needs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..eos.ideal import IdealGasEOS
from ..physics.srhd import SRHDSystem
from ..utils.errors import CodegenError
from .generator import KernelGenerator

_cache: dict[tuple, Callable] = {}


def load_kernel(kind: str, ndim: int, axis: int = 0, target: str = "numpy") -> Callable:
    """Get (generating + compiling if needed) a kernel function."""
    key = (kind, ndim, axis, target)
    if key not in _cache:
        gen = KernelGenerator(ndim)
        source = gen.generate(kind, axis, target)
        namespace: dict = {}
        try:
            exec(compile(source, f"<generated {key}>", "exec"), namespace)
        except SyntaxError as exc:  # pragma: no cover - generator bug guard
            raise CodegenError(f"generated source failed to compile: {exc}") from exc
        _cache[key] = namespace[gen.kernel_name(kind, axis, target)]
    return _cache[key]


def clear_cache() -> None:
    _cache.clear()


def cache_size() -> int:
    return len(_cache)


def run_flat_kernel(kernel: Callable, prim: np.ndarray, n_out: int, gamma: float):
    """Drive a flat/SoA kernel from a stacked primitive array.

    Splits ``prim`` into per-variable flat views (zero-copy), allocates flat
    outputs, and restacks the result — the host-side marshalling a real GPU
    launch performs.
    """
    shape = prim.shape[1:]
    ins = [prim[i].reshape(-1) for i in range(prim.shape[0])]
    outs = [np.empty(ins[0].shape) for _ in range(n_out)]
    kernel(*ins, *outs, gamma)
    return np.stack([o.reshape(shape) for o in outs])


def verify_kernels(ndim: int, gamma: float = 5.0 / 3.0, n_samples: int = 256,
                   rtol: float = 1e-12, seed: int = 7) -> dict[str, float]:
    """Compare every generated kernel against the handwritten reference.

    Returns the max relative deviation per kernel; raises
    :class:`CodegenError` if any exceeds *rtol*.
    """
    rng = np.random.default_rng(seed)
    system = SRHDSystem(IdealGasEOS(gamma=gamma), ndim=ndim)
    prim = np.empty((system.nvars, n_samples))
    prim[system.RHO] = rng.uniform(0.1, 10.0, n_samples)
    budget = rng.uniform(0, 0.9**2, n_samples)
    direction = rng.normal(size=(ndim, n_samples))
    direction /= np.maximum(np.sqrt((direction**2).sum(axis=0)), 1e-12)
    for ax in range(ndim):
        prim[system.V(ax)] = direction[ax] * np.sqrt(budget)
    prim[system.P] = rng.uniform(0.01, 10.0, n_samples)

    cons_ref = system.prim_to_con(prim)
    deviations: dict[str, float] = {}

    def check(name, got, ref):
        scale = np.maximum(np.abs(ref), 1e-30)
        dev = float(np.max(np.abs(got - ref) / scale))
        deviations[name] = dev
        if dev > rtol:
            raise CodegenError(f"kernel {name} deviates by {dev:.3e} (> {rtol:.0e})")

    for target in ("numpy", "flat"):
        # prim_to_con
        if target == "numpy":
            k = load_kernel("prim_to_con", ndim, 0, target)
            got = k(prim, np.empty_like(cons_ref), gamma)
        else:
            k = load_kernel("prim_to_con", ndim, 0, target)
            got = run_flat_kernel(k, prim, system.nvars, gamma)
        check(f"prim_to_con/{target}", got, cons_ref)

        for axis in range(ndim):
            F_ref = system.flux(prim, cons_ref, axis)
            if target == "numpy":
                k = load_kernel("flux", ndim, axis, target)
                got = k(prim, np.empty_like(F_ref), gamma)
            else:
                k = load_kernel("flux", ndim, axis, target)
                got = run_flat_kernel(k, prim, system.nvars, gamma)
            check(f"flux{axis}/{target}", got, F_ref)

            lam_ref = np.stack(system.char_speeds(prim, axis))
            if target == "numpy":
                k = load_kernel("char_speeds", ndim, axis, target)
                got = k(prim, np.empty_like(lam_ref), gamma)
            else:
                k = load_kernel("char_speeds", ndim, axis, target)
                got = run_flat_kernel(k, prim, 2, gamma)
            check(f"char_speeds{axis}/{target}", got, lam_ref)

    return deviations
