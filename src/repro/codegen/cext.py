"""Compiled C kernel target: cffi build, on-disk artifact cache, fallback.

The ``cext`` target turns the generated C module of
:meth:`~repro.codegen.generator.KernelGenerator.generate_c_module` into a
real shared library via cffi.  Three layers of caching keep rebuilds rare
and *correct*:

1. an in-process handle map, keyed by the artifact name;
2. an on-disk artifact cache (``$REPRO_CEXT_CACHE``, default
   ``~/.cache/repro/cext``) whose file names embed a SHA-256 over the
   **generated C source + cdef declarations + toolchain fingerprint** — so
   editing ``symbols.py``/``generator.py`` or upgrading the compiler can
   never serve a stale binary;
3. the cffi build itself, executed in a private temp directory and
   installed into the cache with an atomic :func:`os.replace`, so
   concurrent worker processes racing to build the same module all end up
   importing one winner.

Everything degrades gracefully: missing cffi, a missing C compiler, or
``REPRO_CEXT_DISABLE=1`` raise :class:`~repro.utils.errors.CodegenError`
here, which :func:`repro.codegen.system.make_kernel_system` turns into a
logged fallback to the ``flat`` target.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import subprocess
import sys
import sysconfig
import tempfile
from pathlib import Path

import numpy as np

from ..utils.errors import CodegenError
from ..utils.logging import get_logger
from .generator import CON2PRIM_KERNEL, KernelGenerator

_log = get_logger("codegen.cext")

#: Set to any non-empty value to force the no-toolchain fallback path.
DISABLE_ENV = "REPRO_CEXT_DISABLE"
#: Set to any non-empty value to disable only the fused stencil module —
#: the pointwise kernels keep compiling, exercising the per-kernel
#: fallback (compiled algebra + interpreted face-flux sweep).
STENCIL_DISABLE_ENV = "REPRO_CEXT_STENCIL_DISABLE"
#: Overrides the on-disk artifact cache directory.
CACHE_DIR_ENV = "REPRO_CEXT_CACHE"

#: loaded compiled modules, keyed by artifact name (name embeds the hash)
_modules: dict[str, object] = {}

#: number of actual cffi compilations this process performed (test hook)
build_count = 0

_cc_version: str | None = None


def cext_disabled() -> bool:
    return bool(os.environ.get(DISABLE_ENV))


def _compiler_version(cc: str) -> str:
    """First line of ``$CC --version``, memoized; 'unknown' when unprobeable."""
    global _cc_version
    if _cc_version is None:
        try:
            out = subprocess.run(
                [cc.split()[0], "--version"],
                capture_output=True, text=True, timeout=10, check=False,
            )
            _cc_version = (out.stdout or "unknown").splitlines()[0].strip()
        except Exception:
            _cc_version = "unknown"
    return _cc_version


def toolchain_fingerprint() -> str:
    """Identity of the compiler stack, baked into every artifact key.

    Raises :class:`CodegenError` when cffi is missing — without it there
    is no toolchain to fingerprint.
    """
    try:
        import cffi
    except ImportError as exc:  # pragma: no cover - image ships cffi
        raise CodegenError(f"cffi is not installed: {exc}") from exc
    cc = sysconfig.get_config_var("CC") or "cc"
    return "|".join(
        [
            f"cffi={cffi.__version__}",
            f"python={sys.version_info.major}.{sys.version_info.minor}",
            f"cc={_compiler_version(cc)}",
            f"ext={sysconfig.get_config_var('EXT_SUFFIX')}",
        ]
    )


def cache_dir() -> Path:
    """The on-disk artifact cache directory (created on first use)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        d = Path(env)
    else:
        base = os.environ.get("XDG_CACHE_HOME") or (Path.home() / ".cache")
        d = Path(base) / "repro" / "cext"
    d.mkdir(parents=True, exist_ok=True)
    return d


def module_spec(ndim: int, kinds_axes=None) -> tuple[str, str, str]:
    """(artifact name, C source, cdef declarations) for one ndim's module.

    The artifact name embeds a SHA-256 over source + declarations +
    toolchain fingerprint: any change to the symbolic spec, the emitter,
    or the compiler stack changes the name and forces a rebuild.
    """
    gen = KernelGenerator(ndim)
    source = gen.generate_c_module(kinds_axes)
    cdef = gen.c_declarations(kinds_axes)
    digest = hashlib.sha256(
        "\0".join([source, cdef, toolchain_fingerprint()]).encode()
    ).hexdigest()[:16]
    return f"_repro_cext_{ndim}d_{digest}", source, cdef


def artifact_path(name: str) -> Path:
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return cache_dir() / f"{name}{suffix}"


def _compile_once(name: str, source: str, cdef: str, tmpdir: str, flags):
    import cffi

    builder = cffi.FFI()
    builder.cdef(cdef)
    kwargs = {"extra_compile_args": list(flags)} if flags else {}
    builder.set_source(name, source, **kwargs)
    return builder.compile(tmpdir=tmpdir, verbose=False)


def _build(name: str, source: str, cdef: str, dest: Path) -> None:
    """Compile the module in a private temp dir, install atomically."""
    global build_count
    tmpdir = tempfile.mkdtemp(prefix="repro-cext-build-", dir=str(dest.parent))
    try:
        try:
            # -ffp-contract=off keeps the fused con2prim iteration
            # bit-identical to the NumPy reference (no FMA contraction).
            built = _compile_once(
                name, source, cdef, tmpdir, ("-O2", "-ffp-contract=off")
            )
        except Exception:
            # Some toolchains reject the flags; retry with defaults before
            # declaring the target unavailable.
            built = _compile_once(name, source, cdef, tmpdir, None)
        build_count += 1
        os.replace(built, dest)
    except CodegenError:
        raise
    except Exception as exc:
        raise CodegenError(f"cext build failed: {exc}") from exc
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def _import_artifact(name: str, path: Path):
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:  # pragma: no cover - loader guard
        raise CodegenError(f"cannot import compiled artifact {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load_spec(name: str, source: str, cdef: str):
    """Load (building if needed) one compiled module by its content spec."""
    module = _modules.get(name)
    if module is None:
        path = artifact_path(name)
        if not path.exists():
            _log.info("building cext kernel module %s", name)
            _build(name, source, cdef, path)
        else:
            # LRU bookkeeping for `repro cache`: a served artifact is a
            # recently-used artifact, even across processes.
            try:
                os.utime(path)
            except OSError:
                pass
        try:
            module = _import_artifact(name, path)
        except Exception as exc:
            # A truncated or corrupt cached artifact (torn copy, partial
            # disk, bit rot) fails at dlopen: evict it and rebuild once
            # instead of crashing — same graceful posture as the
            # no-toolchain fallback.
            _log.warning(
                "cached cext artifact %s unloadable (%s); evicting and "
                "rebuilding", path, exc,
            )
            try:
                path.unlink()
            except OSError:
                pass
            _build(name, source, cdef, path)
            module = _import_artifact(name, path)
        _modules[name] = module
    return module.ffi, module.lib


def load_cext_module(ndim: int, kinds_axes=None):
    """(ffi, lib) of the compiled kernel module for *ndim*.

    Builds (and disk-caches) on first use; raises
    :class:`~repro.utils.errors.CodegenError` when the target is disabled
    or no toolchain is available.
    """
    if cext_disabled():
        raise CodegenError(f"cext target disabled via {DISABLE_ENV}=1")
    return _load_spec(*module_spec(ndim, kinds_axes))


def stencil_module_spec(ndim: int) -> tuple[str, str, str]:
    """(artifact name, C source, cdef) of the fused stencil module.

    A separate artifact from the pointwise module: the two compile (and
    fail) independently, which is what makes the per-kernel fallback —
    compiled algebra with an interpreted face-flux sweep — possible.
    """
    gen = KernelGenerator(ndim)
    source = gen.generate_c_stencil_module()
    cdef = gen.c_stencil_declarations()
    digest = hashlib.sha256(
        "\0".join([source, cdef, toolchain_fingerprint()]).encode()
    ).hexdigest()[:16]
    return f"_repro_cext_st_{ndim}d_{digest}", source, cdef


def load_cext_stencil_module(ndim: int):
    """(ffi, lib) of the fused stencil module for *ndim*.

    Raises :class:`~repro.utils.errors.CodegenError` when the cext target
    is disabled outright, when only the stencil module is disabled
    (``REPRO_CEXT_STENCIL_DISABLE=1``), or when the build fails.
    """
    if cext_disabled():
        raise CodegenError(f"cext target disabled via {DISABLE_ENV}=1")
    if os.environ.get(STENCIL_DISABLE_ENV):
        raise CodegenError(
            f"fused stencil kernels disabled via {STENCIL_DISABLE_ENV}=1"
        )
    return _load_spec(*stencil_module_spec(ndim))


def clear_modules() -> None:
    """Drop in-process module handles (test hook; disk artifacts remain)."""
    _modules.clear()


def cache_report() -> dict:
    """Inventory of the on-disk artifact cache, oldest (LRU) first.

    Each entry carries name, size, and mtime; mtime doubles as the
    recency signal (:func:`_load_spec` touches artifacts it serves).
    """
    d = cache_dir()
    artifacts = []
    for p in d.iterdir():
        if not p.is_file():
            continue
        try:
            st = p.stat()
        except OSError:
            continue
        artifacts.append({"name": p.name, "bytes": st.st_size, "mtime": st.st_mtime})
    artifacts.sort(key=lambda a: (a["mtime"], a["name"]))
    return {
        "dir": str(d),
        "n_artifacts": len(artifacts),
        "total_bytes": sum(a["bytes"] for a in artifacts),
        "artifacts": artifacts,
    }


def prune_cache(max_bytes: int) -> list[str]:
    """Evict least-recently-used artifacts until the cache fits *max_bytes*.

    Returns the evicted file names (oldest first). Artifacts that vanish
    or resist deletion mid-prune are skipped, not fatal — concurrent
    builders may be racing us.
    """
    if max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    report = cache_report()
    total = report["total_bytes"]
    removed: list[str] = []
    d = Path(report["dir"])
    for entry in report["artifacts"]:
        if total <= max_bytes:
            break
        try:
            (d / entry["name"]).unlink()
        except OSError:
            continue
        total -= entry["bytes"]
        removed.append(entry["name"])
    if removed:
        _log.info(
            "pruned %d cext artifact(s) (%d bytes remain, bound %d)",
            len(removed), total, max_bytes,
        )
    return removed


def cext_available(ndim: int = 1) -> bool:
    """Whether the compiled target can actually be loaded here."""
    try:
        load_cext_module(ndim)
        return True
    except CodegenError:
        return False


# -- Python-side kernel drivers ---------------------------------------------


def _in_buf(ffi, arr, keepalive):
    arr = np.ascontiguousarray(arr, dtype=np.float64)
    keepalive.append(arr)
    return ffi.from_buffer("double*", arr)


def _out_buf(ffi, arr, ctype="double*"):
    if not arr.flags.c_contiguous:
        raise CodegenError("cext output buffers must be C-contiguous")
    return ffi.from_buffer(ctype, arr, require_writable=True)


def load_cext_kernel(kind: str, ndim: int, axis: int = 0):
    """A Python callable with the flat/SoA calling convention.

    The returned function takes ``(*input_rows, *output_rows, gamma)`` flat
    float64 arrays exactly like a ``target="flat"`` kernel, so
    :func:`repro.codegen.cache.run_flat_kernel` can drive it unchanged.
    """
    ffi, lib = load_cext_module(ndim)
    gen = KernelGenerator(ndim)
    fn = getattr(lib, gen.kernel_name(kind, axis, "cext"))
    n_in = len(gen.symbols.input_names())

    def kernel(*args):
        *arrays, gamma = args
        ins, outs = arrays[:n_in], arrays[n_in:]
        keep: list = []
        cins = [_in_buf(ffi, a, keep) for a in ins]
        couts = [_out_buf(ffi, o) for o in outs]
        fn(ins[0].size, *cins, *couts, float(gamma))
        return outs[0] if len(outs) == 1 else tuple(outs)

    return kernel


def run_con2prim_newton(
    ffi,
    lib,
    D: np.ndarray,
    S2: np.ndarray,
    tau: np.ndarray,
    p: np.ndarray,
    p_lo: np.ndarray,
    *,
    gamma: float,
    tol: float,
    p_floor: float,
    max_newton: int,
    damping: float,
):
    """Run the fused Newton kernel; returns (converged mask, max iters).

    *p* is updated in place (it must be a contiguous scratch buffer, which
    is what :func:`repro.physics.con2prim.con_to_prim` passes).
    """
    n = int(D.size)
    conv = np.zeros(n, dtype=np.uint8)
    iters = np.empty(n, dtype=np.int32)
    keep: list = []
    it_max = getattr(lib, CON2PRIM_KERNEL)(
        n,
        _in_buf(ffi, D, keep),
        _in_buf(ffi, S2, keep),
        _in_buf(ffi, tau, keep),
        _out_buf(ffi, p),
        _in_buf(ffi, p_lo, keep),
        _out_buf(ffi, conv, "unsigned char*"),
        _out_buf(ffi, iters, "int*"),
        float(gamma),
        float(tol),
        float(p_floor),
        int(max_newton),
        float(damping),
    )
    return conv.view(bool), int(it_max)


def run_face_flux(
    ffi,
    fn,
    prim: np.ndarray,
    row_offsets: np.ndarray,
    j0: int,
    n_faces: int,
    out: np.ndarray,
    *,
    axis_stride: int,
    gamma: float,
    vmax2: float,
    rho_atmo: float,
    p_atmo: float,
    recon_id: int,
    limiter_id: int,
    riemann_id: int,
) -> np.ndarray:
    """Run one fused face-flux sweep; returns the sanitize counters.

    *prim* is the full ghosted primitive array (``(nvars, ...)``,
    C-contiguous); *out* receives the fluxes as ``(nvars, n_rows,
    n_faces)``.  The returned int64 pair is ``[velocity_rescaled,
    floored]`` — the exact totals the interpreted sanitize stage counts.
    """
    if not prim.flags.c_contiguous:
        raise CodegenError("fused face_flux needs a C-contiguous prim array")
    counts = np.zeros(2, dtype=np.int64)
    keep: list = []
    fn(
        _in_buf(ffi, prim, keep),
        int(prim.strides[0] // prim.itemsize),
        int(axis_stride),
        ffi.from_buffer("long*", row_offsets),
        int(row_offsets.size),
        int(j0),
        int(n_faces),
        _out_buf(ffi, out),
        float(gamma),
        float(vmax2),
        float(rho_atmo),
        float(p_atmo),
        int(recon_id),
        int(limiter_id),
        int(riemann_id),
        _out_buf(ffi, counts, "long*"),
    )
    return counts
