"""Kernel source generation from the symbolic SRHD specification.

Three targets model the architectures of a heterogeneous node:

- ``numpy`` — the host CPU flavour: one function over a stacked state array
  ``prim[(nvars, ...)]``, vectorized whole-array expressions.
- ``flat`` — the accelerator flavour: structure-of-arrays signature (one
  flat 1-D array per variable, separate output arrays), mirroring how a
  CUDA kernel receives raw device pointers. On this substrate it still
  executes through NumPy, but it exercises the same generation path and
  data layout a GPU emitter uses.
- ``cext`` — genuinely compiled C: the same CSE'd expressions printed
  through SymPy's C99 printer into a per-cell loop with SoA pointer
  arguments, built into a shared library by :mod:`repro.codegen.cext`.
  The per-cell loop body is exactly the flat target's data layout, so the
  two differ only in who runs the loop (the C compiler vs. NumPy).

Common subexpression elimination (``sympy.cse``) is applied before
printing, exactly as production generators do to keep register pressure and
redundant transcendentals down.
"""

from __future__ import annotations

import sympy as sp
from sympy.printing.c import C99CodePrinter
from sympy.printing.numpy import NumPyPrinter

from ..utils.errors import CodegenError
from .symbols import SRHDSymbols

_TARGETS = ("numpy", "flat", "cext")

#: Runtime dispatch ids baked into the fused stencil kernels.  The ids are
#: part of the compiled ABI: they select the reconstruction family, the
#: slope limiter, and the Riemann solver *per call*, so one compiled
#: ``face_flux`` entry point per axis serves every supported scheme combo
#: (instead of compiling the full cross product into separate symbols).
STENCIL_RECON_IDS = {"pc": 0, "tvd": 1}
STENCIL_LIMITER_IDS = {"minmod": 0, "mc": 1, "vanleer": 2, "superbee": 3}
STENCIL_RIEMANN_IDS = {"llf": 0, "hll": 1, "hllc": 2}

#: Name of the fused conservative-to-primitive Newton kernel in the
#: compiled module (the one kernel not generated from the symbolic spec:
#: it is an iterative loop, not an expression list, so it is emitted from
#: a template that mirrors the vectorized Python iteration line by line).
CON2PRIM_KERNEL = "con2prim_newton_cext"

#: C template of the fused con2prim Newton loop.  Operation order matches
#: :func:`repro.physics.con2prim.con_to_prim`'s vectorized Newton phase
#: exactly (same clips, same damped step, same convergence test), so when
#: compiled without FP contraction the compiled iteration is bit-identical
#: to the NumPy one.  ``S2`` arrives precomputed, which keeps the kernel
#: ndim-independent.  Returns the largest per-cell iteration count.
_CON2PRIM_C = """\
long %(name)s(long n,
              const double* in_D, const double* in_S2, const double* in_tau,
              double* p, const double* p_lo,
              unsigned char* converged, int* iters,
              double gamma, double tol, double p_floor,
              int max_newton, double damping)
{
    long iters_max = 0;
    for (long i = 0; i < n; ++i) {
        const double D = in_D[i];
        const double S2 = in_S2[i];
        const double tau = in_tau[i];
        const double plo = p_lo[i];
        double pi = p[i];
        int conv = 0;
        int it = 0;
        for (it = 1; it <= max_newton; ++it) {
            const double Q = tau + D + pi;
            double v2 = S2 / (Q * Q);
            v2 = fmin(fmax(v2, 0.0), 1.0 - 1e-14);
            const double W = 1.0 / sqrt(1.0 - v2);
            const double rho = D / W;
            double eps = (Q * (1.0 - v2) - pi) / rho - 1.0;
            eps = fmax(eps, 0.0);
            const double f = (gamma - 1.0) * rho * eps - pi;
            if (fabs(f) <= tol * fmax(pi, p_floor)) { conv = 1; break; }
            const double epsc = fmax(eps, 1e-300);
            const double p_th = (gamma - 1.0) * rho * epsc;
            const double h = 1.0 + epsc + p_th / rho;
            double cs2 = gamma * p_th / (rho * h);
            cs2 = fmin(fmax(cs2, 0.0), 1.0 - 1e-12);
            const double dfdp = v2 * cs2 - 1.0;
            const double step = f / dfdp;
            pi = fmax(pi - damping * step, 0.5 * (pi + plo));
        }
        if (it > max_newton) it = max_newton;
        p[i] = pi;
        converged[i] = (unsigned char) conv;
        iters[i] = it;
        if (it > iters_max) iters_max = it;
    }
    return iters_max;
}
"""


#: C helpers shared by every fused stencil kernel.  Each limiter mirrors
#: the vectorized implementation in :mod:`repro.reconstruct.tvd` operation
#: by operation (same comparisons, same multiply/divide order), so that —
#: compiled with ``-ffp-contract=off`` — the per-face scalar evaluation is
#: bit-identical to the interpreted array sweep.
_STENCIL_COMMON_C = """\
static double repro_sign(double x)
{
    return (double)((x > 0.0) - (x < 0.0));
}

/* minmod(a, b) = where(a*b > 0, where(|a| < |b|, a, b), 0) */
static double slope_minmod2(double a, double b)
{
    const double t = a * b;
    double out = (fabs(a) < fabs(b)) ? a : b;
    if (!(t > 0.0)) out = 0.0;
    return out;
}

/* minmod3: all three share a sign -> smallest magnitude, else 0 */
static double slope_minmod3(double a, double b, double c)
{
    const double sa = repro_sign(a);
    const int same = (sa == repro_sign(b)) && (repro_sign(b) == repro_sign(c))
        && (a != 0.0);
    double mag = fmin(fabs(b), fabs(c));
    mag = fmin(fabs(a), mag);
    double out = sa * mag;
    if (!same) out = 0.0;
    return out;
}

/* monotonized central: minmod3(2 dm, 2 dp, (dm + dp)/2) */
static double slope_mc(double dm, double dp)
{
    return slope_minmod3(dm * 2.0, dp * 2.0, (dm + dp) * 0.5);
}

static double slope_vanleer(double dm, double dp)
{
    const double prod = dm * dp;
    const double denom = dm + dp;
    const int safe = (prod > 0.0) && (fabs(denom) > 1e-300);
    double out = (prod * 2.0) / (safe ? denom : 1.0);
    if (!safe) out = 0.0;
    return out;
}

static double slope_superbee(double dm, double dp)
{
    const double s1 = slope_minmod2(dm * 2.0, dp);
    const double s2 = slope_minmod2(dm, dp * 2.0);
    return (fabs(s1) > fabs(s2)) ? s1 : s2;
}

static double limited_slope(int limiter_id, double dm, double dp)
{
    switch (limiter_id) {
    case 0: return slope_minmod2(dm, dp);
    case 1: return slope_mc(dm, dp);
    case 2: return slope_vanleer(dm, dp);
    default: return slope_superbee(dm, dp);
    }
}
"""


def _print_expressions(names, exprs, printer):
    """CSE + print: returns (prologue lines for temps, output lines)."""
    replacements, reduced = sp.cse(exprs, symbols=sp.numbered_symbols("t_"))
    temp_lines = [
        f"    {sym} = {printer.doprint(expr)}" for sym, expr in replacements
    ]
    out_lines = [
        f"    {name}[...] = {printer.doprint(expr)}"
        for name, expr in zip(names, reduced)
    ]
    return temp_lines, out_lines


class KernelGenerator:
    """Generates Python kernel source for one SRHD configuration."""

    def __init__(self, ndim: int):
        self.symbols = SRHDSymbols(ndim)
        self.ndim = ndim

    def kernel_name(self, kind: str, axis: int, target: str) -> str:
        suffix = f"_ax{axis}" if kind in ("flux", "char_speeds") else ""
        return f"{kind}{suffix}_{self.ndim}d_{target}"

    def generate(self, kind: str, axis: int = 0, target: str = "numpy") -> str:
        """Return the complete source of one kernel function.

        For the ``numpy`` and ``flat`` targets this is Python source; for
        ``cext`` it is the C function body that
        :func:`repro.codegen.cext.load_cext_module` compiles.
        """
        if target not in _TARGETS:
            raise CodegenError(f"unknown target {target!r}; choose from {_TARGETS}")
        if target == "cext":
            return self.generate_c(kind, axis)
        sym = self.symbols
        exprs = sym.expressions(kind, axis)
        in_names = sym.input_names()
        out_names = sym.output_names(kind, axis)
        printer = NumPyPrinter()
        name = self.kernel_name(kind, axis, target)

        lines = [
            "import numpy",
            "",
        ]
        if target == "numpy":
            # prim-array signature: unpack rows, write into an out array.
            lines.append(f"def {name}(prim, out, gamma):")
            lines.append(f'    """Generated {kind} kernel (axis={axis}, '
                         f'{self.ndim}D, numpy target)."""')
            for i, var in enumerate(in_names):
                lines.append(f"    {var} = prim[{i}]")
            out_rows = [f"out[{i}]" for i in range(len(out_names))]
            temp_lines, out_lines = _print_expressions(out_rows, exprs, printer)
            lines.extend(temp_lines)
            lines.extend(out_lines)
            lines.append("    return out")
        else:
            # SoA flat signature: one pointer per variable, CUDA-style.
            args = in_names + [f"out_{n}" for n in out_names] + ["gamma"]
            lines.append(f"def {name}({', '.join(args)}):")
            lines.append(f'    """Generated {kind} kernel (axis={axis}, '
                         f'{self.ndim}D, flat/SoA target)."""')
            out_rows = [f"out_{n}" for n in out_names]
            temp_lines, out_lines = _print_expressions(out_rows, exprs, printer)
            lines.extend(temp_lines)
            lines.extend(out_lines)
            ret = ", ".join(f"out_{n}" for n in out_names)
            lines.append(f"    return {ret}")
        return "\n".join(lines) + "\n"

    def default_kinds_axes(self) -> list[tuple[str, int]]:
        """Every (kind, axis) pair a solver for this ndim needs."""
        kinds_axes = [("prim_to_con", 0)]
        for ax in range(self.ndim):
            kinds_axes.append(("flux", ax))
            kinds_axes.append(("char_speeds", ax))
        return kinds_axes

    def generate_module(self, kinds_axes=None, target: str = "numpy") -> str:
        """Source for a whole kernel module (all kinds, all axes)."""
        if kinds_axes is None:
            kinds_axes = self.default_kinds_axes()
        if target == "cext":
            return self.generate_c_module(kinds_axes)
        header = (
            '"""Auto-generated SRHD kernels — do not edit.\n\n'
            f"ndim={self.ndim}, target={target}. Generated by "
            'repro.codegen.KernelGenerator."""\n'
        )
        bodies = [self.generate(kind, axis, target) for kind, axis in kinds_axes]
        return header + "\n".join(bodies)

    # -- C target ------------------------------------------------------------

    def c_signature(self, kind: str, axis: int = 0) -> str:
        """The C declaration of one generated kernel (cffi ``cdef`` form)."""
        sym = self.symbols
        name = self.kernel_name(kind, axis, "cext")
        args = ["long n"]
        args += [f"const double* in_{v}" for v in sym.input_names()]
        args += [f"double* out_{o}" for o in sym.output_names(kind, axis)]
        args.append("double gamma")
        return f"void {name}({', '.join(args)})"

    def generate_c(self, kind: str, axis: int = 0) -> str:
        """C source of one kernel: a per-cell loop over SoA pointers."""
        sym = self.symbols
        exprs = sym.expressions(kind, axis)
        out_names = sym.output_names(kind, axis)
        printer = C99CodePrinter()
        replacements, reduced = sp.cse(exprs, symbols=sp.numbered_symbols("t_"))
        lines = [
            self.c_signature(kind, axis),
            "{",
            "    for (long i = 0; i < n; ++i) {",
        ]
        for var in sym.input_names():
            lines.append(f"        const double {var} = in_{var}[i];")
        for tmp, expr in replacements:
            lines.append(f"        const double {tmp} = {printer.doprint(expr)};")
        for out, expr in zip(out_names, reduced):
            lines.append(f"        out_{out}[i] = {printer.doprint(expr)};")
        lines += ["    }", "}"]
        return "\n".join(lines) + "\n"

    def con2prim_c_signature(self) -> str:
        """C declaration of the fused con2prim Newton kernel."""
        return (
            f"long {CON2PRIM_KERNEL}(long n, const double* in_D, "
            "const double* in_S2, const double* in_tau, double* p, "
            "const double* p_lo, unsigned char* converged, int* iters, "
            "double gamma, double tol, double p_floor, int max_newton, "
            "double damping)"
        )

    def generate_c_con2prim(self) -> str:
        """C source of the fused con2prim Newton kernel (template)."""
        return _CON2PRIM_C % {"name": CON2PRIM_KERNEL}

    def generate_c_module(self, kinds_axes=None) -> str:
        """Complete C source of the compiled-kernel module for this ndim."""
        if kinds_axes is None:
            kinds_axes = self.default_kinds_axes()
        header = (
            "/* Auto-generated SRHD kernels -- do not edit.\n"
            f" * ndim={self.ndim}, target=cext. "
            "Generated by repro.codegen.KernelGenerator. */\n"
            "#include <math.h>\n"
        )
        bodies = [self.generate_c(kind, axis) for kind, axis in kinds_axes]
        bodies.append(self.generate_c_con2prim())
        return header + "\n" + "\n".join(bodies)

    def c_declarations(self, kinds_axes=None) -> str:
        """cffi ``cdef`` declarations matching :meth:`generate_c_module`."""
        if kinds_axes is None:
            kinds_axes = self.default_kinds_axes()
        decls = [self.c_signature(kind, axis) + ";" for kind, axis in kinds_axes]
        decls.append(self.con2prim_c_signature() + ";")
        return "\n".join(decls) + "\n"

    # -- fused stencil kernels (C target only) -------------------------------
    #
    # The stencil module compiles the whole face-flux stage — slope-limited
    # reconstruction, face-state sanitization, primitive->conserved
    # conversion, the physical fluxes and characteristic speeds, and the
    # LLF/HLL/HLLC combine — into one per-axis sweep.  The algebraic pieces
    # reuse the same CSE'd SymPy expressions as the pointwise kernels (as
    # per-face scalar helpers); the handwritten pieces mirror the vectorized
    # Python implementations operation by operation, so with
    # ``-ffp-contract=off`` the fused sweep is bit-identical to the
    # interpreted pipeline.

    @property
    def nvars(self) -> int:
        return self.ndim + 2

    def cell_kernel_name(self, kind: str, axis: int = 0) -> str:
        suffix = f"_ax{axis}" if kind in ("flux", "char_speeds") else ""
        short = {"prim_to_con": "p2c", "flux": "flux", "char_speeds": "char"}[kind]
        return f"cell_{short}{suffix}_{self.ndim}d"

    def stencil_kernel_name(self, axis: int) -> str:
        return f"face_flux_ax{axis}_{self.ndim}d_cext"

    def generate_c_cell(self, kind: str, axis: int = 0) -> str:
        """One CSE'd kernel as a per-face scalar helper: ``q[] -> u[]``.

        Same expressions and same CSE as :meth:`generate_c`, just evaluated
        for a single state vector instead of a loop over SoA rows — the
        per-element arithmetic is identical, which is what keeps the fused
        sweep bitwise-equal to the pointwise kernels.
        """
        sym = self.symbols
        exprs = sym.expressions(kind, axis)
        printer = C99CodePrinter()
        replacements, reduced = sp.cse(exprs, symbols=sp.numbered_symbols("t_"))
        lines = [
            f"static void {self.cell_kernel_name(kind, axis)}"
            "(const double* q, double* u, double gamma)",
            "{",
        ]
        for i, var in enumerate(sym.input_names()):
            lines.append(f"    const double {var} = q[{i}];")
        for tmp, expr in replacements:
            lines.append(f"    const double {tmp} = {printer.doprint(expr)};")
        for i, expr in enumerate(reduced):
            lines.append(f"    u[{i}] = {printer.doprint(expr)};")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def generate_c_sanitize(self) -> str:
        """Face-state repair, op-for-op equal to
        :meth:`repro.core.pipeline.HydroPipeline.sanitize_face_states`.

        ``counts[0]`` accumulates velocity rescales, ``counts[1]`` floor
        applications (rho and p counted separately, *before* flooring) —
        the same totals the interpreted path feeds its metrics counters.
        """
        nv = self.nvars
        lines = [
            f"static void sanitize_face_{self.ndim}d(double* q, double vmax2,",
            "    double rho_atmo, double p_atmo, long* counts)",
            "{",
            "    double v2 = 0.0;",
        ]
        for ax in range(self.ndim):
            lines.append(f"    v2 += q[{1 + ax}] * q[{1 + ax}];")
        lines.append("    if (v2 > vmax2) {")
        lines.append("        const double scale = sqrt(vmax2 / v2);")
        for ax in range(self.ndim):
            lines.append(f"        q[{1 + ax}] *= scale;")
        lines += [
            "        counts[0] += 1;",
            "    }",
            "    if (q[0] < rho_atmo) counts[1] += 1;",
            f"    if (q[{nv - 1}] < p_atmo) counts[1] += 1;",
            "    q[0] = fmax(q[0], rho_atmo);",
            f"    q[{nv - 1}] = fmax(q[{nv - 1}], p_atmo);",
            "}",
        ]
        return "\n".join(lines) + "\n"

    def generate_c_combines(self) -> str:
        """The three Riemann combines as per-face helpers.

        Each mirrors the in-place NumPy implementation in
        :mod:`repro.riemann` exactly (clips, degenerate-fan guards, the
        Citardauq contact-speed form, supersonic sector selection), so the
        fused sweep reproduces the interpreted fluxes bitwise.
        """
        nd, nv, tau = self.ndim, self.nvars, self.nvars - 1
        llf = f"""\
static void combine_llf_{nd}d(double sL, double sR, const double* uL,
    const double* uR, const double* FLv, const double* FRv, double* Ff)
{{
    double smax = fmax(fabs(sL), fabs(sR));
    smax *= 0.5;
    for (int v = 0; v < {nv}; ++v)
        Ff[v] = (FLv[v] + FRv[v]) * 0.5 - (uR[v] - uL[v]) * smax;
}}
"""
        hll = f"""\
static void combine_hll_{nd}d(double sL, double sR, const double* uL,
    const double* uR, const double* FLv, const double* FRv, double* Ff)
{{
    const double sLc = fmin(sL, 0.0);
    const double sRc = fmax(sR, 0.0);
    const double denom = sRc - sLc;
    const int ok = denom > 1e-300;
    const double safe = ok ? denom : 1.0;
    const double ss = sLc * sRc;
    for (int v = 0; v < {nv}; ++v) {{
        double t = FLv[v] * sRc - FRv[v] * sLc;
        t += (uR[v] - uL[v]) * ss;
        t /= safe;
        Ff[v] = ok ? t : FLv[v];
    }}
}}
"""
        side = f"""\
static void hllc_side_{nd}d(int Sx, double s, double lam_star, double p_star,
    double E, double FE, const double* qp, const double* u,
    const double* FF, double* Fs)
{{
    const double v = qp[Sx];
    const double p = qp[{nv - 1}];
    const double smv = s - v;
    const double smlam = s - lam_star;
    const double factor = smv / smlam;
    const double D_star = u[0] * factor;
    double E_star = E * smv;
    E_star += p_star * lam_star;
    E_star -= p * v;
    E_star /= smlam;
    double Sx_star = u[Sx] * smv;
    Sx_star += p_star;
    Sx_star -= p;
    Sx_star /= smlam;
    Fs[0] = FF[0] + (D_star - u[0]) * s;
    for (int i = 1; i <= {nd}; ++i) {{
        double t;
        if (i == Sx) {{
            t = Sx_star - u[Sx];
        }} else {{
            t = u[i] * factor;
            t -= u[i];
        }}
        t *= s;
        Fs[i] = FF[i] + t;
    }}
    double FE_star = FE + (E_star - E) * s;
    Fs[{tau}] = FE_star - Fs[0];
}}
"""
        hllc = f"""\
static void combine_hllc_{nd}d(int Sx, double sL, double sR,
    const double* qLp, const double* qRp,
    const double* uL, const double* uR,
    const double* FLv, const double* FRv, double* Ff)
{{
    const double sLc = fmin(sL, -1e-12);
    const double sRc = fmax(sR, 1e-12);
    const double dS = sRc - sLc;
    const double EL = uL[{tau}] + uL[0];
    const double ER = uR[{tau}] + uR[0];
    const double FEL = FLv[{tau}] + FLv[0];
    const double FER = FRv[{tau}] + FRv[0];
    double S_hll = sRc * uR[Sx] - sLc * uL[Sx];
    S_hll += FLv[Sx];
    S_hll -= FRv[Sx];
    S_hll /= dS;
    double E_hll = sRc * ER - sLc * EL;
    E_hll += FEL;
    E_hll -= FER;
    E_hll /= dS;
    double FS_hll = sRc * FLv[Sx] - sLc * FRv[Sx];
    FS_hll += (sLc * sRc) * (uR[Sx] - uL[Sx]);
    FS_hll /= dS;
    double FE_hll = sRc * FEL - sLc * FER;
    FE_hll += (sLc * sRc) * (ER - EL);
    FE_hll /= dS;
    /* contact speed: Citardauq root of FE lam^2 - (E + FS) lam + S = 0 */
    const double qb = -(E_hll + FS_hll);
    double disc = qb * qb - (FE_hll * 4.0) * S_hll;
    disc = fmax(disc, 0.0);
    disc = sqrt(disc);
    const double den = -qb + disc;
    const int ok = fabs(den) > 1e-12;
    double lam_star = (S_hll * 2.0) / (ok ? den : 1.0);
    if (!ok) lam_star = 0.0;
    lam_star = fmin(fmax(lam_star, sLc), sRc);
    double p_star = -FE_hll;
    p_star *= lam_star;
    p_star += FS_hll;
    double fluxL[{nv}];
    double fluxR[{nv}];
    hllc_side_{nd}d(Sx, sLc, lam_star, p_star, EL, FEL, qLp, uL, FLv, fluxL);
    hllc_side_{nd}d(Sx, sRc, lam_star, p_star, ER, FER, qRp, uR, FRv, fluxR);
    const int left = lam_star >= 0.0;
    for (int v = 0; v < {nv}; ++v)
        Ff[v] = left ? fluxL[v] : fluxR[v];
    if (sL >= 0.0)
        for (int v = 0; v < {nv}; ++v) Ff[v] = FLv[v];
    if (sR <= 0.0)
        for (int v = 0; v < {nv}; ++v) Ff[v] = FRv[v];
}}
"""
        return "\n".join([llf, hll, side, hllc])

    def stencil_c_signature(self, axis: int) -> str:
        """cffi ``cdef`` declaration of one fused face-flux sweep."""
        return (
            f"void {self.stencil_kernel_name(axis)}(const double* prim, "
            "long var_stride, long axis_stride, const long* row_offsets, "
            "long n_rows, long j0, long n_faces, double* F, double gamma, "
            "double vmax2, double rho_atmo, double p_atmo, int recon_id, "
            "int limiter_id, int riemann_id, long* counts)"
        )

    def generate_c_face_flux(self, axis: int) -> str:
        """The fused per-axis sweep: reconstruct -> sanitize -> Riemann.

        Walks cache-resident rows (``row_offsets`` enumerates the ghosted
        transverse extent in C order, ``axis_stride`` steps along the
        working axis) and, per face, reconstructs the left/right states
        from the 2- or 4-cell stencil, sanitizes them, and evaluates the
        selected Riemann flux — no interface-sized temporaries anywhere.
        ``F`` is (nvars, n_rows, n_faces) C-contiguous.
        """
        nd, nv = self.ndim, self.nvars
        name = self.stencil_kernel_name(axis)
        p2c = self.cell_kernel_name("prim_to_con")
        cflux = self.cell_kernel_name("flux", axis)
        cchar = self.cell_kernel_name("char_speeds", axis)
        return f"""\
void {name}(const double* prim,
    long var_stride, long axis_stride, const long* row_offsets,
    long n_rows, long j0, long n_faces, double* F, double gamma,
    double vmax2, double rho_atmo, double p_atmo, int recon_id,
    int limiter_id, int riemann_id, long* counts)
{{
    const long fstride = n_rows * n_faces;
    for (long r = 0; r < n_rows; ++r) {{
        const double* row = prim + row_offsets[r];
        double* Frow = F + r * n_faces;
        for (long k = 0; k < n_faces; ++k) {{
            const double* cell = row + (j0 + k) * axis_stride;
            double qL[{nv}];
            double qR[{nv}];
            if (recon_id == 0) {{
                /* piecewise constant: faces copy the adjacent cells */
                for (int v = 0; v < {nv}; ++v) {{
                    const double* cv = cell + (long) v * var_stride;
                    qL[v] = cv[0];
                    qR[v] = cv[axis_stride];
                }}
            }} else {{
                /* TVD: limited slopes from the 4-cell stencil */
                for (int v = 0; v < {nv}; ++v) {{
                    const double* cv = cell + (long) v * var_stride;
                    const double c0 = cv[0];
                    const double c1 = cv[axis_stride];
                    const double dm = c0 - cv[-axis_stride];
                    const double d0 = c1 - c0;
                    const double dp = cv[2 * axis_stride] - c1;
                    qL[v] = c0 + limited_slope(limiter_id, dm, d0) * 0.5;
                    qR[v] = c1 - limited_slope(limiter_id, d0, dp) * 0.5;
                }}
            }}
            sanitize_face_{nd}d(qL, vmax2, rho_atmo, p_atmo, counts);
            sanitize_face_{nd}d(qR, vmax2, rho_atmo, p_atmo, counts);
            double uL[{nv}];
            double uR[{nv}];
            double FLv[{nv}];
            double FRv[{nv}];
            double lamL[2];
            double lamR[2];
            {p2c}(qL, uL, gamma);
            {p2c}(qR, uR, gamma);
            {cflux}(qL, FLv, gamma);
            {cflux}(qR, FRv, gamma);
            {cchar}(qL, lamL, gamma);
            {cchar}(qR, lamR, gamma);
            const double sL = fmin(lamL[0], lamR[0]);
            const double sR = fmax(lamL[1], lamR[1]);
            double Ff[{nv}];
            if (riemann_id == 0)
                combine_llf_{nd}d(sL, sR, uL, uR, FLv, FRv, Ff);
            else if (riemann_id == 1)
                combine_hll_{nd}d(sL, sR, uL, uR, FLv, FRv, Ff);
            else
                combine_hllc_{nd}d({1 + axis}, sL, sR, qL, qR, uL, uR,
                                   FLv, FRv, Ff);
            for (int v = 0; v < {nv}; ++v)
                Frow[(long) v * fstride + k] = Ff[v];
        }}
    }}
}}
"""

    def generate_c_stencil_module(self) -> str:
        """Complete C source of the fused stencil module for this ndim."""
        header = (
            "/* Auto-generated SRHD fused stencil kernels -- do not edit.\n"
            f" * ndim={self.ndim}, target=cext. "
            "Generated by repro.codegen.KernelGenerator. */\n"
            "#include <math.h>\n"
        )
        parts = [header, _STENCIL_COMMON_C, self.generate_c_sanitize()]
        parts.append(self.generate_c_cell("prim_to_con"))
        for ax in range(self.ndim):
            parts.append(self.generate_c_cell("flux", ax))
            parts.append(self.generate_c_cell("char_speeds", ax))
        parts.append(self.generate_c_combines())
        for ax in range(self.ndim):
            parts.append(self.generate_c_face_flux(ax))
        return "\n".join(parts)

    def c_stencil_declarations(self) -> str:
        """cffi ``cdef`` declarations matching
        :meth:`generate_c_stencil_module` (entry points only)."""
        decls = [self.stencil_c_signature(ax) + ";" for ax in range(self.ndim)]
        return "\n".join(decls) + "\n"
