"""Kernel source generation from the symbolic SRHD specification.

Three targets model the architectures of a heterogeneous node:

- ``numpy`` — the host CPU flavour: one function over a stacked state array
  ``prim[(nvars, ...)]``, vectorized whole-array expressions.
- ``flat`` — the accelerator flavour: structure-of-arrays signature (one
  flat 1-D array per variable, separate output arrays), mirroring how a
  CUDA kernel receives raw device pointers. On this substrate it still
  executes through NumPy, but it exercises the same generation path and
  data layout a GPU emitter uses.
- ``cext`` — genuinely compiled C: the same CSE'd expressions printed
  through SymPy's C99 printer into a per-cell loop with SoA pointer
  arguments, built into a shared library by :mod:`repro.codegen.cext`.
  The per-cell loop body is exactly the flat target's data layout, so the
  two differ only in who runs the loop (the C compiler vs. NumPy).

Common subexpression elimination (``sympy.cse``) is applied before
printing, exactly as production generators do to keep register pressure and
redundant transcendentals down.
"""

from __future__ import annotations

import sympy as sp
from sympy.printing.c import C99CodePrinter
from sympy.printing.numpy import NumPyPrinter

from ..utils.errors import CodegenError
from .symbols import SRHDSymbols

_TARGETS = ("numpy", "flat", "cext")

#: Name of the fused conservative-to-primitive Newton kernel in the
#: compiled module (the one kernel not generated from the symbolic spec:
#: it is an iterative loop, not an expression list, so it is emitted from
#: a template that mirrors the vectorized Python iteration line by line).
CON2PRIM_KERNEL = "con2prim_newton_cext"

#: C template of the fused con2prim Newton loop.  Operation order matches
#: :func:`repro.physics.con2prim.con_to_prim`'s vectorized Newton phase
#: exactly (same clips, same damped step, same convergence test), so when
#: compiled without FP contraction the compiled iteration is bit-identical
#: to the NumPy one.  ``S2`` arrives precomputed, which keeps the kernel
#: ndim-independent.  Returns the largest per-cell iteration count.
_CON2PRIM_C = """\
long %(name)s(long n,
              const double* in_D, const double* in_S2, const double* in_tau,
              double* p, const double* p_lo,
              unsigned char* converged, int* iters,
              double gamma, double tol, double p_floor,
              int max_newton, double damping)
{
    long iters_max = 0;
    for (long i = 0; i < n; ++i) {
        const double D = in_D[i];
        const double S2 = in_S2[i];
        const double tau = in_tau[i];
        const double plo = p_lo[i];
        double pi = p[i];
        int conv = 0;
        int it = 0;
        for (it = 1; it <= max_newton; ++it) {
            const double Q = tau + D + pi;
            double v2 = S2 / (Q * Q);
            v2 = fmin(fmax(v2, 0.0), 1.0 - 1e-14);
            const double W = 1.0 / sqrt(1.0 - v2);
            const double rho = D / W;
            double eps = (Q * (1.0 - v2) - pi) / rho - 1.0;
            eps = fmax(eps, 0.0);
            const double f = (gamma - 1.0) * rho * eps - pi;
            if (fabs(f) <= tol * fmax(pi, p_floor)) { conv = 1; break; }
            const double epsc = fmax(eps, 1e-300);
            const double p_th = (gamma - 1.0) * rho * epsc;
            const double h = 1.0 + epsc + p_th / rho;
            double cs2 = gamma * p_th / (rho * h);
            cs2 = fmin(fmax(cs2, 0.0), 1.0 - 1e-12);
            const double dfdp = v2 * cs2 - 1.0;
            const double step = f / dfdp;
            pi = fmax(pi - damping * step, 0.5 * (pi + plo));
        }
        if (it > max_newton) it = max_newton;
        p[i] = pi;
        converged[i] = (unsigned char) conv;
        iters[i] = it;
        if (it > iters_max) iters_max = it;
    }
    return iters_max;
}
"""


def _print_expressions(names, exprs, printer):
    """CSE + print: returns (prologue lines for temps, output lines)."""
    replacements, reduced = sp.cse(exprs, symbols=sp.numbered_symbols("t_"))
    temp_lines = [
        f"    {sym} = {printer.doprint(expr)}" for sym, expr in replacements
    ]
    out_lines = [
        f"    {name}[...] = {printer.doprint(expr)}"
        for name, expr in zip(names, reduced)
    ]
    return temp_lines, out_lines


class KernelGenerator:
    """Generates Python kernel source for one SRHD configuration."""

    def __init__(self, ndim: int):
        self.symbols = SRHDSymbols(ndim)
        self.ndim = ndim

    def kernel_name(self, kind: str, axis: int, target: str) -> str:
        suffix = f"_ax{axis}" if kind in ("flux", "char_speeds") else ""
        return f"{kind}{suffix}_{self.ndim}d_{target}"

    def generate(self, kind: str, axis: int = 0, target: str = "numpy") -> str:
        """Return the complete source of one kernel function.

        For the ``numpy`` and ``flat`` targets this is Python source; for
        ``cext`` it is the C function body that
        :func:`repro.codegen.cext.load_cext_module` compiles.
        """
        if target not in _TARGETS:
            raise CodegenError(f"unknown target {target!r}; choose from {_TARGETS}")
        if target == "cext":
            return self.generate_c(kind, axis)
        sym = self.symbols
        exprs = sym.expressions(kind, axis)
        in_names = sym.input_names()
        out_names = sym.output_names(kind, axis)
        printer = NumPyPrinter()
        name = self.kernel_name(kind, axis, target)

        lines = [
            "import numpy",
            "",
        ]
        if target == "numpy":
            # prim-array signature: unpack rows, write into an out array.
            lines.append(f"def {name}(prim, out, gamma):")
            lines.append(f'    """Generated {kind} kernel (axis={axis}, '
                         f'{self.ndim}D, numpy target)."""')
            for i, var in enumerate(in_names):
                lines.append(f"    {var} = prim[{i}]")
            out_rows = [f"out[{i}]" for i in range(len(out_names))]
            temp_lines, out_lines = _print_expressions(out_rows, exprs, printer)
            lines.extend(temp_lines)
            lines.extend(out_lines)
            lines.append("    return out")
        else:
            # SoA flat signature: one pointer per variable, CUDA-style.
            args = in_names + [f"out_{n}" for n in out_names] + ["gamma"]
            lines.append(f"def {name}({', '.join(args)}):")
            lines.append(f'    """Generated {kind} kernel (axis={axis}, '
                         f'{self.ndim}D, flat/SoA target)."""')
            out_rows = [f"out_{n}" for n in out_names]
            temp_lines, out_lines = _print_expressions(out_rows, exprs, printer)
            lines.extend(temp_lines)
            lines.extend(out_lines)
            ret = ", ".join(f"out_{n}" for n in out_names)
            lines.append(f"    return {ret}")
        return "\n".join(lines) + "\n"

    def default_kinds_axes(self) -> list[tuple[str, int]]:
        """Every (kind, axis) pair a solver for this ndim needs."""
        kinds_axes = [("prim_to_con", 0)]
        for ax in range(self.ndim):
            kinds_axes.append(("flux", ax))
            kinds_axes.append(("char_speeds", ax))
        return kinds_axes

    def generate_module(self, kinds_axes=None, target: str = "numpy") -> str:
        """Source for a whole kernel module (all kinds, all axes)."""
        if kinds_axes is None:
            kinds_axes = self.default_kinds_axes()
        if target == "cext":
            return self.generate_c_module(kinds_axes)
        header = (
            '"""Auto-generated SRHD kernels — do not edit.\n\n'
            f"ndim={self.ndim}, target={target}. Generated by "
            'repro.codegen.KernelGenerator."""\n'
        )
        bodies = [self.generate(kind, axis, target) for kind, axis in kinds_axes]
        return header + "\n".join(bodies)

    # -- C target ------------------------------------------------------------

    def c_signature(self, kind: str, axis: int = 0) -> str:
        """The C declaration of one generated kernel (cffi ``cdef`` form)."""
        sym = self.symbols
        name = self.kernel_name(kind, axis, "cext")
        args = ["long n"]
        args += [f"const double* in_{v}" for v in sym.input_names()]
        args += [f"double* out_{o}" for o in sym.output_names(kind, axis)]
        args.append("double gamma")
        return f"void {name}({', '.join(args)})"

    def generate_c(self, kind: str, axis: int = 0) -> str:
        """C source of one kernel: a per-cell loop over SoA pointers."""
        sym = self.symbols
        exprs = sym.expressions(kind, axis)
        out_names = sym.output_names(kind, axis)
        printer = C99CodePrinter()
        replacements, reduced = sp.cse(exprs, symbols=sp.numbered_symbols("t_"))
        lines = [
            self.c_signature(kind, axis),
            "{",
            "    for (long i = 0; i < n; ++i) {",
        ]
        for var in sym.input_names():
            lines.append(f"        const double {var} = in_{var}[i];")
        for tmp, expr in replacements:
            lines.append(f"        const double {tmp} = {printer.doprint(expr)};")
        for out, expr in zip(out_names, reduced):
            lines.append(f"        out_{out}[i] = {printer.doprint(expr)};")
        lines += ["    }", "}"]
        return "\n".join(lines) + "\n"

    def con2prim_c_signature(self) -> str:
        """C declaration of the fused con2prim Newton kernel."""
        return (
            f"long {CON2PRIM_KERNEL}(long n, const double* in_D, "
            "const double* in_S2, const double* in_tau, double* p, "
            "const double* p_lo, unsigned char* converged, int* iters, "
            "double gamma, double tol, double p_floor, int max_newton, "
            "double damping)"
        )

    def generate_c_con2prim(self) -> str:
        """C source of the fused con2prim Newton kernel (template)."""
        return _CON2PRIM_C % {"name": CON2PRIM_KERNEL}

    def generate_c_module(self, kinds_axes=None) -> str:
        """Complete C source of the compiled-kernel module for this ndim."""
        if kinds_axes is None:
            kinds_axes = self.default_kinds_axes()
        header = (
            "/* Auto-generated SRHD kernels -- do not edit.\n"
            f" * ndim={self.ndim}, target=cext. "
            "Generated by repro.codegen.KernelGenerator. */\n"
            "#include <math.h>\n"
        )
        bodies = [self.generate_c(kind, axis) for kind, axis in kinds_axes]
        bodies.append(self.generate_c_con2prim())
        return header + "\n" + "\n".join(bodies)

    def c_declarations(self, kinds_axes=None) -> str:
        """cffi ``cdef`` declarations matching :meth:`generate_c_module`."""
        if kinds_axes is None:
            kinds_axes = self.default_kinds_axes()
        decls = [self.c_signature(kind, axis) + ";" for kind, axis in kinds_axes]
        decls.append(self.con2prim_c_signature() + ";")
        return "\n".join(decls) + "\n"
