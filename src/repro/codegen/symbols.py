"""Symbolic specification of the SRHD equations (SymPy).

The physics is written once, symbolically; architecture-specific kernels are
*generated* from these expressions — the code-generation approach of the
authors' framework line (symbolic physics module + per-target emitters).

All expressions assume the ideal-gas closure ``eps = p / ((gamma - 1) rho)``
so the generated kernels are closed-form (no EOS callbacks), matching how
production generators specialize kernels per EOS.
"""

from __future__ import annotations

import sympy as sp

from ..utils.errors import CodegenError


class SRHDSymbols:
    """Symbol table and derived expressions for ndim-velocity SRHD."""

    def __init__(self, ndim: int):
        if ndim not in (1, 2, 3):
            raise CodegenError(f"ndim must be 1, 2, or 3, got {ndim}")
        self.ndim = ndim
        self.rho = sp.Symbol("rho", positive=True)
        self.p = sp.Symbol("p", positive=True)
        self.gamma = sp.Symbol("gamma", positive=True)
        self.v = [sp.Symbol(f"v{i}", real=True) for i in range(ndim)]

    # -- thermodynamics (ideal gas) -----------------------------------------

    @property
    def eps(self) -> sp.Expr:
        return self.p / ((self.gamma - 1) * self.rho)

    @property
    def enthalpy(self) -> sp.Expr:
        return 1 + self.eps + self.p / self.rho

    @property
    def sound_speed_sq(self) -> sp.Expr:
        return self.gamma * self.p / (self.rho * self.enthalpy)

    # -- kinematics ------------------------------------------------------------

    @property
    def v2(self) -> sp.Expr:
        return sum(vi**2 for vi in self.v)

    @property
    def lorentz(self) -> sp.Expr:
        return 1 / sp.sqrt(1 - self.v2)

    # -- conserved variables -----------------------------------------------------

    def conserved(self) -> list[sp.Expr]:
        """[D, S_0.., tau] as expressions in the primitives."""
        W = self.lorentz
        rhohW2 = self.rho * self.enthalpy * W**2
        D = self.rho * W
        S = [rhohW2 * vi for vi in self.v]
        tau = rhohW2 - self.p - D
        return [D, *S, tau]

    def flux(self, axis: int) -> list[sp.Expr]:
        """Flux vector along *axis* as expressions in the primitives."""
        if not 0 <= axis < self.ndim:
            raise CodegenError(f"axis {axis} out of range for ndim={self.ndim}")
        U = self.conserved()
        vk = self.v[axis]
        D, S, tau = U[0], U[1 : 1 + self.ndim], U[-1]
        F = [D * vk]
        for i, Si in enumerate(S):
            F.append(Si * vk + (self.p if i == axis else 0))
        F.append(S[axis] - D * vk)
        return F

    def char_speeds(self, axis: int) -> tuple[sp.Expr, sp.Expr]:
        """(lambda_minus, lambda_plus) along *axis*."""
        if not 0 <= axis < self.ndim:
            raise CodegenError(f"axis {axis} out of range for ndim={self.ndim}")
        vk = self.v[axis]
        cs2 = self.sound_speed_sq
        v2 = self.v2
        disc = (1 - v2) * (1 - vk**2 - (v2 - vk**2) * cs2)
        root = sp.sqrt(cs2) * sp.sqrt(disc)
        denom = 1 - v2 * cs2
        lam_m = (vk * (1 - cs2) - root) / denom
        lam_p = (vk * (1 - cs2) + root) / denom
        return lam_m, lam_p

    def input_names(self) -> list[str]:
        """Primitive variable names in state-vector order."""
        return ["rho", *[f"v{i}" for i in range(self.ndim)], "p"]

    def output_names(self, kind: str, axis: int = 0) -> list[str]:
        """Generated-output names for a kernel kind."""
        cons = ["D", *[f"S{i}" for i in range(self.ndim)], "tau"]
        if kind == "prim_to_con":
            return cons
        if kind == "flux":
            return [f"F{axis}_{name}" for name in cons]
        if kind == "char_speeds":
            return ["lam_minus", "lam_plus"]
        raise CodegenError(f"unknown kernel kind {kind!r}")

    def expressions(self, kind: str, axis: int = 0) -> list[sp.Expr]:
        """The expression list for a kernel kind (what the emitters consume)."""
        if kind == "prim_to_con":
            return self.conserved()
        if kind == "flux":
            return self.flux(axis)
        if kind == "char_speeds":
            return list(self.char_speeds(axis))
        raise CodegenError(f"unknown kernel kind {kind!r}")
