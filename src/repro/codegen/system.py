"""Drop-in SRHD systems backed by generated kernels.

:class:`GeneratedSRHDSystem` has the same interface as
:class:`~repro.physics.srhd.SRHDSystem` but evaluates ``prim_to_con``,
``flux``, and ``char_speeds`` through the SymPy-generated kernels — i.e.
the generated code runs in the *production solver path*, not just in
micro-benchmarks.  It serves both interpreted targets: ``numpy`` (stacked
arrays) and ``flat`` (SoA marshalling, the accelerator rehearsal path).

:class:`CompiledSRHDSystem` is the same idea one step further: the
kernels are the cffi-compiled C module of :mod:`repro.codegen.cext`,
including the fused conservative-to-primitive Newton loop, which
:func:`~repro.physics.con2prim.con_to_prim` picks up through the
``c2p_newton`` hook.

:func:`make_kernel_system` is the selection point the solver stack calls
(via ``SolverConfig.kernel_target``): it resolves a target name to a
system, falling back from ``cext`` to ``flat`` with a logged warning when
no C toolchain is available.
"""

from __future__ import annotations

import numpy as np

from ..core.workspace import scratch_buf
from ..eos.ideal import IdealGasEOS
from ..physics.srhd import SRHDSystem
from ..utils.errors import CodegenError
from ..utils.logging import get_logger
from .cache import load_kernel, run_flat_kernel
from .generator import (
    STENCIL_LIMITER_IDS,
    STENCIL_RECON_IDS,
    STENCIL_RIEMANN_IDS,
    KernelGenerator,
)

_log = get_logger("codegen.system")


def stencil_scheme_ids(reconstruction, riemann) -> tuple[int, int, int] | None:
    """Dispatch ids ``(recon, limiter, riemann)`` for a scheme combo.

    Returns ``None`` when the combo has no compiled form (higher-order
    reconstructions, exotic solvers) — the pipeline then keeps the
    interpreted face-flux path for that scheme only.
    """
    from ..reconstruct.pc import PiecewiseConstant
    from ..reconstruct.tvd import TVDSlope

    if type(reconstruction) is PiecewiseConstant:
        recon_id, limiter_id = STENCIL_RECON_IDS["pc"], 0
    elif (
        type(reconstruction) is TVDSlope
        and reconstruction.limiter_name in STENCIL_LIMITER_IDS
    ):
        recon_id = STENCIL_RECON_IDS["tvd"]
        limiter_id = STENCIL_LIMITER_IDS[reconstruction.limiter_name]
    else:
        return None
    riemann_id = STENCIL_RIEMANN_IDS.get(getattr(riemann, "name", None))
    if riemann_id is None:
        return None
    return recon_id, limiter_id, riemann_id


class GeneratedSRHDSystem(SRHDSystem):
    """SRHD system whose algebraic kernels are generated from SymPy.

    *target* selects the interpreted emission flavour: ``numpy`` (stacked
    state arrays, the default) or ``flat`` (SoA marshalling through
    :func:`~repro.codegen.cache.run_flat_kernel`).
    """

    def __init__(self, gamma: float = 5.0 / 3.0, ndim: int = 1,
                 target: str = "numpy"):
        if target not in ("numpy", "flat"):
            raise CodegenError(
                f"GeneratedSRHDSystem target must be 'numpy' or 'flat', "
                f"got {target!r}"
            )
        super().__init__(IdealGasEOS(gamma=gamma), ndim)
        self.gamma = float(gamma)
        self.target = target
        self._k_prim_to_con = load_kernel("prim_to_con", ndim, 0, target)
        self._k_flux = [
            load_kernel("flux", ndim, axis, target) for axis in range(ndim)
        ]
        self._k_char = [
            load_kernel("char_speeds", ndim, axis, target) for axis in range(ndim)
        ]

    def prim_to_con(self, prim: np.ndarray, out=None, scratch=None, tag="p2c") -> np.ndarray:
        # Keep the reference implementation's admissibility guard.
        self.lorentz_factor(prim)
        if self.target == "numpy":
            dst = np.empty_like(prim) if out is None else out
            return self._k_prim_to_con(prim, dst, self.gamma)
        got = run_flat_kernel(self._k_prim_to_con, prim, self.nvars, self.gamma)
        if out is None:
            return got
        np.copyto(out, got)
        return out

    def flux(self, prim: np.ndarray, cons: np.ndarray, axis: int = 0, out=None) -> np.ndarray:
        # The generated flux consumes primitives only; *cons* is accepted
        # for interface compatibility.
        if self.target == "numpy":
            dst = np.empty_like(prim) if out is None else out
            return self._k_flux[axis](prim, dst, self.gamma)
        got = run_flat_kernel(self._k_flux[axis], prim, self.nvars, self.gamma)
        if out is None:
            return got
        np.copyto(out, got)
        return out

    def char_speeds(self, prim: np.ndarray, axis: int = 0, out=None, scratch=None, tag="cs"):
        if self.target == "numpy":
            lam = scratch_buf(scratch, (tag, "lam2"), (2,) + prim.shape[1:])
            self._k_char[axis](prim, lam, self.gamma)
        else:
            lam = run_flat_kernel(self._k_char[axis], prim, 2, self.gamma)
        if out is None:
            return lam[0], lam[1]
        np.copyto(out[0], lam[0])
        np.copyto(out[1], lam[1])
        return out[0], out[1]

    def __repr__(self):
        return (
            f"GeneratedSRHDSystem(gamma={self.gamma}, ndim={self.ndim}, "
            f"target={self.target!r})"
        )


class CompiledSRHDSystem(SRHDSystem):
    """SRHD system backed by the cffi-compiled C kernels (``cext`` target).

    Construction raises :class:`~repro.utils.errors.CodegenError` when the
    compiled module cannot be built or loaded — callers that want the
    graceful fallback go through :func:`make_kernel_system`.
    """

    target = "cext"

    def __init__(self, gamma: float = 5.0 / 3.0, ndim: int = 1):
        super().__init__(IdealGasEOS(gamma=gamma), ndim)
        self.gamma = float(gamma)
        from .cext import load_cext_module

        self._ffi, self._lib = load_cext_module(ndim)
        gen = KernelGenerator(ndim)
        self._c_prim_to_con = getattr(
            self._lib, gen.kernel_name("prim_to_con", 0, "cext")
        )
        self._c_flux = [
            getattr(self._lib, gen.kernel_name("flux", ax, "cext"))
            for ax in range(ndim)
        ]
        self._c_char = [
            getattr(self._lib, gen.kernel_name("char_speeds", ax, "cext"))
            for ax in range(ndim)
        ]
        # The fused stencil module is a separate artifact with its own
        # build: a failure here degrades per kernel (compiled algebra +
        # interpreted face-flux sweep) instead of dropping the whole
        # target back to 'flat'.
        from .cext import load_cext_stencil_module

        self._st_ffi = None
        self._c_face_flux = None
        try:
            self._st_ffi, st_lib = load_cext_stencil_module(ndim)
            self._c_face_flux = [
                getattr(st_lib, gen.stencil_kernel_name(ax))
                for ax in range(ndim)
            ]
        except CodegenError as exc:
            _log.warning(
                "compiled stencil kernels unavailable (%s); face_flux "
                "falls back to the interpreted path (pointwise cext "
                "kernels stay compiled)", exc,
            )

    # -- marshalling ---------------------------------------------------------

    def _run(self, fn, in_rows, out_rows):
        ffi = self._ffi
        keep = []
        cins = []
        for a in in_rows:
            a = np.ascontiguousarray(a, dtype=np.float64)
            keep.append(a)
            cins.append(ffi.from_buffer("double*", a))
        couts = []
        copyback = []
        for o in out_rows:
            if o.flags.c_contiguous:
                couts.append(ffi.from_buffer("double*", o, require_writable=True))
            else:
                tmp = np.empty(o.shape, dtype=np.float64)
                copyback.append((o, tmp))
                couts.append(ffi.from_buffer("double*", tmp, require_writable=True))
        fn(int(in_rows[0].size), *cins, *couts, self.gamma)
        for dst, tmp in copyback:
            np.copyto(dst, tmp)

    def prim_to_con(self, prim: np.ndarray, out=None, scratch=None, tag="p2c") -> np.ndarray:
        # Keep the reference implementation's admissibility guard.
        self.lorentz_factor(prim)
        dst = np.empty_like(prim) if out is None else out
        self._run(
            self._c_prim_to_con,
            [prim[i] for i in range(self.nvars)],
            [dst[i] for i in range(self.nvars)],
        )
        return dst

    def flux(self, prim: np.ndarray, cons: np.ndarray, axis: int = 0, out=None) -> np.ndarray:
        dst = np.empty_like(prim) if out is None else out
        self._run(
            self._c_flux[axis],
            [prim[i] for i in range(self.nvars)],
            [dst[i] for i in range(self.nvars)],
        )
        return dst

    def char_speeds(self, prim: np.ndarray, axis: int = 0, out=None, scratch=None, tag="cs"):
        lam = scratch_buf(scratch, (tag, "lam2"), (2,) + prim.shape[1:])
        self._run(
            self._c_char[axis],
            [prim[i] for i in range(self.nvars)],
            [lam[0], lam[1]],
        )
        if out is None:
            return lam[0], lam[1]
        np.copyto(out[0], lam[0])
        np.copyto(out[1], lam[1])
        return out[0], out[1]

    def c2p_newton(self, D, S2, tau, p, p_lo, *, tol, p_floor, max_newton, damping):
        """Fused Newton phase hook consumed by ``con_to_prim``.

        Returns ``(converged mask, max iteration count)``; *p* is updated
        in place, exactly like the vectorized Python iteration it replaces.
        """
        from .cext import run_con2prim_newton

        return run_con2prim_newton(
            self._ffi, self._lib, D, S2, tau, p, p_lo,
            gamma=self.gamma, tol=tol, p_floor=p_floor,
            max_newton=max_newton, damping=damping,
        )

    @property
    def has_fused_stencils(self) -> bool:
        """Whether the compiled face-flux sweep is available."""
        return self._c_face_flux is not None

    def face_flux(
        self,
        prim: np.ndarray,
        axis: int,
        row_offsets: np.ndarray,
        j0: int,
        n_faces: int,
        out: np.ndarray,
        *,
        ids: tuple[int, int, int],
        vmax2: float,
        rho_atmo: float,
        p_atmo: float,
        axis_stride: int,
    ) -> np.ndarray:
        """One fused reconstruction+Riemann sweep along *axis*.

        Writes the face fluxes into *out* (``(nvars, n_rows, n_faces)``,
        C-contiguous) and returns the int64 sanitize counters
        ``[velocity_rescaled, floored]``. *ids* comes from
        :func:`stencil_scheme_ids`.
        """
        from .cext import run_face_flux

        recon_id, limiter_id, riemann_id = ids
        return run_face_flux(
            self._st_ffi,
            self._c_face_flux[axis],
            prim,
            row_offsets,
            j0,
            n_faces,
            out,
            axis_stride=axis_stride,
            gamma=self.gamma,
            vmax2=vmax2,
            rho_atmo=rho_atmo,
            p_atmo=p_atmo,
            recon_id=recon_id,
            limiter_id=limiter_id,
            riemann_id=riemann_id,
        )

    def __repr__(self):
        return f"CompiledSRHDSystem(gamma={self.gamma}, ndim={self.ndim})"


def make_kernel_system(system: SRHDSystem, target: str) -> SRHDSystem:
    """Resolve ``SolverConfig.kernel_target`` to the system to run with.

    ``numpy`` returns *system* unchanged — the handwritten reference path,
    which the golden-stream fixtures pin bit-for-bit.  ``flat`` and
    ``cext`` require the plain :class:`SRHDSystem` + ideal-gas combination
    the generator specializes for; anything else (tracer systems, exotic
    EOS) keeps the handwritten kernels with a logged warning.  When the
    compiled target is unavailable (no cffi, no compiler,
    ``REPRO_CEXT_DISABLE=1``), ``cext`` falls back to ``flat`` with a
    logged warning rather than failing the run.
    """
    if target in (None, "numpy"):
        return system
    if type(system) is not SRHDSystem or not isinstance(system.eos, IdealGasEOS):
        _log.warning(
            "kernel_target=%r needs a plain SRHDSystem with an ideal-gas "
            "EOS (got %r); keeping the handwritten kernels",
            target, system,
        )
        return system
    gamma, ndim = system.eos.gamma, system.ndim
    if target == "flat":
        return GeneratedSRHDSystem(gamma=gamma, ndim=ndim, target="flat")
    if target == "cext":
        try:
            return CompiledSRHDSystem(gamma=gamma, ndim=ndim)
        except CodegenError as exc:
            _log.warning(
                "cext kernels unavailable (%s); falling back to "
                "kernel_target='flat'", exc,
            )
            return GeneratedSRHDSystem(gamma=gamma, ndim=ndim, target="flat")
    raise CodegenError(f"unknown kernel target {target!r}")
