"""A drop-in SRHD system backed by generated kernels.

:class:`GeneratedSRHDSystem` has the same interface as
:class:`~repro.physics.srhd.SRHDSystem` but evaluates ``prim_to_con``,
``flux``, and ``char_speeds`` through the SymPy-generated kernels — i.e.
the generated code runs in the *production solver path*, not just in
micro-benchmarks. The conservative-to-primitive inversion and the EOS
remain the handwritten implementations (they are iterative, not
expression-shaped, so the generator does not target them — same split as
the real framework).
"""

from __future__ import annotations

import numpy as np

from ..core.workspace import scratch_buf
from ..eos.ideal import IdealGasEOS
from ..physics.srhd import SRHDSystem
from .cache import load_kernel


class GeneratedSRHDSystem(SRHDSystem):
    """SRHD system whose algebraic kernels are generated from SymPy."""

    def __init__(self, gamma: float = 5.0 / 3.0, ndim: int = 1):
        super().__init__(IdealGasEOS(gamma=gamma), ndim)
        self.gamma = float(gamma)
        self._k_prim_to_con = load_kernel("prim_to_con", ndim)
        self._k_flux = [load_kernel("flux", ndim, axis) for axis in range(ndim)]
        self._k_char = [
            load_kernel("char_speeds", ndim, axis) for axis in range(ndim)
        ]

    def prim_to_con(self, prim: np.ndarray, out=None, scratch=None, tag="p2c") -> np.ndarray:
        # Keep the reference implementation's admissibility guard.
        self.lorentz_factor(prim)
        dst = np.empty_like(prim) if out is None else out
        return self._k_prim_to_con(prim, dst, self.gamma)

    def flux(self, prim: np.ndarray, cons: np.ndarray, axis: int = 0, out=None) -> np.ndarray:
        # The generated flux consumes primitives only; *cons* is accepted
        # for interface compatibility.
        dst = np.empty_like(prim) if out is None else out
        return self._k_flux[axis](prim, dst, self.gamma)

    def char_speeds(self, prim: np.ndarray, axis: int = 0, out=None, scratch=None, tag="cs"):
        lam = scratch_buf(scratch, (tag, "lam2"), (2,) + prim.shape[1:])
        self._k_char[axis](prim, lam, self.gamma)
        if out is None:
            return lam[0], lam[1]
        np.copyto(out[0], lam[0])
        np.copyto(out[1], lam[1])
        return out[0], out[1]

    def __repr__(self):
        return f"GeneratedSRHDSystem(gamma={self.gamma}, ndim={self.ndim})"
