"""Simulated distributed-memory communication substrate.

An in-process stand-in for MPI: :class:`SimCommunicator` provides tagged
point-to-point and collective operations with full traffic accounting,
:func:`exchange_halos` implements the nearest-neighbour ghost exchange over
a :class:`~repro.mesh.decomposition.CartesianDecomposition`, and
:class:`LinkModel` (Hockney alpha-beta) converts logged traffic into
simulated wire time for the scaling experiments.
"""

from .communicator import SimCommunicator, TrafficLog
from .costs import PRESETS, LinkModel, make_link
from .halo import exchange_halos, halo_bytes_per_step

__all__ = [
    "SimCommunicator",
    "TrafficLog",
    "LinkModel",
    "PRESETS",
    "make_link",
    "exchange_halos",
    "halo_bytes_per_step",
]
