"""Simulated distributed-memory communication substrate.

An in-process stand-in for MPI: :class:`SimCommunicator` provides tagged
point-to-point and collective operations with full traffic accounting,
:func:`exchange_halos` implements the nearest-neighbour ghost exchange over
a :class:`~repro.mesh.decomposition.CartesianDecomposition` (with a split
:func:`post_halos`/:func:`complete_halos` pair for comm/compute overlap),
and :class:`LinkModel` (Hockney alpha-beta) converts logged traffic into
simulated wire time for the scaling experiments.
"""

from .communicator import SimCommunicator, TrafficLog
from .costs import PRESETS, LinkModel, halo_exchange_time, make_link
from .shm import ShmChannel, ShmCommunicator, channel_capacities
from .halo import (
    HaloHandle,
    complete_halos,
    exchange_halos,
    face_slices,
    halo_bytes_per_step,
    post_halos,
    rhs_regions,
    split_axis_regions,
)

__all__ = [
    "SimCommunicator",
    "TrafficLog",
    "ShmCommunicator",
    "ShmChannel",
    "channel_capacities",
    "LinkModel",
    "PRESETS",
    "make_link",
    "halo_exchange_time",
    "exchange_halos",
    "post_halos",
    "complete_halos",
    "HaloHandle",
    "face_slices",
    "split_axis_regions",
    "rhs_regions",
    "halo_bytes_per_step",
]
