"""In-process simulated MPI communicator.

Substitutes for MPI on this single-process substrate: ranks exchange NumPy
arrays through in-memory mailboxes with mpi4py-like semantics (tagged
point-to-point, collectives), while a :class:`TrafficLog` records every
message so the Hockney model can convert the pattern into simulated wire
time for the scaling experiments.

The execution model is SPMD-by-phases: the driver iterates ranks, posting
sends first, then draining receives — deterministic, deadlock-free for the
halo-exchange patterns used here.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

import numpy as np

from ..utils.errors import CommunicationError
from .costs import LinkModel


@dataclass
class TrafficLog:
    """Per-communicator accounting of simulated message traffic."""

    n_messages: int = 0
    n_bytes: int = 0
    n_collectives: int = 0
    by_pair: dict = field(default_factory=lambda: defaultdict(int))

    def record(self, src: int, dest: int, n_bytes: int) -> None:
        self.n_messages += 1
        self.n_bytes += n_bytes
        self.by_pair[(src, dest)] += n_bytes

    def point_to_point_time(self, link: LinkModel) -> float:
        """Total serialized wire time, one aggregated message per rank pair."""
        return sum(link.transfer_time(b) for b in self.by_pair.values())

    def reset(self) -> None:
        self.n_messages = 0
        self.n_bytes = 0
        self.n_collectives = 0
        self.by_pair.clear()


class SimCommunicator:
    """Simulated communicator over *size* ranks.

    Point-to-point messages are buffered per ``(src, dest, tag)``; receives
    pop in FIFO order. Collectives act on a dict of per-rank contributions
    (the SPMD driver supplies all of them at once).

    When a :class:`~repro.resilience.faults.FaultInjector` is attached,
    every *injectable* send is submitted to it: the injector may drop the
    message (buffered nowhere), duplicate it (buffered twice), or corrupt
    the payload in flight.  Traffic is logged for every send regardless —
    the wire time was spent whether or not the message arrived.
    """

    _REDUCTIONS = {
        "sum": np.sum,
        "max": np.max,
        "min": np.min,
    }

    def __init__(self, size: int, fault_injector=None):
        if size < 1:
            raise CommunicationError(f"communicator size must be >= 1, got {size}")
        self.size = size
        self.fault_injector = fault_injector
        self._mailboxes: dict[tuple[int, int, int], deque] = defaultdict(deque)
        self.traffic = TrafficLog()

    def _check_rank(self, rank: int, what: str = "rank") -> None:
        if not 0 <= rank < self.size:
            raise CommunicationError(f"{what} {rank} out of range [0, {self.size})")

    # -- point to point ------------------------------------------------------

    def send(
        self, src: int, dest: int, data: np.ndarray, tag: int = 0,
        injectable: bool = True,
    ) -> None:
        """Post a message; a copy is buffered (MPI value semantics).

        *injectable* marks the message as fair game for an attached fault
        injector; control-plane messages (halo checksums) set it False so
        faults only strike data the recovery layer can verify.
        """
        self._check_rank(src, "source")
        self._check_rank(dest, "destination")
        payload = np.array(data, copy=True)
        self.traffic.record(src, dest, payload.nbytes)
        n_copies = 1
        if injectable and self.fault_injector is not None:
            action, payload = self.fault_injector.on_send(src, dest, tag, payload)
            if action == "drop":
                return
            if action == "duplicate":
                n_copies = 2
        box = self._mailboxes[(src, dest, tag)]
        for _ in range(n_copies):
            box.append(payload)

    def recv(self, src: int, dest: int, tag: int = 0) -> np.ndarray:
        """Pop the oldest matching message; raises if none is pending."""
        self._check_rank(src, "source")
        self._check_rank(dest, "destination")
        box = self._mailboxes.get((src, dest, tag))
        if not box:
            raise CommunicationError(
                f"no pending message src={src} dest={dest} tag={tag}"
            )
        return box.popleft()

    def traffic_marker(self) -> tuple[int, int, int]:
        """Opaque snapshot of the traffic log (bytes, messages, collectives).

        Pair with :meth:`bytes_since`/:meth:`messages_since` to attribute
        wire traffic to a region of code (e.g. halo retransmissions) without
        resetting the shared log.
        """
        log = self.traffic
        return (log.n_bytes, log.n_messages, log.n_collectives)

    def bytes_since(self, marker: tuple[int, int, int]) -> int:
        """Bytes sent since *marker* was taken."""
        return self.traffic.n_bytes - marker[0]

    def messages_since(self, marker: tuple[int, int, int]) -> int:
        """Point-to-point messages sent since *marker* was taken."""
        return self.traffic.n_messages - marker[1]

    def pending(self) -> int:
        """Number of messages posted but not yet received."""
        return sum(len(b) for b in self._mailboxes.values())

    def discard_pending(self) -> int:
        """Drop every undelivered message; returns how many were discarded.

        The resilient halo exchange calls this after a completed exchange so
        stale duplicates (injected or retransmission leftovers) can never be
        mistaken for the next step's data.
        """
        n = self.pending()
        self._mailboxes.clear()
        return n

    # -- collectives -----------------------------------------------------------

    def allreduce(self, contributions: dict[int, np.ndarray | float], op: str = "sum"):
        """Reduce per-rank contributions; every rank gets the result."""
        if set(contributions) != set(range(self.size)):
            raise CommunicationError(
                f"allreduce needs contributions from all {self.size} ranks, "
                f"got {sorted(contributions)}"
            )
        if op not in self._REDUCTIONS:
            raise CommunicationError(
                f"unknown reduction {op!r}; choose from {sorted(self._REDUCTIONS)}"
            )
        stacked = np.stack([np.asarray(contributions[r]) for r in range(self.size)])
        self.traffic.n_collectives += 1
        result = self._REDUCTIONS[op](stacked, axis=0)
        return {rank: result.copy() for rank in range(self.size)}

    def broadcast(self, root: int, data):
        """Root's value delivered to every rank."""
        self._check_rank(root, "root")
        self.traffic.n_collectives += 1
        payload = np.asarray(data)
        return {rank: payload.copy() for rank in range(self.size)}

    def gather(self, contributions: dict[int, np.ndarray], root: int = 0):
        """All contributions collected at *root* (returned as a list)."""
        if set(contributions) != set(range(self.size)):
            raise CommunicationError("gather needs contributions from all ranks")
        self._check_rank(root, "root")
        self.traffic.n_collectives += 1
        return [np.asarray(contributions[r]).copy() for r in range(self.size)]

    def barrier(self) -> None:
        """No-op in the SPMD-by-phases model; kept for API parity."""

    def __repr__(self):
        return f"SimCommunicator(size={self.size}, pending={self.pending()})"
