"""Analytic communication cost models.

The Hockney model — ``T(m) = alpha + m / beta`` for an m-byte message with
latency ``alpha`` and bandwidth ``beta`` — is the standard first-order model
for cluster interconnects and is what drives the scaling-experiment shapes
(latency-dominated small messages vs bandwidth-dominated halos).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

from ..utils.errors import ConfigurationError


@dataclass(frozen=True)
class LinkModel:
    """Hockney latency/bandwidth parameters for one link type.

    Defaults approximate a 2015-era FDR InfiniBand fabric.
    """

    latency_s: float = 1.5e-6
    bandwidth_Bps: float = 6.0e9

    def __post_init__(self):
        if self.latency_s < 0 or self.bandwidth_Bps <= 0:
            raise ConfigurationError(f"invalid link model {self}")

    def transfer_time(self, n_bytes: float) -> float:
        """Point-to-point message time (Hockney)."""
        if n_bytes < 0:
            raise ConfigurationError(f"negative message size {n_bytes}")
        return self.latency_s + n_bytes / self.bandwidth_Bps

    def allreduce_time(self, n_bytes: float, n_ranks: int) -> float:
        """Recursive-doubling allreduce estimate: 2 log2(P) message steps."""
        if n_ranks < 1:
            raise ConfigurationError(f"invalid rank count {n_ranks}")
        if n_ranks == 1:
            return 0.0
        steps = 2 * ceil(log2(n_ranks))
        return steps * self.transfer_time(n_bytes)


def halo_exchange_time(
    link: LinkModel, posted: "list[tuple[int, int]]"
) -> float:
    """Modeled wire time of one posted halo exchange.

    *posted* is the ``(dest_rank, nbytes)`` message list of a
    :class:`repro.comm.halo.HaloHandle`.  Each destination drains its
    incoming messages serially (every message pays Hockney latency +
    bandwidth time); destinations progress concurrently, so the exchange
    completes when the slowest receiver finishes.  This is the in-flight
    time the overlapped solver tries to hide behind interior compute.
    """
    per_dest: dict[int, float] = {}
    for dest, nbytes in posted:
        per_dest[dest] = per_dest.get(dest, 0.0) + link.transfer_time(nbytes)
    return max(per_dest.values(), default=0.0)


#: common link presets (rounded to era-plausible values)
PRESETS = {
    "infiniband-fdr": LinkModel(latency_s=1.5e-6, bandwidth_Bps=6.0e9),
    "ethernet-10g": LinkModel(latency_s=2.0e-5, bandwidth_Bps=1.25e9),
    "pcie-gen3": LinkModel(latency_s=5.0e-6, bandwidth_Bps=12.0e9),
    "shared-memory": LinkModel(latency_s=2.0e-7, bandwidth_Bps=4.0e10),
}


def make_link(name: str) -> LinkModel:
    """Link model by preset name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown link preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
