"""Halo (ghost-zone) exchange over a Cartesian decomposition.

The canonical nearest-neighbour pattern of every distributed stencil code:
each rank sends the ``n_ghost``-deep strip of interior cells adjacent to a
face to the neighbour across that face, which deposits it into its ghost
layer.  Exchanges go through the :class:`SimCommunicator` so the traffic is
logged for the cost model, and per-axis phases keep the corner/edge data
consistent after all axes complete (the standard dimension-by-dimension
sweep).
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING

import numpy as np

from ..mesh.decomposition import CartesianDecomposition
from ..utils.errors import CommunicationError
from .communicator import SimCommunicator

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry
    from ..resilience.policies import HaloRetryPolicy

#: tag offset separating checksum control messages from halo data messages
CHECKSUM_TAG_OFFSET = 1000


def _crc(payload: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(payload).tobytes())


def face_slices(ndim: int, axis: int, side: int, n_ghost: int, n_interior: int):
    """(send-strip, recv-ghost) index tuples along one axis, including the
    leading variable axis.

    The send strip is the ``n_ghost``-deep slab of *interior* cells touching
    the face; the recv slab is the ghost layer on the same side.  Both keep
    the full (ghost-padded) transverse extent, so per-axis recv slabs tile
    the ghost region exactly: a ghost cell is covered once per axis on which
    its coordinate is in a ghost range (property-tested).
    """

    def along(sl):
        idx = [slice(None)] * (ndim + 1)
        idx[axis + 1] = sl
        return tuple(idx)

    g, n = n_ghost, n_interior
    if side == 0:  # low face: send first interior cells, fill low ghosts
        send = along(slice(g, 2 * g))
        recv = along(slice(0, g))
    else:  # high face
        send = along(slice(n, n + g))
        recv = along(slice(n + g, n + 2 * g))
    return send, recv


_face_slices = face_slices


def split_axis_regions(
    n: int, n_ghost: int, low_nbr: bool, high_nbr: bool
) -> tuple[tuple[int, int], list[tuple[int, int]]]:
    """Core/strip split of one axis's interior cell range ``[0, n)``.

    Returns ``(core, strips)`` in interior coordinates: *core* is the
    ``(lo, hi)`` range whose RHS needs no halo data along this axis (its
    reconstruction stencil reads only owned cells, or wall ghosts that the
    physical boundary conditions filled before the exchange), and *strips*
    are the halo-dependent ranges next to neighboured faces.  Core and
    strips tile ``[0, n)`` with no gap or overlap (property-tested); thin
    patches (``n`` too small to leave a core) collapse to one merged strip
    so no cell is ever updated twice.
    """
    g = n_ghost
    sl = g if low_nbr else 0
    sh = g if high_nbr else 0
    if n - sl - sh <= 0:
        if sl or sh:
            return (0, 0), [(0, n)]
        return (0, n), []
    strips = []
    if sl:
        strips.append((0, sl))
    if sh:
        strips.append((n - sh, n))
    return (sl, n - sh), strips


def rhs_regions(decomp: CartesianDecomposition, rank: int):
    """Per-axis ``(core, strips)`` decomposition of one rank's interior.

    This is what the overlapped solver evaluates: every axis's core region
    before halos land, its strips after.
    """
    g = decomp.global_grid.n_ghost
    sub = decomp.subgrid(rank)
    out = []
    for axis in range(decomp.global_grid.ndim):
        out.append(
            split_axis_regions(
                sub.shape[axis],
                g,
                decomp.neighbor(rank, axis, 0) is not None,
                decomp.neighbor(rank, axis, 1) is not None,
            )
        )
    return out


def _post_strip(
    decomp, comm, states, sender: int, dest: int, axis: int, side: int,
    g: int, checksum: bool, schedule=None, metrics=None,
) -> list[tuple[int, int]]:
    """Post *sender*'s face strip toward *dest* (side is the sender's side).

    With *checksum*, a CRC32 of the payload rides alongside on a shifted
    tag; checksum messages are not injectable, so a corrupted data message
    is always detectable against its (intact) checksum.

    With a *schedule* (process backend), faults are pre-decided by the
    :class:`~repro.resilience.oracle.FaultOracle` rather than by an
    injector inside the communicator: every attempt for this message
    slot — the original send plus the retransmissions the receiver will
    request — is posted up front, each with its decided fate, and each
    injected fault is counted on *metrics* exactly as the serial
    injector would have.

    Returns the posted ``(dest, nbytes)`` messages so overlap accounting
    can price the exchange without re-deriving strip sizes.  Scheduled
    retransmission attempts are excluded from the return value: serially
    they are posted later, inside the resilient receive, and accounted
    on ``resilience.halo_retransmit_bytes`` by the receiver.
    """
    ndim = decomp.global_grid.ndim
    n = decomp.subgrid(sender).shape[axis]
    send, _ = face_slices(ndim, axis, side, g, n)
    tag = axis * 2 + side  # tag encodes (axis, direction of travel)
    payload = states[sender][send]
    if schedule is None:
        comm.send(sender, dest, payload, tag=tag)
        posted = [(dest, payload.nbytes)]
        if checksum:
            crc = np.array([_crc(payload)], dtype=np.int64)
            comm.send(
                sender, dest, crc,
                tag=tag + CHECKSUM_TAG_OFFSET,
                injectable=False,
            )
            posted.append((dest, crc.nbytes))
        return posted
    posted = []
    crc = np.array([_crc(payload)], dtype=np.int64) if checksum else None
    for attempt, (kind, scale) in enumerate(
        schedule.pop_attempts(sender, dest, tag)
    ):
        if kind is not None and metrics is not None:
            metrics.counter(f"resilience.fault.halo_{kind}").inc()
        comm.send(
            sender, dest, payload, tag=tag,
            fault=(kind, scale) if kind is not None else None,
        )
        if attempt == 0:
            posted.append((dest, payload.nbytes))
        if checksum:
            comm.send(
                sender, dest, crc,
                tag=tag + CHECKSUM_TAG_OFFSET,
                injectable=False,
            )
            if attempt == 0:
                posted.append((dest, crc.nbytes))
    return posted


def _retransmit_nbytes(decomp, states, nbr: int, rank: int, axis: int,
                       g: int) -> list[tuple[int, int]]:
    """Accounting stub for a scheduled retransmission (data + checksum).

    On the process backend the receiver cannot re-post the sender's
    strip — the sender already posted every scheduled attempt — but the
    serial path charges retransmissions to the receiver's
    ``resilience.halo_retransmit_bytes``, so the same byte totals are
    derived analytically from the sender's subgrid shape.
    """
    cells = g
    for ax, n in enumerate(decomp.subgrid(nbr).shape):
        if ax != axis:
            cells *= n + 2 * g
    arr = states[rank]
    return [(rank, cells * arr.shape[0] * arr.itemsize), (rank, 8)]


def _recv_reliable(
    decomp, comm, states, nbr: int, rank: int, axis: int, side: int, g: int,
    policy: "HaloRetryPolicy", metrics: "MetricsRegistry | None",
    schedule=None,
) -> np.ndarray:
    """Receive one halo message with checksum verification and retry.

    A missing message (dropped in flight) or a checksum mismatch (corrupted
    in flight) triggers a retransmission request — in this in-process SPMD
    substrate, re-posting the sender's strip — after an exponential backoff,
    up to the policy's attempt budget.  Only when the budget is exhausted
    does :class:`CommunicationError` propagate to the caller.
    """
    tag = axis * 2 + (1 - side)  # sender sent from its opposite side
    for attempt in range(policy.max_attempts):
        data = None
        try:
            data = comm.recv(nbr, rank, tag)
        except CommunicationError:
            # Data lost; drain the orphaned checksum to keep FIFOs aligned.
            try:
                comm.recv(nbr, rank, tag + CHECKSUM_TAG_OFFSET)
            except CommunicationError:
                pass
        if data is not None:
            try:
                ref = comm.recv(nbr, rank, tag + CHECKSUM_TAG_OFFSET)
            except CommunicationError:
                ref = None
            if ref is not None and int(ref[0]) == _crc(data):
                return data
            if metrics is not None:
                metrics.counter("resilience.halo_checksum_mismatch").inc()
        if attempt == policy.max_attempts - 1:
            break
        delay = policy.wait(attempt)
        if metrics is not None:
            metrics.counter("resilience.halo_retries").inc()
            metrics.histogram("resilience.halo_retry_backoff_s").observe(delay)
        if schedule is not None:
            reposted = _retransmit_nbytes(decomp, states, nbr, rank, axis, g)
        else:
            reposted = _post_strip(
                decomp, comm, states, nbr, rank, axis, 1 - side, g, True
            )
        if metrics is not None:
            # Retransmissions are extra wire traffic on top of the analytic
            # halo_bytes_per_step model; keeping them on their own counter
            # lets the byte-accounting tests reconcile the two exactly.
            metrics.counter("resilience.halo_retransmit_bytes").inc(
                sum(nbytes for _, nbytes in reposted)
            )
    raise CommunicationError(
        f"halo message rank {nbr} -> {rank} (axis {axis}, side {side}) lost "
        f"after {policy.max_attempts} attempts"
    )


def exchange_halos(
    decomp: CartesianDecomposition,
    comm: SimCommunicator,
    states: dict[int, np.ndarray],
    policy: "HaloRetryPolicy | None" = None,
    metrics: "MetricsRegistry | None" = None,
    schedule=None,
) -> None:
    """Fill ghost layers of every rank's ghosted state array in place.

    *states* may hold a subset of the decomposition's ranks: the process
    backend calls this per worker with only its own rank, posting and
    draining that rank's faces while its neighbours do the same in their
    processes.  With an oracle *schedule*
    (:class:`~repro.resilience.oracle.ExchangeSchedule`), faults are
    applied sender-side from the pre-decided plan instead of through a
    communicator-attached injector.

    Parameters
    ----------
    decomp:
        The Cartesian decomposition (supplies neighbours and local shapes).
    states:
        ``{rank: array (nvars, *local_shape_with_ghosts)}``.
    policy:
        Optional :class:`~repro.resilience.policies.HaloRetryPolicy`. When
        given, every message carries a checksum and lost/corrupted messages
        are retransmitted with exponential backoff;
        :class:`CommunicationError` is raised only once a message's attempt
        budget is exhausted.  Retries and backoff latencies are recorded on
        *metrics* (``resilience.halo_retries``,
        ``resilience.halo_retry_backoff_s``), and leftover duplicates are
        purged after the exchange (``resilience.halo_stale_discarded``).
        Checksum traffic is counted in the byte log, so resilient exchanges
        deliberately exceed the bare-wire ``halo_bytes_per_step`` model.

    Faces with no neighbour (non-periodic wall) are left untouched —
    physical boundary conditions fill them afterwards.
    """
    if comm.size != decomp.size:
        raise CommunicationError(
            f"communicator size {comm.size} != decomposition size {decomp.size}"
        )
    ndim = decomp.global_grid.ndim
    g = decomp.global_grid.n_ghost
    resilient = policy is not None
    if comm.fault_injector is not None:
        comm.fault_injector.begin_exchange()
    begin_epoch = getattr(comm, "begin_exchange_epoch", None)
    if begin_epoch is not None:
        begin_epoch()
    ranks = sorted(states)

    for axis in range(ndim):
        # Phase 1: all present ranks post their face strips.
        for rank in ranks:
            for side in (0, 1):
                nbr = decomp.neighbor(rank, axis, side)
                if nbr is None:
                    continue
                _post_strip(
                    decomp, comm, states, rank, nbr, axis, side, g, resilient,
                    schedule=schedule, metrics=metrics,
                )
        # Phase 2: all present ranks drain their ghosts.
        for rank in ranks:
            sub = decomp.subgrid(rank)
            n = sub.shape[axis]
            for side in (0, 1):
                nbr = decomp.neighbor(rank, axis, side)
                if nbr is None:
                    continue
                _, recv = _face_slices(ndim, axis, side, g, n)
                if resilient:
                    states[rank][recv] = _recv_reliable(
                        decomp, comm, states, nbr, rank, axis, side, g,
                        policy, metrics, schedule=schedule,
                    )
                else:
                    # The message from nbr travelling toward us was tagged
                    # with the opposite side on the sender.
                    states[rank][recv] = comm.recv(nbr, rank, tag=axis * 2 + (1 - side))

    if resilient:
        stale = comm.discard_pending()
        if stale and metrics is not None:
            metrics.counter("resilience.halo_stale_discarded").inc(stale)


class HaloHandle:
    """In-flight overlapped halo exchange (returned by :func:`post_halos`).

    Holds everything :func:`complete_halos` needs to drain the ghosts, plus
    the posted ``(dest, nbytes)`` message list the overlap cost model prices
    with :func:`repro.comm.costs.halo_exchange_time`.
    """

    __slots__ = (
        "decomp", "comm", "states", "policy", "metrics", "posted", "schedule",
        "completed",
    )

    def __init__(self, decomp, comm, states, policy, metrics, posted,
                 schedule=None):
        self.decomp = decomp
        self.comm = comm
        self.states = states
        self.policy = policy
        self.metrics = metrics
        self.posted = posted
        self.schedule = schedule
        self.completed = False

    @property
    def posted_bytes(self) -> int:
        return sum(nbytes for _, nbytes in self.posted)


def post_halos(
    decomp: CartesianDecomposition,
    comm: SimCommunicator,
    states: dict[int, np.ndarray],
    policy: "HaloRetryPolicy | None" = None,
    metrics: "MetricsRegistry | None" = None,
    schedule=None,
) -> HaloHandle:
    """Post every rank's face strips for *all* axes and return immediately.

    This is the send half of the overlapped exchange: unlike the blocking
    dimension-by-dimension sweep of :func:`exchange_halos` (which posts
    axis ``k`` only after axis ``k-1``'s ghosts landed, so corner data
    propagates), every strip is posted from the pre-exchange state.  Ghost
    *corners* therefore receive the sender's stale transverse ghosts
    instead of corner-propagated values.  That is safe for the RHS because
    per-axis reconstruction gives the update a plus-shaped stencil — corner
    ghosts are only ever read into transverse ghost-row face values that the
    divergence discards — which is exactly what makes the overlapped solver
    bit-identical to the blocking one (tested).  Callers that *do* need
    corner-consistent ghosts (e.g. diagnostics) must use
    :func:`exchange_halos`.

    The exchange counts as one fault-injection epoch
    (``fault_injector.begin_exchange``), same as a blocking exchange.
    """
    if comm.size != decomp.size:
        raise CommunicationError(
            f"communicator size {comm.size} != decomposition size {decomp.size}"
        )
    ndim = decomp.global_grid.ndim
    g = decomp.global_grid.n_ghost
    resilient = policy is not None
    if comm.fault_injector is not None:
        comm.fault_injector.begin_exchange()
    begin_epoch = getattr(comm, "begin_exchange_epoch", None)
    if begin_epoch is not None:
        begin_epoch()
    posted: list[tuple[int, int]] = []
    for axis in range(ndim):
        for rank in sorted(states):
            for side in (0, 1):
                nbr = decomp.neighbor(rank, axis, side)
                if nbr is None:
                    continue
                posted += _post_strip(
                    decomp, comm, states, rank, nbr, axis, side, g, resilient,
                    schedule=schedule, metrics=metrics,
                )
    return HaloHandle(decomp, comm, states, policy, metrics, posted, schedule)


def complete_halos(handle: HaloHandle) -> None:
    """Drain an exchange started by :func:`post_halos` into the ghost slabs.

    Receives follow the same deterministic (axis, rank, side) order as the
    blocking sweep.  Nothing is re-posted here — the only sends are the
    retransmissions the resilient receive itself requests, which keep their
    own byte accounting (``resilience.halo_retransmit_bytes``) so the
    ``halo_bytes_per_step`` model still reconciles exactly with measured
    ``comm.halo_bytes``.  With a retry policy, leftover duplicates are
    purged afterwards exactly as in the blocking path.
    """
    if handle.completed:
        raise CommunicationError("overlapped halo exchange already completed")
    decomp, comm, states = handle.decomp, handle.comm, handle.states
    policy, metrics = handle.policy, handle.metrics
    ndim = decomp.global_grid.ndim
    g = decomp.global_grid.n_ghost
    resilient = policy is not None
    for axis in range(ndim):
        for rank in sorted(states):
            sub = decomp.subgrid(rank)
            n = sub.shape[axis]
            for side in (0, 1):
                nbr = decomp.neighbor(rank, axis, side)
                if nbr is None:
                    continue
                _, recv = face_slices(ndim, axis, side, g, n)
                if resilient:
                    states[rank][recv] = _recv_reliable(
                        decomp, comm, states, nbr, rank, axis, side, g,
                        policy, metrics, schedule=handle.schedule,
                    )
                else:
                    states[rank][recv] = comm.recv(nbr, rank, tag=axis * 2 + (1 - side))
    handle.completed = True
    if resilient:
        stale = comm.discard_pending()
        if stale and metrics is not None:
            metrics.counter("resilience.halo_stale_discarded").inc(stale)


def halo_bytes_per_step(
    decomp: CartesianDecomposition, nvars: int, itemsize: int = 8
) -> dict[int, int]:
    """Bytes each rank sends in one full halo exchange (all axes, all faces).

    Analytic count used by the scaling cost model — must match what
    :func:`exchange_halos` actually sends (tested).
    """
    out = {}
    g = decomp.global_grid.n_ghost
    for rank in range(decomp.size):
        sub = decomp.subgrid(rank)
        total = 0
        for axis in range(decomp.global_grid.ndim):
            # The strip spans the full (ghost-padded) transverse extent so
            # corner data propagates through the per-axis sweep.
            transverse = 1
            for ax, n in enumerate(sub.shape):
                if ax != axis:
                    transverse *= n + 2 * g
            strip = transverse * g
            for side in (0, 1):
                if decomp.neighbor(rank, axis, side) is not None:
                    total += strip * nvars * itemsize
        out[rank] = total
    return out
