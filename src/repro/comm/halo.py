"""Halo (ghost-zone) exchange over a Cartesian decomposition.

The canonical nearest-neighbour pattern of every distributed stencil code:
each rank sends the ``n_ghost``-deep strip of interior cells adjacent to a
face to the neighbour across that face, which deposits it into its ghost
layer.  Exchanges go through the :class:`SimCommunicator` so the traffic is
logged for the cost model, and per-axis phases keep the corner/edge data
consistent after all axes complete (the standard dimension-by-dimension
sweep).
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING

import numpy as np

from ..mesh.decomposition import CartesianDecomposition
from ..utils.errors import CommunicationError
from .communicator import SimCommunicator

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry
    from ..resilience.policies import HaloRetryPolicy

#: tag offset separating checksum control messages from halo data messages
CHECKSUM_TAG_OFFSET = 1000


def _crc(payload: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(payload).tobytes())


def _face_slices(ndim: int, axis: int, side: int, n_ghost: int, n_interior: int):
    """(send-strip, recv-ghost) index tuples along one axis, including the
    leading variable axis."""

    def along(sl):
        idx = [slice(None)] * (ndim + 1)
        idx[axis + 1] = sl
        return tuple(idx)

    g, n = n_ghost, n_interior
    if side == 0:  # low face: send first interior cells, fill low ghosts
        send = along(slice(g, 2 * g))
        recv = along(slice(0, g))
    else:  # high face
        send = along(slice(n, n + g))
        recv = along(slice(n + g, n + 2 * g))
    return send, recv


def _post_strip(
    decomp, comm, states, sender: int, dest: int, axis: int, side: int,
    g: int, checksum: bool,
) -> None:
    """Post *sender*'s face strip toward *dest* (side is the sender's side).

    With *checksum*, a CRC32 of the payload rides alongside on a shifted
    tag; checksum messages are not injectable, so a corrupted data message
    is always detectable against its (intact) checksum.
    """
    ndim = decomp.global_grid.ndim
    n = decomp.subgrid(sender).shape[axis]
    send, _ = _face_slices(ndim, axis, side, g, n)
    tag = axis * 2 + side  # tag encodes (axis, direction of travel)
    payload = states[sender][send]
    comm.send(sender, dest, payload, tag=tag)
    if checksum:
        comm.send(
            sender, dest,
            np.array([_crc(payload)], dtype=np.int64),
            tag=tag + CHECKSUM_TAG_OFFSET,
            injectable=False,
        )


def _recv_reliable(
    decomp, comm, states, nbr: int, rank: int, axis: int, side: int, g: int,
    policy: "HaloRetryPolicy", metrics: "MetricsRegistry | None",
) -> np.ndarray:
    """Receive one halo message with checksum verification and retry.

    A missing message (dropped in flight) or a checksum mismatch (corrupted
    in flight) triggers a retransmission request — in this in-process SPMD
    substrate, re-posting the sender's strip — after an exponential backoff,
    up to the policy's attempt budget.  Only when the budget is exhausted
    does :class:`CommunicationError` propagate to the caller.
    """
    tag = axis * 2 + (1 - side)  # sender sent from its opposite side
    for attempt in range(policy.max_attempts):
        data = None
        try:
            data = comm.recv(nbr, rank, tag)
        except CommunicationError:
            # Data lost; drain the orphaned checksum to keep FIFOs aligned.
            try:
                comm.recv(nbr, rank, tag + CHECKSUM_TAG_OFFSET)
            except CommunicationError:
                pass
        if data is not None:
            try:
                ref = comm.recv(nbr, rank, tag + CHECKSUM_TAG_OFFSET)
            except CommunicationError:
                ref = None
            if ref is not None and int(ref[0]) == _crc(data):
                return data
            if metrics is not None:
                metrics.counter("resilience.halo_checksum_mismatch").inc()
        if attempt == policy.max_attempts - 1:
            break
        delay = policy.wait(attempt)
        if metrics is not None:
            metrics.counter("resilience.halo_retries").inc()
            metrics.histogram("resilience.halo_retry_backoff_s").observe(delay)
        _post_strip(decomp, comm, states, nbr, rank, axis, 1 - side, g, True)
    raise CommunicationError(
        f"halo message rank {nbr} -> {rank} (axis {axis}, side {side}) lost "
        f"after {policy.max_attempts} attempts"
    )


def exchange_halos(
    decomp: CartesianDecomposition,
    comm: SimCommunicator,
    states: dict[int, np.ndarray],
    policy: "HaloRetryPolicy | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> None:
    """Fill ghost layers of every rank's ghosted state array in place.

    Parameters
    ----------
    decomp:
        The Cartesian decomposition (supplies neighbours and local shapes).
    states:
        ``{rank: array (nvars, *local_shape_with_ghosts)}``.
    policy:
        Optional :class:`~repro.resilience.policies.HaloRetryPolicy`. When
        given, every message carries a checksum and lost/corrupted messages
        are retransmitted with exponential backoff;
        :class:`CommunicationError` is raised only once a message's attempt
        budget is exhausted.  Retries and backoff latencies are recorded on
        *metrics* (``resilience.halo_retries``,
        ``resilience.halo_retry_backoff_s``), and leftover duplicates are
        purged after the exchange (``resilience.halo_stale_discarded``).
        Checksum traffic is counted in the byte log, so resilient exchanges
        deliberately exceed the bare-wire ``halo_bytes_per_step`` model.

    Faces with no neighbour (non-periodic wall) are left untouched —
    physical boundary conditions fill them afterwards.
    """
    if comm.size != decomp.size:
        raise CommunicationError(
            f"communicator size {comm.size} != decomposition size {decomp.size}"
        )
    ndim = decomp.global_grid.ndim
    g = decomp.global_grid.n_ghost
    resilient = policy is not None
    if comm.fault_injector is not None:
        comm.fault_injector.begin_exchange()

    for axis in range(ndim):
        # Phase 1: all ranks post their face strips.
        for rank in range(decomp.size):
            for side in (0, 1):
                nbr = decomp.neighbor(rank, axis, side)
                if nbr is None:
                    continue
                _post_strip(decomp, comm, states, rank, nbr, axis, side, g, resilient)
        # Phase 2: all ranks drain their ghosts.
        for rank in range(decomp.size):
            sub = decomp.subgrid(rank)
            n = sub.shape[axis]
            for side in (0, 1):
                nbr = decomp.neighbor(rank, axis, side)
                if nbr is None:
                    continue
                _, recv = _face_slices(ndim, axis, side, g, n)
                if resilient:
                    states[rank][recv] = _recv_reliable(
                        decomp, comm, states, nbr, rank, axis, side, g,
                        policy, metrics,
                    )
                else:
                    # The message from nbr travelling toward us was tagged
                    # with the opposite side on the sender.
                    states[rank][recv] = comm.recv(nbr, rank, tag=axis * 2 + (1 - side))

    if resilient:
        stale = comm.discard_pending()
        if stale and metrics is not None:
            metrics.counter("resilience.halo_stale_discarded").inc(stale)


def halo_bytes_per_step(
    decomp: CartesianDecomposition, nvars: int, itemsize: int = 8
) -> dict[int, int]:
    """Bytes each rank sends in one full halo exchange (all axes, all faces).

    Analytic count used by the scaling cost model — must match what
    :func:`exchange_halos` actually sends (tested).
    """
    out = {}
    g = decomp.global_grid.n_ghost
    for rank in range(decomp.size):
        sub = decomp.subgrid(rank)
        total = 0
        for axis in range(decomp.global_grid.ndim):
            # The strip spans the full (ghost-padded) transverse extent so
            # corner data propagates through the per-axis sweep.
            transverse = 1
            for ax, n in enumerate(sub.shape):
                if ax != axis:
                    transverse *= n + 2 * g
            strip = transverse * g
            for side in (0, 1):
                if decomp.neighbor(rank, axis, side) is not None:
                    total += strip * nvars * itemsize
        out[rank] = total
    return out
