"""Halo (ghost-zone) exchange over a Cartesian decomposition.

The canonical nearest-neighbour pattern of every distributed stencil code:
each rank sends the ``n_ghost``-deep strip of interior cells adjacent to a
face to the neighbour across that face, which deposits it into its ghost
layer.  Exchanges go through the :class:`SimCommunicator` so the traffic is
logged for the cost model, and per-axis phases keep the corner/edge data
consistent after all axes complete (the standard dimension-by-dimension
sweep).
"""

from __future__ import annotations

import numpy as np

from ..mesh.decomposition import CartesianDecomposition
from ..utils.errors import CommunicationError
from .communicator import SimCommunicator


def _face_slices(ndim: int, axis: int, side: int, n_ghost: int, n_interior: int):
    """(send-strip, recv-ghost) index tuples along one axis, including the
    leading variable axis."""

    def along(sl):
        idx = [slice(None)] * (ndim + 1)
        idx[axis + 1] = sl
        return tuple(idx)

    g, n = n_ghost, n_interior
    if side == 0:  # low face: send first interior cells, fill low ghosts
        send = along(slice(g, 2 * g))
        recv = along(slice(0, g))
    else:  # high face
        send = along(slice(n, n + g))
        recv = along(slice(n + g, n + 2 * g))
    return send, recv


def exchange_halos(
    decomp: CartesianDecomposition,
    comm: SimCommunicator,
    states: dict[int, np.ndarray],
) -> None:
    """Fill ghost layers of every rank's ghosted state array in place.

    Parameters
    ----------
    decomp:
        The Cartesian decomposition (supplies neighbours and local shapes).
    states:
        ``{rank: array (nvars, *local_shape_with_ghosts)}``.

    Faces with no neighbour (non-periodic wall) are left untouched —
    physical boundary conditions fill them afterwards.
    """
    if comm.size != decomp.size:
        raise CommunicationError(
            f"communicator size {comm.size} != decomposition size {decomp.size}"
        )
    ndim = decomp.global_grid.ndim
    g = decomp.global_grid.n_ghost

    for axis in range(ndim):
        # Phase 1: all ranks post their face strips.
        for rank in range(decomp.size):
            sub = decomp.subgrid(rank)
            n = sub.shape[axis]
            for side in (0, 1):
                nbr = decomp.neighbor(rank, axis, side)
                if nbr is None:
                    continue
                send, _ = _face_slices(ndim, axis, side, g, n)
                # Tag encodes (axis, direction of travel).
                comm.send(rank, nbr, states[rank][send], tag=axis * 2 + side)
        # Phase 2: all ranks drain their ghosts.
        for rank in range(decomp.size):
            sub = decomp.subgrid(rank)
            n = sub.shape[axis]
            for side in (0, 1):
                nbr = decomp.neighbor(rank, axis, side)
                if nbr is None:
                    continue
                # The message from nbr travelling toward us was tagged with
                # the opposite side on the sender.
                _, recv = _face_slices(ndim, axis, side, g, n)
                states[rank][recv] = comm.recv(nbr, rank, tag=axis * 2 + (1 - side))


def halo_bytes_per_step(
    decomp: CartesianDecomposition, nvars: int, itemsize: int = 8
) -> dict[int, int]:
    """Bytes each rank sends in one full halo exchange (all axes, all faces).

    Analytic count used by the scaling cost model — must match what
    :func:`exchange_halos` actually sends (tested).
    """
    out = {}
    g = decomp.global_grid.n_ghost
    for rank in range(decomp.size):
        sub = decomp.subgrid(rank)
        total = 0
        for axis in range(decomp.global_grid.ndim):
            # The strip spans the full (ghost-padded) transverse extent so
            # corner data propagates through the per-axis sweep.
            transverse = 1
            for ax, n in enumerate(sub.shape):
                if ax != axis:
                    transverse *= n + 2 * g
            strip = transverse * g
            for side in (0, 1):
                if decomp.neighbor(rank, axis, side) is not None:
                    total += strip * nvars * itemsize
        out[rank] = total
    return out
