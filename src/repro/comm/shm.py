"""Shared-memory transport for the process-parallel backend.

``ShmCommunicator`` exposes the same point-to-point/collective surface
as :class:`repro.comm.communicator.SimCommunicator`, but messages cross
real process boundaries through ``multiprocessing.shared_memory`` ring
buffers instead of in-process mailboxes.  One single-producer /
single-consumer ring exists per *directed* rank pair that can ever talk
(halo neighbours plus the rank-0 star used by collectives), so no locks
are needed: the writer only advances ``head``, the reader only advances
``tail``, and the payload bytes are fully written before ``head`` is
published.

Bit-exactness with the serial path is the design constraint that shapes
everything here:

* ``allreduce`` funnels every contribution to rank 0, stacks them in
  rank order, and applies the same ``np.stack(...)`` + reduction as
  ``SimCommunicator.allreduce`` — so the reduced bytes are identical.
* Fault injection is *pre-decided* by a rank-local
  :class:`repro.resilience.oracle.FaultOracle`; the sender applies the
  decided ``(kind, scale)`` at ``send`` time.  A dropped message posts a
  **tombstone** record so the receiver unblocks and raises the same
  "no pending message" error the serial mailbox would.
* Every data record carries the halo-exchange **epoch** it was posted
  in, so ``discard_pending`` (the post-resilient-exchange stale sweep)
  drops exactly the records the serial global sweep would: entries from
  this epoch or earlier, counting only real data (tombstones are a
  transport artifact and never existed serially).

Substrate-level measurements (real bytes moved, send-block and
recv-wait seconds) are recorded under ``comm.shm.*``; those names are
excluded from the canonical golden stream because they describe the
transport, not the numerics.
"""

from __future__ import annotations

import time
from collections import defaultdict
from multiprocessing import shared_memory

import numpy as np

from ..utils.errors import CommunicationError
from .communicator import SimCommunicator, TrafficLog

_REDUCTIONS = SimCommunicator._REDUCTIONS

#: bytes reserved at the front of each segment for the ring control block
CTRL_BYTES = 64
#: int64 words in a record header:
#: [rec_len, payload_nbytes, epoch, tag, flag, dtype_code, ndim]
HEADER_WORDS = 7
HEADER_BYTES = HEADER_WORDS * 8

FLAG_DATA = 0
FLAG_TOMBSTONE = 1

#: epoch stamped on control-plane (collective) records; never discarded
EPOCH_CONTROL = 2**62
#: tags at or above this are control-plane (collectives), not halo traffic
CONTROL_TAG_BASE = 2000
TAG_REDUCE = 2001
TAG_RESULT = 2002
TAG_BCAST = 2003
TAG_GATHER = 2004

_DTYPE_BY_CODE = {0: np.dtype(np.float64), 1: np.dtype(np.int64)}
_CODE_BY_DTYPE = {dt: code for code, dt in _DTYPE_BY_CODE.items()}


class _Ring:
    """Single-producer single-consumer byte ring over a shared buffer.

    ``head`` and ``tail`` are monotonically increasing logical byte
    offsets (never wrapped), so ``head - tail`` is the bytes in flight
    and ``head % capacity`` the physical write position.  The producer
    writes the record bytes first and publishes ``head`` last; on the
    strongly-ordered stores numpy does over shared memory this is
    enough for the consumer to never observe a half-written record.
    """

    def __init__(self, buf, capacity: int):
        self.capacity = int(capacity)
        self._head = np.frombuffer(buf, dtype=np.int64, count=1, offset=0)
        self._tail = np.frombuffer(buf, dtype=np.int64, count=1, offset=8)
        self._data = np.frombuffer(
            buf, dtype=np.uint8, count=self.capacity, offset=CTRL_BYTES
        )

    def release(self) -> None:
        """Drop the numpy views so the segment can be closed."""
        self._head = None
        self._tail = None
        self._data = None

    # -- byte-level helpers (wraparound-aware) ---------------------------
    def _write(self, pos: int, raw: bytes) -> None:
        n = len(raw)
        p = pos % self.capacity
        first = min(n, self.capacity - p)
        self._data[p:p + first] = np.frombuffer(raw[:first], dtype=np.uint8)
        if n > first:
            self._data[: n - first] = np.frombuffer(raw[first:], dtype=np.uint8)

    def _read(self, pos: int, n: int) -> bytes:
        p = pos % self.capacity
        first = min(n, self.capacity - p)
        out = self._data[p:p + first].tobytes()
        if n > first:
            out += self._data[: n - first].tobytes()
        return out

    # -- record API ------------------------------------------------------
    def push(self, epoch: int, tag: int, flag: int, payload,
             timeout_s: float = 120.0, probe=None) -> float:
        """Append one record; returns seconds blocked waiting for space."""
        if payload is None:
            pbytes = b""
            shape: tuple[int, ...] = ()
            code = 0
        else:
            arr = np.ascontiguousarray(payload)
            code = _CODE_BY_DTYPE[arr.dtype]
            pbytes = arr.tobytes()
            shape = arr.shape
        body = np.asarray(shape, dtype=np.int64).tobytes() + pbytes
        raw_len = HEADER_BYTES + len(body)
        rec_len = raw_len + ((-raw_len) % 8)
        if rec_len > self.capacity:
            raise CommunicationError(
                f"record of {rec_len} bytes exceeds ring capacity {self.capacity}"
            )
        header = np.array(
            [rec_len, len(pbytes), epoch, tag, flag, code, len(shape)],
            dtype=np.int64,
        )
        raw = header.tobytes() + body + b"\x00" * (rec_len - raw_len)
        blocked = 0.0
        start = None
        delay = 5e-5
        while True:
            head = int(self._head[0])
            if self.capacity - (head - int(self._tail[0])) >= rec_len:
                break
            if probe is not None:
                probe()  # raises promptly if the reader died or we quiesced
            now = time.perf_counter()
            if start is None:
                start = now
            elif now - start > timeout_s:
                raise CommunicationError(
                    f"shared-memory ring full for {timeout_s:g}s "
                    f"(capacity {self.capacity}, record {rec_len} bytes)"
                )
            time.sleep(delay)
            delay = min(delay * 2.0, 1e-3)
        if start is not None:
            blocked = time.perf_counter() - start
        self._write(head, raw)
        self._head[0] = head + rec_len  # publish after the payload bytes
        return blocked

    def pop(self):
        """Non-blocking: ``None`` or ``(epoch, tag, flag, payload)``."""
        tail = int(self._tail[0])
        if int(self._head[0]) == tail:
            return None
        header = np.frombuffer(self._read(tail, HEADER_BYTES), dtype=np.int64)
        rec_len, pnbytes, epoch, tag, flag, code, ndim = (int(v) for v in header)
        offset = tail + HEADER_BYTES
        shape: tuple[int, ...] = ()
        if ndim:
            shape = tuple(
                int(v)
                for v in np.frombuffer(self._read(offset, ndim * 8), dtype=np.int64)
            )
            offset += ndim * 8
        payload = None
        if flag == FLAG_DATA:
            payload = (
                np.frombuffer(self._read(offset, pnbytes), dtype=_DTYPE_BY_CODE[code])
                .reshape(shape)
                .copy()
            )
        self._tail[0] = tail + rec_len  # release after the payload copy
        return epoch, tag, flag, payload


class ShmChannel:
    """One directed shared-memory ring between a fixed (src, dest) pair."""

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int, owner: bool):
        self._shm = shm
        self.name = shm.name
        self.capacity = int(capacity)
        self.owner = owner
        self.ring = _Ring(shm.buf, self.capacity)

    @classmethod
    def create(cls, capacity: int) -> "ShmChannel":
        shm = shared_memory.SharedMemory(create=True, size=CTRL_BYTES + int(capacity))
        shm.buf[:CTRL_BYTES] = b"\x00" * CTRL_BYTES
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "ShmChannel":
        # On CPython < 3.13 merely attaching re-registers the segment with
        # the (shared, deduplicating) resource tracker; the creating parent
        # unlinks exactly once, so no per-attach unregister is needed — an
        # explicit one here would double-remove and spam tracker KeyErrors.
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, capacity, owner=False)

    def close(self) -> None:
        if self._shm is None:
            return
        self.ring.release()
        self._shm.close()
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
        self._shm = None


#: SupervisionBoard rank-status values
STATUS_UP = 0
STATUS_DEAD = 1


class SupervisionBoard:
    """Lock-free shared-memory control block for supervised execution.

    One int64 word array shared by the parent and every rank process::

        [abort_epoch, status[0..size), arrive[0..size), heartbeat[0..size)]

    Every word has exactly one writer at any time (the parent for
    ``abort_epoch``/``status``; rank *r* for ``arrive[r]``/``heartbeat[r]``),
    so no locks exist anywhere — which is the point: a SIGKILL'd worker
    can never die holding one.  This replaces ``multiprocessing.Barrier``
    for step synchronization (a rank killed inside ``Barrier.wait`` leaves
    its internal lock state broken) and replaces pipe heartbeats (a
    heartbeat writer blocked on a full pipe would wedge the reply path).

    Parent-side operations: :meth:`mark_dead` / :meth:`revive` /
    :meth:`abort` / :meth:`reset_barrier` / :meth:`heartbeat_age_s` /
    :meth:`touch`.  Worker-side: :meth:`beat`, :meth:`wait` (the step
    barrier), :meth:`check` (the fast-fail probe used by the comm layer),
    and :meth:`rebaseline` after a supervised restore.
    """

    def __init__(self, shm: shared_memory.SharedMemory, size: int,
                 rank: int | None, owner: bool):
        self._shm = shm
        self.name = shm.name
        self.size = int(size)
        self._rank = rank
        self.owner = owner
        words = np.frombuffer(shm.buf, dtype=np.int64, count=1 + 3 * self.size)
        self._abort = words[0:1]
        self._status = words[1:1 + self.size]
        self._arrive = words[1 + self.size:1 + 2 * self.size]
        self._beats = words[1 + 2 * self.size:1 + 3 * self.size]
        self._abort_base = int(self._abort[0])
        self._gen = 0

    @classmethod
    def create(cls, size: int) -> "SupervisionBoard":
        nbytes = (1 + 3 * int(size)) * 8
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        shm.buf[:nbytes] = b"\x00" * nbytes
        board = cls(shm, size, rank=None, owner=True)
        now = time.monotonic_ns()
        for r in range(board.size):
            board._beats[r] = now
        return board

    @classmethod
    def attach(cls, name: str, size: int, rank: int | None = None
               ) -> "SupervisionBoard":
        return cls(shared_memory.SharedMemory(name=name), size, rank, owner=False)

    def close(self) -> None:
        if self._shm is None:
            return
        self._abort = self._status = self._arrive = self._beats = None
        self._shm.close()
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
        self._shm = None

    # -- parent side -----------------------------------------------------
    def mark_dead(self, rank: int) -> None:
        self._status[rank] = STATUS_DEAD

    def revive(self, rank: int) -> None:
        self._status[rank] = STATUS_UP
        self._beats[rank] = time.monotonic_ns()

    def abort(self) -> None:
        """Bump the abort epoch: every blocked wait/probe raises promptly."""
        self._abort[0] = int(self._abort[0]) + 1

    def reset_barrier(self) -> None:
        """Zero the arrive slots; workers re-baseline their generation."""
        for r in range(self.size):
            self._arrive[r] = 0

    def touch(self, rank: int) -> None:
        """Seed ``rank``'s heartbeat (parent, at spawn time)."""
        self._beats[rank] = time.monotonic_ns()

    def heartbeat_age_s(self, rank: int) -> float:
        return (time.monotonic_ns() - int(self._beats[rank])) / 1e9

    # -- worker side -----------------------------------------------------
    def is_dead(self, rank: int) -> bool:
        return int(self._status[rank]) == STATUS_DEAD

    def beat(self) -> None:
        self._beats[self._rank] = time.monotonic_ns()

    def rebaseline(self) -> None:
        """Adopt the current abort epoch and barrier generation as clean.

        Called after a supervised restore (and implicitly at attach): the
        abort that quiesced the previous step is spent, and the parent has
        zeroed the arrive slots.
        """
        self._abort_base = int(self._abort[0])
        self._gen = 0

    def check(self, peer: int | None = None) -> None:
        """Raise :class:`CommunicationError` if quiesced or ``peer`` died."""
        if int(self._abort[0]) > self._abort_base:
            raise CommunicationError(
                f"rank {self._rank}: step aborted by supervisor (quiesce)"
            )
        if peer is not None and int(self._status[peer]) == STATUS_DEAD:
            raise CommunicationError(
                f"rank {self._rank}: peer rank {peer} is dead"
            )

    def wait(self, timeout: float | None = None) -> None:
        """Crash-tolerant step barrier across all ranks.

        Each rank publishes a monotonically increasing generation in its
        own arrive slot and spins until every slot has reached it.  A
        supervisor abort (or a peer marked dead) breaks the wait with a
        :class:`CommunicationError` instead of deadlocking.
        """
        self._gen += 1
        gen = self._gen
        self._arrive[self._rank] = gen
        start = None
        delay = 5e-5
        while True:
            if int(self._arrive.min()) >= gen:
                return
            self.check()
            dead = [r for r in range(self.size) if self.is_dead(r)]
            if dead:
                raise CommunicationError(
                    f"rank {self._rank}: barrier broken, dead ranks {dead}"
                )
            now = time.perf_counter()
            if start is None:
                start = now
            elif timeout is not None and now - start > timeout:
                raise CommunicationError(
                    f"rank {self._rank}: barrier timed out after {timeout:g}s"
                )
            time.sleep(delay)
            delay = min(delay * 2.0, 1e-3)


def sweep_segments(names) -> list[str]:
    """Force-unlink shared-memory segments that may have leaked.

    Workers unlink nothing (the creating parent owns every segment), and
    the parent's clean ``close()`` unlinks via the live handles — but a
    parent that is tearing down after SIGKILL'ing workers, or that
    recreated rings mid-run, may hold names whose handles are gone.  This
    sweep attaches purely to unlink, ignoring segments already removed.
    Returns the names actually unlinked.
    """
    swept = []
    for name in names:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        except OSError:  # pragma: no cover - platform-specific attach errors
            continue
        try:
            seg.close()
            seg.unlink()
            swept.append(name)
        except FileNotFoundError:  # pragma: no cover - unlinked concurrently
            pass
    return swept


def strip_nbytes(decomp, rank: int, axis: int, n_ghost: int, nvars: int,
                 itemsize: int = 8) -> int:
    """Payload bytes of one ghosted face strip sent by ``rank`` along ``axis``."""
    shape = decomp.subgrid(rank).shape
    cells = n_ghost
    for ax, n in enumerate(shape):
        if ax != axis:
            cells *= n + 2 * n_ghost
    return cells * nvars * itemsize


def channel_capacities(decomp, nvars: int, n_ghost: int, policy=None,
                       itemsize: int = 8) -> dict:
    """Ring capacity (bytes) for every directed channel a run can use.

    Halo channels are sized for every face strip a rank can post to a
    given neighbour per exchange, times the worst-case retransmission
    count, times a two-epoch lookahead (a fast sender may enter the next
    exchange while its neighbour is still draining this one, but can
    never get further ahead: completing exchange ``e+1`` needs receives
    that need the slow rank's ``e`` posts).  Collective channels form a
    star around rank 0 and carry only tiny reduction payloads.
    """
    attempts = (policy.max_attempts if policy is not None else 1) + 1
    caps: dict = {}
    for src in range(decomp.size):
        for axis in range(decomp.global_grid.ndim):
            for side in (0, 1):
                dest = decomp.neighbor(src, axis, side)
                if dest is None:
                    continue
                payload = strip_nbytes(decomp, src, axis, n_ghost, nvars, itemsize)
                # data record + crc record, generous per-record overhead
                per_attempt = (payload + 256) + 256
                caps[(src, dest)] = caps.get((src, dest), 0) + per_attempt * attempts
    for pair in list(caps):
        caps[pair] = 4 * caps[pair] + 65536
    for r in range(1, decomp.size):
        caps.setdefault((r, 0), 0)
        caps.setdefault((0, r), 0)
        caps[(r, 0)] = max(caps[(r, 0)], 65536)
        caps[(0, r)] = max(caps[(0, r)], 65536)
    return caps


def amr_channel_capacities(n_ranks: int, block_nbytes: int,
                           headroom: int = 8) -> dict:
    """Ring capacity (bytes) for the all-pairs channels of the distributed
    AMR driver.

    Unlike the Cartesian :func:`channel_capacities`, any rank may send any
    other rank halo blocks, fine-face flux columns, and whole-block
    migration frames, so every directed pair gets the same budget:
    *headroom* worst-case ghosted-block messages (with per-record slack),
    floored at 4 MiB.  ``block_nbytes`` must be the largest single message
    a run can post — one ghosted conserved-state block — since a ring
    rejects any record bigger than its whole capacity.
    """
    per_msg = int(block_nbytes) + 512
    cap = max(4 << 20, headroom * per_msg)
    return {
        (src, dest): cap
        for src in range(n_ranks)
        for dest in range(n_ranks)
        if src != dest
    }


class ShmCommunicator:
    """Rank-local communicator over shared-memory rings.

    Mirrors the :class:`SimCommunicator` surface used by the halo layer
    and the distributed solver, but from the perspective of a single
    rank: ``send`` requires ``src == rank``, ``recv`` requires
    ``dest == rank``, and ``allreduce`` takes only this rank's
    contribution while returning the bit-identical serial reduction.
    """

    def __init__(self, rank: int, size: int, writers: dict, readers: dict,
                 metrics=None, barrier=None, timeout_s: float = 120.0,
                 board: SupervisionBoard | None = None):
        self.rank = int(rank)
        self.size = int(size)
        self._writers = writers  # {dest: ShmChannel}
        self._readers = readers  # {src: ShmChannel}
        self.traffic = TrafficLog()
        self.fault_injector = None  # faults are oracle-driven, not comm-driven
        self.metrics = metrics
        self._barrier = barrier
        self._board = board
        self.timeout_s = float(timeout_s)
        self._epoch = 0
        self._pending: dict = {}  # {(src, tag): deque of (epoch, flag, payload)}

    # -- metrics helpers -------------------------------------------------
    def _count(self, name: str, value=1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(value)

    # -- supervision probes ----------------------------------------------
    def _check_peer(self, peer: int | None = None) -> None:
        if self._board is not None:
            self._board.check(peer)

    def _probe_for(self, peer: int):
        board = self._board

        def probe() -> None:
            if board is not None:
                board.check(peer)
            # Pump inbound rings while blocked on a full outbound ring.
            # All-pairs exchange patterns (distributed-AMR halos and block
            # migration) would otherwise deadlock: two ranks can block
            # pushing to each other while both their inbound rings sit
            # full.  Draining to the pending mailbox frees peer capacity.
            self.drain_all()

        return probe

    def drain_all(self) -> None:
        """Drain every inbound ring into the pending mailbox."""
        for src in self._readers:
            self._drain(src)

    # -- epochs ----------------------------------------------------------
    def begin_exchange_epoch(self) -> None:
        """Called by the halo layer at the start of every exchange."""
        self._epoch += 1

    # -- point to point --------------------------------------------------
    def send(self, src: int, dest: int, data, tag: int = 0,
             injectable: bool = True, fault=None) -> None:
        if src != self.rank:
            raise CommunicationError(
                f"rank {self.rank} cannot send on behalf of rank {src}"
            )
        if dest not in self._writers:
            raise CommunicationError(f"no channel from rank {src} to rank {dest}")
        payload = np.ascontiguousarray(data)
        # Traffic is logged before injection, exactly like the serial path.
        self.traffic.record(src, dest, payload.nbytes)
        self._count("comm.shm.messages")
        self._count("comm.shm.bytes", payload.nbytes)
        epoch = EPOCH_CONTROL if tag >= CONTROL_TAG_BASE else self._epoch
        ring = self._writers[dest].ring
        probe = self._probe_for(dest)
        kind = fault[0] if fault is not None else None
        if kind == "drop":
            # A tombstone stands in for the serial "never buffered"
            # outcome: the receiver unblocks and sees an empty mailbox.
            blocked = ring.push(
                epoch, tag, FLAG_TOMBSTONE, None, self.timeout_s, probe
            )
        elif kind == "corrupt":
            from ..resilience.faults import corrupt_payload

            blocked = ring.push(
                epoch, tag, FLAG_DATA,
                corrupt_payload(payload, fault[1]), self.timeout_s, probe,
            )
        elif kind == "duplicate":
            blocked = ring.push(epoch, tag, FLAG_DATA, payload, self.timeout_s, probe)
            blocked += ring.push(epoch, tag, FLAG_DATA, payload, self.timeout_s, probe)
        else:
            blocked = ring.push(epoch, tag, FLAG_DATA, payload, self.timeout_s, probe)
        if blocked > 0.0 and self.metrics is not None:
            self.metrics.counter("comm.shm.send_block_s").inc(blocked)

    def _drain(self, src: int) -> int:
        """Move every available record from ``src``'s ring into pending."""
        ring = self._readers[src].ring
        moved = 0
        while True:
            rec = ring.pop()
            if rec is None:
                return moved
            epoch, tag, flag, payload = rec
            self._pending.setdefault((src, tag), []).append((epoch, flag, payload))
            moved += 1

    def recv(self, src: int, dest: int | None = None, tag: int = 0):
        if dest is None:
            dest = self.rank
        if dest != self.rank:
            raise CommunicationError(
                f"rank {self.rank} cannot recv on behalf of rank {dest}"
            )
        if src not in self._readers:
            raise CommunicationError(f"no channel from rank {src} to rank {dest}")
        key = (src, tag)
        start = None
        delay = 5e-5
        while True:
            box = self._pending.get(key)
            if box:
                epoch, flag, payload = box.pop(0)
                if start is not None and self.metrics is not None:
                    self.metrics.counter("comm.shm.recv_wait_s").inc(
                        time.perf_counter() - start
                    )
                if flag == FLAG_TOMBSTONE:
                    raise CommunicationError(
                        f"no pending message src={src} dest={dest} tag={tag}"
                    )
                return payload
            if self._drain(src):
                continue
            # Fast-fail: a dead peer can never deliver, and a supervisor
            # abort means this step is being rolled back — raise promptly
            # instead of spinning out the full timeout.
            self._check_peer(src)
            now = time.perf_counter()
            if start is None:
                start = now
            elif now - start > self.timeout_s:
                raise CommunicationError(
                    f"rank {self.rank}: timed out after {self.timeout_s:g}s "
                    f"waiting for message src={src} dest={dest} tag={tag}"
                )
            time.sleep(delay)
            delay = min(delay * 2.0, 1e-3)

    # -- mailbox management ----------------------------------------------
    def pending(self) -> int:
        """Locally visible undelivered messages (drains the rings first)."""
        for src in self._readers:
            self._drain(src)
        return sum(len(box) for box in self._pending.values())

    def discard_pending(self) -> int:
        """Drop stale halo records from this epoch or earlier.

        Matches the serial global sweep after a resilient exchange:
        control-plane records and records already posted for a *future*
        epoch (by a neighbour that raced ahead) are kept, and only real
        data counts toward the discard total — tombstones never existed
        in the serial mailboxes.
        """
        for src in self._readers:
            self._drain(src)
        discarded = 0
        for key, box in self._pending.items():
            _, tag = key
            if tag >= CONTROL_TAG_BASE:
                continue
            kept = []
            for epoch, flag, payload in box:
                if epoch <= self._epoch:
                    if flag == FLAG_DATA:
                        discarded += 1
                else:
                    kept.append((epoch, flag, payload))
            box[:] = kept
        return discarded

    # -- supervised recovery ---------------------------------------------
    def rebind_channel(self, src: int, dest: int, channel: "ShmChannel") -> None:
        """Swap in a freshly created ring for one directed pair.

        Used after a rank respawn: the parent recreates every ring that
        touched the dead rank and survivors re-attach.  The old channel's
        handle is closed (the parent owns the unlink).
        """
        pool = self._writers if src == self.rank else self._readers
        peer = dest if src == self.rank else src
        old = pool.get(peer)
        if old is not None:
            old.close()
        pool[peer] = channel

    def traffic_state(self) -> tuple:
        """Serializable snapshot of the traffic log (for rollback)."""
        log = self.traffic
        return (log.n_messages, log.n_bytes, log.n_collectives,
                dict(log.by_pair))

    def reset_after_failure(self, epoch: int, traffic: tuple) -> None:
        """Roll the communicator back to a clean step boundary.

        Drops every queued and in-flight record (stale after the
        supervisor's rollback), restores the exchange epoch and traffic
        log captured by the matching snapshot, and re-baselines the
        supervision board so the quiescing abort is considered spent.
        """
        self._pending.clear()
        for ch in self._readers.values():
            while ch.ring.pop() is not None:
                pass
        self._epoch = int(epoch)
        log = self.traffic
        log.n_messages, log.n_bytes, log.n_collectives = (
            int(traffic[0]), int(traffic[1]), int(traffic[2])
        )
        log.by_pair = defaultdict(int, traffic[3])
        if self._board is not None:
            self._board.rebaseline()

    # -- traffic markers (same surface as SimCommunicator) ---------------
    def traffic_marker(self):
        log = self.traffic
        return (log.n_bytes, log.n_messages, log.n_collectives)

    def bytes_since(self, marker) -> int:
        return self.traffic.n_bytes - marker[0]

    def messages_since(self, marker) -> int:
        return self.traffic.n_messages - marker[1]

    # -- collectives -----------------------------------------------------
    def _send_control(self, dest: int, data, tag: int) -> None:
        ring = self._writers[dest].ring
        blocked = ring.push(
            EPOCH_CONTROL, tag, FLAG_DATA, np.ascontiguousarray(data),
            self.timeout_s, self._probe_for(dest),
        )
        if blocked > 0.0 and self.metrics is not None:
            self.metrics.counter("comm.shm.send_block_s").inc(blocked)

    def allreduce(self, contributions: dict, op: str = "sum") -> dict:
        """Reduce this rank's contribution; returns ``{rank: result}``.

        Rank 0 gathers every contribution over the collective star,
        stacks them **in rank order**, and applies the same reduction as
        the serial communicator, so the result bytes are identical on
        every rank.
        """
        if op not in _REDUCTIONS:
            raise CommunicationError(f"unknown reduction {op!r}")
        if set(contributions) != {self.rank}:
            raise CommunicationError(
                f"rank {self.rank} allreduce requires exactly its own "
                f"contribution, got ranks {sorted(contributions)}"
            )
        self.traffic.n_collectives += 1
        local = np.asarray(contributions[self.rank])
        if self.size == 1:
            result = _REDUCTIONS[op](np.stack([local]), axis=0)
            return {self.rank: result.copy()}
        if self.rank == 0:
            parts = [local]
            for r in range(1, self.size):
                parts.append(np.asarray(self.recv(r, tag=TAG_REDUCE)))
            result = _REDUCTIONS[op](np.stack(parts), axis=0)
            for r in range(1, self.size):
                self._send_control(r, result, TAG_RESULT)
        else:
            self._send_control(0, local, TAG_REDUCE)
            result = self.recv(0, tag=TAG_RESULT)
        return {self.rank: np.asarray(result).copy()}

    def broadcast(self, root_value, root: int = 0):
        """Broadcast from ``root`` (must be 0: channels form a rank-0 star)."""
        if root != 0:
            raise CommunicationError("shared-memory broadcast requires root=0")
        if self.size == 1:
            return np.asarray(root_value).copy()
        if self.rank == 0:
            value = np.asarray(root_value)
            for r in range(1, self.size):
                self._send_control(r, value, TAG_BCAST)
            return value.copy()
        return self.recv(0, tag=TAG_BCAST)

    def gather(self, contribution, root: int = 0):
        """Gather to ``root`` (must be 0); returns the list there, else None."""
        if root != 0:
            raise CommunicationError("shared-memory gather requires root=0")
        if self.rank == 0:
            parts = [np.asarray(contribution).copy()]
            for r in range(1, self.size):
                parts.append(np.asarray(self.recv(r, tag=TAG_GATHER)))
            return parts
        self._send_control(0, contribution, TAG_GATHER)
        return None

    def barrier(self) -> None:
        if self._barrier is None:
            return
        start = time.perf_counter()
        self._barrier.wait(self.timeout_s)
        if self.metrics is not None:
            self.metrics.counter("comm.shm.barrier_wait_s").inc(
                time.perf_counter() - start
            )
