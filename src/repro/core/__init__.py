"""Core solver drivers: configuration, pipeline, unigrid and AMR solvers."""

from .config import SolverConfig
from .diagnostics import ConservedTotals, RunSummary
from .distributed import DistributedSolver
from .pipeline import HydroPipeline
from .solver import Solver

__all__ = [
    "SolverConfig",
    "Solver",
    "DistributedSolver",
    "HydroPipeline",
    "ConservedTotals",
    "RunSummary",
]
