"""Core solver drivers: configuration, pipeline, unigrid and AMR solvers."""

from .batch import BatchGrid, BatchPipeline, BatchSolver
from .config import SolverConfig
from .diagnostics import ConservedTotals, RunSummary
from .distributed import DistributedSolver
from .parallel import ProcessSolver, make_distributed_solver
from .pipeline import HydroPipeline
from .solver import Solver

__all__ = [
    "SolverConfig",
    "Solver",
    "BatchGrid",
    "BatchPipeline",
    "BatchSolver",
    "DistributedSolver",
    "ProcessSolver",
    "make_distributed_solver",
    "HydroPipeline",
    "ConservedTotals",
    "RunSummary",
]
