"""Distributed AMR driver: Morton-SFC block ownership + dynamic rebalancing.

:class:`DistributedAMRSolver` evolves the same forest as
:class:`~repro.core.amr_solver.AMRSolver`, but assigns every leaf block to
one of ``n_ranks`` ranks via the Morton space-filling-curve partitioner
(:mod:`repro.mesh.amr.partition`) and fills ghost zones **per rank** from
partial composites built from each rank's owned blocks plus their ghost
dependencies (:mod:`repro.mesh.amr.exchange`).  Because the composite
construction consumes only block interiors, the per-rank partial fills are
bitwise identical to the serial global fill — which is the property the
golden-stream parity tests pin at 1/2/4 ranks.

After every regrid the driver measures rank imbalance (max/mean rank work)
and, above ``AMRConfig.rebalance_threshold``, recuts the Morton curve and
migrates blocks to their new owners.  In this serial driver a "migration"
is pure bookkeeping (all blocks live in one address space); the process
backend (:mod:`repro.core.amr_parallel`) overrides the same hooks with real
shm-ring transfers, so both executors replay the identical decision
sequence.

Rank 0 is special only for metrics ownership; the decision logic is fully
replicated.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..boundary.conditions import BoundarySet
from ..mesh.amr.blocks import BlockKey
from ..mesh.amr.exchange import (
    halo_plan,
    measured_imbalance,
    migration_plan,
    rank_loads,
    reflux_plan,
)
from ..mesh.amr.partition import PARTITIONERS
from ..mesh.amr.reflux import apply_reflux
from ..mesh.grid import Grid
from ..physics.srhd import SRHDSystem
from ..utils.errors import ConfigurationError
from .amr_solver import AMRConfig, AMRSolver
from .config import SolverConfig


class DistributedAMRSolver(AMRSolver):
    """AMR evolution with leaves partitioned across *n_ranks* ranks.

    This class runs every rank's work in one process (the serial rank
    loop): ownership, per-rank ghost fills, refluxing and dynamic
    repartitioning all behave exactly as in the process backend, so it is
    both the single-process reference the parity tests compare against and
    the base class the process-backend rank worker derives from.
    """

    #: metrics-owner rank (the process backend sets the true rank id)
    rank = 0

    def __init__(
        self,
        system: SRHDSystem,
        root_grid: Grid,
        initial_data: Callable[[SRHDSystem, Grid], np.ndarray],
        config: SolverConfig | None = None,
        amr: AMRConfig | None = None,
        boundaries: BoundarySet | None = None,
        recorder=None,
        source_fn=None,
        n_ranks: int = 1,
    ):
        if n_ranks < 1:
            raise ConfigurationError(f"n_ranks must be >= 1, got {n_ranks}")
        self.n_ranks = n_ranks
        self.assignment: dict[BlockKey, int] | None = None
        self._init_distributed_state()
        super().__init__(
            system,
            root_grid,
            initial_data,
            config=config,
            amr=amr,
            boundaries=boundaries,
            recorder=recorder,
            source_fn=source_fn,
        )
        part = PARTITIONERS[self.amr.partitioner](self.forest, n_ranks)
        self.assignment = dict(part.assignment)
        self._measure_imbalance()

    def _init_distributed_state(self) -> None:
        self.repartitions = 0
        self.migrated_blocks = 0
        self._last_imbalance = 1.0
        self._halo_plan = None
        self._reflux_plan = None
        self._periodic = None
        self._owned = None

    @property
    def imbalance(self) -> float:
        """Most recently measured rank-work imbalance (max/mean)."""
        return self._last_imbalance

    # ------------------------------------------------------------------
    # Topology-derived plans
    # ------------------------------------------------------------------

    @property
    def periodic(self) -> tuple[bool, ...]:
        if self._periodic is None:
            self._periodic = tuple(
                self.wall_bcs.condition(ax, 0).name == "periodic"
                for ax in range(self.layout.ndim)
            )
        return self._periodic

    def _invalidate_plans(self) -> None:
        self._halo_plan = None
        self._reflux_plan = None
        self._owned = None

    def _get_halo_plan(self):
        if self._halo_plan is None:
            self._halo_plan = halo_plan(
                self.forest, self.assignment, self.n_ranks, self.periodic
            )
        return self._halo_plan

    def _get_reflux_plan(self):
        if self._reflux_plan is None:
            self._reflux_plan = reflux_plan(self.forest, self.assignment)
        return self._reflux_plan

    # ------------------------------------------------------------------
    # Ownership hooks
    # ------------------------------------------------------------------

    def _on_split(self, key: BlockKey) -> None:
        if self.assignment is None:
            return
        rank = self.assignment.pop(key)
        for child in key.children():
            self.assignment[child] = rank
        self._invalidate_plans()

    def _on_merge(self, parent: BlockKey) -> None:
        if self.assignment is None:
            return
        children = parent.children()
        dest = self.assignment[children[0]]
        for child in children:
            self.assignment.pop(child, None)
        self.assignment[parent] = dest
        self._invalidate_plans()

    # ------------------------------------------------------------------
    # Per-rank ghost fill and refluxing
    # ------------------------------------------------------------------

    def _fill_ghosts(self, prims: dict[BlockKey, np.ndarray]) -> None:
        if self.assignment is None:
            # Construction-time fills run before the initial partition.
            super()._fill_ghosts(prims)
            return
        plan = self._get_halo_plan()
        for rank in range(self.n_ranks):
            owned = plan.owned[rank]
            if not owned:
                continue
            fields = {k: prims[k] for k in owned}
            for k in plan.deps[rank]:
                fields[k] = prims[k]
            self.forest.fill_ghosts(
                fields, self.system.nvars, self.system, self.wall_bcs,
                only=owned,
            )
        self._count_halo_traffic(plan)

    def _count_halo_traffic(self, plan) -> None:
        """Model the cross-rank interior traffic one exchange would move
        (the process backend moves it for real over the shm rings)."""
        block_bytes = 8 * self.system.nvars * self.layout.cells_per_block()
        messages = sum(len(keys) for keys in plan.sends.values())
        if messages and self._owns_metrics():
            self.metrics.counter("comm.amr.halo_messages").inc(messages)
            self.metrics.counter("comm.amr.halo_bytes").inc(
                messages * block_bytes
            )

    def _apply_reflux(self, fluxes, dU) -> None:
        apply_reflux(self.forest, fluxes, dU)
        plan = self._get_reflux_plan()
        if plan and self._owns_metrics():
            faces = sum(len(entries) for entries in plan.values())
            self.metrics.counter("comm.amr.reflux_messages").inc(faces)

    # ------------------------------------------------------------------
    # Dynamic rebalancing
    # ------------------------------------------------------------------

    def _owns_metrics(self) -> bool:
        """Repartition metrics are counted once per fleet: by the serial
        rank loop, or by rank 0 in the process backend."""
        return self.rank == 0

    def _measure_imbalance(self) -> float:
        loads = rank_loads(self.forest, self.assignment, self.n_ranks)
        imbalance = measured_imbalance(loads)
        self._last_imbalance = imbalance
        if self._owns_metrics():
            self.metrics.gauge("amr.imbalance").set(imbalance)
        return imbalance

    def _post_regrid(self) -> None:
        if self.assignment is None:
            return
        imbalance = self._measure_imbalance()
        if imbalance <= self.amr.rebalance_threshold:
            return
        t0 = time.perf_counter()
        part = PARTITIONERS[self.amr.partitioner](self.forest, self.n_ranks)
        new_assignment = dict(part.assignment)
        moves = migration_plan(self.forest, self.assignment, new_assignment)
        if not moves:
            # The recut reproduced the current assignment — the measured
            # imbalance is irreducible at this topology (e.g. leaves don't
            # divide evenly).  Not a rebalance: no counters, no event.
            return
        self._migrate(moves, new_assignment)
        self.repartitions += 1
        self.migrated_blocks += len(moves)
        after = self._measure_imbalance()
        elapsed = time.perf_counter() - t0
        if self._owns_metrics():
            self.metrics.counter("amr.repartitions").inc()
            self.metrics.counter("amr.migrated_blocks").inc(len(moves))
            # _s suffix: wall-clock timing, excluded from canonical streams.
            self.metrics.counter("amr.repartition_s").inc(elapsed)
        self._emit_rebalance_event(
            imbalance_before=imbalance,
            imbalance_after=after,
            migrated_blocks=len(moves),
            repartitions=self.repartitions,
        )

    def _migrate(self, moves, new_assignment: dict[BlockKey, int]) -> None:
        """Adopt the new ownership map.  All block data already lives in
        this process, so the serial migration is pure bookkeeping; the
        process backend overrides this with checksummed shm transfers."""
        self.assignment = new_assignment
        self._invalidate_plans()

    def _emit_rebalance_event(self, **payload) -> None:
        if self.recorder is not None:
            self.recorder.emit_event("amr_rebalance", step=self.steps, **payload)

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------

    def _amr_record(self, step_cells: int) -> dict:
        record = super()._amr_record(step_cells)
        if self.assignment is not None:
            loads = rank_loads(self.forest, self.assignment, self.n_ranks)
            cells = self.layout.cells_per_block()
            record["imbalance"] = self._last_imbalance
            record["migrated_blocks"] = self.migrated_blocks
            record["repartitions"] = self.repartitions
            record["rank_blocks"] = {
                str(r): int(loads[r] // cells) for r in range(self.n_ranks)
            }
        return record
