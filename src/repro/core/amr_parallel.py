"""Process-backend executor for the distributed AMR driver.

:class:`AMRProcessSolver` runs one :class:`_AMRRankWorker` process per rank
in lockstep, reusing the fleet machinery of
:class:`~repro.core.parallel.ProcessSolver` (spawn/collect protocol,
supervised rank recovery, process-fault injection) with forest-shaped
workers instead of Cartesian sub-grid workers.

Bit-exactness contract: every rank holds the full replicated forest
*topology* and the per-step decision state (flags, merges, repartition
triggers) is combined through exact integer/selection reductions, so the
worker fleet replays the identical split/merge/migrate sequence as the
serial :class:`~repro.core.amr_distributed.DistributedAMRSolver` — and the
evolved block bytes match the serial :class:`~repro.core.amr_solver.
AMRSolver` exactly, before and after every block migration and across
supervised rank failures.

Construction happens once, in the parent: a serial prototype solver seeds
the forest from ``initial_data`` (which may be an unpicklable lambda), and
each worker receives its rank's blocks plus the replicated topology as
plain arrays.  Rank 0 additionally inherits the prototype's metric and
timer baselines so merged step records reproduce the serial stream.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass

import numpy as np

from ..boundary.conditions import BoundarySet
from ..comm.shm import (
    ShmChannel,
    ShmCommunicator,
    SupervisionBoard,
    amr_channel_capacities,
)
from ..mesh.amr.blocks import BlockKey
from ..mesh.amr.exchange import (
    TAG_AMR_HALO,
    TAG_AMR_FLUX,
    TAG_AMR_MERGE,
    TAG_AMR_MIGRATE,
    block_frame_header,
    check_block_frame,
    check_block_payload,
    face_flux_column,
    merge_plan,
    stats_from_vector,
    stats_vector,
)
from ..mesh.amr.forest import AMRForest
from ..mesh.amr.reflux import apply_reflux
from ..mesh.amr.transfer import restrict_array
from ..mesh.grid import Grid
from ..obs.events import BufferSink
from ..obs.recorder import StepRecorder
from ..physics.srhd import SRHDSystem
from ..utils.errors import ConfigurationError, WorkerError
from .amr_distributed import DistributedAMRSolver
from .amr_solver import AMRConfig, AMRSolver
from .config import SolverConfig
from .parallel import ProcessSolver, _MergedMetrics


def _validate_amr_plan(plan, n_ranks: int) -> None:
    if plan is None:
        return
    if plan.halo or plan.devices or plan.con2prim or plan.halo_random:
        raise ConfigurationError(
            "the distributed AMR driver supports only process faults "
            "(kill_rank/hang_rank); logical halo/device/con2prim faults "
            "target the Cartesian executors"
        )
    for fault in plan.processes:
        if fault.rank >= n_ranks:
            raise ConfigurationError(
                f"process fault targets rank {fault.rank} but the AMR run "
                f"has only {n_ranks} ranks"
            )


@dataclass
class _AMRWorkerSpec:
    """Everything one AMR rank worker needs to rebuild itself (picklable)."""

    rank: int
    size: int
    system: SRHDSystem
    root_grid: Grid
    config: SolverConfig
    amr: AMRConfig
    wall_bcs: BoundarySet
    source_fn: object
    #: initial install state (same shape as ``supervision_state()``)
    state: dict
    channels: dict  # {(src, dest): (shm_name, capacity)} touching this rank
    comm_timeout_s: float
    barrier_timeout_s: float
    board_name: str
    heartbeat_interval_s: float
    defer_init: bool = False

    def build(self, board: SupervisionBoard) -> "_AMRRankWorker":
        return _AMRRankWorker(self, board)


class _AMRRankWorker(DistributedAMRSolver):
    """One rank of the distributed AMR run, inside a worker process.

    Inherits the full decision logic of :class:`DistributedAMRSolver` and
    swaps the rank loop for real shm-ring exchange: halo interiors, fine
    face-flux columns, merge quarters, and checksummed block-migration
    frames travel between ranks, while flags and dt reduce through the
    communicator's exact collectives.
    """

    def __init__(self, spec: _AMRWorkerSpec, board: SupervisionBoard):
        self.rank = spec.rank
        self.n_ranks = spec.size
        self.spec = spec
        self._barrier = board
        self._barrier_timeout = spec.barrier_timeout_s
        self.assignment = None
        self._init_distributed_state()
        self._pipe_state: dict[BlockKey, tuple] = {}
        self._init_core(
            spec.system, spec.root_grid, spec.config, spec.amr,
            spec.wall_bcs, None, spec.source_fn,
        )
        self.recorder = StepRecorder(BufferSink())

        writers: dict = {}
        readers: dict = {}
        self._channels = []
        for (src, dest), (name, cap) in spec.channels.items():
            ch = ShmChannel.attach(name, cap)
            self._channels.append(ch)
            if src == self.rank:
                writers[dest] = ch
            if dest == self.rank:
                readers[src] = ch
        self.comm = ShmCommunicator(
            self.rank, spec.size, writers, readers,
            metrics=self.metrics, barrier=board,
            timeout_s=spec.comm_timeout_s, board=board,
        )
        self._install_state(spec.state)
        self._process_t0 = time.process_time()

    # ------------------------------------------------------------------
    # State install / snapshot (shared by construction and supervision)
    # ------------------------------------------------------------------

    def _install_state(self, state: dict) -> None:
        """Rebuild forest topology, block data, and counters from *state*.

        Leaf insertion order is part of the byte-level contract (every
        iteration the drivers do follows it), so the ordered leaf list is
        replayed verbatim.
        """
        forest = AMRForest(self.layout, self.amr.max_levels)
        for key in state["leaves"]:
            forest.add_leaf(key, None)
        forest.refined = set(state["refined"])
        self.forest = forest
        self._pipelines = {}
        self._pipe_state = {}
        for key, (cons, p_cache, stats_vec) in state["blocks"].items():
            self.forest.leaves[key].cons = np.array(cons)
            self._pipe_state[key] = (
                None if p_cache is None else np.array(p_cache),
                None if stats_vec is None else stats_from_vector(stats_vec),
            )
        self.assignment = dict(state["assignment"])
        self._invalidate_plans()
        self.t = float(state["t"])
        self.steps = int(state["steps"])
        self.cells_updated = int(state["cells_updated"])
        self.regrids = int(state["regrids"])
        self.repartitions = int(state["repartitions"])
        self.migrated_blocks = int(state["migrated_blocks"])
        self._last_imbalance = float(state["imbalance"])
        if state.get("metrics") is not None:
            self.metrics.restore(state["metrics"])
        if state.get("timers") is not None:
            self.timers.restore(state["timers"])
        if state.get("recorder") is not None:
            self.recorder.restore_state(state["recorder"])

    def _block_state(self, key: BlockKey) -> tuple:
        pipe = self._pipelines.get(key)
        if pipe is not None:
            p_cache = pipe._p_cache
            return (
                None if p_cache is None else p_cache.copy(),
                stats_vector(pipe.recovery_stats),
            )
        staged = self._pipe_state.get(key)
        if staged is not None:
            p_cache, stats = staged
            return (
                None if p_cache is None else p_cache.copy(),
                None if stats is None else stats_vector(stats),
            )
        return None, None

    def supervision_state(self) -> dict:
        blocks = {}
        for key in self._step_keys():
            p_cache, stats_vec = self._block_state(key)
            blocks[key] = (
                self.forest.leaves[key].cons.copy(), p_cache, stats_vec
            )
        return {
            "leaves": list(self.forest.leaves),
            "refined": sorted(self.forest.refined),
            "assignment": dict(self.assignment),
            "blocks": blocks,
            "t": self.t,
            "steps": self.steps,
            "cells_updated": self.cells_updated,
            "regrids": self.regrids,
            "repartitions": self.repartitions,
            "migrated_blocks": self.migrated_blocks,
            "imbalance": self._last_imbalance,
            "metrics": self.metrics.snapshot(),
            "timers": self.timers.state(),
            "recorder": self.recorder.state(),
            "traffic": self.comm.traffic_state(),
            "epoch": self.comm._epoch,
        }

    def restore_supervision_state(self, state: dict) -> None:
        """Roll back to a step boundary after a rank failure: forest,
        blocks, warm-start caches, counters, and the communicator (pending
        records dropped, epoch and traffic restored, board re-baselined)."""
        self._install_state(state)
        self.comm.reset_after_failure(state["epoch"], state["traffic"])

    # ------------------------------------------------------------------
    # Pipeline warm-start migration hook
    # ------------------------------------------------------------------

    def _on_new_pipeline(self, key: BlockKey, pipe) -> None:
        staged = self._pipe_state.pop(key, None)
        if staged is None:
            return
        p_cache, stats = staged
        pipe._p_cache = p_cache
        if stats is not None:
            pipe.recovery_stats = stats

    # ------------------------------------------------------------------
    # Rank-local evolution set
    # ------------------------------------------------------------------

    def _step_keys(self) -> list[BlockKey]:
        if self._owned is None:
            self._owned = [
                k for k in self.forest.leaves
                if self.assignment[k] == self.rank
            ]
        return self._owned

    def _flags_here(self, key: BlockKey) -> bool:
        return self.assignment[key] == self.rank

    def _combine_flags(self, flags: np.ndarray) -> np.ndarray:
        out = self.comm.allreduce({self.rank: flags}, "sum")
        return out[self.rank]

    def _reduce_dt(self, local_min: float) -> float:
        out = self.comm.allreduce(
            {self.rank: np.asarray([local_min])}, "min"
        )
        return float(out[self.rank][0])

    # ------------------------------------------------------------------
    # Ghost exchange
    # ------------------------------------------------------------------

    def _fill_ghosts(self, prims: dict[BlockKey, np.ndarray]) -> None:
        plan = self._get_halo_plan()
        owned = plan.owned[self.rank]
        self.comm.begin_exchange_epoch()
        for (src, dst), keys in plan.sends.items():
            if src != self.rank:
                continue
            for key in keys:
                leaf = self.forest.leaves[key]
                self.comm.send(
                    self.rank, dst, leaf.grid.interior_of(prims[key]),
                    tag=TAG_AMR_HALO,
                )
        fields = {k: prims[k] for k in owned}
        for (src, dst), keys in plan.sends.items():
            if dst != self.rank:
                continue
            for key in keys:
                data = self.comm.recv(src, tag=TAG_AMR_HALO)
                leaf = self.forest.leaves[key]
                arr = leaf.grid.allocate(self.system.nvars)
                leaf.grid.interior_of(arr)[...] = data
                fields[key] = arr
        if owned:
            self.forest.fill_ghosts(
                fields, self.system.nvars, self.system, self.wall_bcs,
                only=owned,
            )

    def _count_halo_traffic(self, plan) -> None:
        pass  # real traffic is counted by the communicator (comm.shm.*)

    # ------------------------------------------------------------------
    # Refluxing across ranks
    # ------------------------------------------------------------------

    def _apply_reflux(self, fluxes, dU) -> None:
        plan = self._get_reflux_plan()
        B = self.layout.block_size
        for (src, dst), entries in plan.items():
            if src != self.rank:
                continue
            for child, axis in entries:
                self.comm.send(
                    self.rank, dst,
                    face_flux_column(fluxes[child], child, axis, B),
                    tag=TAG_AMR_FLUX,
                )
        remote_faces: dict = {}
        for (src, dst), entries in plan.items():
            if dst != self.rank:
                continue
            for child, axis in entries:
                remote_faces[(child, axis)] = self.comm.recv(
                    src, tag=TAG_AMR_FLUX
                )
        apply_reflux(
            self.forest, fluxes, dU,
            remote_faces=remote_faces, only=self._step_keys(),
        )

    # ------------------------------------------------------------------
    # Topology changes with remote data
    # ------------------------------------------------------------------

    def _split_leaf(self, key, from_initial_data=False, ghosted_prim=None):
        if self.assignment is not None and self.assignment[key] != self.rank:
            # Topology-only split: the block's data lives on its owner.
            self.forest.split(key, {c: None for c in key.children()})
            self._drop_pipeline(key)
            self._on_split(key)
            return
        super()._split_leaf(
            key, from_initial_data=from_initial_data,
            ghosted_prim=ghosted_prim,
        )

    def _merge_groups(self, merges: list[BlockKey]) -> None:
        if not merges:
            return
        plan = merge_plan(merges, self.assignment)
        ndim = self.layout.ndim
        half = self.layout.block_size // 2
        qshape = (self.system.nvars,) + (half,) * ndim
        for parent, child, src, dst in plan:
            if src != self.rank:
                continue
            leaf = self.forest.leaves[child]
            self.comm.send(
                self.rank, dst,
                restrict_array(leaf.grid.interior_of(leaf.cons), ndim),
                tag=TAG_AMR_MERGE,
            )
        received: dict = {}
        for parent, child, src, dst in plan:
            if dst != self.rank:
                continue
            data = np.asarray(self.comm.recv(src, tag=TAG_AMR_MERGE))
            received[(parent, child)] = check_block_payload(
                data, qshape, "merge quarter", child
            )
        for parent in merges:
            self._merge_with(parent, received)

    def _merge_with(self, parent: BlockKey, received: dict) -> None:
        children = parent.children()
        dst = self.assignment[children[0]]
        self._on_merge(parent)
        cons = None
        if dst == self.rank:
            grid = self.layout.grid_for(parent)
            cons = grid.allocate(self.system.nvars)
            half = self.layout.block_size // 2
            for child in children:
                data = received.get((parent, child))
                if data is None:
                    leaf = self.forest.leaves[child]
                    data = restrict_array(
                        leaf.grid.interior_of(leaf.cons), self.layout.ndim
                    )
                off = child.child_offset()
                sel = (slice(None),) + tuple(
                    slice(o * half, (o + 1) * half) for o in off
                )
                grid.interior_of(cons)[sel] = data
        for child in children:
            self._drop_pipeline(child)
            self._pipe_state.pop(child, None)
        self.forest.merge(parent, cons)

    # ------------------------------------------------------------------
    # Block migration
    # ------------------------------------------------------------------

    def _migrate(self, moves, new_assignment: dict[BlockKey, int]) -> None:
        """Ship departing blocks, validate every incoming frame, then
        install — a torn or corrupt frame raises
        :class:`~repro.utils.errors.BlockMigrationError` before any forest
        state changes."""
        outgoing = [m for m in moves if m[1] == self.rank]
        incoming = [m for m in moves if m[2] == self.rank]
        for key, _src, dst in outgoing:
            leaf = self.forest.leaves[key]
            pipe = self._pipelines.get(key)
            staged = self._pipe_state.get(key)
            if pipe is not None:
                p_cache = pipe._p_cache
                stats = pipe.recovery_stats
            elif staged is not None:
                p_cache, stats = staged
            else:
                p_cache = stats = None
            header = block_frame_header(key, leaf.cons, p_cache, stats)
            self.comm.send(self.rank, dst, header, tag=TAG_AMR_MIGRATE)
            self.comm.send(self.rank, dst, leaf.cons, tag=TAG_AMR_MIGRATE)
            if p_cache is not None:
                self.comm.send(self.rank, dst, p_cache, tag=TAG_AMR_MIGRATE)
        staged_in = []
        for key, src, _dst in incoming:
            leaf = self.forest.leaves[key]
            gshape = (self.system.nvars,) + tuple(
                n + 2 * leaf.grid.n_ghost for n in leaf.grid.shape
            )
            header = self.comm.recv(src, tag=TAG_AMR_MIGRATE)
            has_pcache, stats = check_block_frame(header, key, gshape)
            cons = check_block_payload(
                np.asarray(self.comm.recv(src, tag=TAG_AMR_MIGRATE)),
                gshape, "cons", key,
            )
            p_cache = None
            if has_pcache:
                # The con2prim warm-start cache holds only the pressure
                # variable over the block interior.
                pshape = tuple(leaf.grid.shape)
                p_cache = check_block_payload(
                    np.asarray(self.comm.recv(src, tag=TAG_AMR_MIGRATE)),
                    pshape, "p_cache", key,
                )
            staged_in.append((key, cons, p_cache, stats))
        # Validate-all-then-install: nothing above mutated the forest.
        for key, cons, p_cache, stats in staged_in:
            self.forest.leaves[key].cons = cons
            self._drop_pipeline(key)
            self._pipe_state[key] = (p_cache, stats)
        for key, _src, _dst in outgoing:
            self.forest.leaves[key].cons = None
            self._drop_pipeline(key)
            self._pipe_state.pop(key, None)
        self.assignment = dict(new_assignment)
        self._invalidate_plans()

    def _emit_rebalance_event(self, **payload) -> None:
        pass  # the parent emits the event from the merged record delta

    # ------------------------------------------------------------------
    # Worker-process protocol surface
    # ------------------------------------------------------------------

    def step(self, dt=None, t_final=None):
        self._barrier.wait(self._barrier_timeout)
        out_dt = AMRSolver.step(self, dt=dt, t_final=t_final)
        return out_dt, self.recorder.sink.records.pop()

    @property
    def cons(self) -> dict[BlockKey, np.ndarray]:
        """Owned blocks' ghosted conserved arrays (``gather_cons`` reply)."""
        return {k: self.forest.leaves[k].cons for k in self._step_keys()}

    def interior_primitives(self) -> dict[BlockKey, np.ndarray]:
        return {
            k: self.forest.leaves[k].grid.interior_of(
                self._pipeline(k).recover_primitives(
                    self.forest.leaves[k].cons
                )
            ).copy()
            for k in self._step_keys()
        }

    def snapshot(self) -> dict:
        return {
            "metrics": self.metrics.snapshot(),
            "timers": {name: t.elapsed for name, t in self.timers.items()},
            "process_seconds": time.process_time() - self._process_t0,
        }

    def checkpoint_state(self):
        raise WorkerError(
            "in-run checkpointing is not supported by the distributed AMR "
            "driver"
        )

    def restore_state(self, *args):
        raise WorkerError(
            "in-run checkpointing is not supported by the distributed AMR "
            "driver"
        )

    def rebind(self, channels: dict) -> None:
        """Attach freshly recreated shm rings (a peer was respawned)."""
        for (src, dest), (name, cap) in channels.items():
            ch = ShmChannel.attach(name, cap)
            self._channels.append(ch)
            self.comm.rebind_channel(src, dest, ch)

    def close(self) -> None:
        for ch in self._channels:
            try:
                ch.close()
            except Exception:
                pass


class AMRProcessSolver(ProcessSolver):
    """Multi-process executor for :class:`DistributedAMRSolver`.

    Same step/record/supervision surface as :class:`ProcessSolver`, with a
    forest instead of a Cartesian decomposition: blocks are partitioned by
    the Morton curve, ghost and reflux data travel over all-pairs shm
    rings, and dynamic repartitioning migrates whole blocks between worker
    processes.  Results are bit-identical to the serial
    :class:`~repro.core.amr_solver.AMRSolver` (the test tier pins this at
    1/2/4 ranks, through migrations and injected process faults).
    """

    def __init__(
        self,
        system: SRHDSystem,
        root_grid: Grid,
        initial_data,
        config: SolverConfig | None = None,
        amr: AMRConfig | None = None,
        boundaries: BoundarySet | None = None,
        recorder: "StepRecorder | None" = None,
        source_fn=None,
        n_ranks: int = 2,
        fault_injector=None,
        comm_timeout_s: float = 120.0,
        step_timeout_s: float = 600.0,
        ready_timeout_s: float = 180.0,
        supervision=None,
    ):
        plan = fault_injector.plan if fault_injector is not None else None
        _validate_amr_plan(plan, n_ranks)
        if supervision is not None and supervision.degrade:
            raise ConfigurationError(
                "degrade-to-serial is not supported by the distributed AMR "
                "driver; use degrade=False"
            )
        proto = DistributedAMRSolver(
            system, root_grid, initial_data,
            config=config, amr=amr, boundaries=boundaries,
            source_fn=source_fn, n_ranks=n_ranks,
        )
        self.system = system
        self.root_grid = root_grid
        self.config = proto.config
        self.amr = proto.amr
        self.layout = proto.layout
        self.recorder = recorder
        self.supervision = supervision
        self._plan = plan
        self.n_ranks = int(n_ranks)
        self.t = 0.0
        self.steps = 0
        self.step_timeout_s = float(step_timeout_s)
        self.metrics = _MergedMetrics(self)
        self._closed = False
        self._last_record: dict | None = None
        self._wall_bcs = proto.wall_bcs
        self._source_fn = source_fn
        self._comm_timeout_s = float(comm_timeout_s)
        self._ready_timeout_s = float(ready_timeout_s)
        self._heartbeat_interval_s = (
            supervision.heartbeat_interval_s if supervision is not None
            else 0.25
        )
        self._snapshot: dict | None = None
        self._emitted = 0
        self._restarts_used = 0
        self._restart_rounds = 0
        self._process_faults_fired: set[int] = set()
        self._local_prev: dict = {}
        self._last_amr: dict | None = None

        self._init_states = self._states_from_proto(proto)

        g = root_grid.n_ghost
        B = self.amr.block_size
        block_nbytes = 8 * system.nvars * (B + 2 * g) ** root_grid.ndim
        caps = amr_channel_capacities(self.n_ranks, block_nbytes)
        self._caps = dict(caps)
        self._segments: list[str] = []
        self._channels: dict = {}
        for pair, cap in caps.items():
            ch = ShmChannel.create(cap)
            self._channels[pair] = ch
            self._segments.append(ch.name)

        self._ctx = mp.get_context("spawn")
        self._board = SupervisionBoard.create(self.size)
        self._segments.append(self._board.name)
        self._procs: dict[int, mp.Process] = {}
        self._conns: dict = {}
        try:
            for rank in range(self.size):
                self._spawn(rank)
            self._collect("ready", timeout_s=self._ready_timeout_s)
            if supervision is not None:
                self._snapshot = self._gather_supervision_state()
        except BaseException:
            self._abort()
            raise

    def _states_from_proto(self, proto: DistributedAMRSolver) -> dict:
        """Per-rank initial install states from the prototype solver.

        Rank 0 carries the prototype's full metric/timer baselines (the
        construction-time con2prim work), so merged step records reproduce
        the serial recorder stream byte for byte.
        """
        topo_leaves = list(proto.forest.leaves)
        topo_refined = sorted(proto.forest.refined)
        metrics_snap = proto.metrics.snapshot()
        timers_state = proto.timers.state()
        states = {}
        for rank in range(self.n_ranks):
            blocks = {}
            for key in topo_leaves:
                if proto.assignment[key] != rank:
                    continue
                leaf = proto.forest.leaves[key]
                pipe = proto._pipelines.get(key)
                p_cache = (
                    None if pipe is None or pipe._p_cache is None
                    else pipe._p_cache.copy()
                )
                stats_vec = (
                    None if pipe is None
                    else stats_vector(pipe.recovery_stats)
                )
                blocks[key] = (leaf.cons.copy(), p_cache, stats_vec)
            states[rank] = {
                "leaves": topo_leaves,
                "refined": topo_refined,
                "assignment": dict(proto.assignment),
                "blocks": blocks,
                "t": proto.t,
                "steps": proto.steps,
                "cells_updated": proto.cells_updated,
                "regrids": proto.regrids,
                "repartitions": proto.repartitions,
                "migrated_blocks": proto.migrated_blocks,
                "imbalance": proto._last_imbalance,
                "metrics": metrics_snap if rank == 0 else None,
                "timers": timers_state if rank == 0 else None,
                "recorder": None,
                "traffic": None,
                "epoch": None,
            }
        return states

    def _make_spec(self, rank: int, defer_init: bool = False) -> _AMRWorkerSpec:
        return _AMRWorkerSpec(
            rank=rank,
            size=self.size,
            system=self.system,
            root_grid=self.root_grid,
            config=self.config,
            amr=self.amr,
            wall_bcs=self._wall_bcs,
            source_fn=self._source_fn,
            state=self._init_states[rank],
            channels={
                pair: (ch.name, ch.capacity)
                for pair, ch in self._channels.items()
                if rank in pair
            },
            comm_timeout_s=self._comm_timeout_s,
            barrier_timeout_s=self.step_timeout_s,
            board_name=self._board.name,
            heartbeat_interval_s=self._heartbeat_interval_s,
            defer_init=defer_init,
        )

    @property
    def size(self) -> int:
        return self.n_ranks

    # Rebalance bookkeeping mirrored from the workers' last step record,
    # matching the DistributedAMRSolver surface.
    @property
    def repartitions(self) -> int:
        return int((self._last_amr or {}).get("repartitions", 0))

    @property
    def migrated_blocks(self) -> int:
        return int((self._last_amr or {}).get("migrated_blocks", 0))

    @property
    def imbalance(self) -> float:
        return float((self._last_amr or {}).get("imbalance", 1.0))

    def _emit_step_record(self, merged: dict) -> None:
        amr = merged.get("amr")
        if amr is not None:
            prev = self._last_amr or {}
            reps = amr.get("repartitions", 0) - prev.get("repartitions", 0)
            if reps and self.recorder is not None:
                self.recorder.emit_event(
                    "amr_rebalance",
                    step=merged["step"],
                    imbalance_after=amr.get("imbalance"),
                    migrated_blocks=(
                        amr.get("migrated_blocks", 0)
                        - prev.get("migrated_blocks", 0)
                    ),
                    repartitions=amr.get("repartitions"),
                )
            self._last_amr = dict(amr)
        super()._emit_step_record(merged)

    def run(self, t_final, max_steps=None, checkpoint_every=0,
            checkpoint_path=None) -> None:
        if checkpoint_every:
            raise ConfigurationError(
                "in-run checkpointing is not supported by the distributed "
                "AMR driver"
            )
        super().run(t_final, max_steps=max_steps)

    def gather_blocks(self) -> dict[BlockKey, np.ndarray]:
        """Every leaf's ghosted conserved array, merged across ranks."""
        self._command_all("gather_cons")
        replies = self._collect("cons")
        out: dict[BlockKey, np.ndarray] = {}
        for rank in range(self.size):
            out.update(replies[rank][2])
        return out

    def gather_block_primitives(self) -> dict[BlockKey, np.ndarray]:
        """Every leaf's interior primitives, merged across ranks."""
        self._command_all("gather_prims")
        replies = self._collect("prims")
        out: dict[BlockKey, np.ndarray] = {}
        for rank in range(self.size):
            out.update(replies[rank][2])
        return out

    def gather_primitives(self):
        raise ConfigurationError(
            "the AMR executor gathers per-block data; use gather_blocks() "
            "or gather_block_primitives()"
        )

    def checkpoint_shards(self):
        raise ConfigurationError(
            "in-run checkpointing is not supported by the distributed AMR "
            "driver"
        )

    def restore_state(self, *args):
        raise ConfigurationError(
            "in-run checkpointing is not supported by the distributed AMR "
            "driver"
        )


def make_distributed_amr_solver(
    system: SRHDSystem,
    root_grid: Grid,
    initial_data,
    config: SolverConfig | None = None,
    amr: AMRConfig | None = None,
    n_ranks: int = 1,
    **kwargs,
):
    """Build the distributed AMR solver selected by ``config.executor``.

    ``"serial"`` returns the in-process rank loop
    (:class:`DistributedAMRSolver`), ``"process"`` the multi-core
    :class:`AMRProcessSolver` — same decision sequence, bit-identical
    block bytes.
    """
    cfg = config or SolverConfig()
    if cfg.executor == "process":
        return AMRProcessSolver(
            system, root_grid, initial_data,
            config=cfg, amr=amr, n_ranks=n_ranks, **kwargs,
        )
    kwargs.pop("comm_timeout_s", None)
    kwargs.pop("step_timeout_s", None)
    kwargs.pop("ready_timeout_s", None)
    kwargs.pop("supervision", None)
    kwargs.pop("fault_injector", None)
    return DistributedAMRSolver(
        system, root_grid, initial_data,
        config=cfg, amr=amr, n_ranks=n_ranks, **kwargs,
    )
