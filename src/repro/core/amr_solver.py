"""Adaptive-mesh-refinement solver driver.

Evolves the leaf blocks of an :class:`~repro.mesh.amr.forest.AMRForest`
with the same HRSC pipeline as the unigrid solver: shared global time step
(no subcycling), ghost zones filled per RK stage from the composite-level
snapshots, gradient-based regridding with 2:1 balance enforcement.

The headline accounting for experiment E11 is :attr:`cells_updated` — the
number of leaf-cell RK-stage updates actually performed — against the error
measured on the composite solution.

Every regrid decision is made from one *ghosted snapshot* (all leaves
recovered once, ghosts filled once) and applied in the forest's leaf
iteration order, so the sequence of topology changes is a deterministic
function of the snapshot.  The distributed driver
(:class:`~repro.core.amr_distributed.DistributedAMRSolver`) relies on this:
each rank flags only the leaves it owns, the flags are combined, and every
rank replays the identical split/merge sequence.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..boundary.conditions import BoundarySet, InteriorFace, make_boundaries
from ..mesh.amr.blocks import BlockKey, BlockLayout
from ..mesh.amr.criteria import GradientCriterion
from ..mesh.amr.forest import AMRForest
from ..mesh.amr.transfer import prolong_array, restrict_array
from ..mesh.grid import Grid
from ..obs.metrics import MetricsRegistry
from ..physics.srhd import SRHDSystem
from ..time_integration.cfl import clip_dt_to_final, compute_dt
from ..time_integration.ssprk import make_integrator
from ..utils.errors import ConfigurationError
from ..utils.parameters import ParameterSet, param
from ..utils.timers import TimerRegistry
from .config import SolverConfig
from .distributed import _DictState
from .pipeline import HydroPipeline

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.recorder import StepRecorder


class AMRConfig(ParameterSet):
    """Refinement policy knobs."""

    block_size = param(16, int, lambda v: v >= 8, "cells per block per axis")
    max_levels = param(3, int, lambda v: 1 <= v <= 8, "number of levels (incl. root)")
    refine_threshold = param(
        0.05, float, lambda v: v > 0, "scaled-gradient refinement trigger"
    )
    coarsen_threshold = param(
        0.0125, float, lambda v: v > 0, "scaled-gradient coarsening trigger"
    )
    regrid_interval = param(5, int, lambda v: v >= 1, "steps between regrids")
    initial_regrid_passes = param(
        4, int, lambda v: v >= 0, "refinement sweeps over the initial data"
    )
    reflux = param(
        True, bool, doc="conservative flux correction at coarse-fine faces"
    )
    rebalance_threshold = param(
        1.25,
        float,
        lambda v: v >= 1.0,
        "repartition when max/mean rank work exceeds this after a regrid",
    )
    partitioner = param(
        "sfc",
        str,
        lambda v: v in ("sfc", "round-robin", "random"),
        "leaf-to-rank partitioner used by the distributed driver",
    )


class AMRSolver:
    """Block-structured AMR evolution of the SRHD system.

    Parameters
    ----------
    system:
        SRHD physics.
    root_grid:
        Level-0 uniform grid; its shape must tile by ``amr.block_size``.
    initial_data:
        Callable ``(system, grid) -> prim`` evaluated per block grid, so
        newly created fine blocks at t = 0 sample the analytic data at full
        resolution.
    config:
        Numerical scheme configuration (shared with the unigrid solver).
    amr:
        Refinement policy.
    boundaries:
        Physical wall conditions (outflow default).
    recorder:
        Optional :class:`~repro.obs.StepRecorder`; per-step records carry
        forest shape (leaf counts, cells updated) alongside the shared
        kernel timings and counters of every block pipeline.
    """

    def __init__(
        self,
        system: SRHDSystem,
        root_grid: Grid,
        initial_data: Callable[[SRHDSystem, Grid], np.ndarray],
        config: SolverConfig | None = None,
        amr: AMRConfig | None = None,
        boundaries: BoundarySet | None = None,
        recorder: "StepRecorder | None" = None,
        source_fn=None,
    ):
        self._init_core(
            system, root_grid, config, amr, boundaries, recorder, source_fn
        )
        self._initial_data = initial_data

        # Root tiling from the analytic initial data.
        for key in self.layout.root_keys():
            grid = self.layout.grid_for(key)
            prim = initial_data(system, grid).astype(float, copy=True)
            self.forest.add_leaf(key, system.prim_to_con(prim))
        # Initial refinement sweeps resolve features present at t = 0.
        for _ in range(self.amr.initial_regrid_passes):
            if not self._initial_refine_pass():
                break
        self._enforce_balance(from_initial_data=True)

    def _init_core(
        self,
        system: SRHDSystem,
        root_grid: Grid,
        config: SolverConfig | None,
        amr: AMRConfig | None,
        boundaries: BoundarySet | None,
        recorder: "StepRecorder | None",
        source_fn,
    ) -> None:
        """Everything except initial-data seeding — shared with the
        process-backend rank worker, which rebuilds its forest from shipped
        state instead of evaluating ``initial_data``."""
        if system.ndim != root_grid.ndim:
            raise ConfigurationError("system/grid dimensionality mismatch")
        self.system = system
        self.config = config or SolverConfig()
        self.amr = amr or AMRConfig()
        self.wall_bcs = boundaries or make_boundaries("outflow")
        self.layout = BlockLayout(root_grid, self.amr.block_size)
        self.forest = AMRForest(self.layout, self.amr.max_levels)
        self.criterion = GradientCriterion(
            self.amr.refine_threshold, self.amr.coarsen_threshold
        )
        self.integrator = make_integrator(self.config.integrator)
        self._initial_data = None
        self.source_fn = source_fn
        self._pipelines: dict[BlockKey, HydroPipeline] = {}
        self._interior_bcs = BoundarySet(default=InteriorFace())
        # Shared across every block pipeline so timings/counters aggregate
        # over the whole forest.
        self.timers = TimerRegistry()
        self.metrics = MetricsRegistry()
        self.recorder = recorder

        self.t = 0.0
        self.steps = 0
        self.cells_updated = 0
        self.regrids = 0

    # ------------------------------------------------------------------
    # Pipelines
    # ------------------------------------------------------------------

    def _pipeline(self, key: BlockKey) -> HydroPipeline:
        pipe = self._pipelines.get(key)
        if pipe is None:
            pipe = HydroPipeline(
                self.system,
                self.forest.leaves[key].grid,
                self._interior_bcs,
                self.config,
                timers=self.timers,
                metrics=self.metrics,
            )
            pipe.store_fluxes = self.amr.reflux
            pipe.source_fn = self.source_fn
            pipe.time = self.t
            self._pipelines[key] = pipe
            self._on_new_pipeline(key, pipe)
        return pipe

    def _on_new_pipeline(self, key: BlockKey, pipe: HydroPipeline) -> None:
        """Hook: the process-backend worker seeds migrated-in warm-start
        state (p_cache, recovery stats) here."""

    def _drop_pipeline(self, key: BlockKey) -> None:
        self._pipelines.pop(key, None)

    # ------------------------------------------------------------------
    # Ghosted snapshots
    # ------------------------------------------------------------------

    def _recover_leaf_prims(self) -> dict[BlockKey, np.ndarray]:
        """Recover primitives for every leaf this driver evolves, in leaf
        iteration order (warm-start caches make the order part of the
        byte-level contract)."""
        return {
            k: self._pipeline(k).recover_primitives(self.forest.leaves[k].cons)
            for k in self._step_keys()
        }

    def _fill_ghosts(self, prims: dict[BlockKey, np.ndarray]) -> None:
        """Ghost-fill hook: the distributed drivers swap in per-rank
        partial fills (plus inter-rank exchange in the process backend)."""
        self.forest.fill_ghosts(prims, self.system.nvars, self.system, self.wall_bcs)

    def _ghosted_snapshot(self) -> dict[BlockKey, np.ndarray]:
        """Recover every evolved leaf once and fill ghosts once; all regrid
        decisions and prolongations read this snapshot."""
        prims = self._recover_leaf_prims()
        self._fill_ghosts(prims)
        return prims

    # ------------------------------------------------------------------
    # Refinement operations
    # ------------------------------------------------------------------

    def _split_leaf(
        self,
        key: BlockKey,
        from_initial_data: bool = False,
        ghosted_prim: np.ndarray | None = None,
    ) -> None:
        """Refine one leaf; children get analytic data at t=0, primitives
        prolonged from the supplied ghosted snapshot afterwards."""
        children = key.children()
        child_cons: dict[BlockKey, np.ndarray] = {}
        if from_initial_data and self.t == 0.0:
            for child in children:
                grid = self.layout.grid_for(child)
                prim = self._initial_data(self.system, grid).astype(float, copy=True)
                child_cons[child] = self.system.prim_to_con(prim)
        else:
            if ghosted_prim is None:
                raise ConfigurationError(
                    f"split of {key} at t > 0 requires a ghosted snapshot"
                )
            leaf = self.forest.leaves[key]
            g = leaf.grid.n_ghost
            B = self.layout.block_size
            pad = (slice(None),) + (slice(g - 1, g + B + 1),) * self.layout.ndim
            fine_prim = prolong_array(ghosted_prim[pad], self.layout.ndim)
            for child in children:
                grid = self.layout.grid_for(child)
                child_prim = grid.allocate(self.system.nvars)
                off = child.child_offset()
                sel = (slice(None),) + tuple(
                    slice(o * B, (o + 1) * B) for o in off
                )
                grid.interior_of(child_prim)[...] = fine_prim[sel]
                # Ghosts are filled on the next stage; seed with the edge
                # values so prim_to_con stays physical.
                self.wall_bcs.apply(self.system, grid, child_prim)
                child_cons[child] = self.system.prim_to_con(child_prim)
        self.forest.split(key, child_cons)
        self._drop_pipeline(key)
        self._on_split(key)

    def _on_split(self, key: BlockKey) -> None:
        """Hook: ownership bookkeeping for the distributed drivers."""

    def _merge_siblings(self, parent: BlockKey) -> None:
        self._on_merge(parent)
        children = parent.children()
        grid = self.layout.grid_for(parent)
        cons = grid.allocate(self.system.nvars)
        B = self.layout.block_size
        half = B // 2
        for child in children:
            data = restrict_array(
                self.forest.leaves[child].grid.interior_of(
                    self.forest.leaves[child].cons
                ),
                self.layout.ndim,
            )
            off = child.child_offset()
            sel = (slice(None),) + tuple(
                slice(o * half, (o + 1) * half) for o in off
            )
            grid.interior_of(cons)[sel] = data
        for child in children:
            self._drop_pipeline(child)
        self.forest.merge(parent, cons)

    def _on_merge(self, parent: BlockKey) -> None:
        """Hook, called while the children are still leaves: ownership
        bookkeeping for the distributed drivers."""

    def _flag_view(self, prim: np.ndarray, grid: Grid) -> np.ndarray:
        """Interior plus one ghost ring: discontinuities sitting exactly on
        a block face must still flag both neighbouring blocks."""
        g = grid.n_ghost
        sel = (slice(None),) + tuple(
            slice(g - 1, g + n + 1) for n in grid.shape
        )
        return prim[sel]

    def _initial_refine_pass(self) -> bool:
        """One sweep of refinement over the initial data; True if changed."""
        prims = self._ghosted_snapshot()
        flagged = []
        for key, leaf in self.forest.leaves.items():
            if key.level + 1 >= self.amr.max_levels:
                continue
            if self.criterion.needs_refinement(
                self.system, self._flag_view(prims[key], leaf.grid)
            ):
                flagged.append(key)
        for key in flagged:
            self._split_leaf(key, from_initial_data=True)
        return bool(flagged)

    def _enforce_balance(self, from_initial_data: bool = False) -> None:
        for _ in range(16):  # bounded: each pass strictly raises min levels
            bad = self.forest.unbalanced_leaves()
            if not bad:
                return
            prims = None
            if not (from_initial_data and self.t == 0.0):
                prims = self._ghosted_snapshot()
            for key in bad:
                if key in self.forest.leaves:
                    self._split_leaf(
                        key,
                        from_initial_data=from_initial_data,
                        ghosted_prim=None if prims is None else prims.get(key),
                    )
        raise ConfigurationError("2:1 balance did not converge")

    def regrid(self) -> None:
        """Flag, refine, coarsen, and rebalance."""
        self.regrids += 1
        prims = self._ghosted_snapshot()
        refine_flags, coarsen_ok = self._flag_leaves(prims)
        for key in refine_flags:
            if key in self.forest.leaves:
                self._split_leaf(key, ghosted_prim=prims.get(key))
        # Coarsen complete, unflagged sibling groups.
        parents: dict[BlockKey, list[BlockKey]] = {}
        for key in coarsen_ok:
            if key.level == 0 or key not in self.forest.leaves:
                continue
            parents.setdefault(key.parent(), []).append(key)
        merges = [
            parent
            for parent, kids in parents.items()
            if len(kids) == 2**self.layout.ndim
        ]
        self._merge_groups(merges)
        self._enforce_balance()
        self._post_regrid()

    def _flag_leaves(self, prims) -> tuple[list[BlockKey], list[BlockKey]]:
        """(refine, coarsen-ok) lists in leaf iteration order.  Each driver
        scores the leaves it evolves; `_combine_flags` merges the per-rank
        scores in the distributed backends."""
        order = list(self.forest.leaves)
        flags = np.zeros(len(order), dtype=np.int64)
        for i, key in enumerate(order):
            if not self._flags_here(key):
                continue
            leaf = self.forest.leaves[key]
            view = self._flag_view(prims[key], leaf.grid)
            if self.criterion.needs_refinement(self.system, view):
                if key.level + 1 < self.amr.max_levels:
                    flags[i] = 1
            elif self.criterion.allows_coarsening(self.system, view):
                flags[i] = 2
        flags = self._combine_flags(flags)
        refine = [key for key, f in zip(order, flags) if f == 1]
        coarsen = [key for key, f in zip(order, flags) if f == 2]
        return refine, coarsen

    def _flags_here(self, key: BlockKey) -> bool:
        return True

    def _combine_flags(self, flags: np.ndarray) -> np.ndarray:
        return flags

    def _merge_groups(self, merges: list[BlockKey]) -> None:
        for parent in merges:
            self._merge_siblings(parent)

    def _post_regrid(self) -> None:
        """Hook: the distributed drivers measure imbalance and repartition
        here, after the topology has settled."""

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def _step_keys(self) -> list[BlockKey]:
        """The leaves this driver evolves (all of them; the process-backend
        worker narrows this to its own rank's blocks)."""
        return list(self.forest.leaves)

    def _rhs(self, cons_parts: dict[BlockKey, np.ndarray]) -> dict[BlockKey, np.ndarray]:
        # Per-block pipelines own their workspaces, so hot-path reuse is
        # safe; refluxing is too, since last_face_fluxes stores copies.
        prims = {
            key: self._pipeline(key).recover_primitives(cons_parts[key], reuse=True)
            for key in cons_parts
        }
        self._fill_ghosts(prims)
        dU = {
            key: self._pipeline(key).flux_divergence(prims[key], reuse=True)
            for key in cons_parts
        }
        if self.amr.reflux:
            fluxes = {
                key: self._pipelines[key].last_face_fluxes
                for key in cons_parts
            }
            self._apply_reflux(fluxes, dU)
        if self.source_fn is not None:
            for key in cons_parts:
                self._pipeline(key).apply_source(prims[key], dU[key])
        return dU

    def _apply_reflux(self, fluxes, dU) -> None:
        from ..mesh.amr.reflux import apply_reflux

        apply_reflux(self.forest, fluxes, dU)

    def compute_dt(self, t_final: float | None = None) -> float:
        local = [
            compute_dt(
                self.system,
                self.forest.leaves[key].grid,
                self._pipeline(key).recover_primitives(
                    self.forest.leaves[key].cons, reuse=True
                ),
                cfl=self.config.cfl,
            )
            for key in self._step_keys()
        ]
        dt = self._reduce_dt(min(local) if local else float("inf"))
        return clip_dt_to_final(dt, self.t, t_final)

    def _reduce_dt(self, local_min: float) -> float:
        """Reduction hook: min over ranks in the process backend.  A global
        min over per-leaf dt values is a *selection*, so reducing per-rank
        minima is bit-identical to the serial min."""
        return local_min

    def _set_stage_time(self, t: float) -> None:
        """Stage-time hook: every block pipeline's sources see t0 + c_i dt."""
        for pipeline in self._pipelines.values():
            pipeline.time = t

    def _advance(self, dt: float) -> int:
        """One integrator step plus any due regrid; returns the global
        leaf-cell RK-stage update count."""
        state = _DictState(
            {k: self.forest.leaves[k].cons for k in self._step_keys()}
        )
        rhs = lambda s: _DictState(self._rhs(s.parts))
        advanced = self.integrator.step(
            state, dt, rhs, t0=self.t, set_time=self._set_stage_time
        )
        for key, cons in advanced.parts.items():
            self.forest.leaves[key].cons = cons
        self.t += dt
        self.steps += 1
        step_cells = self.forest.n_leaf_cells() * self.integrator.stages
        self.cells_updated += step_cells
        if self.steps % self.amr.regrid_interval == 0:
            self.regrid()
        return step_cells

    def step(self, dt: float | None = None, t_final: float | None = None) -> float:
        wall0 = time.perf_counter()
        if dt is None:
            dt = self.compute_dt(t_final)
        step_cells = self._advance(dt)
        if self.recorder is not None:
            self.recorder.record_step(
                step=self.steps,
                t=self.t,
                dt=dt,
                wall_seconds=time.perf_counter() - wall0,
                timers=self.timers,
                metrics=self.metrics,
                amr=self._amr_record(step_cells),
            )
        return dt

    def _amr_record(self, step_cells: int) -> dict:
        return {
            "n_leaves": len(self.forest.leaves),
            "cells_updated": step_cells,
            "regrids": self.regrids,
            "leaves_by_level": {
                str(lvl): n
                for lvl, n in sorted(self.leaf_count_by_level().items())
            },
        }

    def run(self, t_final: float, max_steps: int | None = None) -> None:
        limit = max_steps if max_steps is not None else self.config.max_steps
        while self.t < t_final * (1.0 - 1e-14) and self.steps < limit:
            self.step(t_final=t_final)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def composite_primitives(self, level: int | None = None):
        """(grid, interior prim array) of the composite at *level*
        (finest active level by default)."""
        prims = {
            k: self._pipeline(k).recover_primitives(leaf.cons)
            for k, leaf in self.forest.leaves.items()
        }
        target = self.forest.finest_level() if level is None else level
        composites = self.forest.composite_levels(
            prims, self.system.nvars, self.system, self.wall_bcs, up_to_level=target
        )
        grid, arr = composites[target]
        return grid, grid.interior_of(arr)

    def leaf_count_by_level(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for key in self.forest.leaves:
            out[key.level] = out.get(key.level, 0) + 1
        return out
