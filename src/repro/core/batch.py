"""SoA-batched scenario sweeps: N independent problems, one kernel invocation.

The production framing of the ROADMAP is millions of *small* requests, not
one big grid.  Stepping thousands of 1-D (or small 2-D) scenarios one at a
time leaves the vector units idle: per-call Python dispatch dominates when
each kernel touches a few hundred cells.  This module adds a **batch axis**
to the hydrodynamics pipeline so reconstruction, the Riemann solve,
con2prim, and the flux divergence sweep every scenario of a batch in a
single vectorized call.

Layout
------
A batch of ``N`` scenarios on a base grid of shape ``(*phys,)`` is stored
as one state array of shape ``(nvars, *phys_ghosted, N + 2 g)``: the batch
axis is appended as the **innermost** grid axis, so for each variable and
each cell the ``N`` scenario values are contiguous in memory — a
structure-of-arrays sweep over scenarios with unit stride, exactly what
the elementwise kernels vectorize over.  Every kernel in the pipeline is
elementwise over non-working axes, so the same reconstruction, Riemann,
and recovery code sweeps all scenarios without modification; only the
flux-divergence driver changes (it skips the batch axis — scenarios never
exchange fluxes).

The batch axis carries the same ghost layers as the physical axes (a
uniform :class:`~repro.mesh.grid.Grid` keeps the whole workspace/boundary
machinery unchanged); its ghost columns are filled by outflow copies and
are never read by any physical sweep, so they cannot influence interior
scenarios.  With ``N = 1`` every elementwise operation sees exactly the
cells the unbatched :class:`~repro.core.solver.Solver` sees, in the same
order — the batched solution is **bit-identical** to the unbatched one
(locked down by ``tests/test_batch.py``).

Per-request isolation
---------------------
Scenarios in a batch fail independently: a con2prim
:class:`~repro.utils.errors.RecoveryError` mid-step names its failed
cells, the owning scenarios are evicted (state replaced by a benign
uniform fluid that cannot fail or constrain the CFL step), and the step is
retried for the survivors.  One poisoned request degrades one response,
never the whole sweep.
"""

from __future__ import annotations

import time

import numpy as np

from ..boundary.conditions import BoundarySet, Outflow, make_boundaries
from ..mesh.grid import Grid
from ..obs.recorder import StepRecorder
from ..physics.srhd import SRHDSystem
from ..time_integration.cfl import clip_dt_to_final
from ..time_integration.ssprk import make_integrator
from ..utils.errors import ConfigurationError, NumericsError, RecoveryError
from ..utils.timers import TimerRegistry
from .config import SolverConfig
from .pipeline import HydroPipeline


class BatchGrid(Grid):
    """A base grid extended with a trailing batch axis of ``n_batch`` slots.

    The batch axis is a regular grid axis (unit spacing, the usual ghost
    layers) so state arrays, the scratch workspace, and the boundary
    machinery work unchanged — but it is *never* swept by the flux
    divergence and never enters the CFL bound.
    """

    def __init__(self, base: Grid, n_batch: int):
        n_batch = int(n_batch)
        if n_batch < 1:
            raise ConfigurationError(f"n_batch must be >= 1, got {n_batch}")
        super().__init__(
            base.shape + (n_batch,),
            base.bounds + ((0.0, float(n_batch)),),
            base.n_ghost,
        )
        self.base = base
        self.n_batch = n_batch

    @property
    def batch_axis(self) -> int:
        """Index of the batch axis (always the last grid axis)."""
        return self.ndim - 1

    @property
    def phys_ndim(self) -> int:
        return self.base.ndim

    def scenario_index(self, flat_interior_index: int) -> int:
        """Owning scenario of a flat index into the interior cell block.

        The interior has shape ``(*phys, n_batch)`` in C order, so the
        batch slot is the remainder modulo ``n_batch`` — this is how a
        :class:`RecoveryError`'s failed-cell indices are attributed to
        requests.
        """
        return int(flat_interior_index) % self.n_batch

    def scenario_slice(self, i: int) -> tuple:
        """Index tuple selecting scenario *i*'s (ghosted-physical) column
        of a ``(nvars, *shape_with_ghosts)`` array."""
        if not 0 <= i < self.n_batch:
            raise ConfigurationError(
                f"scenario index {i} outside batch of {self.n_batch}"
            )
        return (slice(None),) * (self.ndim) + (self.n_ghost + i,)

    def __repr__(self):
        return (
            f"BatchGrid(base={self.base!r}, n_batch={self.n_batch})"
        )


def batch_boundaries(base: BoundarySet, grid: BatchGrid) -> BoundarySet:
    """Boundary set for a batched grid: the base conditions on the physical
    faces, outflow on the batch faces.

    Physical axes keep their indices (the batch axis is appended last), so
    the base per-face table transfers unchanged.  Outflow on the batch
    faces fills the ghost columns with copies of the edge scenarios —
    deterministic, finite, and never read by a physical sweep.
    """
    faces = dict(base.faces)
    faces[(grid.batch_axis, 0)] = Outflow()
    faces[(grid.batch_axis, 1)] = Outflow()
    return BoundarySet(default=base.default, faces=faces)


class BatchPipeline(HydroPipeline):
    """The HRSC pipeline with the batch axis excluded from flux sweeps.

    Everything else — recovery, reconstruction, Riemann, sanitization,
    source terms — is inherited unchanged: those kernels are elementwise
    over non-working axes, so the batch axis rides along for free.
    """

    def flux_divergence(self, prim: np.ndarray, reuse: bool = False) -> np.ndarray:
        dU = self.begin_flux_divergence(reuse)
        for axis in range(self.grid.ndim - 1):  # physical axes only
            n = self.grid.shape[axis]
            div = self.flux_divergence_region(prim, axis, 0, n, reuse=reuse)
            self.accumulate_divergence(dU, axis, 0, n, div)
        return dU


def compute_batch_dt(
    system: SRHDSystem,
    grid: BatchGrid,
    prim: np.ndarray,
    cfl: float = 0.5,
    t: float | None = None,
    t_final: float | None = None,
) -> float:
    """Shared CFL step over the whole batch, physical axes only.

    Identical arithmetic to :func:`repro.time_integration.cfl.compute_dt`
    restricted to the physical axes, so an ``N = 1`` batch takes exactly
    the unbatched solver's step sequence (elementwise characteristic
    speeds, exact ``max`` reduction, same dt expression).
    """
    if not 0.0 < cfl <= 1.0:
        raise ConfigurationError(f"cfl must be in (0, 1], got {cfl}")
    interior = grid.interior_of(prim)
    inv_dt = 0.0
    for axis in range(grid.phys_ndim):
        lam_m, lam_p = system.char_speeds(interior, axis)
        vmax = max(float(np.max(np.abs(lam_m))), float(np.max(np.abs(lam_p))))
        inv_dt += max(vmax, 1e-12) / grid.dx[axis]
    return clip_dt_to_final(cfl / inv_dt, t, t_final)


#: scenario lifecycle states
ACTIVE, OK, FAILED = "active", "ok", "failed"

#: benign uniform fluid an evicted scenario is parked on: converges in a
#: couple of Newton iterations, subsonic, so it neither fails again nor
#: constrains the shared CFL step.
_BENIGN_RHO, _BENIGN_P = 1.0, 1.0


class BatchSolver:
    """Advance ``N`` independent scenarios as one vectorized batch.

    Parameters
    ----------
    system:
        Physics of the *base* problem (``system.ndim`` must equal the base
        grid's rank; the batch axis is invisible to the physics).
    base_grid:
        The per-scenario grid; every scenario shares it (resolution and
        extents are part of the batch key at the service layer).
    initial_prims:
        Sequence of ``N`` primitive state arrays, each shaped
        ``(nvars, *base_grid.shape_with_ghosts)``.
    config, boundaries, recorder, fault_injector:
        As for :class:`~repro.core.solver.Solver`; *boundaries* applies to
        the physical faces (the batch faces are outflow-filled).
    """

    def __init__(
        self,
        system: SRHDSystem,
        base_grid: Grid,
        initial_prims,
        config: SolverConfig | None = None,
        boundaries: BoundarySet | None = None,
        recorder: StepRecorder | None = None,
        fault_injector=None,
    ):
        if system.ndim != base_grid.ndim:
            raise ConfigurationError(
                f"system.ndim={system.ndim} does not match base grid "
                f"ndim={base_grid.ndim}"
            )
        initial_prims = list(initial_prims)
        if not initial_prims:
            raise ConfigurationError("batch needs at least one scenario")
        expected = (system.nvars,) + base_grid.shape_with_ghosts
        for i, p in enumerate(initial_prims):
            if p.shape != expected:
                raise ConfigurationError(
                    f"scenario {i} has shape {p.shape}, expected {expected}"
                )
        self.system = system
        self.grid = BatchGrid(base_grid, len(initial_prims))
        self.config = config or SolverConfig()
        self.boundaries = batch_boundaries(
            boundaries or make_boundaries("outflow"), self.grid
        )
        self.timers = TimerRegistry()
        self.pipeline = BatchPipeline(
            system, self.grid, self.boundaries, self.config, self.timers,
            fault_injector=fault_injector,
        )
        self.metrics = self.pipeline.metrics
        self.recorder = recorder
        self.integrator = make_integrator(self.config.integrator)

        g = self.grid.n_ghost
        prim = self.grid.allocate(system.nvars)
        for i, p in enumerate(initial_prims):
            prim[..., g + i] = p.astype(float, copy=False)
        self.boundaries.apply(system, self.grid, prim)
        self.pipeline.atmosphere.apply_prim(system, prim)
        self.cons = system.prim_to_con(prim)
        self._prim_cache = prim
        self._prim_dirty = False
        self.t = 0.0
        self.steps = 0
        #: per-scenario lifecycle: "active" -> "ok" | "failed"
        self.status = [ACTIVE] * self.n_batch
        #: per-scenario failure messages (evicted scenarios only)
        self.failures: dict[int, str] = {}
        self.metrics.counter("batch.scenarios").inc(self.n_batch)

    # ------------------------------------------------------------------

    @property
    def n_batch(self) -> int:
        return self.grid.n_batch

    @property
    def n_active(self) -> int:
        return sum(1 for s in self.status if s == ACTIVE)

    def primitives(self) -> np.ndarray:
        """Current batched primitive state (ghosts filled)."""
        if self._prim_dirty:
            self._prim_cache = self.pipeline.recover_primitives(self.cons)
            self._prim_dirty = False
        return self._prim_cache

    def scenario_primitives(self, i: int) -> np.ndarray:
        """Scenario *i*'s ghosted primitive state, shaped like an unbatched
        solver's ``primitives()``: ``(nvars, *base.shape_with_ghosts)``."""
        return self.primitives()[self.grid.scenario_slice(i)]

    def scenario_interior_primitives(self, i: int) -> np.ndarray:
        return self.grid.base.interior_of(self.scenario_primitives(i))

    def compute_dt(self, t_final: float | None = None) -> float:
        return compute_batch_dt(
            self.system, self.grid, self.primitives(),
            cfl=self.config.cfl, t=self.t, t_final=t_final,
        )

    def _set_stage_time(self, t: float) -> None:
        self.pipeline.time = t

    def _check_finite(self) -> None:
        interior = self.grid.interior_of(self.cons)
        bad = ~np.isfinite(interior)
        if bad.any():
            var, *cell = (int(i) for i in np.argwhere(bad)[0])
            raise NumericsError(
                f"non-finite conserved state after step {self.steps + 1} at "
                f"t={self.t:g}: variable {var}, interior cell {tuple(cell)} "
                f"(scenario {cell[-1]})"
            )

    # -- per-request isolation -----------------------------------------

    def _benign_column(self) -> np.ndarray:
        """Conserved state of the benign parking fluid, one scenario column
        shaped ``(nvars, *base.shape_with_ghosts)``."""
        prim = np.zeros(
            (self.system.nvars,) + self.grid.base.shape_with_ghosts
        )
        prim[self.system.RHO] = _BENIGN_RHO
        prim[self.system.P] = _BENIGN_P
        return self.system.prim_to_con(prim)

    def _evict(self, scenarios, reason: str) -> list[int]:
        """Mark *scenarios* failed and park their state columns; returns
        the scenarios newly evicted (already-failed ones are skipped)."""
        benign = None
        newly = []
        for b in scenarios:
            b = int(b)
            if self.status[b] != ACTIVE:
                continue
            if benign is None:
                benign = self._benign_column()
            self.status[b] = FAILED
            self.failures[b] = reason
            self.cons[self.grid.scenario_slice(b)] = benign
            newly.append(b)
        if newly:
            self._prim_dirty = True
            self.metrics.counter("batch.scenarios_failed").inc(len(newly))
            if self.recorder is not None:
                self.recorder.emit_event(
                    "batch.eviction", step=self.steps, t=self.t,
                    scenarios=newly, reason=reason,
                )
        return newly

    def _attribute_failure(self, exc: RecoveryError) -> list[int]:
        """Scenarios owning the failed cells of *exc* (all active ones when
        the error carries no cell indices)."""
        indices = getattr(exc, "indices", None)
        if indices is None or np.asarray(indices).size == 0:
            return [b for b, s in enumerate(self.status) if s == ACTIVE]
        return sorted(
            {self.grid.scenario_index(i) for i in np.asarray(indices).ravel()}
        )

    # -- stepping -------------------------------------------------------

    def step(self, dt: float | None = None, t_final: float | None = None) -> float:
        """Advance the whole batch one shared time step; returns dt.

        A mid-step :class:`RecoveryError` evicts the owning scenarios and
        retries the step for the survivors (the conserved state is only
        committed after a fully successful integrator step, so survivors
        never see a half-applied update).
        """
        wall0 = time.perf_counter()
        if dt is None:
            dt = self.compute_dt(t_final)
        if not np.isfinite(dt) or dt <= 0:
            raise NumericsError(
                f"invalid time step dt={dt!r} at t={self.t:g} "
                f"(step {self.steps + 1})"
            )
        # Eviction can only slow the fastest signal (the parking fluid is
        # subsonic), so retrying with the same dt stays CFL-stable.
        for _ in range(self.n_batch + 1):
            try:
                new_cons = self.integrator.step(
                    self.cons, dt, self.pipeline.rhs,
                    t0=self.t, set_time=self._set_stage_time,
                )
                break
            except RecoveryError as exc:
                failed = self._attribute_failure(exc)
                if not self._evict(failed, str(exc)):
                    # The failure maps to no active scenario: nothing left
                    # to isolate, so surface it.
                    raise
        else:  # pragma: no cover - defensive: eviction always progresses
            raise RecoveryError("batch step failed after evicting every scenario")
        self.cons = new_cons
        self.t += dt
        self.steps += 1
        self._prim_dirty = True
        self._check_finite()
        self.metrics.histogram("solver.dt").observe(dt)
        if self.recorder is not None:
            self.recorder.record_step(
                step=self.steps, t=self.t, dt=dt,
                wall_seconds=time.perf_counter() - wall0,
                timers=self.timers, metrics=self.metrics,
                batch={"n": self.n_batch, "active": self.n_active},
            )
        return dt

    def run(self, t_final: float, max_steps: int | None = None) -> dict:
        """Advance every scenario to *t_final*; returns a status summary.

        Scenarios that fail mid-run are evicted and reported ``"failed"``;
        the survivors complete normally and are reported ``"ok"``.
        """
        if t_final < self.t:
            raise ConfigurationError(f"t_final={t_final} is before t={self.t}")
        limit = max_steps if max_steps is not None else self.config.max_steps
        while self.t < t_final * (1.0 - 1e-14) and self.n_active:
            if self.steps >= limit:
                break
            self.step(t_final=t_final)
        for b, s in enumerate(self.status):
            if s == ACTIVE:
                self.status[b] = OK
        return {
            "steps": self.steps,
            "t": self.t,
            "status": list(self.status),
            "failures": dict(self.failures),
        }
