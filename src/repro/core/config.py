"""Solver configuration with validated parameters."""

from __future__ import annotations

from ..comm.costs import PRESETS as LINK_PRESETS
from ..reconstruct import SCHEMES
from ..riemann import SOLVERS
from ..time_integration.ssprk import INTEGRATORS
from ..utils.parameters import ParameterSet, param


class SolverConfig(ParameterSet):
    """All numerical knobs of the HRSC solver.

    The defaults (MC-limited TVD reconstruction, HLLC fluxes, SSP-RK3,
    CFL 0.5) are the production settings in this family of codes.
    """

    reconstruction = param(
        "mc", str, choices=SCHEMES, doc="interface reconstruction scheme"
    )
    riemann = param(
        "hllc", str, choices=tuple(sorted(SOLVERS)), doc="approximate Riemann solver"
    )
    integrator = param(
        "ssprk3", str, choices=tuple(sorted(INTEGRATORS)), doc="time integrator"
    )
    cfl = param(0.5, float, lambda v: 0 < v <= 1, "CFL number in (0, 1]")
    rho_atmo = param(1e-10, float, lambda v: v > 0, "atmosphere density floor")
    p_atmo = param(1e-12, float, lambda v: v > 0, "atmosphere pressure floor")
    atmo_threshold = param(
        10.0, float, lambda v: v >= 1, "flooring threshold factor over rho_atmo"
    )
    recovery_tol = param(1e-12, float, lambda v: 0 < v < 1e-3, "con2prim tolerance")
    failsafe_frac = param(
        0.0,
        float,
        lambda v: 0 <= v <= 1,
        "max fraction of cells per con2prim sweep that may be atmosphere-reset "
        "instead of raising RecoveryError (0 disables the failsafe)",
    )
    w_max = param(
        100.0, float, lambda v: v > 1, "Lorentz-factor cap applied to face states"
    )
    scratch_workspace = param(
        True,
        bool,
        doc="preallocate a per-pipeline scratch workspace and run the hot-path "
        "kernels in place (bit-identical to the fresh-allocation path; "
        "disable to force fresh arrays everywhere)",
    )
    overlap_exchange = param(
        False,
        bool,
        doc="DistributedSolver only: post halo sends up front, evaluate the "
        "interior RHS while the exchange is in flight, then finish the "
        "boundary strips once halos land (bit-identical to the blocking "
        "path; emits comm.overlap.* metrics)",
    )
    overlap_link = param(
        "infiniband-fdr",
        str,
        choices=tuple(sorted(LINK_PRESETS)),
        doc="link preset pricing the modeled in-flight exchange time behind "
        "the comm.overlap.* hidden/exposed split",
    )
    executor = param(
        "serial",
        str,
        choices=("serial", "process"),
        doc="distributed execution backend: 'serial' runs all ranks in one "
        "process (SPMD-by-phases over SimCommunicator), 'process' runs each "
        "rank as a persistent worker process over shared-memory rings "
        "(bit-identical results, real wall-clock parallelism)",
    )
    kernel_target = param(
        "numpy",
        str,
        choices=("numpy", "flat", "cext"),
        doc="codegen target for the hot kernels (prim_to_con/flux/"
        "char_speeds and the fused con2prim Newton loop): 'numpy' keeps the "
        "handwritten reference kernels (golden-pinned default), 'flat' runs "
        "the SymPy-generated SoA kernels through NumPy, 'cext' runs the "
        "cffi-compiled C module (falls back to 'flat' with a logged warning "
        "when no C toolchain is available)",
    )
    fused_stencils = param(
        True,
        bool,
        doc="kernel_target='cext' only: run reconstruction + face-state "
        "sanitization + Riemann flux as one compiled per-axis sweep "
        "(bit-identical to the interpreted stages; per-scheme fallback to "
        "the interpreted path when the combo has no compiled form, "
        "per-kernel fallback when the stencil module fails to build)",
    )
    c2p_tuned = param(
        False,
        bool,
        doc="enable the counter-driven con2prim tuning: pressure-positivity-"
        "preserving initial guess plus Newton damping adapted from the "
        "previous sweeps' unbracketed/max-iteration statistics (changes "
        "iteration counts, not converged results beyond tolerance)",
    )
    max_steps = param(1_000_000, int, lambda v: v > 0, "hard step-count limit")
