"""Conservation and run diagnostics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mesh.grid import Grid
from ..physics.srhd import SRHDSystem


@dataclass
class ConservedTotals:
    """Volume integrals of the conserved variables over the interior."""

    mass: float
    momentum: tuple[float, ...]
    energy: float

    @classmethod
    def measure(cls, system: SRHDSystem, grid: Grid, cons: np.ndarray) -> "ConservedTotals":
        vol = grid.cell_volume
        interior = grid.interior_of(cons)
        return cls(
            mass=float(np.sum(interior[system.D])) * vol,
            momentum=tuple(
                float(np.sum(interior[system.S(ax)])) * vol for ax in range(system.ndim)
            ),
            energy=float(np.sum(interior[system.TAU] + interior[system.D])) * vol,
        )

    def drift_from(self, other: "ConservedTotals") -> dict[str, float]:
        """Relative drift of each conserved total since *other*."""

        def rel(a, b):
            scale = max(abs(b), 1e-30)
            return (a - b) / scale

        return {
            "mass": rel(self.mass, other.mass),
            "energy": rel(self.energy, other.energy),
            **{
                f"momentum_{ax}": rel(m, m0)
                for ax, (m, m0) in enumerate(zip(self.momentum, other.momentum))
            },
        }


@dataclass
class RunSummary:
    """Accumulated facts about a completed solver run."""

    steps: int = 0
    t_final: float = 0.0
    dt_min: float = float("inf")
    dt_max: float = 0.0
    initial: ConservedTotals | None = None
    final: ConservedTotals | None = None
    kernel_seconds: dict[str, float] = field(default_factory=dict)

    def record_step(self, dt: float) -> None:
        self.steps += 1
        self.dt_min = min(self.dt_min, dt)
        self.dt_max = max(self.dt_max, dt)

    @property
    def conservation_drift(self) -> dict[str, float]:
        if self.initial is None or self.final is None:
            return {}
        return self.final.drift_from(self.initial)
