"""Distributed-memory HRSC solver over the simulated communicator.

Runs the same HRSC pipeline as :class:`~repro.core.solver.Solver`, but with
the domain split across ranks of a :class:`CartesianDecomposition`:

- each rank owns a ghosted sub-patch and its own :class:`HydroPipeline`;
- physical walls use the supplied boundary conditions, while faces shared
  with a neighbour are marked :class:`InteriorFace` and filled by
  :func:`exchange_halos` through the :class:`SimCommunicator`;
- the CFL time step is a global allreduce(min).

The distributed result matches the single-grid solver to round-off — the
test suite asserts this — so the communicator traffic log faithfully
represents the real code path the scaling model prices.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from ..boundary.conditions import BoundarySet, InteriorFace, make_boundaries
from ..comm.communicator import SimCommunicator
from ..comm.costs import halo_exchange_time, make_link
from ..comm.halo import (
    complete_halos,
    exchange_halos,
    halo_bytes_per_step,
    post_halos,
    rhs_regions,
)
from ..mesh.decomposition import CartesianDecomposition
from ..mesh.grid import Grid
from ..obs.metrics import MetricsRegistry
from ..physics.srhd import SRHDSystem
from ..time_integration.cfl import clip_dt_to_final, compute_dt
from ..utils.errors import ConfigurationError, NumericsError
from ..utils.timers import TimerRegistry
from .config import SolverConfig
from .pipeline import HydroPipeline

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.recorder import StepRecorder
    from ..resilience.faults import FaultInjector
    from ..resilience.policies import HaloRetryPolicy


class _DictState:
    """Arithmetic adapter so the SSP integrators can step a dict of per-rank
    arrays as if it were one array (U + dt*k, scalar*U, U/3, ...)."""

    __slots__ = ("parts",)

    def __init__(self, parts: dict[int, np.ndarray]):
        self.parts = parts

    def __add__(self, other: "_DictState") -> "_DictState":
        return _DictState({r: a + other.parts[r] for r, a in self.parts.items()})

    def __rmul__(self, scalar: float) -> "_DictState":
        return _DictState({r: scalar * a for r, a in self.parts.items()})

    def __truediv__(self, scalar: float) -> "_DictState":
        return _DictState({r: a / scalar for r, a in self.parts.items()})


class DistributedSolver:
    """SPMD solver over a simulated cluster of ranks.

    Parameters
    ----------
    system:
        SRHD physics (ndim must match the grid).
    global_grid:
        The full-domain grid.
    initial_prim:
        *Global* ghosted primitive array; it is scattered to ranks.
    dims:
        Process-grid shape (e.g. ``(2, 2)``).
    config, boundaries:
        As for :class:`Solver`; *boundaries* describes the physical walls.
    recorder:
        Optional :class:`~repro.obs.StepRecorder`; per-step records carry
        globally aggregated kernel timings and counters (all rank pipelines
        share one registry) plus communicator traffic deltas.
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector`: halo
        faults strike the communicator, con2prim bursts strike the rank
        pipelines.  All ``resilience.*`` counters land in this solver's
        shared metrics registry.
    halo_policy:
        Optional :class:`~repro.resilience.policies.HaloRetryPolicy`.
        Without it a lost halo message kills the run immediately; with it
        every exchange verifies checksums and retransmits with exponential
        backoff before giving up.
    """

    def __init__(
        self,
        system: SRHDSystem,
        global_grid: Grid,
        initial_prim: np.ndarray,
        dims,
        config: SolverConfig | None = None,
        boundaries: BoundarySet | None = None,
        periodic=None,
        recorder: "StepRecorder | None" = None,
        fault_injector: "FaultInjector | None" = None,
        halo_policy: "HaloRetryPolicy | None" = None,
        source_fn=None,
    ):
        if system.ndim != global_grid.ndim:
            raise ConfigurationError("system/grid dimensionality mismatch")
        self.system = system
        self.global_grid = global_grid
        self.config = config or SolverConfig()
        wall_bcs = boundaries or make_boundaries("outflow")
        if periodic is None:
            periodic = tuple(
                wall_bcs.condition(ax, 0).name == "periodic"
                for ax in range(global_grid.ndim)
            )
        self.decomp = CartesianDecomposition(global_grid, dims, periodic=periodic)
        self.comm = SimCommunicator(self.decomp.size, fault_injector=fault_injector)
        # One shared timer/metrics registry across all rank pipelines: the
        # counters and kernel times aggregate globally, which is what the
        # per-step records report.
        self.timers = TimerRegistry()
        self.metrics = MetricsRegistry()
        self.recorder = recorder
        self.fault_injector = fault_injector
        self.halo_policy = halo_policy
        if fault_injector is not None and fault_injector.metrics is None:
            fault_injector.metrics = self.metrics

        # Per-rank boundary sets: interior faces (neighbour present) are
        # no-ops, physical walls inherit the global policy.
        interior = InteriorFace()
        self.pipelines: dict[int, HydroPipeline] = {}
        self.subgrids: dict[int, Grid] = {}
        for rank in range(self.decomp.size):
            faces = {}
            for axis in range(global_grid.ndim):
                for side in (0, 1):
                    if self.decomp.neighbor(rank, axis, side) is not None:
                        faces[(axis, side)] = interior
                    else:
                        faces[(axis, side)] = wall_bcs.condition(axis, side)
            sub = self.decomp.subgrid(rank)
            self.subgrids[rank] = sub
            self.pipelines[rank] = HydroPipeline(
                system,
                sub,
                BoundarySet(faces=faces),
                self.config,
                timers=self.timers,
                metrics=self.metrics,
                fault_injector=fault_injector,
            )
            self.pipelines[rank].source_fn = source_fn

        # Scatter the initial data (interiors), then fill all ghosts once.
        prim_interior = global_grid.interior_of(initial_prim)
        parts = self.decomp.scatter(prim_interior)
        self.cons: dict[int, np.ndarray] = {}
        prims: dict[int, np.ndarray] = {}
        for rank, pipeline in self.pipelines.items():
            sub = self.subgrids[rank]
            prim = sub.allocate(system.nvars)
            sub.interior_of(prim)[...] = parts[rank]
            pipeline.boundaries.apply(system, sub, prim)
            prims[rank] = prim
        self._exchange(prims)
        for rank, prim in prims.items():
            self.pipelines[rank].atmosphere.apply_prim(system, prim)
            self.cons[rank] = system.prim_to_con(prim)
        # Mirror the single-grid solver's primitive cache: the first dt is
        # computed from the (floored, exchanged) initial primitives, not a
        # recovery round-trip — keeping the two solvers bit-identical.
        self._prims_cache: dict[int, np.ndarray] | None = prims
        from ..time_integration.ssprk import make_integrator

        self.integrator = make_integrator(self.config.integrator)
        self.t = 0.0
        self.steps = 0
        #: analytic bytes sent by one full halo exchange (all ranks, all
        #: faces) — the model the measured traffic is checked against
        self.halo_bytes_per_exchange = sum(
            halo_bytes_per_step(self.decomp, system.nvars).values()
        )
        # Snapshot after the constructor's initial exchange so the first
        # step's delta counts only that step's traffic.
        self._traffic_prev = (
            self.comm.traffic.n_bytes,
            self.comm.traffic.n_messages,
            self.comm.traffic.n_collectives,
        )

        #: overlapped-exchange mode: RHS evaluations post halos first,
        #: compute each rank's core regions while the exchange is in
        #: flight, then finish the boundary strips (bit-identical to the
        #: blocking path — see tests/test_overlap.py).
        self.overlap = bool(self.config.overlap_exchange)
        self._link = make_link(self.config.overlap_link)
        self._regions = {
            rank: rhs_regions(self.decomp, rank) for rank in range(self.size)
        }
        interior_cells = strip_cells = 0
        for rank in range(self.size):
            sub = self.subgrids[rank]
            for axis, (core, strips) in enumerate(self._regions[rank]):
                transverse = int(np.prod(sub.shape)) // sub.shape[axis]
                interior_cells += (core[1] - core[0]) * transverse
                strip_cells += sum(hi - lo for lo, hi in strips) * transverse
        #: per-exchange (core, strip) cell-update counts behind the
        #: comm.overlap.interior_cells / strip_cells counters
        self.overlap_cell_counts = (interior_cells, strip_cells)
        #: per-exchange overlap entries (modeled comm vs interior/strip
        #: compute) consumed by runtime.trace.overlap_to_metrics_records
        self.overlap_log: list[dict] = []

    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return self.decomp.size

    def _exchange(self, prims: dict[int, np.ndarray]) -> None:
        """One full halo exchange, resilient when a retry policy is set."""
        exchange_halos(
            self.decomp,
            self.comm,
            prims,
            policy=self.halo_policy,
            metrics=self.metrics,
        )

    def _recover_and_exchange(
        self,
        cons: dict[int, np.ndarray],
        use_cache: bool = False,
        reuse: bool = False,
    ):
        if use_cache and self._prims_cache is not None:
            return self._prims_cache
        prims = {
            rank: self.pipelines[rank].recover_primitives(cons[rank], reuse=reuse)
            for rank in range(self.size)
        }
        self._exchange(prims)
        return prims

    def _rhs(self, cons: dict[int, np.ndarray]):
        if self.overlap:
            return self._rhs_overlapped(cons)
        # Each rank pipeline owns its workspace, so per-rank reuse is safe.
        prims = self._recover_and_exchange(cons, reuse=True)
        out = {}
        for rank in range(self.size):
            pipeline = self.pipelines[rank]
            dU = pipeline.flux_divergence(prims[rank], reuse=True)
            out[rank] = pipeline.apply_source(prims[rank], dU)
        return out

    def _rhs_overlapped(self, cons: dict[int, np.ndarray]):
        """Interior-first RHS with the halo exchange in flight.

        Phase A posts every strip (:func:`post_halos`) and evaluates each
        rank's core regions — the cells whose stencil never reads halo
        ghosts — while the messages are notionally on the wire.  Phase B
        completes the exchange and evaluates the halo-dependent boundary
        strips.  Per-cell divergence accumulation is deferred and applied
        in ascending axis order, matching the blocking sweep's
        floating-point accumulation order bitwise (with >= 3 axis terms the
        order is not commutative in IEEE arithmetic).
        """
        prims = {
            rank: self.pipelines[rank].recover_primitives(cons[rank], reuse=True)
            for rank in range(self.size)
        }
        handle = post_halos(
            self.decomp, self.comm, prims,
            policy=self.halo_policy, metrics=self.metrics,
        )
        t0 = time.perf_counter()
        divs: dict[int, list] = {rank: [] for rank in range(self.size)}
        for rank in range(self.size):
            pipeline = self.pipelines[rank]
            for axis, (core, _strips) in enumerate(self._regions[rank]):
                lo, hi = core
                if hi > lo:
                    divs[rank].append(
                        (axis, lo, hi,
                         pipeline.flux_divergence_region(
                             prims[rank], axis, lo, hi, reuse=True))
                    )
        interior_s = time.perf_counter() - t0
        complete_halos(handle)
        t1 = time.perf_counter()
        out = {}
        for rank in range(self.size):
            pipeline = self.pipelines[rank]
            for axis, (_core, strips) in enumerate(self._regions[rank]):
                for lo, hi in strips:
                    divs[rank].append(
                        (axis, lo, hi,
                         pipeline.flux_divergence_region(
                             prims[rank], axis, lo, hi, reuse=True))
                    )
            dU = pipeline.begin_flux_divergence(reuse=True)
            for axis, lo, hi, div in sorted(divs[rank], key=lambda e: e[0]):
                pipeline.accumulate_divergence(dU, axis, lo, hi, div)
            out[rank] = pipeline.apply_source(prims[rank], dU)
        strip_s = time.perf_counter() - t1
        self._record_overlap(handle, interior_s, strip_s)
        return out

    def _record_overlap(self, handle, interior_s: float, strip_s: float) -> None:
        """comm.overlap.* accounting for one overlapped exchange.

        The modeled wire time (Hockney, ``overlap_link`` preset) is compared
        against the measured per-rank interior compute: whatever fits under
        the interior window counts as hidden, the remainder as exposed.
        """
        m = self.metrics
        modeled = halo_exchange_time(self._link, handle.posted)
        interior_per_rank = interior_s / self.size
        hidden = min(modeled, interior_per_rank)
        exposed = modeled - hidden
        interior_cells, strip_cells = self.overlap_cell_counts
        m.counter("comm.overlap.exchanges").inc()
        m.counter("comm.overlap.modeled_comm_s").inc(modeled)
        m.counter("comm.overlap.hidden_s").inc(hidden)
        m.counter("comm.overlap.exposed_s").inc(exposed)
        m.counter("comm.overlap.interior_seconds").inc(interior_s)
        m.counter("comm.overlap.strip_seconds").inc(strip_s)
        m.counter("comm.overlap.interior_cells").inc(interior_cells)
        m.counter("comm.overlap.strip_cells").inc(strip_cells)
        m.gauge("comm.overlap.hidden_frac").set(
            hidden / modeled if modeled > 0 else 1.0
        )
        self.overlap_log.append(
            {
                "exchange": len(self.overlap_log) + 1,
                "modeled_comm_s": modeled,
                "hidden_s": hidden,
                "exposed_s": exposed,
                "interior_s": interior_s,
                "strip_s": strip_s,
                "posted_messages": len(handle.posted),
                "posted_bytes": handle.posted_bytes,
            }
        )

    def compute_dt(self, t_final: float | None = None) -> float:
        """Global CFL step: allreduce(max) of the per-axis signal speeds,
        then the same dt formula as the single-grid solver — bit-identical
        to it (a min over per-rank dt would differ whenever the x- and
        y-maxima live on different ranks)."""
        from ..time_integration.cfl import dt_from_axis_maxima, max_signal_per_axis

        prims = self._recover_and_exchange(self.cons, use_cache=True)
        local = {
            rank: np.asarray(
                max_signal_per_axis(self.system, self.subgrids[rank], prims[rank])
            )
            for rank in range(self.size)
        }
        vmax = self.comm.allreduce(local, op="max")[0]
        dt = dt_from_axis_maxima(self.global_grid, vmax, self.config.cfl)
        return clip_dt_to_final(dt, self.t, t_final)

    def _set_stage_time(self, t: float) -> None:
        """Stage-time hook: every rank pipeline's sources see t0 + c_i dt."""
        for pipeline in self.pipelines.values():
            pipeline.time = t

    def _check_dt(self, dt: float) -> None:
        if not np.isfinite(dt) or dt <= 0:
            raise NumericsError(
                f"invalid time step dt={dt!r} at t={self.t:g} (step {self.steps + 1})"
            )

    def _check_finite(self) -> None:
        for rank in range(self.size):
            bad = ~np.isfinite(self.cons[rank])
            if bad.any():
                var, *cell = (int(i) for i in np.argwhere(bad)[0])
                raise NumericsError(
                    f"non-finite conserved state after step {self.steps} "
                    f"at t={self.t:g}: rank {rank}, variable {var}, "
                    f"cell {tuple(cell)}"
                )

    def step(self, dt: float | None = None, t_final: float | None = None) -> float:
        wall0 = time.perf_counter()
        if dt is None:
            dt = self.compute_dt(t_final)
        self._check_dt(dt)
        rhs = lambda state: _DictState(self._rhs(state.parts))
        advanced = self.integrator.step(
            _DictState(self.cons), dt, rhs,
            t0=self.t, set_time=self._set_stage_time,
        )
        self.cons = advanced.parts
        self._prims_cache = None  # state advanced: next dt recovers afresh
        self.t += dt
        self.steps += 1
        self._check_finite()
        self.metrics.histogram("solver.dt").observe(dt)
        if self.recorder is not None:
            self.recorder.record_step(
                step=self.steps,
                t=self.t,
                dt=dt,
                wall_seconds=time.perf_counter() - wall0,
                timers=self.timers,
                metrics=self.metrics,
                comm=self._traffic_delta(),
            )
        return dt

    def _traffic_delta(self) -> dict:
        """Communicator traffic since the last call, plus the analytic
        per-exchange byte count for cross-checking."""
        log = self.comm.traffic
        now = (log.n_bytes, log.n_messages, log.n_collectives)
        prev, self._traffic_prev = self._traffic_prev, now
        return {
            "halo_bytes": now[0] - prev[0],
            "messages": now[1] - prev[1],
            "collectives": now[2] - prev[2],
            "halo_bytes_model_per_exchange": self.halo_bytes_per_exchange,
        }

    def run(
        self,
        t_final: float,
        max_steps: int | None = None,
        checkpoint_every: int = 0,
        checkpoint_path=None,
    ) -> None:
        """Advance to *t_final*.

        With ``checkpoint_every=N`` and a ``checkpoint_path``, the full
        distributed state (all rank sub-patches plus con2prim warm-start
        caches) is checkpointed every N steps, between steps, so a failure
        mid-run leaves a consistent resumable archive behind (see
        :func:`repro.resilience.run_with_restart`).
        """
        if checkpoint_every and checkpoint_path is None:
            raise ConfigurationError("checkpoint_every requires a checkpoint_path")
        limit = max_steps if max_steps is not None else self.config.max_steps
        while self.t < t_final * (1.0 - 1e-14) and self.steps < limit:
            self.step(t_final=t_final)
            if checkpoint_every and self.steps % checkpoint_every == 0:
                # Deferred import: repro.io imports this module's siblings.
                from ..io.checkpoint import save_distributed_checkpoint

                save_distributed_checkpoint(self, checkpoint_path)

    def checkpoint_shards(self) -> dict[int, tuple[np.ndarray, np.ndarray | None]]:
        """Per-rank ``(ghosted cons, con2prim cache)`` — the payload of one
        distributed checkpoint (same accessor the process executor streams
        from its workers, so both write identical archives)."""
        return {
            rank: (self.cons[rank], self.pipelines[rank]._p_cache)
            for rank in range(self.size)
        }

    def gather_primitives(self) -> np.ndarray:
        """Global interior primitive field assembled from all ranks."""
        prims = self._recover_and_exchange(self.cons)
        parts = {
            rank: self.subgrids[rank].interior_of(prims[rank]).copy()
            for rank in range(self.size)
        }
        return self.decomp.gather(parts, self.system.nvars)
