"""Process-parallel execution backend: one worker process per rank.

:class:`ProcessSolver` presents the same driver surface as
:class:`~repro.core.distributed.DistributedSolver`, but each rank of the
Cartesian decomposition runs in its own persistent worker process
(spawned once, stepped in lockstep through a barrier), exchanging halos
over the :class:`~repro.comm.shm.ShmCommunicator` shared-memory rings.
Wall-clock time therefore actually drops with worker count — this is
the measured counterpart of the Hockney-priced scaling model.

Bit-exactness with the serial path is a hard invariant, held by
construction:

* every worker mirrors the serial per-rank constructor and step
  sequence exactly (same recovery, exchange, integrator, and guard
  calls, in the same order, on the same bytes);
* the global CFL reduction funnels through rank 0 and replays the
  serial ``np.stack`` + reduction, so dt is bitwise equal;
* fault injection and retry decisions are derived rank-locally from the
  shared seeds via :class:`~repro.resilience.oracle.FaultOracle` and
  :class:`~repro.resilience.oracle.RankStridedFaultInjector`, so seeded
  chaos plans strike the identical messages and sweeps.

Observability: each worker runs its own
:class:`~repro.obs.StepRecorder` into a buffer; the parent merges the
per-rank shards into one stream (counters summed, gauges maxed,
histograms combined) that canonicalizes byte-for-byte equal to the
serial stream, and forwards it to the caller's recorder via
:meth:`StepRecorder.emit_step`.  Real transport measurements land under
``comm.shm.*``.

Supervision: with a :class:`~repro.resilience.policies.SupervisionPolicy`
the parent becomes a supervisor.  Workers publish heartbeats into a
lock-free :class:`~repro.comm.shm.SupervisionBoard`; the parent
classifies failures (crash via ``is_alive()``/pipe EOF, hang via
heartbeat staleness), quiesces the surviving ranks at the last completed
step boundary, respawns the dead rank over freshly recreated shm rings,
and rolls *every* rank back to the last consistent in-memory snapshot —
the recovered run is bit-identical to a fault-free one, canonical
record stream included.  A bounded restart budget with exponential
backoff guards against crash loops; on exhaustion
:func:`run_supervised` can degrade gracefully to the serial
:class:`DistributedSolver` from the last snapshot.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..boundary.conditions import BoundarySet, InteriorFace, make_boundaries
from ..comm.costs import halo_exchange_time, make_link
from ..comm.halo import (
    complete_halos,
    exchange_halos,
    halo_bytes_per_step,
    post_halos,
    rhs_regions,
)
from ..comm.shm import (
    ShmChannel,
    ShmCommunicator,
    SupervisionBoard,
    channel_capacities,
    sweep_segments,
)
from ..mesh.decomposition import CartesianDecomposition
from ..mesh.grid import Grid
from ..obs.events import BufferSink
from ..obs.metrics import MetricsRegistry, merge_histogram_summaries
from ..obs.recorder import StepRecorder
from ..physics.srhd import SRHDSystem
from ..resilience.oracle import FaultOracle, RankStridedFaultInjector
from ..time_integration.cfl import (
    clip_dt_to_final,
    dt_from_axis_maxima,
    max_signal_per_axis,
)
from ..time_integration.ssprk import make_integrator
from ..utils.errors import (
    ConfigurationError,
    NumericsError,
    ReproError,
    SupervisionExhausted,
    WorkerError,
)
from ..utils.timers import TimerRegistry
from .config import SolverConfig
from .distributed import DistributedSolver
from .pipeline import HydroPipeline

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.recorder import StepRecorder as _StepRecorder  # noqa: F401
    from ..resilience.faults import FaultPlan
    from ..resilience.policies import HaloRetryPolicy, SupervisionPolicy


@dataclass
class _WorkerSpec:
    """Everything one worker needs to rebuild its rank (picklable)."""

    rank: int
    size: int
    system: SRHDSystem
    global_grid: Grid
    dims: tuple
    periodic: tuple
    config: SolverConfig
    wall_bcs: BoundarySet
    part: np.ndarray  # this rank's interior primitive patch
    plan: "FaultPlan | None"
    policy: "HaloRetryPolicy | None"
    source_fn: object
    channels: dict  # {(src, dest): (shm_name, capacity)} touching this rank
    comm_timeout_s: float
    barrier_timeout_s: float
    board_name: str
    heartbeat_interval_s: float
    #: respawned ranks skip the collective priming exchange — their state
    #: is installed via ``restore_full`` before they ever step.
    defer_init: bool = False

    def build(self, board: "SupervisionBoard"):
        """Construct this spec's rank worker (overridden by the AMR spec,
        which builds a forest-shaped worker from the same process shell)."""
        return _RankWorker(self, board)


class _RankWorker:
    """One rank of the decomposition, living inside a worker process.

    Mirrors :class:`DistributedSolver`'s per-rank construction and step
    sequence exactly — any ordering drift here breaks bit-exactness, so
    changes to the serial solver must be reflected in this class (the
    serial-vs-process test matrix enforces it).
    """

    def __init__(self, spec: _WorkerSpec, board: SupervisionBoard):
        self.rank = spec.rank
        self.spec = spec
        system = spec.system
        self.system = system
        self.global_grid = spec.global_grid
        self.config = spec.config
        self.decomp = CartesianDecomposition(
            spec.global_grid, spec.dims, periodic=spec.periodic
        )
        writers = {}
        readers = {}
        self._channels = []
        for (src, dest), (name, cap) in spec.channels.items():
            ch = ShmChannel.attach(name, cap)
            self._channels.append(ch)
            if src == self.rank:
                writers[dest] = ch
            if dest == self.rank:
                readers[src] = ch
        self.timers = TimerRegistry()
        self.metrics = MetricsRegistry()
        self.comm = ShmCommunicator(
            self.rank, spec.size, writers, readers,
            metrics=self.metrics, barrier=board,
            timeout_s=spec.comm_timeout_s, board=board,
        )
        self.policy = spec.policy
        self.oracle = (
            FaultOracle(spec.plan, self.decomp, spec.policy)
            if spec.plan is not None
            else None
        )
        injector = (
            RankStridedFaultInjector(
                spec.plan, self.rank, spec.size, metrics=self.metrics
            )
            if spec.plan is not None
            else None
        )
        self._barrier = board
        self._barrier_timeout = spec.barrier_timeout_s
        #: ordered ``overlapped`` flags of every oracle consultation — the
        #: replay tape a supervised restore rewinds the oracle with.
        self._oracle_calls: list[bool] = []

        interior = InteriorFace()
        faces = {}
        for axis in range(self.global_grid.ndim):
            for side in (0, 1):
                if self.decomp.neighbor(self.rank, axis, side) is not None:
                    faces[(axis, side)] = interior
                else:
                    faces[(axis, side)] = spec.wall_bcs.condition(axis, side)
        self.subgrid = self.decomp.subgrid(self.rank)
        self.pipeline = HydroPipeline(
            system,
            self.subgrid,
            BoundarySet(faces=faces),
            self.config,
            timers=self.timers,
            metrics=self.metrics,
            fault_injector=injector,
        )
        self.pipeline.source_fn = spec.source_fn

        prim = self.subgrid.allocate(system.nvars)
        self.subgrid.interior_of(prim)[...] = spec.part
        self.pipeline.boundaries.apply(system, self.subgrid, prim)
        if not spec.defer_init:
            # The priming exchange is collective; a respawned rank builds
            # alone and receives its real state via ``restore_full``.
            self._exchange(prim)
        self.pipeline.atmosphere.apply_prim(system, prim)
        self.cons = system.prim_to_con(prim)
        self._prims_cache: np.ndarray | None = prim
        self.integrator = make_integrator(self.config.integrator)
        self.t = 0.0
        self.steps = 0
        self.halo_bytes_per_exchange = sum(
            halo_bytes_per_step(self.decomp, system.nvars).values()
        )
        self._traffic_prev = self.comm.traffic_marker()

        self.overlap = bool(self.config.overlap_exchange)
        self._link = make_link(self.config.overlap_link)
        self._regions = rhs_regions(self.decomp, self.rank)
        interior_cells = strip_cells = 0
        for axis, (core, strips) in enumerate(self._regions):
            transverse = int(np.prod(self.subgrid.shape)) // self.subgrid.shape[axis]
            interior_cells += (core[1] - core[0]) * transverse
            strip_cells += sum(hi - lo for lo, hi in strips) * transverse
        # This rank's share only: summed over workers these counters equal
        # the serial solver's global overlap_cell_counts.
        self.overlap_cell_counts = (interior_cells, strip_cells)
        self.overlap_log: list[dict] = []
        self._recorder = StepRecorder(BufferSink())
        self._process_t0 = time.process_time()

    # -- serial-mirror helpers -------------------------------------------
    def _exchange(self, prim: np.ndarray) -> None:
        schedule = (
            self.oracle.next_exchange(overlapped=False)
            if self.oracle is not None
            else None
        )
        self._oracle_calls.append(False)
        exchange_halos(
            self.decomp,
            self.comm,
            {self.rank: prim},
            policy=self.policy,
            metrics=self.metrics,
            schedule=schedule,
        )

    def _recover_and_exchange(
        self, cons: np.ndarray, use_cache: bool = False, reuse: bool = False
    ) -> np.ndarray:
        if use_cache and self._prims_cache is not None:
            return self._prims_cache
        prim = self.pipeline.recover_primitives(cons, reuse=reuse)
        self._exchange(prim)
        return prim

    def _rhs(self, cons: np.ndarray) -> np.ndarray:
        if self.overlap:
            return self._rhs_overlapped(cons)
        prim = self._recover_and_exchange(cons, reuse=True)
        dU = self.pipeline.flux_divergence(prim, reuse=True)
        return self.pipeline.apply_source(prim, dU)

    def _rhs_overlapped(self, cons: np.ndarray) -> np.ndarray:
        prim = self.pipeline.recover_primitives(cons, reuse=True)
        schedule = (
            self.oracle.next_exchange(overlapped=True)
            if self.oracle is not None
            else None
        )
        self._oracle_calls.append(True)
        handle = post_halos(
            self.decomp, self.comm, {self.rank: prim},
            policy=self.policy, metrics=self.metrics, schedule=schedule,
        )
        t0 = time.perf_counter()
        divs: list = []
        for axis, (core, _strips) in enumerate(self._regions):
            lo, hi = core
            if hi > lo:
                divs.append(
                    (axis, lo, hi,
                     self.pipeline.flux_divergence_region(
                         prim, axis, lo, hi, reuse=True))
                )
        interior_s = time.perf_counter() - t0
        complete_halos(handle)
        t1 = time.perf_counter()
        for axis, (_core, strips) in enumerate(self._regions):
            for lo, hi in strips:
                divs.append(
                    (axis, lo, hi,
                     self.pipeline.flux_divergence_region(
                         prim, axis, lo, hi, reuse=True))
                )
        dU = self.pipeline.begin_flux_divergence(reuse=True)
        for axis, lo, hi, div in sorted(divs, key=lambda e: e[0]):
            self.pipeline.accumulate_divergence(dU, axis, lo, hi, div)
        out = self.pipeline.apply_source(prim, dU)
        strip_s = time.perf_counter() - t1
        self._record_overlap(handle, interior_s, strip_s)
        return out

    def _record_overlap(self, handle, interior_s: float, strip_s: float) -> None:
        m = self.metrics
        modeled = halo_exchange_time(self._link, handle.posted)
        hidden = min(modeled, interior_s)
        exposed = modeled - hidden
        interior_cells, strip_cells = self.overlap_cell_counts
        if self.rank == 0:
            # Serially this is one global counter per exchange; merged
            # worker counters are summed, so only one rank may own it.
            m.counter("comm.overlap.exchanges").inc()
        m.counter("comm.overlap.modeled_comm_s").inc(modeled)
        m.counter("comm.overlap.hidden_s").inc(hidden)
        m.counter("comm.overlap.exposed_s").inc(exposed)
        m.counter("comm.overlap.interior_seconds").inc(interior_s)
        m.counter("comm.overlap.strip_seconds").inc(strip_s)
        m.counter("comm.overlap.interior_cells").inc(interior_cells)
        m.counter("comm.overlap.strip_cells").inc(strip_cells)
        m.gauge("comm.overlap.hidden_frac").set(
            hidden / modeled if modeled > 0 else 1.0
        )
        self.overlap_log.append(
            {
                "exchange": len(self.overlap_log) + 1,
                "modeled_comm_s": modeled,
                "hidden_s": hidden,
                "exposed_s": exposed,
                "interior_s": interior_s,
                "strip_s": strip_s,
                "posted_messages": len(handle.posted),
                "posted_bytes": handle.posted_bytes,
            }
        )

    def compute_dt(self, t_final: float | None = None) -> float:
        prim = self._recover_and_exchange(self.cons, use_cache=True)
        local = np.asarray(max_signal_per_axis(self.system, self.subgrid, prim))
        vmax = self.comm.allreduce({self.rank: local}, op="max")[self.rank]
        dt = dt_from_axis_maxima(self.global_grid, vmax, self.config.cfl)
        return clip_dt_to_final(dt, self.t, t_final)

    def _set_stage_time(self, t: float) -> None:
        self.pipeline.time = t

    def _check_dt(self, dt: float) -> None:
        if not np.isfinite(dt) or dt <= 0:
            raise NumericsError(
                f"invalid time step dt={dt!r} at t={self.t:g} (step {self.steps + 1})"
            )

    def _check_finite(self) -> None:
        bad = ~np.isfinite(self.cons)
        if bad.any():
            var, *cell = (int(i) for i in np.argwhere(bad)[0])
            raise NumericsError(
                f"non-finite conserved state after step {self.steps} "
                f"at t={self.t:g}: rank {self.rank}, variable {var}, "
                f"cell {tuple(cell)}"
            )

    def _traffic_delta(self) -> dict:
        now = self.comm.traffic_marker()
        prev, self._traffic_prev = self._traffic_prev, now
        return {
            "halo_bytes": now[0] - prev[0],
            "messages": now[1] - prev[1],
            "collectives": now[2] - prev[2],
            "halo_bytes_model_per_exchange": self.halo_bytes_per_exchange,
        }

    def step(self, dt: float | None = None, t_final: float | None = None):
        self._barrier.wait(self._barrier_timeout)
        wall0 = time.perf_counter()
        if dt is None:
            dt = self.compute_dt(t_final)
        self._check_dt(dt)
        advanced = self.integrator.step(
            self.cons, dt, self._rhs,
            t0=self.t, set_time=self._set_stage_time,
        )
        self.cons = advanced
        self._prims_cache = None
        self.t += dt
        self.steps += 1
        self._check_finite()
        if self.rank == 0:
            # One global observation per step, exactly like the serial
            # shared registry.
            self.metrics.histogram("solver.dt").observe(dt)
        self._recorder.record_step(
            step=self.steps,
            t=self.t,
            dt=dt,
            wall_seconds=time.perf_counter() - wall0,
            timers=self.timers,
            metrics=self.metrics,
            comm=self._traffic_delta(),
            rank=self.rank,
        )
        return dt, self._recorder.sink.records.pop()

    def interior_primitives(self) -> np.ndarray:
        prim = self._recover_and_exchange(self.cons)
        return self.subgrid.interior_of(prim).copy()

    def snapshot(self) -> dict:
        return {
            "metrics": self.metrics.snapshot(),
            "timers": {name: t.elapsed for name, t in self.timers.items()},
            "process_seconds": time.process_time() - self._process_t0,
        }

    def checkpoint_state(self) -> tuple[np.ndarray, np.ndarray | None]:
        """This rank's checkpoint shard: ghosted cons + con2prim cache."""
        p_cache = self.pipeline._p_cache
        return self.cons.copy(), None if p_cache is None else p_cache.copy()

    def restore_state(self, cons, p_cache, t: float, steps: int) -> None:
        """Install a checkpoint shard verbatim (bit-exact restart)."""
        self.cons = np.array(cons)
        self.pipeline._p_cache = None if p_cache is None else np.array(p_cache)
        self._prims_cache = None
        self.t = float(t)
        self.steps = int(steps)

    # -- supervision -----------------------------------------------------
    def supervision_state(self) -> dict:
        """Everything needed to roll this rank back to this step boundary.

        The snapshot is complete with respect to observable behavior —
        physics arrays, warm-start caches, metrics/timer/recorder
        baselines, communicator epoch + traffic accounting, and the
        fault-replay position — so a rank restored from it re-executes
        the following steps bit-identically, emitted records included.
        """
        p_cache = self.pipeline._p_cache
        injector = self.pipeline.fault_injector
        return {
            "cons": self.cons.copy(),
            "p_cache": None if p_cache is None else p_cache.copy(),
            "prims_cache": (
                None if self._prims_cache is None else self._prims_cache.copy()
            ),
            "t": self.t,
            "steps": self.steps,
            "metrics": self.metrics.snapshot(),
            "timers": self.timers.state(),
            "recorder": self._recorder.state(),
            "traffic": self.comm.traffic_state(),
            "traffic_prev": tuple(self._traffic_prev),
            "epoch": self.comm._epoch,
            "oracle_calls": list(self._oracle_calls),
            "injector_sweep": None if injector is None else injector._sweep,
            "overlap_log": [dict(e) for e in self.overlap_log],
        }

    def restore_supervision_state(self, state: dict) -> None:
        """Roll back to *state* (a step boundary) after a rank failure.

        Besides the physics arrays this rewinds the fault oracle and the
        con2prim injector, and resets the communicator: pending messages
        are dropped, epoch and traffic counters restored, and the
        supervision board re-baselined — so the replayed steps are
        indistinguishable from a fault-free run.
        """
        self.cons = np.array(state["cons"])
        p_cache = state["p_cache"]
        self.pipeline._p_cache = None if p_cache is None else np.array(p_cache)
        prims = state["prims_cache"]
        self._prims_cache = None if prims is None else np.array(prims)
        self.t = float(state["t"])
        self.steps = int(state["steps"])
        self.metrics.restore(state["metrics"])
        self.timers.restore(state["timers"])
        self._recorder.restore_state(state["recorder"])
        self._oracle_calls = list(state["oracle_calls"])
        if self.oracle is not None:
            self.oracle.rewind(self._oracle_calls)
        injector = self.pipeline.fault_injector
        if injector is not None and state["injector_sweep"] is not None:
            injector._sweep = int(state["injector_sweep"])
        self.overlap_log = [dict(e) for e in state["overlap_log"]]
        self.comm.reset_after_failure(state["epoch"], state["traffic"])
        self._traffic_prev = tuple(state["traffic_prev"])

    def rebind(self, channels: dict) -> None:
        """Attach freshly recreated shm rings (a peer was respawned)."""
        for (src, dest), (name, cap) in channels.items():
            ch = ShmChannel.attach(name, cap)
            self._channels.append(ch)
            self.comm.rebind_channel(src, dest, ch)

    def close(self) -> None:
        for ch in self._channels:
            try:
                ch.close()
            except Exception:
                pass


def _worker_main(spec: _WorkerSpec, conn) -> None:
    worker = None
    board = None
    hb_stop = threading.Event()
    hb_thread = None
    send_lock = threading.Lock()

    def _send(msg):
        with send_lock:
            conn.send(msg)

    try:
        board = SupervisionBoard.attach(spec.board_name, spec.size,
                                        rank=spec.rank)
        board.beat()

        def _heartbeat():
            try:
                while not hb_stop.wait(spec.heartbeat_interval_s):
                    board.beat()
            except Exception:  # board unmapped during teardown
                pass

        hb_thread = threading.Thread(
            target=_heartbeat, name=f"heartbeat-{spec.rank}", daemon=True
        )
        hb_thread.start()
        worker = spec.build(board)
        _send(("ready", spec.rank))
        while True:
            msg = conn.recv()
            board.beat()
            cmd = msg[0]
            if cmd == "step":
                try:
                    dt, record = worker.step(dt=msg[1], t_final=msg[2])
                except ReproError as exc:
                    # Recoverable under supervision: report the failed
                    # step and stay in the command loop so the parent can
                    # roll this rank back and retry.  Without supervision
                    # the parent maps this onto the same fatal error the
                    # pre-supervision protocol raised.
                    _send(
                        ("step_failed", spec.rank,
                         f"{type(exc).__name__}: {exc}",
                         traceback.format_exc())
                    )
                    continue
                state = worker.supervision_state() if msg[3] else None
                _send(
                    ("step_done", spec.rank, dt, worker.t, worker.steps,
                     record, state)
                )
            elif cmd == "gather_prims":
                _send(("prims", spec.rank, worker.interior_primitives()))
            elif cmd == "gather_cons":
                _send(("cons", spec.rank, worker.cons.copy()))
            elif cmd == "snapshot":
                _send(("snap", spec.rank, worker.snapshot()))
            elif cmd == "sup_state":
                _send(("sup_state_done", spec.rank, worker.supervision_state()))
            elif cmd == "rebind":
                worker.rebind(msg[1])
                _send(("rebound", spec.rank))
            elif cmd == "restore_full":
                worker.restore_supervision_state(msg[1])
                _send(("restored_full", spec.rank))
            elif cmd == "checkpoint":
                cons, p_cache = worker.checkpoint_state()
                _send(("ckpt", spec.rank, cons, p_cache))
            elif cmd == "restore":
                worker.restore_state(msg[1], msg[2], msg[3], msg[4])
                _send(("restored", spec.rank))
            elif cmd == "shutdown":
                _send(("bye", spec.rank))
                return
            else:
                raise WorkerError(f"unknown worker command {cmd!r}")
    except BaseException as exc:  # forward everything; the parent decides
        try:
            _send(
                ("error", spec.rank, f"{type(exc).__name__}: {exc}",
                 traceback.format_exc())
            )
        except Exception:
            pass
    finally:
        hb_stop.set()
        if hb_thread is not None:
            hb_thread.join(timeout=1.0)
        if worker is not None:
            worker.close()
        if board is not None:
            try:
                board.close()
            except Exception:
                pass
        try:
            conn.close()
        except Exception:
            pass


def _merge_histograms(into: dict, name: str, summary: dict) -> None:
    into[name] = merge_histogram_summaries(into.get(name), summary)


def merge_step_records(shards: list[dict]) -> dict:
    """Merge per-rank step-record shards into one global step record.

    Counters and kernel seconds sum across ranks, gauges take the max
    (every canonical gauge is a running maximum), histogram summaries
    combine exactly (all canonical observations are integer-valued, so
    the float sums re-associate without rounding), and the comm block
    sums bytes/messages while collectives — counted once per rank — take
    the max.  The result is byte-identical, after canonicalization, to
    the record the serial solver would have emitted for the same step.
    """
    base = shards[0]
    for s in shards[1:]:
        if (s["step"], s["t"], s["dt"]) != (base["step"], base["t"], base["dt"]):
            raise WorkerError(
                f"worker shards diverged at step {base['step']}: "
                f"rank {s.get('rank')} reported "
                f"(step={s['step']}, t={s['t']!r}, dt={s['dt']!r})"
            )
    merged = {
        "step": base["step"],
        "t": base["t"],
        "dt": base["dt"],
        "wall_seconds": max(s.get("wall_seconds", 0.0) for s in shards),
        "kernel_seconds": {},
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    for s in shards:
        for name, seconds in s.get("kernel_seconds", {}).items():
            merged["kernel_seconds"][name] = (
                merged["kernel_seconds"].get(name, 0.0) + seconds
            )
        for name, delta in s.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + delta
        for name, value in s.get("gauges", {}).items():
            cur = merged["gauges"].get(name)
            merged["gauges"][name] = value if cur is None else max(cur, value)
        for name, summary in s.get("histograms", {}).items():
            _merge_histograms(merged["histograms"], name, summary)
    if any("comm" in s for s in shards):
        comms = [s["comm"] for s in shards if "comm" in s]
        merged["comm"] = {
            "halo_bytes": sum(c.get("halo_bytes", 0) for c in comms),
            "messages": sum(c.get("messages", 0) for c in comms),
            "collectives": max(c.get("collectives", 0) for c in comms),
            "halo_bytes_model_per_exchange": comms[0].get(
                "halo_bytes_model_per_exchange", 0
            ),
        }
    if "amr" in base:
        # The AMR record is replicated (forest shape and repartition state
        # are identical on every rank) — take shard 0's verbatim.
        merged["amr"] = base["amr"]
    return merged


def _merge_metric_snapshots(snaps: list[dict]) -> dict:
    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}
    for snap in snaps:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            cur = gauges.get(name)
            gauges[name] = value if cur is None else max(cur, value)
        for name, summary in snap.get("histograms", {}).items():
            _merge_histograms(histograms, name, summary)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


class _MergedMetrics:
    """Metrics facade over the workers' registries.

    Reads merge all worker snapshots; writes (``counter``/``gauge``/
    ``histogram``) land in a small parent-side registry that is folded
    into the merged snapshot — that is where run-loop instruments like
    ``resilience.restarts`` go, since the parent has no registry of its
    own and the workers' are out of reach between steps.
    """

    def __init__(self, solver: "ProcessSolver"):
        self._solver = solver
        self._local = MetricsRegistry()

    def counter(self, name: str):
        return self._local.counter(name)

    def gauge(self, name: str):
        return self._local.gauge(name)

    def histogram(self, name: str):
        return self._local.histogram(name)

    def snapshot(self) -> dict:
        return _merge_metric_snapshots(
            [s["metrics"] for s in self._solver.worker_snapshots()]
            + [self._local.snapshot()]
        )


class _RankFailureSignal(Exception):
    """Internal: one or more ranks failed during a supervised step.

    Carries the classification the supervisor needs: ``failures`` maps
    rank to ``(kind, detail)`` with kind ``"crash"`` or ``"hang"``;
    ``step_failed`` maps rank to ``(description, traceback)`` for ranks
    that reported a :class:`ReproError` and are still alive; ``replies``
    are step replies already received; ``pending`` are commanded ranks
    that have not yet come to rest.
    """

    def __init__(self, failures, step_failed, replies, pending):
        super().__init__(f"rank failures: {sorted(failures)}")
        self.failures = dict(failures)
        self.step_failed = dict(step_failed)
        self.replies = dict(replies)
        self.pending = set(pending)


class ProcessSolver:
    """Drive one :class:`_RankWorker` process per rank in lockstep.

    Same constructor surface as :class:`DistributedSolver` (the
    ``fault_injector``'s plan is shipped to the workers and replayed
    rank-locally; the injector object itself stays untouched in the
    parent).  ``step``/``run``/``gather_primitives``/checkpointing match
    the serial driver: workers stream their shards to the parent, which
    writes the identical distributed checkpoint format.

    Pass a :class:`~repro.resilience.policies.SupervisionPolicy` as
    ``supervision`` to enable in-run rank recovery: crashed or hung
    workers are respawned and every rank rolled back to the last
    consistent snapshot, bit-identically (see the module docstring).
    """

    def __init__(
        self,
        system: SRHDSystem,
        global_grid: Grid,
        initial_prim: np.ndarray,
        dims,
        config: SolverConfig | None = None,
        boundaries: BoundarySet | None = None,
        periodic=None,
        recorder: "StepRecorder | None" = None,
        fault_injector=None,
        halo_policy: "HaloRetryPolicy | None" = None,
        source_fn=None,
        comm_timeout_s: float = 120.0,
        step_timeout_s: float = 600.0,
        ready_timeout_s: float = 180.0,
        supervision: "SupervisionPolicy | None" = None,
    ):
        if system.ndim != global_grid.ndim:
            raise ConfigurationError("system/grid dimensionality mismatch")
        self.system = system
        self.global_grid = global_grid
        self.config = config or SolverConfig()
        wall_bcs = boundaries or make_boundaries("outflow")
        if periodic is None:
            periodic = tuple(
                wall_bcs.condition(ax, 0).name == "periodic"
                for ax in range(global_grid.ndim)
            )
        self.decomp = CartesianDecomposition(global_grid, dims, periodic=periodic)
        self.recorder = recorder
        self.halo_policy = halo_policy
        plan = fault_injector.plan if fault_injector is not None else None
        self.t = 0.0
        self.steps = 0
        self.step_timeout_s = float(step_timeout_s)
        self.halo_bytes_per_exchange = sum(
            halo_bytes_per_step(self.decomp, system.nvars).values()
        )
        self.metrics = _MergedMetrics(self)
        self.supervision = supervision
        self._plan = plan
        for fault in getattr(plan, "processes", None) or ():
            if fault.rank >= self.decomp.size:
                raise ConfigurationError(
                    f"process fault targets rank {fault.rank} but the "
                    f"decomposition has only {self.decomp.size} ranks"
                )
        self._closed = False
        self._last_record: dict | None = None
        self._wall_bcs = wall_bcs
        self._periodic = tuple(periodic)
        self._source_fn = source_fn
        self._comm_timeout_s = float(comm_timeout_s)
        self._ready_timeout_s = float(ready_timeout_s)
        self._heartbeat_interval_s = (
            supervision.heartbeat_interval_s if supervision is not None else 0.25
        )
        #: last consistent per-rank supervision snapshot (rollback point)
        self._snapshot: dict | None = None
        #: steps already emitted to the caller's recorder — replayed
        #: steps below this mark regenerate records but never re-emit
        self._emitted = 0
        self._restarts_used = 0
        self._restart_rounds = 0
        self._process_faults_fired: set[int] = set()
        #: parent-side counter totals already folded into step records
        self._local_prev: dict = {}

        parts = self.decomp.scatter(global_grid.interior_of(initial_prim))
        self._parts = {r: np.ascontiguousarray(p) for r, p in parts.items()}
        caps = channel_capacities(
            self.decomp, system.nvars, global_grid.n_ghost, policy=halo_policy
        )
        self._caps = dict(caps)
        #: every shm segment name this run ever created — swept on
        #: teardown so SIGKILL'd workers cannot leak /dev/shm entries
        self._segments: list[str] = []
        self._channels: dict = {}
        for pair, cap in caps.items():
            ch = ShmChannel.create(cap)
            self._channels[pair] = ch
            self._segments.append(ch.name)

        self._ctx = mp.get_context("spawn")
        self._board = SupervisionBoard.create(self.size)
        self._segments.append(self._board.name)
        self._procs: dict[int, mp.Process] = {}
        self._conns: dict = {}
        try:
            for rank in range(self.size):
                self._spawn(rank)
            self._collect("ready", timeout_s=self._ready_timeout_s)
            if supervision is not None:
                self._snapshot = self._gather_supervision_state()
        except BaseException:
            self._abort()
            raise

    def _make_spec(self, rank: int, defer_init: bool = False) -> _WorkerSpec:
        return _WorkerSpec(
            rank=rank,
            size=self.size,
            system=self.system,
            global_grid=self.global_grid,
            dims=tuple(self.decomp.dims),
            periodic=self._periodic,
            config=self.config,
            wall_bcs=self._wall_bcs,
            part=self._parts[rank],
            plan=self._plan,
            policy=self.halo_policy,
            source_fn=self._source_fn,
            channels={
                pair: (ch.name, ch.capacity)
                for pair, ch in self._channels.items()
                if rank in pair
            },
            comm_timeout_s=self._comm_timeout_s,
            barrier_timeout_s=self.step_timeout_s,
            board_name=self._board.name,
            heartbeat_interval_s=self._heartbeat_interval_s,
            defer_init=defer_init,
        )

    def _spawn(self, rank: int, defer_init: bool = False) -> None:
        spec = self._make_spec(rank, defer_init=defer_init)
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(spec, child_conn), daemon=True
        )
        proc.start()
        child_conn.close()
        self._procs[rank] = proc
        self._conns[rank] = parent_conn

    def _gather_supervision_state(self) -> dict:
        self._command_all("sup_state")
        replies = self._collect("sup_state_done")
        return {
            "t": self.t,
            "steps": self.steps,
            "states": {r: replies[r][2] for r in range(self.size)},
        }

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.decomp.size

    @property
    def restarts_used(self) -> int:
        """Rank respawns spent so far (supervised runs only)."""
        return self._restarts_used

    @property
    def steps_emitted(self) -> int:
        """Highest step number already emitted to the caller's recorder."""
        return self._emitted

    def _release_segments(self) -> None:
        """Close + unlink every shm segment this run owns, then sweep.

        SIGKILL'd workers never run their ``close()``; segments recreated
        mid-recovery may have no live parent handle either.  The sweep
        attaches purely to unlink, so nothing lingers in ``/dev/shm``.
        """
        for ch in self._channels.values():
            try:
                ch.close()
            except Exception:
                pass
        self._channels = {}
        if getattr(self, "_board", None) is not None:
            try:
                self._board.close()
            except Exception:
                pass
            self._board = None
        sweep_segments(self._segments)

    def _abort(self) -> None:
        """Tear everything down after a failure (idempotent)."""
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs.values():
            proc.join(timeout=5.0)
        for conn in self._conns.values():
            try:
                conn.close()
            except Exception:
                pass
        self._release_segments()
        self._closed = True

    def _collect(
        self,
        expect: str,
        timeout_s: float | None = None,
        ranks=None,
        mode: str = "strict",
    ) -> dict:
        """Wait for one reply of kind *expect* from every worker.

        *mode* selects the failure posture:

        - ``"strict"`` (default): any anomaly aborts the run and raises
          :class:`WorkerError` — the unsupervised behavior.
        - ``"signal"``: raise :class:`_RankFailureSignal` on the first
          detected crash, hang (heartbeat staleness), or step failure,
          leaving the solver up so :meth:`_recover` can run.
        - ``"quiesce"``: drain replies after an abort was broadcast —
          ``step_failed`` replies count as quiesced, crashes and hangs
          accumulate, and the signal is raised only at the end.
        """
        timeout = timeout_s if timeout_s is not None else self.step_timeout_s
        deadline = time.monotonic() + timeout
        replies: dict = {}
        failures: dict = {}
        step_failed: dict = {}
        pending = set(self._procs if ranks is None else ranks)
        sup = self.supervision
        while pending:
            for rank in sorted(pending):
                conn, proc = self._conns[rank], self._procs[rank]
                msg = None
                try:
                    if conn.poll(0.02):
                        msg = conn.recv()
                except (EOFError, OSError):
                    if mode != "strict":
                        failures[rank] = ("crash", "connection lost mid-run")
                        pending.discard(rank)
                        continue
                    self._abort()
                    raise WorkerError(
                        f"worker rank {rank}: connection lost mid-run"
                    ) from None
                if msg is not None:
                    if msg[0] == "error":
                        _, bad_rank, desc, tb = msg
                        if mode != "strict":
                            failures[rank] = ("crash", desc)
                            pending.discard(rank)
                            continue
                        self._abort()
                        raise WorkerError(
                            f"worker rank {bad_rank} failed: {desc}\n{tb}"
                        )
                    if msg[0] == "step_failed":
                        _, bad_rank, desc, tb = msg
                        if mode != "strict":
                            step_failed[rank] = (desc, tb)
                            pending.discard(rank)
                            continue
                        self._abort()
                        raise WorkerError(
                            f"worker rank {bad_rank} failed: {desc}\n{tb}"
                        )
                    if msg[0] != expect:
                        self._abort()
                        raise WorkerError(
                            f"worker rank {rank}: expected {expect!r} reply, "
                            f"got {msg[0]!r}"
                        )
                    replies[rank] = msg
                    pending.discard(rank)
                elif not proc.is_alive():
                    if mode != "strict":
                        failures[rank] = (
                            "crash", f"exit code {proc.exitcode}"
                        )
                        pending.discard(rank)
                    else:
                        self._abort()
                        raise WorkerError(
                            f"worker rank {rank} died unexpectedly "
                            f"(exit code {proc.exitcode})"
                        )
                elif (
                    mode != "strict"
                    and sup is not None
                    and self._board.heartbeat_age_s(rank) > sup.hang_timeout_s
                ):
                    failures[rank] = (
                        "hang",
                        f"heartbeat stale for "
                        f"{self._board.heartbeat_age_s(rank):.1f}s",
                    )
                    pending.discard(rank)
            if mode == "signal" and (failures or step_failed):
                raise _RankFailureSignal(failures, step_failed, replies, pending)
            if pending and time.monotonic() > deadline:
                if mode != "strict":
                    for rank in pending:
                        failures[rank] = (
                            "hang", f"no reply within {timeout:.1f}s"
                        )
                    raise _RankFailureSignal(
                        failures, step_failed, replies, set()
                    )
                self._abort()
                raise WorkerError(
                    f"timed out waiting for worker rank(s) {sorted(pending)}"
                )
        if mode == "quiesce" and failures:
            raise _RankFailureSignal(failures, step_failed, replies, set())
        return replies

    def _command_all(self, *msg, mode: str = "strict") -> None:
        if self._closed:
            raise WorkerError("process solver already shut down")
        failures: dict = {}
        sent: set = set()
        for rank in range(self.size):
            try:
                self._conns[rank].send(tuple(msg))
                sent.add(rank)
            except (BrokenPipeError, OSError):
                if mode == "signal":
                    failures[rank] = ("crash", "cannot send command")
                    continue
                self._abort()
                raise WorkerError(
                    f"worker rank {rank}: cannot send command "
                    f"(process {'alive' if self._procs[rank].is_alive() else 'dead'})"
                ) from None
        if failures:
            raise _RankFailureSignal(failures, {}, {}, sent)

    # -- driver surface --------------------------------------------------
    def step(self, dt: float | None = None, t_final: float | None = None) -> float:
        """Advance all ranks one step, recovering failures when supervised.

        Under supervision a detected crash or hang triggers
        :meth:`_recover` — the run rolls back to the last consistent
        snapshot and replays forward; replayed steps regenerate their
        records but are not re-emitted, so the caller's recorder stream
        stays identical to a fault-free run.
        """
        if self.supervision is None:
            return self._step_once(dt, t_final)
        target = self.steps + 1
        last_dt = 0.0
        while self.steps < target:
            try:
                last_dt = self._step_once(dt, t_final)
            except _RankFailureSignal as sig:
                self._recover(sig)
        return last_dt

    def _step_once(self, dt, t_final) -> float:
        wall0 = time.perf_counter()
        sup = self.supervision
        step_no = self.steps + 1
        want_state = bool(sup is not None and step_no % sup.snapshot_every == 0)
        mode = "strict" if sup is None else "signal"
        self._command_all("step", dt, t_final, want_state, mode=mode)
        self._fire_process_faults(step_no)
        replies = self._collect("step_done", mode=mode)
        shards = []
        states: dict = {}
        dt0 = t0 = steps0 = None
        for rank in range(self.size):
            _, _r, w_dt, w_t, w_steps, record, state = replies[rank]
            if rank == 0:
                dt0, t0, steps0 = w_dt, w_t, w_steps
            elif (w_dt, w_t, w_steps) != (dt0, t0, steps0):
                self._abort()
                raise WorkerError(
                    f"worker rank {rank} diverged from rank 0: "
                    f"(dt, t, steps) = {(w_dt, w_t, w_steps)!r} "
                    f"!= {(dt0, t0, steps0)!r}"
                )
            shards.append(record)
            if state is not None:
                states[rank] = state
        self.t = t0
        self.steps = steps0
        if want_state and len(states) == self.size:
            self._snapshot = {"t": t0, "steps": steps0, "states": states}
        merged = merge_step_records(shards)
        merged["wall_seconds"] = time.perf_counter() - wall0
        self._last_record = merged
        if self.steps > self._emitted:
            if sup is not None:
                self._attach_parent_counters(merged)
            self._emitted = self.steps
            self._emit_step_record(merged)
        return dt0

    def _emit_step_record(self, merged: dict) -> None:
        """Emit one freshly merged (non-replayed) step record.  The AMR
        driver hooks in here to surface rebalance events first."""
        if self.recorder is not None:
            self.recorder.emit_step(merged)

    def _attach_parent_counters(self, merged: dict) -> None:
        """Fold parent-side counter deltas into an outgoing step record.

        Supervision counters (``resilience.worker_restarts``,
        ``supervision.*``) live in the parent's local registry — the
        workers never see them.  Folding the deltas into the next emitted
        record surfaces them in the JSONL stream and in
        ``Report.from_metrics`` exactly like worker counters; the
        canonicalizer excludes them, so bit-exactness is untouched.
        """
        totals = self.metrics._local.snapshot()["counters"]
        for name, total in totals.items():
            delta = total - self._local_prev.get(name, 0)
            if delta:
                merged["counters"][name] = (
                    merged["counters"].get(name, 0) + delta
                )
        self._local_prev = dict(totals)

    def _emit_supervision_event(self, action: str, **fields) -> None:
        if self.recorder is not None:
            self.recorder.emit_event("supervision", action=action, **fields)

    def _fire_process_faults(self, step_no: int) -> None:
        """Deliver planned ``kill_rank``/``hang_rank`` faults as signals."""
        faults = getattr(self._plan, "processes", None) if self._plan else None
        if not faults:
            return
        for idx, fault in enumerate(faults):
            if idx in self._process_faults_fired or fault.step != step_no:
                continue
            self._process_faults_fired.add(idx)
            proc = self._procs.get(fault.rank)
            if proc is None or proc.pid is None or not proc.is_alive():
                continue
            signo = (
                signal.SIGKILL if fault.kind == "kill_rank" else signal.SIGSTOP
            )
            try:
                os.kill(proc.pid, signo)
            except (ProcessLookupError, PermissionError):  # pragma: no cover
                continue
            self.metrics.counter(f"supervision.injected_{fault.kind}").inc()
            self._emit_supervision_event(
                "inject", fault=fault.kind, rank=fault.rank, step=step_no
            )

    def _reap(self, rank: int) -> None:
        """Make sure a failed rank's process is gone and its pipe closed."""
        proc = self._procs[rank]
        if proc.is_alive() and proc.pid is not None:
            try:
                # SIGKILL, not terminate(): a SIGSTOP'd process ignores
                # SIGTERM until resumed, SIGKILL it cannot.
                os.kill(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):  # pragma: no cover
                pass
        proc.join(timeout=10.0)
        try:
            self._conns[rank].close()
        except Exception:
            pass

    def _recover(self, sig: _RankFailureSignal) -> None:
        """In-run rank recovery: quiesce, respawn, roll back, replay.

        The sequence (each stage gated on the previous):

        1. publish dead ranks + bump the abort epoch on the supervision
           board, so every survivor's blocked communicator wait raises
           instead of deadlocking on a peer that will never answer;
        2. quiesce: every commanded survivor comes to rest (a late
           ``step_done`` or an abort-induced ``step_failed``) —
           non-responders escalate into the failure set;
        3. check the restart budget (raising
           :class:`SupervisionExhausted` carrying the snapshot when
           spent) and back off exponentially;
        4. recreate every shm ring touching a dead rank (it may have died
           mid-push, leaving the ring torn), respawn the dead ranks with
           deferred init, and rebind survivors to the fresh rings;
        5. roll **every** rank back to the last consistent snapshot —
           physics, caches, metrics, fault-replay position — so the
           retried steps are bit-identical to a fault-free run.
        """
        sup = self.supervision
        failures = dict(sig.failures)
        step_failed = dict(sig.step_failed)
        if not failures:
            # No crashed or hung rank: a pure logical failure (numerics,
            # exhausted retries) is deterministic and would recur on
            # replay — fatal, exactly like the unsupervised path.
            rank, (desc, tb) = sorted(step_failed.items())[0]
            self._abort()
            raise WorkerError(f"worker rank {rank} failed: {desc}\n{tb}")

        for rank in failures:
            self._board.mark_dead(rank)
        self._board.abort()
        for rank, (kind, detail) in sorted(failures.items()):
            self.metrics.counter(f"supervision.{kind}_detected").inc()
            self._emit_supervision_event(
                "detected", failure=kind, rank=rank, detail=detail,
                step=self.steps + 1,
            )
            self._reap(rank)

        owing = set(sig.pending) - set(failures)
        if owing:
            try:
                self._collect(
                    "step_done",
                    timeout_s=sup.quiesce_timeout_s,
                    ranks=owing,
                    mode="quiesce",
                )
            except _RankFailureSignal as more:
                for rank, (kind, detail) in sorted(more.failures.items()):
                    failures[rank] = (kind, detail)
                    self._board.mark_dead(rank)
                    self.metrics.counter(f"supervision.{kind}_detected").inc()
                    self._emit_supervision_event(
                        "detected", failure=kind, rank=rank, detail=detail,
                        step=self.steps + 1,
                    )
                    self._reap(rank)

        need = len(failures)
        if self._restarts_used + need > sup.max_rank_restarts:
            self.metrics.counter("supervision.budget_exhausted").inc()
            self._emit_supervision_event(
                "budget_exhausted", ranks=sorted(failures),
                restarts_used=self._restarts_used,
                max_rank_restarts=sup.max_rank_restarts,
            )
            snapshot = self._snapshot
            self._abort()
            raise SupervisionExhausted(
                f"rank restart budget exhausted: {need} respawn(s) needed "
                f"for rank(s) {sorted(failures)} with "
                f"{sup.max_rank_restarts - self._restarts_used} of "
                f"{sup.max_rank_restarts} remaining",
                snapshot=snapshot,
            )
        time.sleep(
            min(
                sup.backoff_base_s * (2.0 ** self._restart_rounds),
                sup.backoff_cap_s,
            )
        )

        affected = {
            pair
            for pair in self._caps
            if pair[0] in failures or pair[1] in failures
        }
        for pair in sorted(affected):
            try:
                self._channels[pair].close()
            except Exception:
                pass
            ch = ShmChannel.create(self._caps[pair])
            self._channels[pair] = ch
            self._segments.append(ch.name)

        for rank in sorted(failures):
            self._board.revive(rank)
            self._board.touch(rank)
            self._spawn(rank, defer_init=True)
        self._collect(
            "ready", timeout_s=self._ready_timeout_s, ranks=set(failures)
        )

        rebinds: dict = {}
        for rank in range(self.size):
            if rank in failures:
                continue
            sub = {
                pair: (self._channels[pair].name, self._caps[pair])
                for pair in affected
                if rank in pair
            }
            if sub:
                try:
                    self._conns[rank].send(("rebind", sub))
                except (BrokenPipeError, OSError):
                    self._abort()
                    raise WorkerError(
                        f"worker rank {rank}: cannot rebind after recovery"
                    ) from None
                rebinds[rank] = sub
        if rebinds:
            self._collect("rebound", ranks=set(rebinds))

        self._board.reset_barrier()
        states = self._snapshot["states"]
        for rank in range(self.size):
            try:
                self._conns[rank].send(("restore_full", states[rank]))
            except (BrokenPipeError, OSError):
                self._abort()
                raise WorkerError(
                    f"worker rank {rank}: cannot restore after recovery"
                ) from None
        self._collect("restored_full")
        self.t = float(self._snapshot["t"])
        self.steps = int(self._snapshot["steps"])

        self._restarts_used += need
        self._restart_rounds += 1
        self.metrics.counter("resilience.worker_restarts").inc(need)
        self.metrics.counter("supervision.respawns").inc(need)
        self.metrics.counter("supervision.recoveries").inc()
        self._emit_supervision_event(
            "respawned", ranks=sorted(failures),
            restarts_used=self._restarts_used,
            resumed_step=self.steps, t=self.t,
        )

    def run(
        self,
        t_final: float,
        max_steps: int | None = None,
        checkpoint_every: int = 0,
        checkpoint_path=None,
    ) -> None:
        """Advance to *t_final*, checkpointing every N steps when asked.

        The workers stream their interior state (ghosted conserved arrays
        plus con2prim warm-start caches) to the parent, which writes the
        same distributed checkpoint format as the serial executor —
        bit-identical shards, so a run may checkpoint under one executor
        and restart under the other (see
        :func:`repro.io.checkpoint.load_distributed_checkpoint`).
        """
        if checkpoint_every and checkpoint_path is None:
            raise ConfigurationError("checkpoint_every requires a checkpoint_path")
        limit = max_steps if max_steps is not None else self.config.max_steps
        while self.t < t_final * (1.0 - 1e-14) and self.steps < limit:
            self.step(t_final=t_final)
            if checkpoint_every and self.steps % checkpoint_every == 0:
                # Deferred import: repro.io imports this module's siblings.
                from ..io.checkpoint import save_distributed_checkpoint

                save_distributed_checkpoint(self, checkpoint_path)

    def gather_primitives(self) -> np.ndarray:
        self._command_all("gather_prims")
        replies = self._collect("prims")
        parts = {rank: replies[rank][2] for rank in range(self.size)}
        return self.decomp.gather(parts, self.system.nvars)

    def gather_cons(self) -> dict[int, np.ndarray]:
        """Every rank's full ghosted conserved array (bit-exactness tests)."""
        self._command_all("gather_cons")
        replies = self._collect("cons")
        return {rank: replies[rank][2] for rank in range(self.size)}

    def worker_snapshots(self) -> list[dict]:
        """Per-rank ``{metrics, timers, process_seconds}`` snapshots."""
        self._command_all("snapshot")
        replies = self._collect("snap")
        return [replies[rank][2] for rank in range(self.size)]

    def checkpoint_shards(self) -> dict[int, tuple[np.ndarray, np.ndarray | None]]:
        """Per-rank ``(ghosted cons, con2prim cache)`` streamed from the
        workers — the payload of one distributed checkpoint."""
        self._command_all("checkpoint")
        replies = self._collect("ckpt")
        return {rank: (replies[rank][2], replies[rank][3]) for rank in range(self.size)}

    def restore_state(self, t: float, steps: int, shards: dict) -> None:
        """Install checkpointed per-rank state into the workers verbatim."""
        if self._closed:
            raise WorkerError("process solver already shut down")
        for rank in range(self.size):
            cons, p_cache = shards[rank]
            try:
                self._conns[rank].send(("restore", cons, p_cache, t, steps))
            except (BrokenPipeError, OSError):
                self._abort()
                raise WorkerError(
                    f"worker rank {rank}: cannot send restore command"
                ) from None
        self._collect("restored")
        self.t = float(t)
        self.steps = int(steps)

    def close(self) -> None:
        """Shut the workers down and release the shared-memory segments."""
        if self._closed:
            return
        try:
            self._command_all("shutdown")
            self._collect("bye", timeout_s=30.0)
        except WorkerError:
            pass  # _collect already aborted
        finally:
            for proc in self._procs.values():
                proc.join(timeout=10.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            for conn in self._conns.values():
                try:
                    conn.close()
                except Exception:
                    pass
            self._release_segments()
            self._closed = True

    def __enter__(self) -> "ProcessSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _fold_to_serial(solver: ProcessSolver, snapshot: dict) -> DistributedSolver:
    """Rebuild a serial :class:`DistributedSolver` carrying *snapshot*.

    The per-rank supervision states install verbatim — ghosted conserved
    arrays, con2prim warm-start caches, and (when every rank has one) the
    exchanged-primitive cache — so the serial continuation advances the
    exact bytes the process run held at its last consistent boundary.
    Logical fault plans are not resumed across the fold: the degraded
    tail runs fault-free (mirroring ``run_with_restart``'s per-run plan
    semantics).
    """
    from ..io.checkpoint import _quiescent_prim

    system = solver.system
    grid = solver.global_grid
    serial = DistributedSolver(
        system,
        grid,
        _quiescent_prim(system, grid),
        tuple(solver.decomp.dims),
        config=solver.config,
        boundaries=solver._wall_bcs,
        periodic=solver._periodic,
        halo_policy=solver.halo_policy,
        source_fn=solver._source_fn,
    )
    states = snapshot["states"]
    prims: dict[int, np.ndarray] = {}
    for rank in range(serial.size):
        st = states[rank]
        serial.cons[rank] = np.array(st["cons"])
        p_cache = st["p_cache"]
        serial.pipelines[rank]._p_cache = (
            None if p_cache is None else np.array(p_cache)
        )
        if st["prims_cache"] is not None:
            prims[rank] = np.array(st["prims_cache"])
    serial._prims_cache = prims if len(prims) == serial.size else None
    serial.t = float(snapshot["t"])
    serial.steps = int(snapshot["steps"])
    return serial


def run_supervised(
    solver: ProcessSolver,
    t_final: float,
    max_steps: int | None = None,
    checkpoint_every: int = 0,
    checkpoint_path=None,
):
    """Drive a supervised :class:`ProcessSolver`, degrading on exhaustion.

    Runs ``solver.run(...)``.  When the rank-restart budget runs out and
    the solver's :class:`~repro.resilience.policies.SupervisionPolicy`
    has ``degrade=True``, the run folds down to the serial
    :class:`DistributedSolver`, restored from the last consistent
    supervision snapshot, and finishes there: the final physics state is
    bit-identical to a fault-free run.  Steps the process solver already
    emitted are replayed quietly, so the caller's recorder sees every
    step exactly once (post-fold timing/comm fields reflect the serial
    substrate; canonical physics fields are unchanged).

    Returns ``(solver, info)`` where *solver* is whichever solver
    finished the run and *info* reports ``degraded``,
    ``worker_restarts``, ``t``, and ``steps``.
    """
    sup = solver.supervision
    try:
        solver.run(
            t_final,
            max_steps=max_steps,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
        )
        return solver, {
            "degraded": False,
            "worker_restarts": solver.restarts_used,
            "t": solver.t,
            "steps": solver.steps,
        }
    except SupervisionExhausted as exc:
        if sup is None or not sup.degrade or exc.snapshot is None:
            raise
        restarts = solver.restarts_used
        emitted = solver.steps_emitted
        recorder = solver.recorder
        serial = _fold_to_serial(solver, exc.snapshot)
        solver.close()
        serial.metrics.counter("supervision.degraded").inc()
        if recorder is not None:
            recorder.emit_event(
                "supervision", action="degrade",
                step=serial.steps, t=serial.t, reason=str(exc),
            )
        # Quiet replay of steps the caller's recorder already saw.
        limit = max_steps if max_steps is not None else serial.config.max_steps
        while (
            serial.steps < min(emitted, limit)
            and serial.t < t_final * (1.0 - 1e-14)
        ):
            serial.step(t_final=t_final)
        if recorder is not None:
            # Re-baseline the recorder's delta state against the fresh
            # serial registries before attaching it.
            recorder.restore_state(
                {
                    "prev_timers": {
                        name: t.elapsed for name, t in serial.timers.items()
                    },
                    "prev_metrics": serial.metrics.snapshot(),
                    "steps_recorded": recorder.steps_recorded,
                }
            )
            serial.recorder = recorder
        serial.run(
            t_final,
            max_steps=max_steps,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
        )
        return serial, {
            "degraded": True,
            "worker_restarts": restarts,
            "t": serial.t,
            "steps": serial.steps,
        }


def make_distributed_solver(
    system: SRHDSystem,
    global_grid: Grid,
    initial_prim: np.ndarray,
    dims,
    config: SolverConfig | None = None,
    **kwargs,
):
    """Build the distributed solver selected by ``config.executor``.

    ``"serial"`` returns the in-process :class:`DistributedSolver`,
    ``"process"`` the multi-core :class:`ProcessSolver` — same surface,
    bit-identical results.
    """
    cfg = config or SolverConfig()
    if cfg.executor == "process":
        return ProcessSolver(
            system, global_grid, initial_prim, dims, config=cfg, **kwargs
        )
    kwargs.pop("comm_timeout_s", None)
    kwargs.pop("step_timeout_s", None)
    kwargs.pop("ready_timeout_s", None)
    kwargs.pop("supervision", None)
    return DistributedSolver(
        system, global_grid, initial_prim, dims, config=cfg, **kwargs
    )
