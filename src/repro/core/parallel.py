"""Process-parallel execution backend: one worker process per rank.

:class:`ProcessSolver` presents the same driver surface as
:class:`~repro.core.distributed.DistributedSolver`, but each rank of the
Cartesian decomposition runs in its own persistent worker process
(spawned once, stepped in lockstep through a barrier), exchanging halos
over the :class:`~repro.comm.shm.ShmCommunicator` shared-memory rings.
Wall-clock time therefore actually drops with worker count — this is
the measured counterpart of the Hockney-priced scaling model.

Bit-exactness with the serial path is a hard invariant, held by
construction:

* every worker mirrors the serial per-rank constructor and step
  sequence exactly (same recovery, exchange, integrator, and guard
  calls, in the same order, on the same bytes);
* the global CFL reduction funnels through rank 0 and replays the
  serial ``np.stack`` + reduction, so dt is bitwise equal;
* fault injection and retry decisions are derived rank-locally from the
  shared seeds via :class:`~repro.resilience.oracle.FaultOracle` and
  :class:`~repro.resilience.oracle.RankStridedFaultInjector`, so seeded
  chaos plans strike the identical messages and sweeps.

Observability: each worker runs its own
:class:`~repro.obs.StepRecorder` into a buffer; the parent merges the
per-rank shards into one stream (counters summed, gauges maxed,
histograms combined) that canonicalizes byte-for-byte equal to the
serial stream, and forwards it to the caller's recorder via
:meth:`StepRecorder.emit_step`.  Real transport measurements land under
``comm.shm.*``.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..boundary.conditions import BoundarySet, InteriorFace, make_boundaries
from ..comm.costs import halo_exchange_time, make_link
from ..comm.halo import (
    complete_halos,
    exchange_halos,
    halo_bytes_per_step,
    post_halos,
    rhs_regions,
)
from ..comm.shm import ShmChannel, ShmCommunicator, channel_capacities
from ..mesh.decomposition import CartesianDecomposition
from ..mesh.grid import Grid
from ..obs.events import BufferSink
from ..obs.metrics import MetricsRegistry, merge_histogram_summaries
from ..obs.recorder import StepRecorder
from ..physics.srhd import SRHDSystem
from ..resilience.oracle import FaultOracle, RankStridedFaultInjector
from ..time_integration.cfl import (
    clip_dt_to_final,
    dt_from_axis_maxima,
    max_signal_per_axis,
)
from ..time_integration.ssprk import make_integrator
from ..utils.errors import ConfigurationError, NumericsError, WorkerError
from ..utils.timers import TimerRegistry
from .config import SolverConfig
from .distributed import DistributedSolver
from .pipeline import HydroPipeline

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.recorder import StepRecorder as _StepRecorder  # noqa: F401
    from ..resilience.faults import FaultPlan
    from ..resilience.policies import HaloRetryPolicy


@dataclass
class _WorkerSpec:
    """Everything one worker needs to rebuild its rank (picklable)."""

    rank: int
    size: int
    system: SRHDSystem
    global_grid: Grid
    dims: tuple
    periodic: tuple
    config: SolverConfig
    wall_bcs: BoundarySet
    part: np.ndarray  # this rank's interior primitive patch
    plan: "FaultPlan | None"
    policy: "HaloRetryPolicy | None"
    source_fn: object
    channels: dict  # {(src, dest): (shm_name, capacity)} touching this rank
    comm_timeout_s: float
    barrier_timeout_s: float


class _RankWorker:
    """One rank of the decomposition, living inside a worker process.

    Mirrors :class:`DistributedSolver`'s per-rank construction and step
    sequence exactly — any ordering drift here breaks bit-exactness, so
    changes to the serial solver must be reflected in this class (the
    serial-vs-process test matrix enforces it).
    """

    def __init__(self, spec: _WorkerSpec, barrier):
        self.rank = spec.rank
        self.spec = spec
        system = spec.system
        self.system = system
        self.global_grid = spec.global_grid
        self.config = spec.config
        self.decomp = CartesianDecomposition(
            spec.global_grid, spec.dims, periodic=spec.periodic
        )
        writers = {}
        readers = {}
        self._channels = []
        for (src, dest), (name, cap) in spec.channels.items():
            ch = ShmChannel.attach(name, cap)
            self._channels.append(ch)
            if src == self.rank:
                writers[dest] = ch
            if dest == self.rank:
                readers[src] = ch
        self.timers = TimerRegistry()
        self.metrics = MetricsRegistry()
        self.comm = ShmCommunicator(
            self.rank, spec.size, writers, readers,
            metrics=self.metrics, barrier=barrier,
            timeout_s=spec.comm_timeout_s,
        )
        self.policy = spec.policy
        self.oracle = (
            FaultOracle(spec.plan, self.decomp, spec.policy)
            if spec.plan is not None
            else None
        )
        injector = (
            RankStridedFaultInjector(
                spec.plan, self.rank, spec.size, metrics=self.metrics
            )
            if spec.plan is not None
            else None
        )
        self._barrier = barrier
        self._barrier_timeout = spec.barrier_timeout_s

        interior = InteriorFace()
        faces = {}
        for axis in range(self.global_grid.ndim):
            for side in (0, 1):
                if self.decomp.neighbor(self.rank, axis, side) is not None:
                    faces[(axis, side)] = interior
                else:
                    faces[(axis, side)] = spec.wall_bcs.condition(axis, side)
        self.subgrid = self.decomp.subgrid(self.rank)
        self.pipeline = HydroPipeline(
            system,
            self.subgrid,
            BoundarySet(faces=faces),
            self.config,
            timers=self.timers,
            metrics=self.metrics,
            fault_injector=injector,
        )
        self.pipeline.source_fn = spec.source_fn

        prim = self.subgrid.allocate(system.nvars)
        self.subgrid.interior_of(prim)[...] = spec.part
        self.pipeline.boundaries.apply(system, self.subgrid, prim)
        self._exchange(prim)
        self.pipeline.atmosphere.apply_prim(system, prim)
        self.cons = system.prim_to_con(prim)
        self._prims_cache: np.ndarray | None = prim
        self.integrator = make_integrator(self.config.integrator)
        self.t = 0.0
        self.steps = 0
        self.halo_bytes_per_exchange = sum(
            halo_bytes_per_step(self.decomp, system.nvars).values()
        )
        self._traffic_prev = self.comm.traffic_marker()

        self.overlap = bool(self.config.overlap_exchange)
        self._link = make_link(self.config.overlap_link)
        self._regions = rhs_regions(self.decomp, self.rank)
        interior_cells = strip_cells = 0
        for axis, (core, strips) in enumerate(self._regions):
            transverse = int(np.prod(self.subgrid.shape)) // self.subgrid.shape[axis]
            interior_cells += (core[1] - core[0]) * transverse
            strip_cells += sum(hi - lo for lo, hi in strips) * transverse
        # This rank's share only: summed over workers these counters equal
        # the serial solver's global overlap_cell_counts.
        self.overlap_cell_counts = (interior_cells, strip_cells)
        self.overlap_log: list[dict] = []
        self._recorder = StepRecorder(BufferSink())
        self._process_t0 = time.process_time()

    # -- serial-mirror helpers -------------------------------------------
    def _exchange(self, prim: np.ndarray) -> None:
        schedule = (
            self.oracle.next_exchange(overlapped=False)
            if self.oracle is not None
            else None
        )
        exchange_halos(
            self.decomp,
            self.comm,
            {self.rank: prim},
            policy=self.policy,
            metrics=self.metrics,
            schedule=schedule,
        )

    def _recover_and_exchange(
        self, cons: np.ndarray, use_cache: bool = False, reuse: bool = False
    ) -> np.ndarray:
        if use_cache and self._prims_cache is not None:
            return self._prims_cache
        prim = self.pipeline.recover_primitives(cons, reuse=reuse)
        self._exchange(prim)
        return prim

    def _rhs(self, cons: np.ndarray) -> np.ndarray:
        if self.overlap:
            return self._rhs_overlapped(cons)
        prim = self._recover_and_exchange(cons, reuse=True)
        dU = self.pipeline.flux_divergence(prim, reuse=True)
        return self.pipeline.apply_source(prim, dU)

    def _rhs_overlapped(self, cons: np.ndarray) -> np.ndarray:
        prim = self.pipeline.recover_primitives(cons, reuse=True)
        schedule = (
            self.oracle.next_exchange(overlapped=True)
            if self.oracle is not None
            else None
        )
        handle = post_halos(
            self.decomp, self.comm, {self.rank: prim},
            policy=self.policy, metrics=self.metrics, schedule=schedule,
        )
        t0 = time.perf_counter()
        divs: list = []
        for axis, (core, _strips) in enumerate(self._regions):
            lo, hi = core
            if hi > lo:
                divs.append(
                    (axis, lo, hi,
                     self.pipeline.flux_divergence_region(
                         prim, axis, lo, hi, reuse=True))
                )
        interior_s = time.perf_counter() - t0
        complete_halos(handle)
        t1 = time.perf_counter()
        for axis, (_core, strips) in enumerate(self._regions):
            for lo, hi in strips:
                divs.append(
                    (axis, lo, hi,
                     self.pipeline.flux_divergence_region(
                         prim, axis, lo, hi, reuse=True))
                )
        dU = self.pipeline.begin_flux_divergence(reuse=True)
        for axis, lo, hi, div in sorted(divs, key=lambda e: e[0]):
            self.pipeline.accumulate_divergence(dU, axis, lo, hi, div)
        out = self.pipeline.apply_source(prim, dU)
        strip_s = time.perf_counter() - t1
        self._record_overlap(handle, interior_s, strip_s)
        return out

    def _record_overlap(self, handle, interior_s: float, strip_s: float) -> None:
        m = self.metrics
        modeled = halo_exchange_time(self._link, handle.posted)
        hidden = min(modeled, interior_s)
        exposed = modeled - hidden
        interior_cells, strip_cells = self.overlap_cell_counts
        if self.rank == 0:
            # Serially this is one global counter per exchange; merged
            # worker counters are summed, so only one rank may own it.
            m.counter("comm.overlap.exchanges").inc()
        m.counter("comm.overlap.modeled_comm_s").inc(modeled)
        m.counter("comm.overlap.hidden_s").inc(hidden)
        m.counter("comm.overlap.exposed_s").inc(exposed)
        m.counter("comm.overlap.interior_seconds").inc(interior_s)
        m.counter("comm.overlap.strip_seconds").inc(strip_s)
        m.counter("comm.overlap.interior_cells").inc(interior_cells)
        m.counter("comm.overlap.strip_cells").inc(strip_cells)
        m.gauge("comm.overlap.hidden_frac").set(
            hidden / modeled if modeled > 0 else 1.0
        )
        self.overlap_log.append(
            {
                "exchange": len(self.overlap_log) + 1,
                "modeled_comm_s": modeled,
                "hidden_s": hidden,
                "exposed_s": exposed,
                "interior_s": interior_s,
                "strip_s": strip_s,
                "posted_messages": len(handle.posted),
                "posted_bytes": handle.posted_bytes,
            }
        )

    def compute_dt(self, t_final: float | None = None) -> float:
        prim = self._recover_and_exchange(self.cons, use_cache=True)
        local = np.asarray(max_signal_per_axis(self.system, self.subgrid, prim))
        vmax = self.comm.allreduce({self.rank: local}, op="max")[self.rank]
        dt = dt_from_axis_maxima(self.global_grid, vmax, self.config.cfl)
        return clip_dt_to_final(dt, self.t, t_final)

    def _set_stage_time(self, t: float) -> None:
        self.pipeline.time = t

    def _check_dt(self, dt: float) -> None:
        if not np.isfinite(dt) or dt <= 0:
            raise NumericsError(
                f"invalid time step dt={dt!r} at t={self.t:g} (step {self.steps + 1})"
            )

    def _check_finite(self) -> None:
        bad = ~np.isfinite(self.cons)
        if bad.any():
            var, *cell = (int(i) for i in np.argwhere(bad)[0])
            raise NumericsError(
                f"non-finite conserved state after step {self.steps} "
                f"at t={self.t:g}: rank {self.rank}, variable {var}, "
                f"cell {tuple(cell)}"
            )

    def _traffic_delta(self) -> dict:
        now = self.comm.traffic_marker()
        prev, self._traffic_prev = self._traffic_prev, now
        return {
            "halo_bytes": now[0] - prev[0],
            "messages": now[1] - prev[1],
            "collectives": now[2] - prev[2],
            "halo_bytes_model_per_exchange": self.halo_bytes_per_exchange,
        }

    def step(self, dt: float | None = None, t_final: float | None = None):
        self._barrier.wait(self._barrier_timeout)
        wall0 = time.perf_counter()
        if dt is None:
            dt = self.compute_dt(t_final)
        self._check_dt(dt)
        advanced = self.integrator.step(
            self.cons, dt, self._rhs,
            t0=self.t, set_time=self._set_stage_time,
        )
        self.cons = advanced
        self._prims_cache = None
        self.t += dt
        self.steps += 1
        self._check_finite()
        if self.rank == 0:
            # One global observation per step, exactly like the serial
            # shared registry.
            self.metrics.histogram("solver.dt").observe(dt)
        self._recorder.record_step(
            step=self.steps,
            t=self.t,
            dt=dt,
            wall_seconds=time.perf_counter() - wall0,
            timers=self.timers,
            metrics=self.metrics,
            comm=self._traffic_delta(),
            rank=self.rank,
        )
        return dt, self._recorder.sink.records.pop()

    def interior_primitives(self) -> np.ndarray:
        prim = self._recover_and_exchange(self.cons)
        return self.subgrid.interior_of(prim).copy()

    def snapshot(self) -> dict:
        return {
            "metrics": self.metrics.snapshot(),
            "timers": {name: t.elapsed for name, t in self.timers.items()},
            "process_seconds": time.process_time() - self._process_t0,
        }

    def checkpoint_state(self) -> tuple[np.ndarray, np.ndarray | None]:
        """This rank's checkpoint shard: ghosted cons + con2prim cache."""
        p_cache = self.pipeline._p_cache
        return self.cons.copy(), None if p_cache is None else p_cache.copy()

    def restore_state(self, cons, p_cache, t: float, steps: int) -> None:
        """Install a checkpoint shard verbatim (bit-exact restart)."""
        self.cons = np.array(cons)
        self.pipeline._p_cache = None if p_cache is None else np.array(p_cache)
        self._prims_cache = None
        self.t = float(t)
        self.steps = int(steps)

    def close(self) -> None:
        for ch in self._channels:
            try:
                ch.close()
            except Exception:
                pass


def _worker_main(spec: _WorkerSpec, conn, barrier) -> None:
    worker = None
    try:
        worker = _RankWorker(spec, barrier)
        conn.send(("ready", spec.rank))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "step":
                dt, record = worker.step(dt=msg[1], t_final=msg[2])
                conn.send(
                    ("step_done", spec.rank, dt, worker.t, worker.steps, record)
                )
            elif cmd == "gather_prims":
                conn.send(("prims", spec.rank, worker.interior_primitives()))
            elif cmd == "gather_cons":
                conn.send(("cons", spec.rank, worker.cons.copy()))
            elif cmd == "snapshot":
                conn.send(("snap", spec.rank, worker.snapshot()))
            elif cmd == "checkpoint":
                cons, p_cache = worker.checkpoint_state()
                conn.send(("ckpt", spec.rank, cons, p_cache))
            elif cmd == "restore":
                worker.restore_state(msg[1], msg[2], msg[3], msg[4])
                conn.send(("restored", spec.rank))
            elif cmd == "shutdown":
                conn.send(("bye", spec.rank))
                return
            else:
                raise WorkerError(f"unknown worker command {cmd!r}")
    except BaseException as exc:  # forward everything; the parent decides
        try:
            conn.send(
                ("error", spec.rank, f"{type(exc).__name__}: {exc}",
                 traceback.format_exc())
            )
        except Exception:
            pass
    finally:
        if worker is not None:
            worker.close()
        try:
            conn.close()
        except Exception:
            pass


def _merge_histograms(into: dict, name: str, summary: dict) -> None:
    into[name] = merge_histogram_summaries(into.get(name), summary)


def merge_step_records(shards: list[dict]) -> dict:
    """Merge per-rank step-record shards into one global step record.

    Counters and kernel seconds sum across ranks, gauges take the max
    (every canonical gauge is a running maximum), histogram summaries
    combine exactly (all canonical observations are integer-valued, so
    the float sums re-associate without rounding), and the comm block
    sums bytes/messages while collectives — counted once per rank — take
    the max.  The result is byte-identical, after canonicalization, to
    the record the serial solver would have emitted for the same step.
    """
    base = shards[0]
    for s in shards[1:]:
        if (s["step"], s["t"], s["dt"]) != (base["step"], base["t"], base["dt"]):
            raise WorkerError(
                f"worker shards diverged at step {base['step']}: "
                f"rank {s.get('rank')} reported "
                f"(step={s['step']}, t={s['t']!r}, dt={s['dt']!r})"
            )
    merged = {
        "step": base["step"],
        "t": base["t"],
        "dt": base["dt"],
        "wall_seconds": max(s.get("wall_seconds", 0.0) for s in shards),
        "kernel_seconds": {},
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    for s in shards:
        for name, seconds in s.get("kernel_seconds", {}).items():
            merged["kernel_seconds"][name] = (
                merged["kernel_seconds"].get(name, 0.0) + seconds
            )
        for name, delta in s.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + delta
        for name, value in s.get("gauges", {}).items():
            cur = merged["gauges"].get(name)
            merged["gauges"][name] = value if cur is None else max(cur, value)
        for name, summary in s.get("histograms", {}).items():
            _merge_histograms(merged["histograms"], name, summary)
    if any("comm" in s for s in shards):
        comms = [s["comm"] for s in shards if "comm" in s]
        merged["comm"] = {
            "halo_bytes": sum(c.get("halo_bytes", 0) for c in comms),
            "messages": sum(c.get("messages", 0) for c in comms),
            "collectives": max(c.get("collectives", 0) for c in comms),
            "halo_bytes_model_per_exchange": comms[0].get(
                "halo_bytes_model_per_exchange", 0
            ),
        }
    return merged


def _merge_metric_snapshots(snaps: list[dict]) -> dict:
    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}
    for snap in snaps:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            cur = gauges.get(name)
            gauges[name] = value if cur is None else max(cur, value)
        for name, summary in snap.get("histograms", {}).items():
            _merge_histograms(histograms, name, summary)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


class _MergedMetrics:
    """Metrics facade over the workers' registries.

    Reads merge all worker snapshots; writes (``counter``/``gauge``/
    ``histogram``) land in a small parent-side registry that is folded
    into the merged snapshot — that is where run-loop instruments like
    ``resilience.restarts`` go, since the parent has no registry of its
    own and the workers' are out of reach between steps.
    """

    def __init__(self, solver: "ProcessSolver"):
        self._solver = solver
        self._local = MetricsRegistry()

    def counter(self, name: str):
        return self._local.counter(name)

    def gauge(self, name: str):
        return self._local.gauge(name)

    def histogram(self, name: str):
        return self._local.histogram(name)

    def snapshot(self) -> dict:
        return _merge_metric_snapshots(
            [s["metrics"] for s in self._solver.worker_snapshots()]
            + [self._local.snapshot()]
        )


class ProcessSolver:
    """Drive one :class:`_RankWorker` process per rank in lockstep.

    Same constructor surface as :class:`DistributedSolver` (the
    ``fault_injector``'s plan is shipped to the workers and replayed
    rank-locally; the injector object itself stays untouched in the
    parent).  ``step``/``run``/``gather_primitives``/checkpointing match
    the serial driver: workers stream their shards to the parent, which
    writes the identical distributed checkpoint format.
    """

    def __init__(
        self,
        system: SRHDSystem,
        global_grid: Grid,
        initial_prim: np.ndarray,
        dims,
        config: SolverConfig | None = None,
        boundaries: BoundarySet | None = None,
        periodic=None,
        recorder: "StepRecorder | None" = None,
        fault_injector=None,
        halo_policy: "HaloRetryPolicy | None" = None,
        source_fn=None,
        comm_timeout_s: float = 120.0,
        step_timeout_s: float = 600.0,
        ready_timeout_s: float = 180.0,
    ):
        if system.ndim != global_grid.ndim:
            raise ConfigurationError("system/grid dimensionality mismatch")
        self.system = system
        self.global_grid = global_grid
        self.config = config or SolverConfig()
        wall_bcs = boundaries or make_boundaries("outflow")
        if periodic is None:
            periodic = tuple(
                wall_bcs.condition(ax, 0).name == "periodic"
                for ax in range(global_grid.ndim)
            )
        self.decomp = CartesianDecomposition(global_grid, dims, periodic=periodic)
        self.recorder = recorder
        self.halo_policy = halo_policy
        plan = fault_injector.plan if fault_injector is not None else None
        self.t = 0.0
        self.steps = 0
        self.step_timeout_s = float(step_timeout_s)
        self.halo_bytes_per_exchange = sum(
            halo_bytes_per_step(self.decomp, system.nvars).values()
        )
        self.metrics = _MergedMetrics(self)
        self._closed = False
        self._last_record: dict | None = None

        parts = self.decomp.scatter(global_grid.interior_of(initial_prim))
        caps = channel_capacities(
            self.decomp, system.nvars, global_grid.n_ghost, policy=halo_policy
        )
        self._channels: dict = {}
        for pair, cap in caps.items():
            self._channels[pair] = ShmChannel.create(cap)

        ctx = mp.get_context("spawn")
        self._barrier = ctx.Barrier(self.size)
        self._procs: dict[int, mp.Process] = {}
        self._conns: dict = {}
        try:
            for rank in range(self.size):
                spec = _WorkerSpec(
                    rank=rank,
                    size=self.size,
                    system=system,
                    global_grid=global_grid,
                    dims=tuple(self.decomp.dims),
                    periodic=tuple(periodic),
                    config=self.config,
                    wall_bcs=wall_bcs,
                    part=np.ascontiguousarray(parts[rank]),
                    plan=plan,
                    policy=halo_policy,
                    source_fn=source_fn,
                    channels={
                        pair: (ch.name, ch.capacity)
                        for pair, ch in self._channels.items()
                        if rank in pair
                    },
                    comm_timeout_s=float(comm_timeout_s),
                    barrier_timeout_s=float(step_timeout_s),
                )
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(spec, child_conn, self._barrier),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs[rank] = proc
                self._conns[rank] = parent_conn
            self._collect("ready", timeout_s=float(ready_timeout_s))
        except BaseException:
            self._abort()
            raise

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.decomp.size

    def _abort(self) -> None:
        """Tear everything down after a failure (idempotent)."""
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs.values():
            proc.join(timeout=5.0)
        for conn in self._conns.values():
            try:
                conn.close()
            except Exception:
                pass
        for ch in self._channels.values():
            try:
                ch.close()
            except Exception:
                pass
        self._channels = {}
        self._closed = True

    def _collect(self, expect: str, timeout_s: float | None = None) -> dict:
        """Wait for one reply of kind *expect* from every worker."""
        deadline = time.monotonic() + (
            timeout_s if timeout_s is not None else self.step_timeout_s
        )
        replies: dict = {}
        pending = set(self._procs)
        while pending:
            for rank in sorted(pending):
                conn, proc = self._conns[rank], self._procs[rank]
                msg = None
                try:
                    if conn.poll(0.02):
                        msg = conn.recv()
                except (EOFError, OSError):
                    self._abort()
                    raise WorkerError(
                        f"worker rank {rank}: connection lost mid-run"
                    ) from None
                if msg is not None:
                    if msg[0] == "error":
                        _, bad_rank, desc, tb = msg
                        self._abort()
                        raise WorkerError(
                            f"worker rank {bad_rank} failed: {desc}\n{tb}"
                        )
                    if msg[0] != expect:
                        self._abort()
                        raise WorkerError(
                            f"worker rank {rank}: expected {expect!r} reply, "
                            f"got {msg[0]!r}"
                        )
                    replies[rank] = msg
                    pending.discard(rank)
                elif not proc.is_alive():
                    self._abort()
                    raise WorkerError(
                        f"worker rank {rank} died unexpectedly "
                        f"(exit code {proc.exitcode})"
                    )
            if pending and time.monotonic() > deadline:
                self._abort()
                raise WorkerError(
                    f"timed out waiting for worker rank(s) {sorted(pending)}"
                )
        return replies

    def _command_all(self, *msg) -> None:
        if self._closed:
            raise WorkerError("process solver already shut down")
        for rank in range(self.size):
            try:
                self._conns[rank].send(tuple(msg))
            except (BrokenPipeError, OSError):
                self._abort()
                raise WorkerError(
                    f"worker rank {rank}: cannot send command "
                    f"(process {'alive' if self._procs[rank].is_alive() else 'dead'})"
                ) from None

    # -- driver surface --------------------------------------------------
    def step(self, dt: float | None = None, t_final: float | None = None) -> float:
        wall0 = time.perf_counter()
        self._command_all("step", dt, t_final)
        replies = self._collect("step_done")
        shards = []
        dt0 = t0 = steps0 = None
        for rank in range(self.size):
            _, _r, w_dt, w_t, w_steps, record = replies[rank]
            if rank == 0:
                dt0, t0, steps0 = w_dt, w_t, w_steps
            elif (w_dt, w_t, w_steps) != (dt0, t0, steps0):
                self._abort()
                raise WorkerError(
                    f"worker rank {rank} diverged from rank 0: "
                    f"(dt, t, steps) = {(w_dt, w_t, w_steps)!r} "
                    f"!= {(dt0, t0, steps0)!r}"
                )
            shards.append(record)
        self.t = t0
        self.steps = steps0
        merged = merge_step_records(shards)
        merged["wall_seconds"] = time.perf_counter() - wall0
        self._last_record = merged
        if self.recorder is not None:
            self.recorder.emit_step(merged)
        return dt0

    def run(
        self,
        t_final: float,
        max_steps: int | None = None,
        checkpoint_every: int = 0,
        checkpoint_path=None,
    ) -> None:
        """Advance to *t_final*, checkpointing every N steps when asked.

        The workers stream their interior state (ghosted conserved arrays
        plus con2prim warm-start caches) to the parent, which writes the
        same distributed checkpoint format as the serial executor —
        bit-identical shards, so a run may checkpoint under one executor
        and restart under the other (see
        :func:`repro.io.checkpoint.load_distributed_checkpoint`).
        """
        if checkpoint_every and checkpoint_path is None:
            raise ConfigurationError("checkpoint_every requires a checkpoint_path")
        limit = max_steps if max_steps is not None else self.config.max_steps
        while self.t < t_final * (1.0 - 1e-14) and self.steps < limit:
            self.step(t_final=t_final)
            if checkpoint_every and self.steps % checkpoint_every == 0:
                # Deferred import: repro.io imports this module's siblings.
                from ..io.checkpoint import save_distributed_checkpoint

                save_distributed_checkpoint(self, checkpoint_path)

    def gather_primitives(self) -> np.ndarray:
        self._command_all("gather_prims")
        replies = self._collect("prims")
        parts = {rank: replies[rank][2] for rank in range(self.size)}
        return self.decomp.gather(parts, self.system.nvars)

    def gather_cons(self) -> dict[int, np.ndarray]:
        """Every rank's full ghosted conserved array (bit-exactness tests)."""
        self._command_all("gather_cons")
        replies = self._collect("cons")
        return {rank: replies[rank][2] for rank in range(self.size)}

    def worker_snapshots(self) -> list[dict]:
        """Per-rank ``{metrics, timers, process_seconds}`` snapshots."""
        self._command_all("snapshot")
        replies = self._collect("snap")
        return [replies[rank][2] for rank in range(self.size)]

    def checkpoint_shards(self) -> dict[int, tuple[np.ndarray, np.ndarray | None]]:
        """Per-rank ``(ghosted cons, con2prim cache)`` streamed from the
        workers — the payload of one distributed checkpoint."""
        self._command_all("checkpoint")
        replies = self._collect("ckpt")
        return {rank: (replies[rank][2], replies[rank][3]) for rank in range(self.size)}

    def restore_state(self, t: float, steps: int, shards: dict) -> None:
        """Install checkpointed per-rank state into the workers verbatim."""
        if self._closed:
            raise WorkerError("process solver already shut down")
        for rank in range(self.size):
            cons, p_cache = shards[rank]
            try:
                self._conns[rank].send(("restore", cons, p_cache, t, steps))
            except (BrokenPipeError, OSError):
                self._abort()
                raise WorkerError(
                    f"worker rank {rank}: cannot send restore command"
                ) from None
        self._collect("restored")
        self.t = float(t)
        self.steps = int(steps)

    def close(self) -> None:
        """Shut the workers down and release the shared-memory segments."""
        if self._closed:
            return
        try:
            self._command_all("shutdown")
            self._collect("bye", timeout_s=30.0)
        except WorkerError:
            pass  # _collect already aborted
        finally:
            for proc in self._procs.values():
                proc.join(timeout=10.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            for conn in self._conns.values():
                try:
                    conn.close()
                except Exception:
                    pass
            for ch in self._channels.values():
                try:
                    ch.close()
                except Exception:
                    pass
            self._channels = {}
            self._closed = True

    def __enter__(self) -> "ProcessSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_distributed_solver(
    system: SRHDSystem,
    global_grid: Grid,
    initial_prim: np.ndarray,
    dims,
    config: SolverConfig | None = None,
    **kwargs,
):
    """Build the distributed solver selected by ``config.executor``.

    ``"serial"`` returns the in-process :class:`DistributedSolver`,
    ``"process"`` the multi-core :class:`ProcessSolver` — same surface,
    bit-identical results.
    """
    cfg = config or SolverConfig()
    if cfg.executor == "process":
        return ProcessSolver(
            system, global_grid, initial_prim, dims, config=cfg, **kwargs
        )
    kwargs.pop("comm_timeout_s", None)
    kwargs.pop("step_timeout_s", None)
    kwargs.pop("ready_timeout_s", None)
    return DistributedSolver(
        system, global_grid, initial_prim, dims, config=cfg, **kwargs
    )
