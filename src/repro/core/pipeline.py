"""The HRSC step pipeline: recover -> reconstruct -> Riemann -> divergence.

:class:`HydroPipeline` owns the per-step numerical kernels and exposes the
right-hand side ``dU/dt = -div F`` used by the SSP integrators. It is shared
by the unigrid and AMR solvers and is the unit the heterogeneous runtime's
performance model is calibrated against (each stage is one "kernel").
"""

from __future__ import annotations

import numpy as np

from ..boundary.conditions import BoundarySet
from ..mesh.grid import Grid
from ..obs.metrics import MetricsRegistry
from ..physics.atmosphere import Atmosphere
from ..physics.con2prim import RecoveryStats, con_to_prim
from ..physics.srhd import SRHDSystem
from ..reconstruct import make_reconstruction
from ..riemann import make_riemann_solver
from ..utils.logging import get_logger
from ..utils.timers import TimerRegistry
from .config import SolverConfig
from .workspace import ScratchWorkspace, scratch_buf

_log = get_logger("core.pipeline")


class HydroPipeline:
    """Numerical kernels for one grid patch.

    Parameters
    ----------
    system, grid, boundaries:
        Physics, mesh, and ghost-fill policy for the patch.
    config:
        Numerical scheme selection.
    timers:
        Optional registry; when given, each kernel stage is timed (used for
        calibrating the heterogeneous performance model).
    metrics:
        Optional :class:`MetricsRegistry` the pipeline reports through
        (con2prim counters, atmosphere resets, face sanitizations). Drivers
        that own several pipelines pass one shared registry so the counters
        aggregate globally.
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector` consulted
        once per recovery sweep: an injected con2prim burst forces a batch
        of cells through the same bounded atmosphere failsafe that real
        non-convergence takes (raising past ``config.failsafe_frac``).
    """

    def __init__(
        self,
        system: SRHDSystem,
        grid: Grid,
        boundaries: BoundarySet,
        config: SolverConfig,
        timers: TimerRegistry | None = None,
        metrics: MetricsRegistry | None = None,
        fault_injector=None,
    ):
        target = getattr(config, "kernel_target", "numpy")
        if target != "numpy":
            # Resolved here (not at the solver layer) so every driver —
            # serial, distributed, process-worker, AMR — hits the selected
            # kernels through the one construction point.  Imported lazily:
            # the default numpy path must not pay the SymPy import.
            from ..codegen.system import make_kernel_system

            system = make_kernel_system(system, target)
        self.system = system
        self.grid = grid
        self.boundaries = boundaries
        self.config = config
        self.reconstruction = make_reconstruction(config.reconstruction)
        self.riemann = make_riemann_solver(config.riemann)
        self.atmosphere = Atmosphere(
            rho_atmo=config.rho_atmo,
            threshold_factor=config.atmo_threshold,
            p_atmo=config.p_atmo,
        )
        if grid.n_ghost < self.reconstruction.required_ghosts:
            from ..utils.errors import ConfigurationError

            raise ConfigurationError(
                f"grid has {grid.n_ghost} ghost layers but "
                f"{config.reconstruction} needs {self.reconstruction.required_ghosts}"
            )
        self.timers = timers if timers is not None else TimerRegistry()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: fused-stencil dispatch ids (recon, limiter, riemann), or None to
        #: run the interpreted reconstruct/sanitize/riemann stages.  Set
        #: only when the compiled face-flux sweep is loaded AND the scheme
        #: combo has a compiled form — each missing piece degrades just
        #: this stage, never the whole kernel target.
        self._fused_ids = None
        #: row-offset tables for the fused sweep, keyed by (axis, layout)
        self._row_offset_cache: dict = {}
        if target == "cext" and getattr(config, "fused_stencils", True) and getattr(
            self.system, "has_fused_stencils", False
        ):
            from ..codegen.system import stencil_scheme_ids

            ids = stencil_scheme_ids(self.reconstruction, self.riemann)
            if ids is None:
                _log.info(
                    "no compiled face_flux form for scheme combo (%s, %s); "
                    "keeping the interpreted stencil stages",
                    config.reconstruction, config.riemann,
                )
            self._fused_ids = ids
        self.fault_injector = fault_injector
        if fault_injector is not None and fault_injector.metrics is None:
            fault_injector.metrics = self.metrics
        self.recovery_stats = RecoveryStats()
        #: counter-driven con2prim tuning (config.c2p_tuned): positivity-
        #: preserving cold-start seeding, plus Newton damping adapted from
        #: this pipeline's own accumulated sweep statistics.  The stats are
        #: pipeline-local (per rank), so serial and process executors make
        #: identical damping decisions.
        self._c2p_tuned = bool(getattr(config, "c2p_tuned", False))
        #: preallocated kernel buffers for the hot path (one per pipeline, so
        #: per-rank and per-AMR-block reuse is safe); None disables reuse.
        self.workspace = (
            ScratchWorkspace(grid, system.nvars)
            if getattr(config, "scratch_workspace", True)
            else None
        )
        # Pressure cache seeds the next con2prim Newton solve.
        self._p_cache: np.ndarray | None = None
        #: when True, flux_divergence stashes the interior face fluxes per
        #: axis in :attr:`last_face_fluxes` (used by AMR refluxing).
        self.store_fluxes = False
        #: optional source term ``(system, grid, prim, t) -> dU_interior``
        #: added to the flux divergence (external forces, heating, ...)
        self.source_fn = None
        #: time passed to source_fn; the owning solver keeps it current
        self.time = 0.0
        #: per-axis face fluxes of the last divergence evaluation, shaped
        #: (nvars, *transverse_interior, n_axis + 1) with the face index last
        self.last_face_fluxes: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------

    def recover_primitives(self, cons: np.ndarray, reuse: bool = False) -> np.ndarray:
        """Full primitive array: recovery on the interior + BC ghost fill.

        With ``reuse=True`` (the hot path) the returned array and the
        recovery temporaries live in the pipeline workspace and are
        overwritten by the next reusing call; the default returns fresh
        arrays the caller may keep (e.g. the solver's primitive cache).
        Values are bit-identical either way.
        """
        grid, system = self.grid, self.system
        ws = self.workspace if reuse else None
        with self.timers("con2prim"):
            cons_mask = self.atmosphere.apply_cons(system, cons)
            if cons_mask.any():
                self.metrics.counter("atmo.cons_floored").inc(int(cons_mask.sum()))
            self._limit_momentum(cons)
            interior_cons = grid.interior_of(cons)
            p_guess = self._p_cache
            if p_guess is not None and p_guess.shape != interior_cons.shape[1:]:
                p_guess = None
            sweep = RecoveryStats()
            damping = 1.0
            if self._c2p_tuned and (
                self.recovery_stats.n_unbracketed > 0
                or self.recovery_stats.max_iterations >= 50
            ):
                # Earlier sweeps hit the pathological tail (no sign change,
                # or Newton budget exhausted): halve the step from here on.
                damping = 0.5
                self.metrics.counter("con2prim.damped_sweeps").inc()
            try:
                interior_prim = con_to_prim(
                    system,
                    interior_cons,
                    p_guess=p_guess,
                    tol=self.config.recovery_tol,
                    stats=sweep,
                    failsafe_frac=self.config.failsafe_frac,
                    atmosphere=(self.atmosphere.rho_atmo, self.atmosphere.p_atmo),
                    scratch=ws,
                    out=scratch_buf(ws, ("pipe", "interior_prim"), interior_cons.shape),
                    positivity_guess=self._c2p_tuned,
                    newton_damping=damping,
                )
                if self.fault_injector is not None:
                    self._maybe_inject_burst(interior_cons, interior_prim)
            finally:
                # con_to_prim populates the sweep counters before raising,
                # so the failing sweep is accounted for too.
                self.recovery_stats.merge(sweep)
                self._record_recovery(sweep)
            prim_mask = self.atmosphere.apply_prim(system, interior_prim)
            if prim_mask.any():
                self.metrics.counter("atmo.prim_reset").inc(int(prim_mask.sum()))
            self._p_cache = interior_prim[system.P].copy()
        if ws is not None:
            # Zero-fill on reuse so ghost corners match grid.allocate exactly.
            prim = ws.prim
            prim.fill(0.0)
        else:
            prim = grid.allocate(system.nvars)
        grid.interior_of(prim)[...] = interior_prim
        with self.timers("boundary"):
            self.boundaries.apply(system, grid, prim)
        return prim

    def _record_recovery(self, sweep: RecoveryStats) -> None:
        """Report one con2prim sweep's counters through the metrics layer."""
        m = self.metrics
        m.counter("con2prim.cells").inc(sweep.n_cells)
        m.counter("con2prim.newton_converged").inc(sweep.n_newton_converged)
        m.counter("con2prim.bisection").inc(sweep.n_bisection)
        m.counter("con2prim.failed").inc(sweep.n_failed)
        m.counter("con2prim.unbracketed").inc(sweep.n_unbracketed)
        if sweep.n_failsafe:
            m.counter("resilience.failsafe_cells").inc(sweep.n_failsafe)
        m.gauge("con2prim.max_newton_iters").max(sweep.max_iterations)
        # Tail analysis works off the full distribution of per-sweep maxima,
        # not just the running maximum the gauge keeps. (The name says _max:
        # this is the sweep's worst cell, not a per-cell distribution.)
        m.histogram("con2prim.newton_iters_max").observe(sweep.max_iterations)

    def _maybe_inject_burst(
        self, interior_cons: np.ndarray, interior_prim: np.ndarray
    ) -> None:
        """Apply an injected con2prim non-convergence burst, if scheduled.

        The burst takes exactly the path real unrecoverable cells take:
        within the ``failsafe_frac`` budget the cells are atmosphere-reset
        (cons and prim together) and counted; past the budget the sweep
        raises :class:`RecoveryError`.
        """
        from ..physics.con2prim import reset_cells_to_atmosphere
        from ..utils.errors import RecoveryError

        n_cells = interior_prim[0].size
        n_burst = self.fault_injector.con2prim_burst(n_cells)
        if not n_burst:
            return
        if n_burst > self.config.failsafe_frac * n_cells:
            raise RecoveryError(
                f"injected con2prim burst of {n_burst} cells exceeds the "
                f"failsafe budget ({self.config.failsafe_frac} of {n_cells})",
                n_failed=n_burst,
                indices=self.fault_injector.burst_indices(n_burst, n_cells),
            )
        indices = self.fault_injector.burst_indices(n_burst, n_cells)
        reset_cells_to_atmosphere(
            self.system,
            interior_cons,
            interior_prim,
            indices,
            (self.atmosphere.rho_atmo, self.atmosphere.p_atmo),
        )
        self.metrics.counter("resilience.failsafe_cells").inc(int(indices.size))

    def _limit_momentum(self, cons: np.ndarray) -> None:
        """Rescale S_i so the recovered velocity respects the W_max cap.

        Admissibility of con2prim requires |S| < tau + D + p; transient
        update overshoots can violate the sharper |S| <= v_max (tau + D + p)
        bound, which would force the recovery toward W -> W_max runaways.
        Rescaling the momentum (the WhiskyMHD/IllinoisGRMHD-style fix) keeps
        the state recoverable without touching D or tau.
        """
        system = self.system
        S2 = np.zeros_like(cons[0])
        for ax in range(system.ndim):
            S2 += cons[system.S(ax)] ** 2
        vmax = np.sqrt(1.0 - 1.0 / self.config.w_max**2)
        smax = vmax * (cons[system.TAU] + cons[system.D] + self.atmosphere.p_atmo)
        bad = S2 > smax**2
        if bad.any():
            self.metrics.counter("limiter.momentum_rescaled").inc(int(bad.sum()))
            scale = smax[bad] / np.sqrt(S2[bad])
            for ax in range(system.ndim):
                cons[system.S(ax)][bad] *= scale

    def sanitize_face_states(self, q: np.ndarray) -> np.ndarray:
        """Repair reconstructed face states in place and return them.

        Componentwise reconstruction limits each velocity component against
        its own neighbours, but the *magnitude* |v|^2 = sum v_i^2 can still
        overshoot past 1 near strong multidimensional shocks. Rescale such
        velocities to just below light speed and floor rho and p — the
        standard fix in production relativistic codes.
        """
        system = self.system
        v2 = np.zeros_like(q[0])
        for ax in range(system.ndim):
            v2 += q[system.V(ax)] ** 2
        # Cap the Lorentz factor at W_max: reconstruction overshoots past
        # this are numerical artifacts, and letting them through produces
        # runaway fluxes long before anything is superluminal.
        vmax2 = 1.0 - 1.0 / self.config.w_max**2
        bad = v2 > vmax2
        if bad.any():
            self.metrics.counter("sanitize.velocity_rescaled").inc(int(bad.sum()))
            scale = np.sqrt(vmax2 / v2[bad])
            for ax in range(system.ndim):
                q[system.V(ax)][bad] *= scale
        n_floored = int(
            (q[system.RHO] < self.atmosphere.rho_atmo).sum()
            + (q[system.P] < self.atmosphere.p_atmo).sum()
        )
        if n_floored:
            self.metrics.counter("sanitize.floored").inc(n_floored)
        np.maximum(q[system.RHO], self.atmosphere.rho_atmo, out=q[system.RHO])
        np.maximum(q[system.P], self.atmosphere.p_atmo, out=q[system.P])
        return q

    def begin_flux_divergence(self, reuse: bool = False) -> np.ndarray:
        """Zeroed divergence accumulator for a (possibly region-split)
        evaluation; ghost entries stay zero throughout."""
        if reuse and self.workspace is not None:
            dU = self.workspace.dU
            dU.fill(0.0)
            return dU
        return np.zeros((self.system.nvars,) + self.grid.shape_with_ghosts)

    def flux_divergence_region(
        self, prim: np.ndarray, axis: int, lo: int, hi: int, reuse: bool = False
    ) -> np.ndarray:
        """Flux divergence along *axis* for interior cells ``[lo, hi)``.

        The slab handed to reconstruction keeps the full (ghosted)
        transverse extent and spans ghosted coordinates ``[lo, hi + 2g)``
        along *axis*, so every face value is produced by exactly the same
        elementwise operations as the full sweep — a region's divergence is
        bit-identical to the matching slice of the whole-axis result.  That
        is the property the overlapped solver's interior/strip split rests
        on: the core region (``lo >= g`` from any neighboured face) reads no
        halo ghosts at all.

        Returns the divergence shaped ``(nvars, *transverse_interior,
        hi - lo)`` with the working axis moved last; hand it to
        :meth:`accumulate_divergence`.  With ``reuse=True`` the result lives
        in a workspace buffer keyed by ``(axis, lo, hi)`` and survives until
        the same region is evaluated again.
        """
        grid = self.grid
        ws = self.workspace if reuse else None
        g = grid.n_ghost
        full_axis = (lo, hi) == (0, grid.shape[axis])
        if self._fused_ids is not None and prim.flags.c_contiguous:
            # Compiled path: one C sweep replaces reconstruct + sanitize +
            # riemann, bit-identical to the interpreted stages below.
            with self.timers("face_flux"):
                Fm = self._fused_face_flux(prim, axis, lo, hi, ws)
        else:
            Fm = self._interpreted_face_flux(prim, axis, lo, hi, ws)
        with self.timers("update"):
            # Slice transverse axes to the interior, difference along axis.
            sel = [slice(None)]
            for ax in range(grid.ndim):
                if ax != axis:
                    sel.append(slice(g, g + grid.shape[ax]))
            Fm = Fm[tuple(sel)]
            if self.store_fluxes and full_axis:
                self.last_face_fluxes[axis] = Fm.copy()
            div = scratch_buf(ws, ("div", axis, lo, hi), Fm[..., 1:].shape)
            np.subtract(Fm[..., 1:], Fm[..., :-1], out=div)
            np.divide(div, grid.dx[axis], out=div)
        return div

    def _interpreted_face_flux(
        self, prim: np.ndarray, axis: int, lo: int, hi: int, ws
    ) -> np.ndarray:
        """Face fluxes via the interpreted reconstruct/sanitize/riemann
        stages; returns them with the face index last (ghosted transverse
        extent kept)."""
        grid, system = self.grid, self.system
        g = grid.n_ghost
        slab_idx = [slice(None)] * (grid.ndim + 1)
        slab_idx[axis + 1] = slice(lo, hi + 2 * g)
        slab = prim[tuple(slab_idx)]
        face_shape = (
            ws.region_face_shape(axis, hi - lo)
            if ws is not None
            else (system.nvars,)
            + tuple(
                hi - lo + 1 if ax == axis else grid.shape_with_ghosts[ax]
                for ax in range(grid.ndim)
            )
        )
        with self.timers("reconstruct"):
            qL, qR = self.reconstruction.interface_states(
                slab,
                axis,
                g,
                out=(
                    scratch_buf(ws, ("faces", axis, "L", lo, hi), face_shape),
                    scratch_buf(ws, ("faces", axis, "R", lo, hi), face_shape),
                ),
                scratch=ws,
            )
            self.sanitize_face_states(qL)
            self.sanitize_face_states(qR)
        with self.timers("riemann"):
            F = self.riemann.flux(
                system, qL, qR, axis,
                out=scratch_buf(ws, ("flux", axis, lo, hi), face_shape),
                scratch=ws,
            )
        return np.moveaxis(F, axis + 1, -1)

    def _fused_face_flux(
        self, prim: np.ndarray, axis: int, lo: int, hi: int, ws
    ) -> np.ndarray:
        """Face fluxes via the compiled fused sweep, same layout as
        :meth:`_interpreted_face_flux` (faces last, ghosted transverse)."""
        grid, system = self.grid, self.system
        g = grid.n_ghost
        n_faces = hi - lo + 1
        offs = self._face_row_offsets(prim, axis)
        out3 = scratch_buf(
            ws, ("fused_flux", axis, lo, hi), (system.nvars, offs.size, n_faces)
        )
        counts = system.face_flux(
            prim,
            axis,
            offs,
            lo + g - 1,
            n_faces,
            out3,
            ids=self._fused_ids,
            vmax2=1.0 - 1.0 / self.config.w_max**2,
            rho_atmo=self.atmosphere.rho_atmo,
            p_atmo=self.atmosphere.p_atmo,
            axis_stride=prim.strides[axis + 1] // prim.itemsize,
        )
        if counts[0]:
            self.metrics.counter("sanitize.velocity_rescaled").inc(int(counts[0]))
        if counts[1]:
            self.metrics.counter("sanitize.floored").inc(int(counts[1]))
        transverse = tuple(
            prim.shape[1 + d] for d in range(grid.ndim) if d != axis
        )
        return out3.reshape((system.nvars,) + transverse + (n_faces,))

    def _face_row_offsets(self, prim: np.ndarray, axis: int) -> np.ndarray:
        """Flattened element offsets of every ghosted transverse row.

        Rows enumerate the full ghosted transverse extent in C order —
        the same rows the interpreted slab sweep covers — so flux values
        *and* sanitize counter totals match the interpreted path exactly.
        """
        key = (axis, prim.shape, prim.strides)
        offs = self._row_offset_cache.get(key)
        if offs is None:
            strides = [s // prim.itemsize for s in prim.strides[1:]]
            tdims = [d for d in range(prim.ndim - 1) if d != axis]
            if tdims:
                off = np.zeros(
                    tuple(prim.shape[1 + d] for d in tdims), dtype=np.int64
                )
                for pos, d in enumerate(tdims):
                    idx = np.arange(prim.shape[1 + d], dtype=np.int64)
                    idx *= strides[d]
                    shape = [1] * len(tdims)
                    shape[pos] = idx.size
                    off += idx.reshape(shape)
                offs = np.ascontiguousarray(off.ravel())
            else:
                offs = np.zeros(1, dtype=np.int64)
            self._row_offset_cache[key] = offs
        return offs

    def accumulate_divergence(
        self, dU: np.ndarray, axis: int, lo: int, hi: int, div: np.ndarray
    ) -> None:
        """Subtract a region's divergence (from
        :meth:`flux_divergence_region`) into *dU*.

        Callers that split an axis into regions must apply *all* of a cell's
        axis contributions in ascending axis order — the overlapped solver
        defers every accumulation to one sorted pass — because with three or
        more terms (3-D) floating-point accumulation order changes the
        result bitwise.
        """
        idx = [slice(None)] * (self.grid.ndim + 1)
        idx[axis + 1] = slice(lo, hi)
        target = np.moveaxis(self.grid.interior_of(dU)[tuple(idx)], axis + 1, -1)
        target -= div

    def flux_divergence(self, prim: np.ndarray, reuse: bool = False) -> np.ndarray:
        """-div F over the interior; ghost entries of the result are zero.

        With ``reuse=True`` the result is the workspace's ``dU`` buffer
        (overwritten by the next reusing call) and every kernel stage runs
        in preallocated buffers; the default allocates fresh arrays.
        AMR refluxing stays safe under reuse: :attr:`last_face_fluxes`
        always stores copies.
        """
        dU = self.begin_flux_divergence(reuse)
        for axis in range(self.grid.ndim):
            n = self.grid.shape[axis]
            div = self.flux_divergence_region(prim, axis, 0, n, reuse=reuse)
            self.accumulate_divergence(dU, axis, 0, n, div)
        return dU

    def apply_source(self, prim: np.ndarray, dU: np.ndarray, time: float | None = None):
        """Add ``source_fn`` (evaluated at *time*, default :attr:`time`) to *dU*.

        Shared by every driver (unigrid, distributed, AMR) so the stage-time
        plumbing has one implementation.
        """
        if self.source_fn is None:
            return dU
        with self.timers("source"):
            t = self.time if time is None else time
            src = self.source_fn(
                self.system, self.grid, self.grid.interior_of(prim), t
            )
            self.grid.interior_of(dU)[...] += src
        return dU

    def rhs(self, cons: np.ndarray, reuse: bool = True) -> np.ndarray:
        """dU/dt for the SSP integrators (cons may be floored in place).

        By default the result lives in the pipeline workspace and is valid
        until the next ``rhs``/``recover_primitives`` call — exactly the
        lifetime the SSP integrators need, since each stage consumes the
        previous rhs before requesting the next. Pass ``reuse=False`` (or
        configure ``scratch_workspace=False``) for a caller-owned array.
        """
        prim = self.recover_primitives(cons, reuse=reuse)
        dU = self.flux_divergence(prim, reuse=reuse)
        return self.apply_source(prim, dU)

    def max_signal_speed(self, prim: np.ndarray, axis: int) -> float:
        return self.system.max_signal_speed(self.grid.interior_of(prim), axis)
