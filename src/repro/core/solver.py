"""Unigrid HRSC solver: the user-facing driver for single-patch runs.

Typical use::

    from repro import IdealGasEOS, SRHDSystem, Grid, Solver, SolverConfig
    from repro.physics.initial_data import RP1, shock_tube
    from repro.boundary import make_boundaries

    eos = IdealGasEOS(gamma=RP1.gamma)
    system = SRHDSystem(eos, ndim=1)
    grid = Grid((400,), ((0.0, 1.0),))
    prim0 = shock_tube(system, grid, RP1)
    solver = Solver(system, grid, prim0, SolverConfig(), make_boundaries("outflow"))
    solver.run(t_final=RP1.t_final)
    rho = solver.primitives()[system.RHO]
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..boundary.conditions import BoundarySet, make_boundaries
from ..mesh.grid import Grid
from ..obs.recorder import StepRecorder
from ..physics.srhd import SRHDSystem
from ..time_integration.cfl import compute_dt
from ..time_integration.ssprk import make_integrator
from ..utils.errors import ConfigurationError, NumericsError
from ..utils.logging import get_logger
from ..utils.timers import TimerRegistry
from .config import SolverConfig
from .diagnostics import ConservedTotals, RunSummary
from .pipeline import HydroPipeline

_log = get_logger("core")


class Solver:
    """Single-grid SRHD solver.

    Parameters
    ----------
    system:
        Physics (EOS + dimensionality); ``system.ndim`` must equal
        ``grid.ndim``.
    grid:
        The ghosted computational grid.
    initial_prim:
        Primitive state array ``(nvars, *grid.shape_with_ghosts)``.
    config:
        Numerical scheme configuration (defaults are production settings).
    boundaries:
        Per-face ghost-fill policy; outflow everywhere by default.
    source_fn:
        Optional source term ``(system, grid, prim_interior, t) ->
        dU_interior`` added to the flux divergence every RK stage.
    recorder:
        Optional :class:`~repro.obs.StepRecorder`; when given, every step
        emits one structured record (dt, wall time, kernel timings,
        con2prim/atmosphere/sanitization counters).
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector` for chaos
        testing; forwarded to the pipeline (con2prim bursts).
    """

    def __init__(
        self,
        system: SRHDSystem,
        grid: Grid,
        initial_prim: np.ndarray,
        config: SolverConfig | None = None,
        boundaries: BoundarySet | None = None,
        source_fn=None,
        recorder: StepRecorder | None = None,
        fault_injector=None,
    ):
        if system.ndim != grid.ndim:
            raise ConfigurationError(
                f"system.ndim={system.ndim} does not match grid.ndim={grid.ndim}"
            )
        expected = (system.nvars,) + grid.shape_with_ghosts
        if initial_prim.shape != expected:
            raise ConfigurationError(
                f"initial_prim shape {initial_prim.shape}, expected {expected}"
            )
        self.system = system
        self.grid = grid
        self.config = config or SolverConfig()
        self.boundaries = boundaries or make_boundaries("outflow")
        self.timers = TimerRegistry()
        self.pipeline = HydroPipeline(
            system, grid, self.boundaries, self.config, self.timers,
            fault_injector=fault_injector,
        )
        self.pipeline.source_fn = source_fn
        self.metrics = self.pipeline.metrics
        self.recorder = recorder
        self.integrator = make_integrator(self.config.integrator)

        prim = initial_prim.astype(float, copy=True)
        self.boundaries.apply(system, grid, prim)
        self.pipeline.atmosphere.apply_prim(system, prim)
        self.cons = system.prim_to_con(prim)
        self._prim_cache = prim
        self._prim_dirty = False
        self.t = 0.0
        self.summary = RunSummary(
            initial=ConservedTotals.measure(system, grid, self.cons)
        )

    # ------------------------------------------------------------------

    def primitives(self) -> np.ndarray:
        """Current primitive state (ghosts filled), recovered on demand."""
        if self._prim_dirty:
            self._prim_cache = self.pipeline.recover_primitives(self.cons)
            self._prim_dirty = False
        return self._prim_cache

    def interior_primitives(self) -> np.ndarray:
        return self.grid.interior_of(self.primitives())

    def compute_dt(self, t_final: float | None = None) -> float:
        return compute_dt(
            self.system,
            self.grid,
            self.primitives(),
            cfl=self.config.cfl,
            t=self.t,
            t_final=t_final,
        )

    def _set_stage_time(self, t: float) -> None:
        """Stage-time hook for the integrator: source terms see t0 + c_i dt."""
        self.pipeline.time = t

    def _check_dt(self, dt: float) -> None:
        if not np.isfinite(dt) or dt <= 0:
            raise NumericsError(
                f"invalid time step dt={dt!r} at t={self.t:g} "
                f"(step {self.summary.steps + 1})"
            )

    def _check_finite(self) -> None:
        bad = ~np.isfinite(self.cons)
        if bad.any():
            var, *cell = (int(i) for i in np.argwhere(bad)[0])
            raise NumericsError(
                f"non-finite conserved state after step {self.summary.steps + 1} "
                f"at t={self.t:g}: variable {var}, cell {tuple(cell)}"
            )

    def step(self, dt: float | None = None, t_final: float | None = None) -> float:
        """Advance one time step; returns the dt taken."""
        wall0 = time.perf_counter()
        if dt is None:
            dt = self.compute_dt(t_final)
        self._check_dt(dt)
        self.cons = self.integrator.step(
            self.cons, dt, self.pipeline.rhs,
            t0=self.t, set_time=self._set_stage_time,
        )
        self.t += dt
        self._prim_dirty = True
        self._check_finite()
        self.summary.record_step(dt)
        self.metrics.histogram("solver.dt").observe(dt)
        if self.recorder is not None:
            self.recorder.record_step(
                step=self.summary.steps,
                t=self.t,
                dt=dt,
                wall_seconds=time.perf_counter() - wall0,
                timers=self.timers,
                metrics=self.metrics,
            )
        return dt

    def run(
        self,
        t_final: float,
        max_steps: int | None = None,
        callback: Callable[["Solver"], None] | None = None,
        checkpoint_every: int = 0,
        checkpoint_path=None,
    ) -> RunSummary:
        """Advance to *t_final*; optional per-step callback for monitoring.

        With ``checkpoint_every=N`` and a ``checkpoint_path``, the full
        solver state is checkpointed every N steps, between steps, so a
        failure mid-run leaves a consistent resumable archive behind (see
        :func:`repro.resilience.run_with_restart`).
        """
        if t_final < self.t:
            raise ConfigurationError(f"t_final={t_final} is before t={self.t}")
        if checkpoint_every and checkpoint_path is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_path"
            )
        limit = max_steps if max_steps is not None else self.config.max_steps
        while self.t < t_final * (1.0 - 1e-14):
            if self.summary.steps >= limit:
                _log.warning("step limit %d reached at t=%g", limit, self.t)
                break
            self.step(t_final=t_final)
            if checkpoint_every and self.summary.steps % checkpoint_every == 0:
                # Deferred import: repro.io imports this module.
                from ..io.checkpoint import save_checkpoint

                save_checkpoint(self, checkpoint_path)
            if callback is not None:
                callback(self)
        self.summary.t_final = self.t
        self.summary.final = ConservedTotals.measure(self.system, self.grid, self.cons)
        self.summary.kernel_seconds = {
            name: timer.elapsed for name, timer in self.timers.items()
        }
        return self.summary
