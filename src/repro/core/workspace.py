"""Preallocated scratch workspace for the per-patch kernel hot path.

Every RK stage of the HRSC pipeline used to allocate its entire working set
from scratch: the ``dU`` accumulator, the ghosted primitive array, the
face-state pair and flux array per axis, the conserved/flux/wave-speed
temporaries inside the Riemann solver, and the flat views of the con2prim
Newton iteration. On a 2-D patch that is dozens of grid-sized ``malloc``s
per stage — exactly the allocation churn that keeps these kernels from
mapping onto accelerators (AthenaK-style codes preallocate per-patch
scratch for this reason).

:class:`ScratchWorkspace` owns one keyed pool of buffers per pipeline.
Kernels request named buffers through :func:`scratch_buf`, which falls back
to a fresh ``np.empty`` when no workspace is given — so the same in-place
kernel code serves both the reused-buffer path and the fresh-allocation
path (the opt-out), and the two are bit-identical by construction.

Buffer keys include the requested shape, so one workspace can serve the
per-axis face shapes of a multi-dimensional sweep without thrashing.
"""

from __future__ import annotations

import numpy as np


def scratch_buf(scratch: "ScratchWorkspace | None", key, shape, dtype=float):
    """A named scratch buffer, or a fresh array when *scratch* is None.

    This is the single allocation point of the in-place kernels: with a
    workspace the buffer is reused across calls, without one the behaviour
    is the old allocate-per-call path.
    """
    if scratch is None:
        return np.empty(shape, dtype=dtype)
    return scratch.buf(key, shape, dtype)


class ScratchWorkspace:
    """Keyed pool of preallocated kernel buffers for one grid patch.

    Parameters
    ----------
    grid:
        The ghosted grid the pipeline runs on; fixes the shapes of the
        structural buffers (``dU``, ``prim``).
    nvars:
        Number of state variables.

    Notes
    -----
    Buffers are created lazily on first request and cached by
    ``(key, shape, dtype)``; a steady-state step performs no allocations.
    The workspace is private to one pipeline — callers that hand buffers
    out across stages (e.g. the primitive cache) use dedicated keys.
    """

    def __init__(self, grid, nvars: int):
        self.grid = grid
        self.nvars = int(nvars)
        shape = (self.nvars,) + grid.shape_with_ghosts
        #: flux-divergence accumulator reused by every RK stage
        self.dU = np.zeros(shape)
        #: ghosted primitive array reused by every recovery sweep
        self.prim = np.zeros(shape)
        self._bufs: dict = {}

    def buf(self, key, shape, dtype=float) -> np.ndarray:
        """The cached buffer for ``(key, shape)``, created on first use."""
        shape = tuple(int(n) for n in shape)
        cache_key = (key, shape, np.dtype(dtype).str)
        b = self._bufs.get(cache_key)
        if b is None:
            b = np.empty(shape, dtype=dtype)
            self._bufs[cache_key] = b
        return b

    def face_shape(self, axis: int) -> tuple[int, ...]:
        """Shape of a reconstructed face-state array along *axis*:
        ``n + 1`` faces on the working axis, ghosts kept elsewhere."""
        return self.region_face_shape(axis, self.grid.shape[axis])

    def region_face_shape(self, axis: int, n_cells: int) -> tuple[int, ...]:
        """Face-state shape for an *n_cells*-wide sub-region along *axis*
        (``n_cells + 1`` faces on the working axis, ghosts kept elsewhere).

        The overlapped solver's interior/strip sweeps request these; region
        widths are fixed per decomposition, so the buffer pool stays bounded.
        """
        shape = list(self.grid.shape_with_ghosts)
        shape[axis] = int(n_cells) + 1
        return (self.nvars,) + tuple(shape)

    @property
    def n_buffers(self) -> int:
        """Number of cached buffers (plus the two structural arrays)."""
        return len(self._bufs) + 2

    @property
    def nbytes(self) -> int:
        """Total bytes held by the workspace."""
        return (
            self.dU.nbytes
            + self.prim.nbytes
            + sum(b.nbytes for b in self._bufs.values())
        )

    def __repr__(self):
        return (
            f"<ScratchWorkspace {self.n_buffers} buffers, "
            f"{self.nbytes / 1e6:.2f} MB>"
        )
