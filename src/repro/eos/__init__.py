"""Equations of state closing the relativistic Euler system.

Exports:

- :class:`EOS` — abstract interface (pressure, derivatives, sound speed)
- :class:`IdealGasEOS` — Gamma-law gas, the HRSC test-suite standard
- :class:`PolytropicEOS` — barotropic p = K rho^Gamma
- :class:`HybridEOS` — cold polytrope + thermal Gamma-law part
- :class:`TabulatedEOS` / :func:`make_synthetic_table` — table-interpolated
  EOS exercising the tabulated-EOS code path with synthetic data
"""

from .base import EOS
from .hybrid import HybridEOS
from .ideal import IdealGasEOS
from .piecewise import PiecewisePolytropicEOS, sly_like
from .polytropic import PolytropicEOS
from .tabulated import TabulatedEOS, make_synthetic_table

__all__ = [
    "EOS",
    "IdealGasEOS",
    "PolytropicEOS",
    "PiecewisePolytropicEOS",
    "sly_like",
    "HybridEOS",
    "TabulatedEOS",
    "make_synthetic_table",
]
