"""Abstract equation-of-state interface.

An EOS closes the relativistic Euler system by providing the pressure and
related thermodynamic quantities as functions of rest-mass density ``rho``
and specific internal energy ``eps`` (both in geometrized units, c = 1).

All methods are vectorized: they accept and return NumPy arrays (or scalars)
of matching shape. Derived quantities follow the standard relativistic
definitions:

- specific enthalpy      ``h = 1 + eps + p / rho``
- sound speed squared    ``cs2 = (chi + (p / rho**2) * kappa) / h``

where ``chi = dp/drho |_eps`` and ``kappa = dp/deps |_rho``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..utils.errors import EOSError


class EOS(ABC):
    """Equation of state p = p(rho, eps) with analytic derivatives."""

    #: short identifier used in configs and reports
    name: str = "abstract"

    @abstractmethod
    def pressure(self, rho, eps):
        """Pressure p(rho, eps)."""

    @abstractmethod
    def eps_from_pressure(self, rho, p):
        """Invert for specific internal energy: eps(rho, p)."""

    @abstractmethod
    def chi(self, rho, eps):
        """dp/drho at fixed eps."""

    @abstractmethod
    def kappa(self, rho, eps):
        """dp/deps at fixed rho."""

    # ------------------------------------------------------------------
    # Derived quantities (shared implementations)
    # ------------------------------------------------------------------

    def enthalpy(self, rho, eps):
        """Specific enthalpy h = 1 + eps + p/rho."""
        rho = np.asarray(rho, dtype=float)
        return 1.0 + eps + self.pressure(rho, eps) / rho

    def sound_speed_sq(self, rho, eps):
        """Relativistic sound speed squared cs^2 in [0, 1)."""
        rho = np.asarray(rho, dtype=float)
        p = self.pressure(rho, eps)
        h = 1.0 + eps + p / rho
        cs2 = (self.chi(rho, eps) + (p / rho**2) * self.kappa(rho, eps)) / h
        return cs2

    def sound_speed(self, rho, eps):
        """Relativistic sound speed cs; raises EOSError if cs^2 is not in [0, 1)."""
        cs2 = self.sound_speed_sq(rho, eps)
        cs2_arr = np.asarray(cs2)
        if np.any(cs2_arr < -1e-14) or np.any(cs2_arr >= 1.0):
            bad = cs2_arr[(cs2_arr < -1e-14) | (cs2_arr >= 1.0)]
            raise EOSError(
                f"{self.name}: acausal or negative sound speed, cs^2 range "
                f"[{bad.min():.3e}, {bad.max():.3e}]"
            )
        return np.sqrt(np.clip(cs2, 0.0, None))

    def __repr__(self):
        return f"<EOS {self.name}>"
