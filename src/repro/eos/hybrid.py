"""Hybrid EOS: cold polytropic component plus a Gamma-law thermal component.

Standard in numerical-relativity hydrodynamics for matter that is cold in
equilibrium but shock-heats:

    p(rho, eps) = p_cold(rho) + (Gamma_th - 1) * rho * (eps - eps_cold(rho))

with ``p_cold = K rho^Gamma`` and ``eps_cold = K rho^(Gamma-1)/(Gamma-1)``.
The thermal part is clipped at zero so numerical undershoots of eps below the
cold floor do not produce tension (negative thermal pressure).
"""

from __future__ import annotations

import numpy as np

from .base import EOS
from .polytropic import PolytropicEOS


class HybridEOS(EOS):
    """Cold barotrope + Gamma-law thermal correction.

    The cold part defaults to a single polytrope but any barotropic EOS
    exposing ``pressure(rho)``, ``eps_from_rho(rho)``, and ``chi(rho)``
    works — e.g. :class:`~repro.eos.piecewise.PiecewisePolytropicEOS` for
    neutron-star-like matter.
    """

    name = "hybrid"

    def __init__(
        self,
        K: float = 100.0,
        gamma: float = 2.0,
        gamma_th: float = 5.0 / 3.0,
        cold: EOS | None = None,
    ):
        self.cold = cold if cold is not None else PolytropicEOS(K=K, gamma=gamma)
        self.gamma_th = float(gamma_th)
        self._gth1 = self.gamma_th - 1.0

    def _thermal_eps(self, rho, eps):
        return np.maximum(np.asarray(eps, dtype=float) - self.cold.eps_from_rho(rho), 0.0)

    def pressure(self, rho, eps):
        rho = np.asarray(rho, dtype=float)
        return self.cold.pressure(rho) + self._gth1 * rho * self._thermal_eps(rho, eps)

    def eps_from_pressure(self, rho, p):
        rho = np.asarray(rho, dtype=float)
        p_th = np.maximum(np.asarray(p, dtype=float) - self.cold.pressure(rho), 0.0)
        return self.cold.eps_from_rho(rho) + p_th / (self._gth1 * rho)

    def chi(self, rho, eps):
        rho = np.asarray(rho, dtype=float)
        # d/drho [p_cold + (G-1) rho (eps - eps_cold)]
        #   = chi_cold + (G-1)(eps - eps_cold) - (G-1) rho deps_cold/drho,
        # with deps_cold/drho = p_cold / rho^2 (first law along the cold
        # isentrope) — valid for any barotropic cold part.
        deps_cold = self.cold.pressure(rho) / rho**2
        return (
            self.cold.chi(rho)
            + self._gth1 * self._thermal_eps(rho, eps)
            - self._gth1 * rho * deps_cold
        )

    def kappa(self, rho, eps):
        rho = np.asarray(rho, dtype=float)
        hot = self._thermal_eps(rho, eps) > 0
        return np.where(hot, self._gth1 * rho, 0.0)

    def __repr__(self):
        return f"HybridEOS(cold={self.cold!r}, gamma_th={self.gamma_th})"
