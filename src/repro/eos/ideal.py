"""Ideal-gas (Gamma-law) equation of state: p = (Gamma - 1) rho eps.

This is the workhorse EOS for relativistic shock-capturing test problems
(Marti & Muller shock tubes use Gamma = 5/3 and Gamma = 4/3 variants).
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import EOSError
from .base import EOS


class IdealGasEOS(EOS):
    """Gamma-law EOS, p = (Gamma - 1) * rho * eps."""

    name = "ideal"

    def __init__(self, gamma: float = 5.0 / 3.0):
        if not 1.0 < gamma <= 2.0:
            raise EOSError(f"ideal-gas Gamma must be in (1, 2], got {gamma}")
        self.gamma = float(gamma)
        self._gm1 = self.gamma - 1.0

    def pressure(self, rho, eps):
        return self._gm1 * np.asarray(rho, dtype=float) * eps

    def eps_from_pressure(self, rho, p):
        return np.asarray(p, dtype=float) / (self._gm1 * np.asarray(rho, dtype=float))

    def chi(self, rho, eps):
        return self._gm1 * np.asarray(eps, dtype=float)

    def kappa(self, rho, eps):
        return self._gm1 * np.asarray(rho, dtype=float)

    def sound_speed_sq(self, rho, eps):
        # Closed form for the Gamma-law gas: cs^2 = Gamma p / (rho h).
        rho = np.asarray(rho, dtype=float)
        p = self.pressure(rho, eps)
        h = 1.0 + eps + p / rho
        return self.gamma * p / (rho * h)

    def __repr__(self):
        return f"IdealGasEOS(gamma={self.gamma})"
