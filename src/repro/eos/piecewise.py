"""Piecewise-polytropic equation of state.

The standard parameterization of nuclear-matter EOS candidates (Read et
al. 2009) used throughout this group's neutron-star work: the density
range is split into segments, each a polytrope ``p = K_i rho^Gamma_i``,
with the ``K_i`` fixed by pressure continuity at the segment breaks and
the internal-energy constants ``a_i`` fixed by first-law continuity:

    eps_i(rho) = a_i + K_i rho^(Gamma_i - 1) / (Gamma_i - 1).

All evaluations are vectorized via ``searchsorted`` segment lookup.
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import EOSError
from .base import EOS


class PiecewisePolytropicEOS(EOS):
    """Cold piecewise polytrope with continuous pressure and energy.

    Parameters
    ----------
    K0:
        Polytropic constant of the lowest-density segment.
    gammas:
        Adiabatic index per segment (lowest density first).
    rho_breaks:
        Strictly increasing densities separating the segments
        (``len(gammas) - 1`` values).
    """

    name = "piecewise-polytropic"

    def __init__(self, K0: float, gammas, rho_breaks):
        gammas = [float(g) for g in np.atleast_1d(gammas)]
        rho_breaks = [float(r) for r in np.atleast_1d(rho_breaks)] if np.ndim(
            rho_breaks
        ) or np.size(rho_breaks) else []
        if K0 <= 0:
            raise EOSError(f"K0 must be positive, got {K0}")
        if any(g <= 1.0 for g in gammas):
            raise EOSError(f"all Gammas must exceed 1, got {gammas}")
        if len(rho_breaks) != len(gammas) - 1:
            raise EOSError(
                f"{len(gammas)} segments need {len(gammas) - 1} breaks, "
                f"got {len(rho_breaks)}"
            )
        if any(b <= 0 for b in rho_breaks) or any(
            b1 <= b0 for b0, b1 in zip(rho_breaks, rho_breaks[1:])
        ):
            raise EOSError(f"rho_breaks must be positive and increasing: {rho_breaks}")

        self.gammas = gammas
        self.rho_breaks = rho_breaks
        # Pressure continuity: K_{i+1} = K_i * rho_b^(G_i - G_{i+1}).
        self.Ks = [float(K0)]
        for b, g_lo, g_hi in zip(rho_breaks, gammas, gammas[1:]):
            self.Ks.append(self.Ks[-1] * b ** (g_lo - g_hi))
        # Energy continuity: a_0 = 0; match eps across each break.
        self.a = [0.0]
        for b, (K_lo, g_lo), (K_hi, g_hi) in zip(
            rho_breaks, zip(self.Ks, self.gammas), zip(self.Ks[1:], self.gammas[1:])
        ):
            eps_lo = self.a[-1] + K_lo * b ** (g_lo - 1.0) / (g_lo - 1.0)
            self.a.append(eps_lo - K_hi * b ** (g_hi - 1.0) / (g_hi - 1.0))

        self._breaks = np.asarray(rho_breaks)
        self._Ks = np.asarray(self.Ks)
        self._gammas = np.asarray(self.gammas)
        self._a = np.asarray(self.a)

    def _segment(self, rho):
        return np.searchsorted(self._breaks, np.asarray(rho, dtype=float), side="right")

    def pressure(self, rho, eps=None):
        rho = np.asarray(rho, dtype=float)
        i = self._segment(rho)
        return self._Ks[i] * rho ** self._gammas[i]

    def eps_from_rho(self, rho):
        rho = np.asarray(rho, dtype=float)
        i = self._segment(rho)
        g = self._gammas[i]
        return self._a[i] + self._Ks[i] * rho ** (g - 1.0) / (g - 1.0)

    def eps_from_pressure(self, rho, p):
        # Barotrope: eps is slaved to rho.
        return self.eps_from_rho(rho)

    def chi(self, rho, eps=None):
        rho = np.asarray(rho, dtype=float)
        i = self._segment(rho)
        g = self._gammas[i]
        return g * self._Ks[i] * rho ** (g - 1.0)

    def kappa(self, rho, eps=None):
        return np.zeros_like(np.asarray(rho, dtype=float))

    def enthalpy(self, rho, eps=None):
        rho = np.asarray(rho, dtype=float)
        return 1.0 + self.eps_from_rho(rho) + self.pressure(rho) / rho

    def sound_speed_sq(self, rho, eps=None):
        return self.chi(rho) / self.enthalpy(rho)

    def __repr__(self):
        return (
            f"PiecewisePolytropicEOS(K0={self.Ks[0]}, gammas={self.gammas}, "
            f"rho_breaks={self.rho_breaks})"
        )


def sly_like() -> PiecewisePolytropicEOS:
    """A four-segment SLy-flavoured cold EOS in geometrized benchmark units.

    The segment structure (soft crust, stiffening core) mirrors the Read et
    al. parameterization qualitatively; values are scaled to the unit
    system of the test problems rather than CGS, chosen so the EOS stays
    causal (cs^2 < 0.5) up to rho ~ 2.5 in benchmark units.
    """
    return PiecewisePolytropicEOS(
        K0=0.03,
        gammas=[1.58, 2.2, 2.6, 2.4],
        rho_breaks=[0.3, 1.0, 1.8],
    )
