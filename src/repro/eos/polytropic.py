"""Polytropic (isentropic) equation of state: p = K rho^Gamma.

For a polytrope the internal energy is fully determined by the density,
``eps = K rho^(Gamma-1) / (Gamma - 1)``, so the energy equation is redundant;
we still expose the full EOS interface so the polytrope can be used anywhere
an :class:`~repro.eos.base.EOS` is expected (e.g. cold initial data).
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import EOSError
from .base import EOS


class PolytropicEOS(EOS):
    """Barotropic EOS p = K rho^Gamma (eps argument is ignored)."""

    name = "polytropic"

    def __init__(self, K: float = 100.0, gamma: float = 2.0):
        if K <= 0:
            raise EOSError(f"polytropic K must be positive, got {K}")
        if gamma <= 1.0:
            raise EOSError(f"polytropic Gamma must exceed 1, got {gamma}")
        self.K = float(K)
        self.gamma = float(gamma)

    def pressure(self, rho, eps=None):
        return self.K * np.asarray(rho, dtype=float) ** self.gamma

    def eps_from_rho(self, rho):
        """The isentropic internal energy eps(rho) = K rho^(Gamma-1)/(Gamma-1)."""
        rho = np.asarray(rho, dtype=float)
        return self.K * rho ** (self.gamma - 1.0) / (self.gamma - 1.0)

    def eps_from_pressure(self, rho, p):
        # eps is slaved to rho for a barotrope; p is accepted for interface
        # compatibility but not used.
        return self.eps_from_rho(rho)

    def chi(self, rho, eps=None):
        return self.gamma * self.K * np.asarray(rho, dtype=float) ** (self.gamma - 1.0)

    def kappa(self, rho, eps=None):
        rho = np.asarray(rho, dtype=float)
        return np.zeros_like(rho)

    def enthalpy(self, rho, eps=None):
        rho = np.asarray(rho, dtype=float)
        return 1.0 + self.eps_from_rho(rho) + self.pressure(rho) / rho

    def sound_speed_sq(self, rho, eps=None):
        rho = np.asarray(rho, dtype=float)
        return self.chi(rho) / self.enthalpy(rho)

    def __repr__(self):
        return f"PolytropicEOS(K={self.K}, gamma={self.gamma})"
