"""Synthetic tabulated EOS with bilinear log-log interpolation.

Production codes in this line of work (e.g. the authors' neutron-star merger
simulations) read microphysical tables from stellarcollapse.org. Those tables
are proprietary-scale data we do not ship; instead :func:`make_synthetic_table`
samples any analytic :class:`~repro.eos.base.EOS` onto a (rho, eps) grid, and
:class:`TabulatedEOS` evaluates it with bilinear interpolation in
(log rho, log eps) — exercising exactly the table-lookup code path (bounds
handling, interpolation error, derivative reconstruction) a real table uses.
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import EOSError
from .base import EOS


class TabulatedEOS(EOS):
    """EOS interpolated from a table of p on a log-spaced (rho, eps) grid."""

    name = "tabulated"

    def __init__(self, rho_grid, eps_grid, p_table):
        rho_grid = np.asarray(rho_grid, dtype=float)
        eps_grid = np.asarray(eps_grid, dtype=float)
        p_table = np.asarray(p_table, dtype=float)
        if rho_grid.ndim != 1 or eps_grid.ndim != 1:
            raise EOSError("rho_grid and eps_grid must be 1-D")
        if p_table.shape != (rho_grid.size, eps_grid.size):
            raise EOSError(
                f"p_table shape {p_table.shape} != "
                f"({rho_grid.size}, {eps_grid.size})"
            )
        if np.any(rho_grid <= 0) or np.any(eps_grid <= 0) or np.any(p_table <= 0):
            raise EOSError("tabulated EOS requires strictly positive table entries")
        if np.any(np.diff(rho_grid) <= 0) or np.any(np.diff(eps_grid) <= 0):
            raise EOSError("table grids must be strictly increasing")
        self._lrho = np.log(rho_grid)
        self._leps = np.log(eps_grid)
        self._lp = np.log(p_table)
        self.rho_bounds = (rho_grid[0], rho_grid[-1])
        self.eps_bounds = (eps_grid[0], eps_grid[-1])

    # -- interpolation core -------------------------------------------------

    def _locate(self, lx, grid):
        """Clamped bin index and fractional offset along *grid*."""
        idx = np.clip(np.searchsorted(grid, lx) - 1, 0, grid.size - 2)
        frac = (lx - grid[idx]) / (grid[idx + 1] - grid[idx])
        return idx, np.clip(frac, 0.0, 1.0)

    def _log_pressure(self, rho, eps):
        lrho = np.log(np.clip(rho, *self.rho_bounds))
        leps = np.log(np.clip(eps, *self.eps_bounds))
        i, fr = self._locate(lrho, self._lrho)
        j, fe = self._locate(leps, self._leps)
        lp = self._lp
        return (
            (1 - fr) * (1 - fe) * lp[i, j]
            + fr * (1 - fe) * lp[i + 1, j]
            + (1 - fr) * fe * lp[i, j + 1]
            + fr * fe * lp[i + 1, j + 1]
        )

    # -- EOS interface ------------------------------------------------------

    def pressure(self, rho, eps):
        rho = np.asarray(rho, dtype=float)
        eps = np.asarray(eps, dtype=float)
        return np.exp(self._log_pressure(rho, eps))

    def eps_from_pressure(self, rho, p):
        """Invert the table column-wise with bisection in log eps."""
        rho = np.atleast_1d(np.asarray(rho, dtype=float))
        p = np.atleast_1d(np.asarray(p, dtype=float))
        lo = np.full(rho.shape, self._leps[0])
        hi = np.full(rho.shape, self._leps[-1])
        target = np.log(np.clip(p, None, None))
        for _ in range(60):  # ~1e-18 relative bracket on a unit interval
            mid = 0.5 * (lo + hi)
            high = self._log_pressure(rho, np.exp(mid)) > target
            hi = np.where(high, mid, hi)
            lo = np.where(high, lo, mid)
        result = np.exp(0.5 * (lo + hi))
        return result if result.size > 1 else float(result[0])

    def chi(self, rho, eps):
        """dp/drho via centered log-space finite difference."""
        rho = np.asarray(rho, dtype=float)
        eps = np.asarray(eps, dtype=float)
        dl = 1e-4
        pp = self._log_pressure(rho * np.exp(dl), eps)
        pm = self._log_pressure(rho * np.exp(-dl), eps)
        dlnp_dlnrho = (pp - pm) / (2 * dl)
        return dlnp_dlnrho * self.pressure(rho, eps) / rho

    def kappa(self, rho, eps):
        """dp/deps via centered log-space finite difference."""
        rho = np.asarray(rho, dtype=float)
        eps = np.asarray(eps, dtype=float)
        dl = 1e-4
        pp = self._log_pressure(rho, eps * np.exp(dl))
        pm = self._log_pressure(rho, eps * np.exp(-dl))
        dlnp_dlneps = (pp - pm) / (2 * dl)
        return dlnp_dlneps * self.pressure(rho, eps) / eps


def make_synthetic_table(
    eos: EOS,
    rho_range=(1e-10, 1e2),
    eps_range=(1e-10, 1e2),
    n_rho: int = 200,
    n_eps: int = 200,
) -> TabulatedEOS:
    """Sample *eos* onto a log-spaced grid and wrap it as a TabulatedEOS."""
    rho_grid = np.geomspace(*rho_range, n_rho)
    eps_grid = np.geomspace(*eps_range, n_eps)
    p = eos.pressure(rho_grid[:, None], eps_grid[None, :])
    p = np.maximum(p, 1e-300)  # keep logs finite for degenerate corners
    return TabulatedEOS(rho_grid, eps_grid, p)
