"""Experiment harness: drivers that regenerate every table and figure of the
reconstructed evaluation (DESIGN.md section 4), plus report rendering,
cost-model calibration, and the analytic scaling model.

The registry maps experiment ids to drivers:

>>> from repro.harness import EXPERIMENTS
>>> print(EXPERIMENTS["E2"]())   # doctest: +SKIP
"""

from .calibrate import calibrated_cost_model
from .experiments_accuracy import (
    experiment_e1_convergence,
    experiment_e2_riemann_solvers,
    experiment_e3_profiles,
    experiment_e4_blast2d,
    experiment_e5_kelvin_helmholtz,
)
from .experiments_amr import experiment_e11_amr_efficiency
from .experiments_codegen import experiment_e12_codegen
from .experiments_scaling import (
    experiment_e6_strong_scaling,
    experiment_e7_weak_scaling,
    experiment_e8_kernel_speedups,
    experiment_e9_schedulers,
    experiment_e10_overlap,
)
from .experiments_partition import experiment_e14_partitioning
from .experiments_validation import experiment_e13_model_validation
from .report import Report
from .scaling import (
    StepCost,
    efficiencies,
    simulate_step,
    speedups,
    strong_scaling,
    weak_scaling,
)

#: experiment id -> driver returning a Report
EXPERIMENTS = {
    "E1": experiment_e1_convergence,
    "E2": experiment_e2_riemann_solvers,
    "E3": experiment_e3_profiles,
    "E4": experiment_e4_blast2d,
    "E5": experiment_e5_kelvin_helmholtz,
    "E6": experiment_e6_strong_scaling,
    "E7": experiment_e7_weak_scaling,
    "E8": experiment_e8_kernel_speedups,
    "E9": experiment_e9_schedulers,
    "E10": experiment_e10_overlap,
    "E11": experiment_e11_amr_efficiency,
    "E12": experiment_e12_codegen,
    "E13": experiment_e13_model_validation,
    "E14": experiment_e14_partitioning,
}

__all__ = [
    "Report",
    "EXPERIMENTS",
    "calibrated_cost_model",
    "simulate_step",
    "strong_scaling",
    "weak_scaling",
    "speedups",
    "efficiencies",
    "StepCost",
    "experiment_e1_convergence",
    "experiment_e2_riemann_solvers",
    "experiment_e3_profiles",
    "experiment_e4_blast2d",
    "experiment_e5_kelvin_helmholtz",
    "experiment_e6_strong_scaling",
    "experiment_e7_weak_scaling",
    "experiment_e8_kernel_speedups",
    "experiment_e9_schedulers",
    "experiment_e10_overlap",
    "experiment_e11_amr_efficiency",
    "experiment_e12_codegen",
    "experiment_e13_model_validation",
    "experiment_e14_partitioning",
]
