"""Cost-model calibration from short real solver runs.

Runs the RP1 shock tube at two grid sizes with the production
configuration, measures per-kernel wall time *per call* from the solver's
timers, and fits the two-parameter kernel model
``t(n) = overhead + n / throughput`` — so both the streaming cost and the
NumPy per-call dispatch overhead (which throttles small blocks and the
strong-scaling tail) are taken from reality. Cached per process.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.config import SolverConfig
from ..core.solver import Solver
from ..eos.ideal import IdealGasEOS
from ..mesh.grid import Grid
from ..physics.initial_data import RP1, shock_tube
from ..physics.srhd import SRHDSystem
from ..runtime.device import KERNELS
from ..runtime.perfmodel import KernelCostModel


def _measure_per_call(n_cells: int, n_steps: int) -> dict[str, float]:
    """Seconds per kernel call at one grid size (1-D: one call per stage)."""
    eos = IdealGasEOS(gamma=RP1.gamma)
    system = SRHDSystem(eos, ndim=1)
    grid = Grid((n_cells,), ((0.0, 1.0),))
    solver = Solver(system, grid, shock_tube(system, grid, RP1), SolverConfig())
    solver.step()  # warm-up: kernel caches, allocator
    solver.timers.reset()
    solver.run(t_final=RP1.t_final, max_steps=n_steps)
    return {k: solver.timers[k].mean for k in KERNELS}


@lru_cache(maxsize=4)
def calibrated_cost_model(
    n_small: int = 200, n_big: int = 3200, n_steps: int = 30
) -> KernelCostModel:
    """Two-point calibrated kernel cost model (overhead + throughput)."""
    small = (n_small, _measure_per_call(n_small, n_steps))
    big = (n_big, _measure_per_call(n_big, n_steps))
    eos_nvars = 5  # bytes-per-cell default sized for the 3-D state
    return KernelCostModel.from_two_point_calibration(
        small, big, bytes_per_cell=eos_nvars * 8
    )
