"""Ablation experiments A1-A4: quantify the design choices DESIGN.md
calls out (flux correction, Lorentz-factor cap, atmosphere floor, CFL).

These are not paper tables; they justify the defaults the reproduction
ships with, in the same report format as the main experiments.
"""

from __future__ import annotations

import numpy as np

from ..analysis import relative_l1_error
from ..boundary.conditions import make_boundaries
from ..core.amr_solver import AMRConfig, AMRSolver
from ..core.config import SolverConfig
from ..core.solver import Solver
from ..eos.ideal import IdealGasEOS
from ..mesh.grid import Grid
from ..physics.exact_riemann import ExactRiemannSolver
from ..physics.initial_data import RP1, blast_wave_2d, shock_tube
from ..physics.srhd import SRHDSystem
from ..utils.errors import ReproError
from .report import Report


def ablation_a1_reflux(root_n: int = 64, t_final: float = 0.15) -> Report:
    """A1: conservation and accuracy with/without AMR flux correction."""
    eos = IdealGasEOS(gamma=RP1.gamma)
    system = SRHDSystem(eos, ndim=1)
    exact = ExactRiemannSolver(RP1.left, RP1.right, RP1.gamma)
    report = Report(
        experiment="A1",
        title="Ablation: AMR flux correction (frozen topology, interior waves)",
        headers=["reflux", "mass_drift", "energy_drift", "rel_L1(rho)"],
    )
    for reflux in (False, True):
        amr = AMRSolver(
            system,
            Grid((root_n,), ((0.0, 1.0),)),
            lambda s, g: shock_tube(s, g, RP1),
            SolverConfig(cfl=0.4),
            AMRConfig(
                block_size=16,
                max_levels=3,
                refine_threshold=0.05,
                regrid_interval=10_000,
                reflux=reflux,
            ),
        )

        def totals():
            mass = energy = 0.0
            for leaf in amr.forest.leaves.values():
                interior = leaf.grid.interior_of(leaf.cons)
                mass += interior[0].sum() * leaf.grid.cell_volume
                energy += (interior[0] + interior[-1]).sum() * leaf.grid.cell_volume
            return mass, energy

        m0, e0 = totals()
        amr.run(t_final=t_final)
        m1, e1 = totals()
        grid_f, prim_f = amr.composite_primitives()
        rho_e, _, _ = exact.solution_on_grid(grid_f.coords(0), t_final, RP1.x0)
        report.add_row(
            str(reflux),
            (m1 - m0) / m0,
            (e1 - e0) / e0,
            relative_l1_error(prim_f[0], rho_e),
        )
    report.add_note("expected: drift ~1e-16 with refluxing, ~1e-3 without")
    return report


def ablation_a2_wmax(n: int = 32, t_final: float = 0.15) -> Report:
    """A2: Lorentz-factor cap vs robustness on the hard 2-D blast."""
    eos = IdealGasEOS()
    report = Report(
        experiment="A2",
        title="Ablation: face-state Lorentz cap W_max (2D blast, p ratio 1e4)",
        headers=["w_max", "outcome", "steps", "rho_min", "rho_max"],
    )
    for w_max in (2.0, 10.0, 100.0, 1e5):
        system = SRHDSystem(eos, ndim=2)
        grid = Grid((n, n), ((0, 1), (0, 1)))
        prim0 = blast_wave_2d(system, grid, p_in=100.0, radius=0.1)
        solver = Solver(system, grid, prim0, SolverConfig(cfl=0.4, w_max=w_max))
        try:
            solver.run(t_final=t_final)
            prim = solver.interior_primitives()
            report.add_row(
                w_max,
                "completed",
                solver.summary.steps,
                float(prim[0].min()),
                float(prim[0].max()),
            )
        except ReproError as exc:
            report.add_row(w_max, f"failed: {type(exc).__name__}", solver.summary.steps, np.nan, np.nan)
    report.add_note(
        "too-tight caps distort the flow; uncapped face states admit "
        "runaway W before recovery fails (the failure mode the cap exists for)"
    )
    return report


def ablation_a3_atmosphere(n: int = 200, rho_right: float = 1e-6) -> Report:
    """A3: atmosphere floor level on a blast into a near-vacuum medium.

    The right state's density (1e-6) sits between the tenuous floors and
    the aggressive ones, so the sweep shows exactly when the floor starts
    overwriting physics.
    """
    from ..physics.initial_data import ShockTubeProblem
    from ..physics.exact_riemann import RiemannState

    problem = ShockTubeProblem(
        name="vacuum-tube",
        left=RiemannState(rho=1.0, v=0.0, p=1.0),
        right=RiemannState(rho=rho_right, v=0.0, p=1e-10),
        gamma=5.0 / 3.0,
        t_final=0.3,
    )
    report = Report(
        experiment="A3",
        title=f"Ablation: atmosphere floor (blast into rho = {rho_right} medium)",
        headers=["rho_atmo", "far_right_rho", "rel_L1(rho)", "all_above_floor"],
    )
    eos = IdealGasEOS(gamma=problem.gamma)
    exact = ExactRiemannSolver(problem.left, problem.right, problem.gamma)
    for rho_atmo in (1e-12, 1e-9, 1e-4, 1e-2):
        system = SRHDSystem(eos, ndim=1)
        grid = Grid((n,), ((0.0, 1.0),))
        solver = Solver(
            system,
            grid,
            shock_tube(system, grid, problem),
            SolverConfig(cfl=0.4, rho_atmo=rho_atmo, p_atmo=rho_atmo * 1e-4),
        )
        solver.run(t_final=problem.t_final)
        rho = solver.interior_primitives()[0]
        rho_e, _, _ = exact.solution_on_grid(
            grid.coords(0), problem.t_final, problem.x0
        )
        report.add_row(
            rho_atmo,
            float(rho[-n // 10 :].mean()),  # undisturbed far-right medium
            relative_l1_error(rho, rho_e),
            bool(np.all(rho >= rho_atmo * 0.99)),
        )
    report.add_note(
        "floors below the ambient density (1e-12, 1e-9) leave the physics "
        "alone; floors above it (1e-4, 1e-2) overwrite the medium"
    )
    return report


def ablation_a4_cfl(n: int = 200) -> Report:
    """A4: CFL number vs error and step count (stability margin)."""
    report = Report(
        experiment="A4",
        title="Ablation: CFL number (RP1, MC + HLLC + SSP-RK3)",
        headers=["cfl", "rel_L1(rho)", "steps"],
    )
    eos = IdealGasEOS(gamma=RP1.gamma)
    exact = ExactRiemannSolver(RP1.left, RP1.right, RP1.gamma)
    for cfl in (0.1, 0.25, 0.5, 0.9):
        system = SRHDSystem(eos, ndim=1)
        grid = Grid((n,), ((0.0, 1.0),))
        solver = Solver(
            system, grid, shock_tube(system, grid, RP1), SolverConfig(cfl=cfl)
        )
        solver.run(t_final=RP1.t_final)
        rho_e, _, _ = exact.solution_on_grid(grid.coords(0), RP1.t_final, RP1.x0)
        report.add_row(
            cfl,
            relative_l1_error(solver.interior_primitives()[0], rho_e),
            solver.summary.steps,
        )
    report.add_note("error nearly CFL-independent below 1; cost scales as 1/CFL")
    return report


ABLATIONS = {
    "A1": ablation_a1_reflux,
    "A2": ablation_a2_wmax,
    "A3": ablation_a3_atmosphere,
    "A4": ablation_a4_cfl,
}
