"""Accuracy experiments E1-E5: shock tubes, blast wave, Kelvin-Helmholtz.

Each driver runs real solver evolutions and returns a
:class:`~repro.harness.report.Report` shaped like the corresponding table
or figure in the reconstructed evaluation (see DESIGN.md section 4).
"""

from __future__ import annotations

import numpy as np

from ..analysis import (
    convergence_order,
    fit_exponential_growth,
    relative_l1_error,
    transverse_kinetic_amplitude,
)
from ..boundary.conditions import make_boundaries
from ..core.config import SolverConfig
from ..core.solver import Solver
from ..eos.ideal import IdealGasEOS
from ..mesh.grid import Grid
from ..physics.exact_riemann import ExactRiemannSolver
from ..physics.initial_data import (
    RP1,
    RP2,
    ShockTubeProblem,
    blast_wave_2d,
    kelvin_helmholtz_2d,
    shock_tube,
)
from ..physics.srhd import SRHDSystem
from ..utils.timers import Timer
from .report import Report


def _run_tube(problem: ShockTubeProblem, n: int, config: SolverConfig):
    eos = IdealGasEOS(gamma=problem.gamma)
    system = SRHDSystem(eos, ndim=1)
    grid = Grid((n,), ((0.0, 1.0),))
    solver = Solver(
        system, grid, shock_tube(system, grid, problem), config,
        make_boundaries("outflow"),
    )
    wall = Timer("run")
    with wall:
        solver.run(t_final=problem.t_final)
    exact = ExactRiemannSolver(problem.left, problem.right, problem.gamma)
    rho_e, v_e, p_e = exact.solution_on_grid(
        grid.coords(0), problem.t_final, problem.x0
    )
    prim = solver.interior_primitives()
    err = relative_l1_error(prim[system.RHO], rho_e)
    cells_per_s = (
        grid.n_cells * solver.summary.steps * solver.integrator.stages
    ) / max(wall.elapsed, 1e-12)
    return err, solver, cells_per_s, (rho_e, v_e, p_e), grid


def experiment_e1_convergence(
    resolutions=(50, 100, 200, 400),
    reconstructions=("pc", "mc", "ppm", "weno5"),
    problems=(RP1, RP2),
) -> Report:
    """Table I: L1(rho) error vs resolution and observed order, per scheme."""
    report = Report(
        experiment="E1 (Table I)",
        title="Shock-tube convergence: relative L1(rho) error vs exact solution",
        headers=["problem", "scheme", *[f"N={n}" for n in resolutions], "order"],
    )
    for problem in problems:
        for scheme in reconstructions:
            config = SolverConfig(reconstruction=scheme, cfl=0.4)
            errors = [
                _run_tube(problem, n, config)[0] for n in resolutions
            ]
            # Order from the finest pair: coarse resolutions of the strong
            # blast (RP2) are pre-asymptotic (the thin shell is unresolved).
            order = convergence_order(resolutions[-2:], errors[-2:])
            report.add_row(problem.name, scheme, *errors, order)
    report.add_note(
        "shock-dominated solutions converge at ~O(1); higher-order schemes "
        "lower the constant; RP2 coarse entries are pre-asymptotic"
    )
    return report


def experiment_e2_riemann_solvers(
    n: int = 400, solvers=("llf", "hll", "hllc"), problem=RP1
) -> Report:
    """Table II: accuracy and throughput per approximate Riemann solver."""
    report = Report(
        experiment="E2 (Table II)",
        title=f"Riemann-solver comparison on {problem.name} at N={n}",
        headers=["solver", "rel L1(rho)", "Mcells/s", "steps"],
    )
    for name in solvers:
        err, solver, cps, _, _ = _run_tube(
            problem, n, SolverConfig(riemann=name, cfl=0.4)
        )
        report.add_row(name, err, cps / 1e6, solver.summary.steps)
    report.add_note("expected: err(hllc) <= err(hll) <= err(llf) at similar cost")
    return report


def experiment_e3_profiles(problem=RP1, n: int = 400, n_samples: int = 16) -> Report:
    """Figure 1: solution profiles vs the exact solution at t_final."""
    err, solver, _, exact_fields, grid = _run_tube(
        problem, n, SolverConfig(cfl=0.4)
    )
    rho_e, v_e, p_e = exact_fields
    prim = solver.interior_primitives()
    report = Report(
        experiment="E3 (Fig. 1)",
        title=f"{problem.name} profiles at t={problem.t_final} (N={n})",
        headers=["x", "rho", "rho_exact", "v", "v_exact", "p", "p_exact"],
    )
    x = grid.coords(0)
    idx = np.linspace(0, n - 1, n_samples).astype(int)
    for i in idx:
        report.add_row(x[i], prim[0, i], rho_e[i], prim[1, i], v_e[i], prim[2, i], p_e[i])
    report.add_note(f"relative L1(rho) error = {err:.4f}")
    return report


def experiment_e4_blast2d(
    n: int = 64, p_in: float = 100.0, t_final: float = 0.2, n_bins: int = 12
) -> Report:
    """Figure 2: cylindrical blast radial profile and symmetry error."""
    eos = IdealGasEOS()
    system = SRHDSystem(eos, ndim=2)
    grid = Grid((n, n), ((0.0, 1.0), (0.0, 1.0)))
    prim0 = blast_wave_2d(system, grid, p_in=p_in, radius=0.1, smoothing=0.02)
    solver = Solver(system, grid, prim0, SolverConfig(cfl=0.25))
    solver.run(t_final=t_final)
    prim = solver.interior_primitives()
    x = grid.coords(0)[:, None] - 0.5
    y = grid.coords(1)[None, :] - 0.5
    r = np.sqrt(x**2 + y**2)
    vr = (prim[1] * x + prim[2] * y) / np.maximum(r, 1e-12)

    report = Report(
        experiment="E4 (Fig. 2)",
        title=f"2D relativistic blast wave radial profile ({n}x{n}, t={t_final})",
        headers=["r", "rho_mean", "p_mean", "v_r_mean", "n_cells"],
    )
    edges = np.linspace(0, 0.5, n_bins + 1)
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (r >= lo) & (r < hi)
        if mask.sum() == 0:
            continue
        report.add_row(
            0.5 * (lo + hi),
            float(prim[0][mask].mean()),
            float(prim[3][mask].mean()),
            float(vr[mask].mean()),
            int(mask.sum()),
        )
    asym = float(np.max(np.abs(prim[0] - prim[0].T)))
    report.add_note(f"max diagonal-symmetry violation of rho = {asym:.3e}")
    return report


def experiment_e5_kelvin_helmholtz(
    resolutions=(32, 64), t_final: float = 3.0, n_samples: int = 30
) -> Report:
    """Figure 3: Kelvin-Helmholtz transverse-velocity growth rate vs N."""
    report = Report(
        experiment="E5 (Fig. 3)",
        title="Kelvin-Helmholtz growth: fitted rate of sqrt(<v_y^2>)",
        headers=["N", "growth_rate", "amp_initial", "amp_final"],
    )
    eos = IdealGasEOS()
    for n in resolutions:
        system = SRHDSystem(eos, ndim=2)
        grid = Grid((n, n), ((0.0, 1.0), (0.0, 1.0)))
        prim0 = kelvin_helmholtz_2d(system, grid)
        solver = Solver(
            system, grid, prim0, SolverConfig(cfl=0.4),
            make_boundaries("periodic"),
        )
        times, amps = [], []
        sample_dt = t_final / n_samples
        next_sample = 0.0

        def record(s, _times=times, _amps=amps):
            nonlocal next_sample
            if s.t >= next_sample:
                _times.append(s.t)
                _amps.append(
                    transverse_kinetic_amplitude(system, grid, s.primitives())
                )
                next_sample += sample_dt

        record(solver)
        solver.run(t_final=t_final, callback=record)
        # Skip the early transient (the seeded mode first reorganizes and
        # dips) and the late nonlinear saturation.
        gamma_fit, a0 = fit_exponential_growth(
            times, np.maximum(amps, 1e-12), window=(t_final / 3, t_final * 0.9)
        )
        report.add_row(n, gamma_fit, amps[0], amps[-1])
    report.add_note("growth rate should converge (increase then saturate) with N")
    return report
