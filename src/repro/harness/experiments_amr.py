"""AMR efficiency experiment E11 (Table IV).

Runs the same problem three ways — coarse unigrid, fine unigrid, AMR with
the fine level available where flagged — and reports error vs cell-updates
vs modelled compute time. The AMR row should land near the fine-unigrid
error at a fraction of its work.
"""

from __future__ import annotations

from ..analysis import relative_l1_error
from ..core.amr_solver import AMRConfig, AMRSolver
from ..core.config import SolverConfig
from ..core.solver import Solver
from ..eos.ideal import IdealGasEOS
from ..mesh.grid import Grid
from ..physics.exact_riemann import ExactRiemannSolver
from ..physics.initial_data import RP1, shock_tube
from ..physics.srhd import SRHDSystem
from ..runtime.perfmodel import KernelCostModel
from .calibrate import calibrated_cost_model
from .report import Report


def experiment_e11_amr_efficiency(
    root_n: int = 64,
    max_levels: int = 3,
    problem=RP1,
    model: KernelCostModel | None = None,
) -> Report:
    """Table IV: AMR vs unigrid — error, cell updates, modelled time."""
    model = model or calibrated_cost_model()
    eos = IdealGasEOS(gamma=problem.gamma)
    system = SRHDSystem(eos, ndim=1)
    exact = ExactRiemannSolver(problem.left, problem.right, problem.gamma)
    fine_n = root_n * 2 ** (max_levels - 1)
    config = SolverConfig(cfl=0.4)

    report = Report(
        experiment="E11 (Table IV)",
        title=f"AMR vs unigrid on {problem.name} (root N={root_n}, "
        f"{max_levels} levels)",
        headers=["configuration", "rel_L1(rho)", "cell_updates", "model_time_s"],
    )

    def unigrid_row(name, n):
        grid = Grid((n,), ((0.0, 1.0),))
        solver = Solver(system, grid, shock_tube(system, grid, problem), config)
        solver.run(t_final=problem.t_final)
        rho_e, _, _ = exact.solution_on_grid(grid.coords(0), problem.t_final, problem.x0)
        err = relative_l1_error(solver.interior_primitives()[0], rho_e)
        updates = grid.n_cells * solver.summary.steps * solver.integrator.stages
        # Modelled compute time: per-cell kernel pipeline on the CPU model.
        t_model = model.step_time(model.cpu, grid.n_cells) * solver.summary.steps / 3 * 3
        report.add_row(name, err, updates, t_model)
        return err, updates

    unigrid_row(f"unigrid N={root_n}", root_n)
    err_fine, updates_fine = unigrid_row(f"unigrid N={fine_n}", fine_n)

    amr = AMRSolver(
        system,
        Grid((root_n,), ((0.0, 1.0),)),
        lambda s, g: shock_tube(s, g, problem),
        config,
        AMRConfig(block_size=16, max_levels=max_levels, refine_threshold=0.05),
    )
    amr.run(t_final=problem.t_final)
    grid_f, prim_f = amr.composite_primitives()
    rho_e, _, _ = exact.solution_on_grid(grid_f.coords(0), problem.t_final, problem.x0)
    err_amr = relative_l1_error(prim_f[0], rho_e)
    t_amr = (
        model.step_time(model.cpu, amr.cells_updated // max(amr.steps, 1) // 3)
        * amr.steps
    )
    report.add_row(
        f"AMR {max_levels} levels", err_amr, amr.cells_updated, t_amr
    )
    report.add_note(
        f"AMR error / fine-unigrid error = {err_amr / err_fine:.2f}; "
        f"AMR updates / fine updates = {amr.cells_updated / updates_fine:.2f}"
    )
    report.add_note(f"final leaf distribution: {amr.leaf_count_by_level()}")
    return report
