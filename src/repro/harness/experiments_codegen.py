"""Code-generation experiment E12 (Fig. 8): generated vs handwritten kernel
throughput, numpy vs flat (SoA) targets, plus generation/verification cost.
"""

from __future__ import annotations

import numpy as np

from ..codegen import KernelGenerator, load_kernel, run_flat_kernel, verify_kernels
from ..eos.ideal import IdealGasEOS
from ..physics.srhd import SRHDSystem
from ..utils.timers import Timer
from .report import Report


def _measure(fn, repeats: int = 5) -> float:
    timer = Timer("bench")
    fn()  # warm-up
    for _ in range(repeats):
        with timer:
            fn()
    return timer.mean


def experiment_e12_codegen(
    n_cells: int = 200_000, ndim: int = 2, repeats: int = 5
) -> Report:
    """Fig. 8: throughput of generated kernels relative to handwritten ones."""
    gamma = 5.0 / 3.0
    system = SRHDSystem(IdealGasEOS(gamma=gamma), ndim=ndim)
    rng = np.random.default_rng(11)
    prim = np.empty((system.nvars, n_cells))
    prim[system.RHO] = rng.uniform(0.1, 10.0, n_cells)
    for ax in range(ndim):
        prim[system.V(ax)] = rng.uniform(-0.5, 0.5, n_cells) / np.sqrt(ndim)
    prim[system.P] = rng.uniform(0.01, 10.0, n_cells)
    cons = system.prim_to_con(prim)
    out = np.empty_like(prim)

    report = Report(
        experiment="E12 (Fig. 8)",
        title=f"Generated vs handwritten kernel throughput ({n_cells} cells, {ndim}D)",
        headers=["kernel", "variant", "Mcells/s", "vs handwritten"],
    )

    cases = {
        "prim_to_con": {
            "handwritten": lambda: system.prim_to_con(prim),
            "generated/numpy": lambda k=load_kernel("prim_to_con", ndim): k(
                prim, out, gamma
            ),
            "generated/flat": lambda k=load_kernel(
                "prim_to_con", ndim, target="flat"
            ): run_flat_kernel(k, prim, system.nvars, gamma),
        },
        # The generated flux consumes primitives directly (it re-derives the
        # conserved state internally), so the fair handwritten comparison
        # includes prim_to_con.
        "flux(x)": {
            "handwritten": lambda: system.flux(prim, system.prim_to_con(prim), 0),
            "generated/numpy": lambda k=load_kernel("flux", ndim, 0): k(
                prim, out, gamma
            ),
            "generated/flat": lambda k=load_kernel(
                "flux", ndim, 0, target="flat"
            ): run_flat_kernel(k, prim, system.nvars, gamma),
        },
        "char_speeds(x)": {
            "handwritten": lambda: system.char_speeds(prim, 0),
            "generated/numpy": lambda k=load_kernel("char_speeds", ndim, 0): k(
                prim, np.empty((2, n_cells)), gamma
            ),
            "generated/flat": lambda k=load_kernel(
                "char_speeds", ndim, 0, target="flat"
            ): run_flat_kernel(k, prim, 2, gamma),
        },
    }
    for kernel_name, variants in cases.items():
        t_ref = None
        for variant, fn in variants.items():
            t = _measure(fn, repeats)
            if variant == "handwritten":
                t_ref = t
            report.add_row(
                kernel_name, variant, n_cells / t / 1e6, t_ref / t if t_ref else 1.0
            )

    gen_timer = Timer("gen")
    with gen_timer:
        KernelGenerator(ndim).generate_module()
    report.add_note(f"full module generation time: {gen_timer.elapsed * 1e3:.1f} ms")
    deviations = verify_kernels(ndim)
    report.add_note(
        f"max generated-vs-reference deviation: {max(deviations.values()):.2e}"
    )
    return report
