"""Partitioning experiment E14: space-filling-curve vs baseline
assignments of AMR leaves to ranks.

The Dendro-lineage claim: Morton-order partitioning gives near-perfect
load balance *and* spatially compact rank domains, so halo traffic stays
low as the adapted mesh scales out. E14 measures imbalance, edge cut, and
communication volume (plus the Hockney-model exchange time) on a real
adapted forest for each strategy.
"""

from __future__ import annotations

from ..comm.costs import make_link
from ..core.amr_solver import AMRConfig, AMRSolver
from ..core.config import SolverConfig
from ..eos.ideal import IdealGasEOS
from ..mesh.amr.partition import PARTITIONERS
from ..mesh.grid import Grid
from ..physics.initial_data import blast_wave_2d
from ..physics.srhd import SRHDSystem
from .report import Report


def experiment_e14_partitioning(
    root_n: int = 128,
    max_levels: int = 3,
    rank_counts=(4, 16, 64),
    interconnect: str = "infiniband-fdr",
) -> Report:
    """E14: partition quality of SFC vs round-robin vs random."""
    eos = IdealGasEOS()
    system = SRHDSystem(eos, ndim=2)
    grid = Grid((root_n, root_n), ((0.0, 1.0), (0.0, 1.0)))
    amr = AMRSolver(
        system,
        grid,
        lambda s, g: blast_wave_2d(s, g, p_in=50.0, radius=0.15, smoothing=0.02),
        SolverConfig(cfl=0.3),
        AMRConfig(block_size=16, max_levels=max_levels, refine_threshold=0.1),
    )
    link = make_link(interconnect)
    nvars_bytes = system.nvars * 8

    report = Report(
        experiment="E14",
        title=(
            f"AMR leaf partitioning on an adapted {root_n}^2 blast mesh "
            f"({len(amr.forest.leaves)} leaves, levels {amr.leaf_count_by_level()})"
        ),
        headers=[
            "ranks",
            "strategy",
            "imbalance",
            "edge_cut",
            "comm_cells",
            "exchange_ms",
        ],
    )
    for n_ranks in rank_counts:
        for name, fn in PARTITIONERS.items():
            part = fn(amr.forest, n_ranks)
            # Modelled exchange time: one aggregated message per cut edge.
            per_edge_bytes = (
                part.comm_volume / max(part.edge_cut, 1)
            ) * nvars_bytes * amr.layout.n_ghost
            exchange = part.edge_cut * link.transfer_time(per_edge_bytes) / max(
                n_ranks, 1
            )
            report.add_row(
                n_ranks,
                name,
                part.imbalance,
                part.edge_cut,
                part.comm_volume,
                exchange * 1e3,
            )
    report.add_note(
        "SFC keeps imbalance ~1.0 while cutting edge-cut/traffic several-fold "
        "versus scattered assignments — the locality property the octree "
        "frameworks rely on"
    )
    return report
