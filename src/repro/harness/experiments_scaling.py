"""Heterogeneous-computing experiments E6-E10: scaling, device speedups,
scheduler comparison, communication overlap.

All cluster quantities are simulated via the calibrated cost model (see
DESIGN.md section 2); the decomposition geometry and message sizes come
from the real distributed code path.
"""

from __future__ import annotations

import numpy as np

from ..mesh.grid import Grid
from ..runtime.cluster import cpu_cluster, gpu_cluster, imbalanced_node
from ..runtime.dag import TaskGraph
from ..runtime.device import KERNELS
from ..runtime.perfmodel import KernelCostModel
from ..runtime.scheduler import make_scheduler
from ..runtime.simulator import ClusterSimulator
from ..runtime.task import Task
from .calibrate import calibrated_cost_model
from .report import Report
from .scaling import efficiencies, simulate_step, speedups, strong_scaling, weak_scaling


def _save_scaling_metrics(metrics_dir, eid: str, meta: dict, **cost_lists) -> list:
    """Write one modelled JSONL stream per device flavour; returns paths."""
    from pathlib import Path

    from ..runtime.trace import save_metrics_jsonl, scaling_to_metrics_records

    out = Path(metrics_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for flavour, costs in cost_lists.items():
        path = out / f"{eid}_{flavour}_modelled.jsonl"
        save_metrics_jsonl(
            scaling_to_metrics_records(
                costs, meta={"experiment": eid, "flavour": flavour, **meta}
            ),
            path,
        )
        paths.append(path)
    return paths


def experiment_e6_strong_scaling(
    grid_shape=(1024, 1024),
    node_counts=(1, 2, 4, 8, 16, 32, 64, 128, 256),
    model: KernelCostModel | None = None,
    metrics_dir=None,
) -> Report:
    """Figure 4: strong scaling, CPU-only vs CPU+GPU clusters.

    With *metrics_dir* set, the modelled curves are also written as
    ``source: "modelled"`` JSONL event streams (one per device flavour),
    ready to diff against measured runs with
    :meth:`Report.diff_metrics`.
    """
    model = model or calibrated_cost_model()
    grid = Grid(grid_shape, tuple((0.0, 1.0) for _ in grid_shape))
    cpu_costs = strong_scaling(
        grid, node_counts, lambda n: cpu_cluster(n, model), model, prefer_gpu=False
    )
    gpu_costs = strong_scaling(
        grid, node_counts, lambda n: gpu_cluster(n, model), model, prefer_gpu=True
    )
    report = Report(
        experiment="E6 (Fig. 4)",
        title=f"Strong scaling of one hydro step, global grid {grid_shape}",
        headers=[
            "nodes",
            "cpu_time_s",
            "cpu_speedup",
            "cpu_eff",
            "gpu_time_s",
            "gpu_speedup",
            "gpu_eff",
        ],
    )
    cpu_sp, cpu_eff = speedups(cpu_costs), efficiencies(cpu_costs)
    gpu_sp, gpu_eff = speedups(gpu_costs), efficiencies(gpu_costs)
    for i, n in enumerate(node_counts):
        report.add_row(
            n,
            cpu_costs[i].total_s,
            cpu_sp[i],
            cpu_eff[i],
            gpu_costs[i].total_s,
            gpu_sp[i],
            gpu_eff[i],
        )
    report.add_note(
        "GPU nodes are faster in absolute time but lose efficiency earlier: "
        "fixed per-node work shrinks until launch overhead + halo dominate"
    )
    if metrics_dir is not None:
        paths = _save_scaling_metrics(
            metrics_dir,
            "E6",
            {"grid_shape": list(grid_shape), "node_counts": list(node_counts)},
            cpu=cpu_costs,
            gpu=gpu_costs,
        )
        report.add_note(f"modelled metrics: {', '.join(str(p) for p in paths)}")
    return report


def experiment_e7_weak_scaling(
    cells_per_node_axis: int = 256,
    node_counts=(1, 4, 16, 64, 256),
    model: KernelCostModel | None = None,
    metrics_dir=None,
) -> Report:
    """Figure 5: weak scaling efficiency at fixed per-node work.

    With *metrics_dir* set, the modelled curves are written as JSONL
    event streams exactly as in :func:`experiment_e6_strong_scaling`.
    """
    model = model or calibrated_cost_model()
    cpu_costs = weak_scaling(
        cells_per_node_axis, node_counts, lambda n: cpu_cluster(n, model), model,
        prefer_gpu=False,
    )
    gpu_costs = weak_scaling(
        cells_per_node_axis, node_counts, lambda n: gpu_cluster(n, model), model,
        prefer_gpu=True,
    )
    report = Report(
        experiment="E7 (Fig. 5)",
        title=(
            f"Weak scaling, {cells_per_node_axis}^2 cells per node"
        ),
        headers=["nodes", "cpu_time_s", "cpu_eff", "gpu_time_s", "gpu_eff"],
    )
    cpu_eff = efficiencies(cpu_costs, mode="weak")
    gpu_eff = efficiencies(gpu_costs, mode="weak")
    for i, n in enumerate(node_counts):
        report.add_row(
            n, cpu_costs[i].total_s, cpu_eff[i], gpu_costs[i].total_s, gpu_eff[i]
        )
    report.add_note(
        "efficiency decays with the allreduce log(P) term and halo growth; "
        "flat curves = good weak scaling"
    )
    if metrics_dir is not None:
        paths = _save_scaling_metrics(
            metrics_dir,
            "E7",
            {
                "cells_per_node_axis": cells_per_node_axis,
                "node_counts": list(node_counts),
            },
            cpu=cpu_costs,
            gpu=gpu_costs,
        )
        report.add_note(f"modelled metrics: {', '.join(str(p) for p in paths)}")
    return report


def experiment_e8_kernel_speedups(
    block_cells: int = 256 * 256, model: KernelCostModel | None = None
) -> Report:
    """Table III: per-kernel GPU:CPU speedup (calibrated CPU, modelled GPU)."""
    model = model or calibrated_cost_model()
    gpu = model.gpu()
    report = Report(
        experiment="E8 (Table III)",
        title=f"Per-kernel device times for a {block_cells}-cell block",
        headers=["kernel", "cpu_ms", "gpu_ms", "speedup"],
    )
    for kernel in KERNELS:
        t_cpu = model.cpu.kernel_time(kernel, block_cells)
        t_gpu = gpu.kernel_time(kernel, block_cells)
        report.add_row(kernel, t_cpu * 1e3, t_gpu * 1e3, t_cpu / t_gpu)
    step_cpu = model.step_time(model.cpu, block_cells)
    step_gpu = model.step_time(gpu, block_cells) + model.transfer_time(
        gpu, block_cells
    )
    report.add_row("full step (+PCIe)", step_cpu * 1e3, step_gpu * 1e3, step_cpu / step_gpu)
    report.add_note(
        "streaming kernels get full memory-bandwidth ratios; the divergent "
        "con2prim Newton iteration benefits least"
    )
    return report


def _hydro_step_dag(n_blocks: int, cells_per_block: int, seed: int = 0) -> TaskGraph:
    """Task DAG of one hydro step over blocks: per-block kernel chains with
    a halo-dependency wavefront between neighbouring blocks."""
    rng = np.random.default_rng(seed)
    tasks = []
    for b in range(n_blocks):
        # Mild size imbalance mimics AMR blocks at mixed levels.
        n = int(cells_per_block * rng.uniform(0.5, 1.5))
        tasks.append(Task(id=f"c2p-{b}", kernel="con2prim", n_cells=n, block=b))
        halo_deps = [f"c2p-{b}"]
        for nbr in (b - 1, b + 1):
            if 0 <= nbr < n_blocks:
                halo_deps.append(f"c2p-{nbr}")
        tasks.append(
            Task(
                id=f"recon-{b}", kernel="reconstruct", n_cells=n,
                deps=tuple(halo_deps), block=b,
            )
        )
        tasks.append(
            Task(id=f"rie-{b}", kernel="riemann", n_cells=n, deps=(f"recon-{b}",), block=b)
        )
        tasks.append(
            Task(id=f"upd-{b}", kernel="update", n_cells=n, deps=(f"rie-{b}",), block=b)
        )
    return TaskGraph(tasks)


def experiment_e9_schedulers(
    n_blocks: int = 32,
    cells_per_block: int = 64 * 64,
    slow_factors=(1.0, 2.0, 4.0, 8.0),
    model: KernelCostModel | None = None,
) -> Report:
    """Figure 6: scheduler makespan on increasingly imbalanced nodes."""
    model = model or calibrated_cost_model()

    def cost(task, device):
        return device.kernel_time(task.kernel, task.n_cells)

    report = Report(
        experiment="E9 (Fig. 6)",
        title=f"Scheduler comparison, {n_blocks} blocks on a CPU+GPU node",
        headers=[
            "slow_factor",
            "static_ms",
            "dynamic_ms",
            "stealing_ms",
            "static_imb",
            "dynamic_imb",
            "stealing_imb",
        ],
    )
    for sf in slow_factors:
        node = imbalanced_node(model, slow_factor=sf)
        spans, imbs = {}, {}
        for name in ("static", "dynamic", "work-stealing"):
            graph = _hydro_step_dag(n_blocks, cells_per_block)
            sim = ClusterSimulator(list(node.devices), cost, make_scheduler(name))
            tl = sim.run(graph)
            spans[name] = tl.makespan * 1e3
            imbs[name] = tl.imbalance()
        report.add_row(
            sf,
            spans["static"],
            spans["dynamic"],
            spans["work-stealing"],
            imbs["static"],
            imbs["dynamic"],
            imbs["work-stealing"],
        )
    report.add_note(
        "static strands half the blocks on the slow device; dynamic and "
        "work-stealing track the device speed ratio"
    )
    return report


def experiment_e10_overlap(
    node_counts=(16, 64, 256, 1024, 4096),
    grid_shape=(2048, 2048),
    interconnect: str = "ethernet-10g",
    model: KernelCostModel | None = None,
) -> Report:
    """Figure 7: communication/computation overlap benefit vs node count.

    Run on the slower fabric preset by default: a fat-tree InfiniBand keeps
    the halo fraction of this stencil under 1% until extreme node counts,
    which is itself a finding the strong-scaling figure already shows.
    """
    model = model or calibrated_cost_model()
    grid = Grid(grid_shape, tuple((0.0, 1.0) for _ in grid_shape))
    report = Report(
        experiment="E10 (Fig. 7)",
        title=(
            f"Halo-exchange overlap benefit, global grid {grid_shape}, "
            f"{interconnect}"
        ),
        headers=["nodes", "no_overlap_s", "overlap_s", "saving_pct", "halo_frac_pct"],
    )
    for n in node_counts:
        cluster = gpu_cluster(n, model, interconnect=interconnect)
        plain = simulate_step(grid, cluster, model, overlap=False)
        lapped = simulate_step(grid, cluster, model, overlap=True)
        saving = (1.0 - lapped.total_s / plain.total_s) * 100.0
        halo_frac = plain.halo_s / plain.total_s * 100.0
        report.add_row(n, plain.total_s, lapped.total_s, saving, halo_frac)
    report.add_note(
        "overlap recovers most of the halo cost while compute per node still "
        "exceeds the exchange time; at extreme node counts nothing is left "
        "to hide behind"
    )
    return report
