"""Model-validation experiment E13: does the calibrated cost model predict
reality?

The scaling figures (E6/E7/E10) are only as good as the cost model behind
them. E13 closes the loop on everything that is measurable on this
substrate:

1. *step-time prediction* — the model's CPU step time vs the measured wall
   time of real solver runs at several grid sizes (calibration transfers
   across problem sizes);
2. *traffic prediction* — the analytic halo byte count vs the bytes the
   bit-exact distributed solver actually sends.
"""

from __future__ import annotations

import numpy as np

from ..core.config import SolverConfig
from ..core.distributed import DistributedSolver
from ..core.solver import Solver
from ..eos.ideal import IdealGasEOS
from ..mesh.decomposition import CartesianDecomposition
from ..mesh.grid import Grid
from ..physics.initial_data import RP1, shock_tube, smooth_wave
from ..physics.srhd import SRHDSystem
from ..runtime.perfmodel import KernelCostModel
from ..utils.timers import Timer
from .calibrate import calibrated_cost_model
from .report import Report


def experiment_e13_model_validation(
    sizes=(200, 400, 1600), n_steps: int = 20, model: KernelCostModel | None = None
) -> Report:
    """E13: predicted vs measured step times and halo traffic."""
    model = model or calibrated_cost_model()
    eos = IdealGasEOS(gamma=RP1.gamma)
    report = Report(
        experiment="E13",
        title="Cost-model validation: predicted vs measured",
        headers=["quantity", "predicted", "measured", "ratio"],
    )

    # 1. Step time across problem sizes.
    for n in sizes:
        system = SRHDSystem(eos, ndim=1)
        grid = Grid((n,), ((0.0, 1.0),))
        solver = Solver(system, grid, shock_tube(system, grid, RP1), SolverConfig())
        timer = Timer("steps")
        solver.step()  # warm-up (allocations, kernel cache)
        with timer:
            for _ in range(n_steps):
                solver.step()
        measured = timer.elapsed / n_steps
        predicted = model.step_time(model.cpu, grid.n_cells)
        report.add_row(
            f"step time N={n} [ms]",
            predicted * 1e3,
            measured * 1e3,
            predicted / measured,
        )

    # 2. Halo traffic of a real distributed run vs the analytic count.
    from ..comm.halo import halo_bytes_per_step

    system = SRHDSystem(eos, ndim=2)
    grid2 = Grid((32, 32), ((0.0, 1.0), (0.0, 1.0)))
    prim0 = smooth_wave_2d(system, grid2)
    dist = DistributedSolver(system, grid2, prim0, dims=(2, 2))
    base = dist.comm.traffic.n_bytes
    dist.step(dt=1e-4)  # 3 stage exchanges, no dt collective
    measured_bytes = dist.comm.traffic.n_bytes - base
    decomp = CartesianDecomposition(grid2, (2, 2))
    predicted_bytes = 3 * sum(
        halo_bytes_per_step(decomp, nvars=system.nvars).values()
    )
    report.add_row(
        "halo bytes / step (2x2 ranks)",
        predicted_bytes,
        measured_bytes,
        predicted_bytes / measured_bytes,
    )
    report.add_note(
        "step-time ratios within ~2x validate transfer of the calibration "
        "across sizes; the traffic prediction is exact by construction"
    )
    return report


def smooth_wave_2d(system: SRHDSystem, grid: Grid) -> np.ndarray:
    """Small 2-D analogue of smooth_wave for the traffic check."""
    x = grid.coords_with_ghosts(0)[:, None]
    prim = np.empty((system.nvars,) + grid.shape_with_ghosts)
    prim[system.RHO] = 1.0 + 0.1 * np.sin(2 * np.pi * x)
    prim[system.V(0)] = 0.2
    prim[system.V(1)] = -0.1
    prim[system.P] = 1.0
    return prim
