"""Paper-shaped report rendering: tables (rows) and figure series.

Every experiment driver returns a :class:`Report`; benchmarks print it so
the regenerated numbers appear in the same rows/series layout as the
original table or figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..utils.errors import ConfigurationError


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Report:
    """A titled table of results (one per experiment)."""

    experiment: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(values)} cells, expected {len(self.headers)}"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one named column."""
        try:
            idx = list(self.headers).index(name)
        except ValueError:
            raise ConfigurationError(
                f"no column {name!r}; have {list(self.headers)}"
            ) from None
        return [row[idx] for row in self.rows]

    def __str__(self) -> str:
        cells = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        sep = "  "
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append(sep.join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep.join("-" * w for w in widths))
        for row in cells:
            lines.append(sep.join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
