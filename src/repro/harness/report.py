"""Paper-shaped report rendering: tables (rows) and figure series.

Every experiment driver returns a :class:`Report`; benchmarks print it so
the regenerated numbers appear in the same rows/series layout as the
original table or figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..obs.metrics import merge_histogram_summaries
from ..utils.errors import ConfigurationError


#: histograms renamed since older event streams were recorded; mapping the
#: old name forward keeps archived --metrics-out files readable.
#: ("con2prim.newton_iters" always observed the per-sweep *max* Newton
#: iteration count, which is what the new name says.)
_HISTOGRAM_RENAMES = {"con2prim.newton_iters": "con2prim.newton_iters_max"}


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Report:
    """A titled table of results (one per experiment)."""

    experiment: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(values)} cells, expected {len(self.headers)}"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one named column."""
        try:
            idx = list(self.headers).index(name)
        except ValueError:
            raise ConfigurationError(
                f"no column {name!r}; have {list(self.headers)}"
            ) from None
        return [row[idx] for row in self.rows]

    @classmethod
    def from_metrics(
        cls,
        records: Sequence[dict],
        experiment: str = "metrics",
        title: str = "run metrics summary",
    ) -> "Report":
        """Aggregate a :mod:`repro.obs` event stream into a summary table.

        Accepts the records as loaded by :func:`repro.obs.read_events`
        (mixed ``run_start``/``step``/``run_end``); only ``step`` records
        contribute. Kernel seconds, counters, and communication fields are
        summed over steps; gauges report their final value.

        Multi-rank streams — per-rank shards carrying a ``rank`` field,
        possibly interleaved in arrival order — are handled by a stable
        sort on ``(step, rank)``: the step count is the number of distinct
        steps, sums run over every shard, and gauges/histograms aggregate
        each rank's final record (max / combined).
        """
        steps = [r for r in records if r.get("event") == "step"]
        report = cls(experiment, title, headers=("metric", "value"))
        if not steps:
            report.add_note("no step records")
            return report
        steps.sort(key=lambda r: (r.get("step", 0), r.get("rank", 0)))
        n_ranks = len({r.get("rank", 0) for r in steps})
        source = steps[0].get("source", "measured")
        report.add_row("steps", len({r.get("step", 0) for r in steps}))
        report.add_row("t_end", float(steps[-1].get("t", 0.0)))
        report.add_row(
            "wall_seconds", sum(float(s.get("wall_seconds", 0.0)) for s in steps)
        )
        kernels: dict[str, float] = {}
        counters: dict[str, float] = {}
        comm: dict[str, float] = {}
        for s in steps:
            for name, sec in s.get("kernel_seconds", {}).items():
                kernels[name] = kernels.get(name, 0.0) + sec
            for name, val in s.get("counters", {}).items():
                counters[name] = counters.get(name, 0.0) + val
            for name, val in s.get("comm", {}).items():
                if name != "halo_bytes_model_per_exchange":
                    comm[name] = comm.get(name, 0.0) + val
        for name in sorted(kernels):
            report.add_row(f"kernel.{name} [s]", kernels[name])
        for name in sorted(counters):
            report.add_row(f"counter.{name}", counters[name])
        for name in sorted(comm):
            report.add_row(f"comm.{name}", comm[name])
        # Derived overlap summary: whole-run hidden-comm fraction from the
        # summed comm.overlap.* counters (the per-step gauge only shows the
        # last exchange).
        modeled = counters.get("comm.overlap.modeled_comm_s", 0.0)
        if modeled > 0:
            report.add_row(
                "comm.overlap.hidden_frac",
                counters.get("comm.overlap.hidden_s", 0.0) / modeled,
            )
        # Gauges and histogram summaries are cumulative, so a rank's last
        # record *containing a name* carries that rank's full-run state for
        # it.  Aggregation is per (rank, name) last occurrence — not the
        # rank's final record wholesale: a name can drop out of later
        # records (e.g. per-rank ``amr.*`` histograms after every block of
        # a kind migrated away, or a registry swap on recovery), and taking
        # only the final record would silently lose those buckets.
        gauge_last: dict[tuple[Any, str], float] = {}
        hist_last: dict[tuple[Any, str], dict] = {}
        for s in steps:  # sorted by (step, rank): later records win
            rank = s.get("rank", 0)
            for name, val in s.get("gauges", {}).items():
                gauge_last[(rank, name)] = val
            for name, summ in s.get("histograms", {}).items():
                hist_last[(rank, _HISTOGRAM_RENAMES.get(name, name))] = summ
        gauges: dict[str, float] = {}
        hists: dict[str, dict] = {}
        for (_rank, name), val in gauge_last.items():
            gauges[name] = max(gauges[name], val) if name in gauges else val
        for (_rank, name), summ in hist_last.items():
            hists[name] = merge_histogram_summaries(hists.get(name), summ)
        for name, val in sorted(gauges.items()):
            report.add_row(f"gauge.{name}", val)
        for name, summ in sorted(hists.items()):
            report.add_row(f"hist.{name}.count", summ.get("count", 0))
            report.add_row(f"hist.{name}.mean", float(summ.get("mean", 0.0)))
            report.add_row(f"hist.{name}.max", float(summ.get("max", 0.0)))
            # Tail quantiles from the bucketed summary; older archived
            # streams carry no buckets, where the quantile degrades to max.
            if summ.get("buckets") or summ.get("nonpos"):
                report.add_row(f"hist.{name}.p50", float(summ.get("p50", 0.0)))
                report.add_row(f"hist.{name}.p99", float(summ.get("p99", 0.0)))
        report.add_note(f"source: {source}")
        if n_ranks > 1:
            report.add_note(f"aggregated over {n_ranks} rank shards")
        return report

    @classmethod
    def diff_metrics(
        cls,
        measured: Sequence[dict],
        modelled: Sequence[dict],
        experiment: str = "metrics-diff",
        title: str = "measured vs modelled",
    ) -> "Report":
        """Side-by-side diff of a measured and a modelled event stream.

        Both inputs are record lists as loaded by
        :func:`repro.obs.read_events`; each is aggregated with
        :meth:`from_metrics` and joined on the metric name.  The ``ratio``
        column is measured/modelled where both sides are nonzero numbers
        (blank otherwise), so systematic model error shows up as a column
        of ratios far from 1.
        """
        left = cls.from_metrics(measured)
        right = cls.from_metrics(modelled)
        lvals = dict(zip(left.column("metric"), left.column("value")))
        rvals = dict(zip(right.column("metric"), right.column("value")))
        report = cls(
            experiment, title, headers=("metric", "measured", "modelled", "ratio")
        )
        for name in sorted(set(lvals) | set(rvals)):
            m, d = lvals.get(name), rvals.get(name)
            ratio = ""
            if (
                isinstance(m, (int, float))
                and isinstance(d, (int, float))
                and d not in (0, 0.0)
            ):
                ratio = float(m) / float(d)
            report.add_row(name, "" if m is None else m, "" if d is None else d, ratio)
        return report

    def __str__(self) -> str:
        cells = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        sep = "  "
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append(sep.join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep.join("-" * w for w in widths))
        for row in cells:
            lines.append(sep.join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
