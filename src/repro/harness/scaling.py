"""Analytic scaling model for the strong/weak scaling experiments.

One hydro step on a decomposed domain decomposes into, per RK stage:

- compute: every kernel stage over the rank's local cells (device model);
- halo exchange: the rank's ghost strips over the interconnect (Hockney);

plus one allreduce (the CFL reduction) per step. The per-step simulated
time is ``rk_stages * (compute [overlapped with] halo) + allreduce``, where
the non-overlapped variant serializes compute and communication and the
overlapped variant hides the exchange behind interior-cell compute
(experiment E10 measures the difference).

The decomposition, ghost widths, and message sizes are the *real* ones from
:mod:`repro.mesh.decomposition` / :mod:`repro.comm.halo` — the same code
the bit-exact distributed solver uses — so the surface-to-volume behaviour
in the curves is genuine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.costs import LinkModel
from ..comm.halo import halo_bytes_per_step
from ..mesh.decomposition import CartesianDecomposition, choose_dims
from ..mesh.grid import Grid
from ..runtime.cluster import Cluster
from ..runtime.device import KERNELS, Device
from ..runtime.perfmodel import KernelCostModel
from ..utils.errors import ConfigurationError


@dataclass(frozen=True)
class StepCost:
    """Breakdown of one simulated hydro step on one cluster configuration."""

    n_nodes: int
    local_cells_max: int
    compute_s: float
    halo_s: float
    allreduce_s: float
    total_s: float


def _node_device(cluster: Cluster, node_idx: int, prefer_gpu: bool) -> Device:
    node = cluster.node(node_idx)
    if prefer_gpu and node.gpus:
        return node.gpus[0]
    return node.devices[0]


def simulate_step(
    global_grid: Grid,
    cluster: Cluster,
    model: KernelCostModel,
    nvars: int = 4,
    rk_stages: int = 3,
    overlap: bool = False,
    prefer_gpu: bool = True,
) -> StepCost:
    """Simulated wall time of one distributed hydro step.

    One rank per node, the fastest device on each node doing the hydro
    kernels. The slowest rank (compute + halo) sets the step time — the
    bulk-synchronous model that matches the RK-stage barrier structure.
    """
    n_nodes = cluster.size
    dims = choose_dims(n_nodes, global_grid.ndim)
    decomp = CartesianDecomposition(global_grid, dims)
    halo_bytes = halo_bytes_per_step(decomp, nvars=nvars)

    worst_total = 0.0
    worst = None
    for rank in range(n_nodes):
        device = _node_device(cluster, rank, prefer_gpu)
        local = decomp.local_cells(rank)
        compute = sum(device.kernel_time(k, local) for k in KERNELS)
        # Host staging for accelerators: ghost strips cross PCIe too.
        halo = cluster.interconnect.transfer_time(halo_bytes[rank]) if halo_bytes[
            rank
        ] else 0.0
        if device.host_link is not None and halo_bytes[rank]:
            halo += device.host_link.transfer_time(halo_bytes[rank])
        if overlap:
            # Exchange hidden behind interior compute; only the boundary-strip
            # update (the halo-dependent fraction of cells) serializes.
            sub = decomp.subgrid(rank)
            boundary_cells = local - _interior_cells(sub)
            boundary_compute = sum(
                device.kernel_time(k, boundary_cells) for k in KERNELS
            )
            stage = max(compute - boundary_compute, halo) + boundary_compute
        else:
            stage = compute + halo
        total = rk_stages * stage
        if total > worst_total:
            worst_total = total
            worst = (rank, device, local, rk_stages * compute, rk_stages * halo)

    assert worst is not None
    allreduce = cluster.interconnect.allreduce_time(8, n_nodes)
    _, _, local, compute_s, halo_s = worst
    return StepCost(
        n_nodes=n_nodes,
        local_cells_max=local,
        compute_s=compute_s,
        halo_s=halo_s,
        allreduce_s=allreduce,
        total_s=worst_total + allreduce,
    )


def _interior_cells(sub: Grid) -> int:
    """Cells not adjacent to any face (updatable before halos arrive)."""
    g = sub.n_ghost
    inner = 1
    for n in sub.shape:
        inner *= max(n - 2 * g, 0)
    return inner


def strong_scaling(
    global_grid: Grid,
    node_counts,
    make_cluster,
    model: KernelCostModel,
    **kwargs,
) -> list[StepCost]:
    """Fixed problem, growing cluster: returns one StepCost per count."""
    out = []
    for n in node_counts:
        dims = choose_dims(n, global_grid.ndim)
        for d, s in zip(dims, global_grid.shape):
            if s % d != 0 and s < d:
                raise ConfigurationError(
                    f"{n} nodes cannot tile grid {global_grid.shape}"
                )
        out.append(simulate_step(global_grid, make_cluster(n), model, **kwargs))
    return out


def weak_scaling(
    cells_per_node_axis: int,
    node_counts,
    make_cluster,
    model: KernelCostModel,
    ndim: int = 2,
    **kwargs,
) -> list[StepCost]:
    """Fixed per-node work, growing cluster and domain together."""
    out = []
    for n in node_counts:
        dims = choose_dims(n, ndim)
        shape = tuple(d * cells_per_node_axis for d in dims)
        grid = Grid(shape, tuple((0.0, 1.0) for _ in shape))
        out.append(simulate_step(grid, make_cluster(n), model, **kwargs))
    return out


def speedups(costs: list[StepCost]) -> list[float]:
    """Speedup of each entry relative to the first."""
    return [costs[0].total_s / c.total_s for c in costs]


def efficiencies(costs: list[StepCost], mode: str = "strong") -> list[float]:
    """Parallel efficiency per entry (strong: speedup/nodes; weak: t0/t)."""
    if mode == "strong":
        base = costs[0]
        return [
            (base.total_s / c.total_s) / (c.n_nodes / base.n_nodes) for c in costs
        ]
    if mode == "weak":
        return [costs[0].total_s / c.total_s for c in costs]
    raise ConfigurationError(f"unknown efficiency mode {mode!r}")
