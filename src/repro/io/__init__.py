"""Checkpoint/restart and solution output."""

from .checkpoint import (
    load_amr_checkpoint,
    load_checkpoint,
    load_distributed_checkpoint,
    save_amr_checkpoint,
    save_checkpoint,
    save_distributed_checkpoint,
)
from .output import load_solution, read_curve, save_solution, write_curve

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_amr_checkpoint",
    "load_amr_checkpoint",
    "save_distributed_checkpoint",
    "load_distributed_checkpoint",
    "save_solution",
    "load_solution",
    "write_curve",
    "read_curve",
]
