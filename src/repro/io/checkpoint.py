"""Checkpoint/restart for solver runs.

Long cluster campaigns live and die by restart capability; this module
serializes the full state of the unigrid and AMR solvers to ``.npz``
archives (portable, dependency-free) and restores them exactly — the
restarted evolution is bit-identical to an uninterrupted one (tested).

Format (unigrid), one compressed npz:

- ``meta``: json-encoded dict (format version, t, steps, grid geometry,
  solver config, EOS descriptor)
- ``cons``: the ghosted conserved state array

AMR checkpoints add per-leaf entries ``leaf_<level>_<idx...>`` plus the
forest topology in ``meta``.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
import zlib
from contextlib import contextmanager

import numpy as np

from ..core.amr_solver import AMRConfig, AMRSolver
from ..core.config import SolverConfig
from ..core.distributed import DistributedSolver
from ..core.solver import Solver
from ..mesh.amr.blocks import BlockKey
from ..mesh.grid import Grid
from ..utils.errors import CheckpointError, ConfigurationError

FORMAT_VERSION = 1


def _atomic_savez(path, **arrays) -> None:
    """Write a compressed ``.npz`` archive atomically.

    The archive is assembled in a temp file in the destination directory
    and moved into place with :func:`os.replace`, so a crash mid-write
    can never tear the (often only) checkpoint: readers see either the
    old complete archive or the new complete archive, never a truncated
    one.  Mirrors ``np.savez``'s suffix behavior (``.npz`` appended when
    missing) so the on-disk name is unchanged from the direct call.
    """
    final = str(path)
    if not final.endswith(".npz"):
        final += ".npz"
    directory = os.path.dirname(final) or "."
    fd, tmp = tempfile.mkstemp(prefix=".ckpt-", suffix=".npz", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, final)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@contextmanager
def _read_archive(path):
    """Open a checkpoint archive, mapping corruption to CheckpointError.

    A truncated or torn archive surfaces as ``BadZipFile``/``zlib.error``/
    ``EOFError``/``KeyError`` (missing member) depending on where the
    bytes ran out; all of them become a single clear
    :class:`~repro.utils.errors.CheckpointError` naming the path.  A
    missing file keeps raising ``FileNotFoundError`` (callers distinguish
    "no checkpoint yet" from "checkpoint destroyed").
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            yield data
    except (ConfigurationError, FileNotFoundError):
        raise
    except (zipfile.BadZipFile, zlib.error, EOFError, KeyError,
            ValueError, OSError) as exc:
        raise CheckpointError(
            f"checkpoint {path} is unreadable (truncated or corrupt): {exc}"
        ) from exc


def _quiescent_prim(system, grid: Grid) -> np.ndarray:
    """Physically admissible placeholder state (rho = p = 1, v = 0)."""
    prim = grid.allocate(system.nvars, fill=0.0)
    prim[system.RHO] = 1.0
    prim[system.P] = 1.0
    return prim


def _grid_meta(grid: Grid) -> dict:
    return {
        "shape": list(grid.shape),
        "bounds": [list(b) for b in grid.bounds],
        "n_ghost": grid.n_ghost,
    }


def _grid_from_meta(meta: dict) -> Grid:
    return Grid(
        tuple(meta["shape"]),
        tuple(tuple(b) for b in meta["bounds"]),
        n_ghost=meta["n_ghost"],
    )


def save_checkpoint(solver: Solver, path) -> None:
    """Write a unigrid solver's full state to *path* (.npz)."""
    meta = {
        "format": FORMAT_VERSION,
        "kind": "unigrid",
        "t": solver.t,
        "steps": solver.summary.steps,
        "grid": _grid_meta(solver.grid),
        "config": solver.config.to_dict(),
        "ndim": solver.system.ndim,
    }
    arrays = {"cons": solver.cons}
    # The con2prim warm-start cache participates in bit-exact restart: a
    # cold-started Newton lands within tolerance but not on the identical
    # bits, which would fork the trajectory.
    p_cache = solver.pipeline._p_cache
    if p_cache is not None:
        arrays["p_cache"] = p_cache
    _atomic_savez(path, meta=json.dumps(meta), **arrays)


def load_checkpoint(path, system, boundaries=None) -> Solver:
    """Reconstruct a unigrid solver from a checkpoint.

    The physics (*system*) and boundary conditions are code, not data, so
    the caller supplies them; geometry, configuration, time, and the
    conserved state come from the archive.
    """
    with _read_archive(path) as data:
        meta = json.loads(str(data["meta"]))
        if meta.get("format") != FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported checkpoint format {meta.get('format')!r}"
            )
        if meta.get("kind") != "unigrid":
            raise ConfigurationError(
                f"checkpoint holds a {meta.get('kind')!r} run, not unigrid"
            )
        if meta["ndim"] != system.ndim:
            raise ConfigurationError(
                f"checkpoint is {meta['ndim']}D, system is {system.ndim}D"
            )
        grid = _grid_from_meta(meta["grid"])
        config = SolverConfig(**meta["config"])
        cons = np.array(data["cons"])
        p_cache = np.array(data["p_cache"]) if "p_cache" in data else None

    # Build the solver through a quiescent placeholder state, then install
    # the checkpointed conserved variables verbatim.
    prim_placeholder = _quiescent_prim(system, grid)
    solver = Solver(system, grid, prim_placeholder, config, boundaries)
    solver.cons = cons
    solver.pipeline._p_cache = p_cache
    solver._prim_dirty = True
    solver.t = meta["t"]
    solver.summary.steps = meta["steps"]
    return solver


def save_distributed_checkpoint(solver, path) -> None:
    """Write a distributed solver's full state to *path* (.npz).

    Stores one ghosted conserved array per rank plus each rank pipeline's
    con2prim warm-start cache, so the restarted evolution stays bit-identical
    to an uninterrupted one.  Works for both executors: *solver* may be a
    :class:`~repro.core.distributed.DistributedSolver` or a
    :class:`~repro.core.parallel.ProcessSolver` (whose workers stream their
    shards to the parent through ``checkpoint_shards``); given the same
    trajectory both write bit-identical archive entries.
    """
    meta = {
        "format": FORMAT_VERSION,
        "kind": "distributed",
        "t": solver.t,
        "steps": solver.steps,
        "dims": list(solver.decomp.dims),
        "periodic": list(solver.decomp.periodic),
        "grid": _grid_meta(solver.global_grid),
        "config": solver.config.to_dict(),
        "ndim": solver.system.ndim,
    }
    shards = solver.checkpoint_shards()
    arrays = {}
    for rank in range(solver.size):
        cons, p_cache = shards[rank]
        arrays[f"rank_{rank}"] = cons
        if p_cache is not None:
            arrays[f"pcache_{rank}"] = p_cache
    _atomic_savez(path, meta=json.dumps(meta), **arrays)


def load_distributed_checkpoint(
    path,
    system,
    boundaries=None,
    fault_injector=None,
    halo_policy=None,
):
    """Reconstruct a distributed solver from a checkpoint.

    As with the other loaders, physics and boundary conditions are code and
    come from the caller; geometry, process-grid shape, configuration, time,
    and per-rank conserved states come from the archive.  Resilience hooks
    (*fault_injector*, *halo_policy*) are fresh objects supplied by the
    caller — fault plans are replayed from the restart point, not resumed.

    The execution backend follows the checkpointed ``config.executor``: a
    run checkpointed under ``executor="process"`` restarts as a
    :class:`~repro.core.parallel.ProcessSolver` (fresh workers, shards
    installed verbatim), anything else as a
    :class:`DistributedSolver` — which is what lets
    :func:`repro.resilience.run_with_restart` drive chaos runs on either
    backend through the same loader.
    """
    with _read_archive(path) as data:
        meta = json.loads(str(data["meta"]))
        if meta.get("format") != FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported checkpoint format {meta.get('format')!r}"
            )
        if meta.get("kind") != "distributed":
            raise ConfigurationError(
                f"checkpoint holds a {meta.get('kind')!r} run, not distributed"
            )
        if meta["ndim"] != system.ndim:
            raise ConfigurationError(
                f"checkpoint is {meta['ndim']}D, system is {system.ndim}D"
            )
        grid = _grid_from_meta(meta["grid"])
        config = SolverConfig(**meta["config"])
        prim_placeholder = _quiescent_prim(system, grid)
        shards = {}
        for rank in range(int(np.prod(meta["dims"]))):
            pcache = f"pcache_{rank}"
            shards[rank] = (
                np.array(data[f"rank_{rank}"]),
                np.array(data[pcache]) if pcache in data else None,
            )

    if getattr(config, "executor", "serial") == "process":
        # Deferred import: repro.core.parallel imports this module lazily.
        from ..core.parallel import ProcessSolver

        solver = ProcessSolver(
            system,
            grid,
            prim_placeholder,
            tuple(meta["dims"]),
            config=config,
            boundaries=boundaries,
            periodic=tuple(meta["periodic"]),
            fault_injector=fault_injector,
            halo_policy=halo_policy,
        )
        solver.restore_state(meta["t"], meta["steps"], shards)
        return solver

    solver = DistributedSolver(
        system,
        grid,
        prim_placeholder,
        tuple(meta["dims"]),
        config,
        boundaries,
        periodic=tuple(meta["periodic"]),
        fault_injector=fault_injector,
        halo_policy=halo_policy,
    )
    for rank in range(solver.size):
        cons, p_cache = shards[rank]
        solver.cons[rank] = cons
        solver.pipelines[rank]._p_cache = p_cache
    solver._prims_cache = None
    solver.t = meta["t"]
    solver.steps = meta["steps"]
    return solver


def save_amr_checkpoint(solver: AMRSolver, path) -> None:
    """Write an AMR solver's leaves and topology to *path* (.npz)."""
    leaves = sorted(solver.forest.leaves, key=lambda k: (k.level, k.idx))
    meta = {
        "format": FORMAT_VERSION,
        "kind": "amr",
        "t": solver.t,
        "steps": solver.steps,
        "cells_updated": solver.cells_updated,
        "regrids": solver.regrids,
        "root_grid": _grid_meta(solver.layout.root_grid),
        "config": solver.config.to_dict(),
        "amr": solver.amr.to_dict(),
        "ndim": solver.system.ndim,
        "leaves": [[k.level, list(k.idx)] for k in leaves],
        "refined": [[k.level, list(k.idx)] for k in sorted(
            solver.forest.refined, key=lambda k: (k.level, k.idx)
        )],
    }
    arrays = {}
    for key in leaves:
        name = f"leaf_{key.level}_" + "_".join(map(str, key.idx))
        arrays[name] = solver.forest.leaves[key].cons
        pipe = solver._pipelines.get(key)
        if pipe is not None and pipe._p_cache is not None:
            arrays["pcache_" + name] = pipe._p_cache
    _atomic_savez(path, meta=json.dumps(meta), **arrays)


def load_amr_checkpoint(path, system, boundaries=None) -> AMRSolver:
    """Reconstruct an AMR solver (topology + leaf states) from *path*."""
    with _read_archive(path) as data:
        meta = json.loads(str(data["meta"]))
        if meta.get("kind") != "amr":
            raise ConfigurationError(
                f"checkpoint holds a {meta.get('kind')!r} run, not amr"
            )
        if meta["ndim"] != system.ndim:
            raise ConfigurationError(
                f"checkpoint is {meta['ndim']}D, system is {system.ndim}D"
            )
        root = _grid_from_meta(meta["root_grid"])
        config = SolverConfig(**meta["config"])
        amr_cfg = AMRConfig(**meta["amr"])

        def flat_ic(sys, grid):
            return _quiescent_prim(sys, grid)

        solver = AMRSolver(
            system,
            root,
            flat_ic,
            config,
            amr_cfg.replace(initial_regrid_passes=0),
            boundaries,
        )
        # Rebuild the exact topology.
        solver.forest.leaves.clear()
        solver.forest.refined = {
            BlockKey(level, tuple(idx)) for level, idx in meta["refined"]
        }
        solver._pipelines.clear()
        from ..mesh.amr.blocks import LeafBlock

        for level, idx in meta["leaves"]:
            key = BlockKey(level, tuple(idx))
            name = f"leaf_{level}_" + "_".join(map(str, idx))
            cons = np.array(data[name])
            grid = solver.layout.grid_for(key)
            solver.forest.leaves[key] = LeafBlock(key, grid, cons)
            if "pcache_" + name in data:
                pipe = solver._pipeline(key)
                pipe._p_cache = np.array(data["pcache_" + name])
        solver.t = meta["t"]
        solver.steps = meta["steps"]
        solver.cells_updated = meta["cells_updated"]
        solver.regrids = meta["regrids"]
    return solver
