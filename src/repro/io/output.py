"""Solution output: portable snapshots and 1-D curve files.

Snapshots store a grid's geometry plus the interior primitive fields in a
``.npz`` archive; curves write plain text columns (gnuplot/np.loadtxt
friendly) for quick profile comparisons.
"""

from __future__ import annotations

import json

import numpy as np

from ..mesh.grid import Grid
from ..utils.errors import ConfigurationError


def save_solution(path, grid: Grid, prim_interior: np.ndarray, t: float,
                  field_names=None) -> None:
    """Write an interior primitive snapshot to *path* (.npz)."""
    if prim_interior.shape[1:] != grid.shape:
        raise ConfigurationError(
            f"field shape {prim_interior.shape[1:]} != grid {grid.shape}"
        )
    meta = {
        "t": t,
        "shape": list(grid.shape),
        "bounds": [list(b) for b in grid.bounds],
        "n_ghost": grid.n_ghost,
        "fields": list(field_names)
        if field_names is not None
        else [f"var{i}" for i in range(prim_interior.shape[0])],
    }
    np.savez_compressed(path, meta=json.dumps(meta), prim=prim_interior)


def load_solution(path):
    """Read a snapshot; returns (grid, prim_interior, t, field_names)."""
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        grid = Grid(
            tuple(meta["shape"]),
            tuple(tuple(b) for b in meta["bounds"]),
            n_ghost=meta["n_ghost"],
        )
        prim = np.array(data["prim"])
    return grid, prim, meta["t"], meta["fields"]


def write_curve(path, columns: dict, comment: str = "") -> None:
    """Write named 1-D columns as whitespace-separated text."""
    names = list(columns)
    arrays = [np.asarray(columns[n], dtype=float) for n in names]
    length = arrays[0].size
    if any(a.ndim != 1 or a.size != length for a in arrays):
        raise ConfigurationError("all columns must be 1-D and equal length")
    with open(path, "w") as fh:
        if comment:
            fh.write(f"# {comment}\n")
        fh.write("# " + " ".join(names) + "\n")
        for row in zip(*arrays):
            fh.write(" ".join(f"{v:.12e}" for v in row) + "\n")


def read_curve(path):
    """Read a curve file back; returns {name: array}."""
    with open(path) as fh:
        names = None
        for line in fh:
            if line.startswith("#"):
                names = line[1:].split()
            else:
                break
    data = np.loadtxt(path, ndmin=2)
    if names is None or len(names) != data.shape[1]:
        names = [f"col{i}" for i in range(data.shape[1])]
    return {name: data[:, i] for i, name in enumerate(names)}
