"""Meshes: uniform ghosted grids, decomposition, block-structured AMR."""

from .decomposition import CartesianDecomposition, balanced_split, choose_dims
from .grid import Grid

__all__ = ["Grid", "CartesianDecomposition", "balanced_split", "choose_dims"]
