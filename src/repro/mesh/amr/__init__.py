"""Block-structured (2^d-tree) adaptive mesh refinement."""

from .blocks import BlockKey, BlockLayout, LeafBlock
from .criteria import GradientCriterion, scaled_gradient
from .forest import AMRForest
from .partition import (
    PARTITIONERS,
    Partition,
    morton_key,
    partition_random,
    partition_round_robin,
    partition_sfc,
    sfc_order,
)
from .reflux import apply_reflux, fine_face_flux
from .transfer import (
    conservation_check,
    prolong_array,
    prolong_to_children,
    restrict_array,
)

__all__ = [
    "BlockKey",
    "BlockLayout",
    "LeafBlock",
    "AMRForest",
    "GradientCriterion",
    "scaled_gradient",
    "prolong_array",
    "prolong_to_children",
    "restrict_array",
    "conservation_check",
    "apply_reflux",
    "fine_face_flux",
    "morton_key",
    "sfc_order",
    "Partition",
    "partition_sfc",
    "partition_round_robin",
    "partition_random",
    "PARTITIONERS",
]
