"""Block addressing for the octree-style AMR mesh.

The domain is tiled by fixed-size blocks organized as a 2^d-tree (binary
tree in 1-D, quadtree in 2-D, octree in 3-D — the Dendro-family layout): a
block at ``(level, idx)`` either is a *leaf* (it owns evolved data) or is
refined into the 2^d children ``(level+1, 2*idx + offset)``. Leaf grids at
level ``l`` have cell spacing ``root_dx / 2^l`` and a fixed per-block cell
count.
"""

from __future__ import annotations

from itertools import product
from typing import NamedTuple

import numpy as np

from ...utils.errors import MeshError
from ..grid import Grid


class BlockKey(NamedTuple):
    """Address of one block in the 2^d-tree."""

    level: int
    idx: tuple[int, ...]

    def children(self) -> list["BlockKey"]:
        """The 2^d children of this block at the next finer level."""
        ndim = len(self.idx)
        return [
            BlockKey(self.level + 1, tuple(2 * i + o for i, o in zip(self.idx, off)))
            for off in product((0, 1), repeat=ndim)
        ]

    def parent(self) -> "BlockKey":
        if self.level == 0:
            raise MeshError("root blocks have no parent")
        return BlockKey(self.level - 1, tuple(i // 2 for i in self.idx))

    def child_offset(self) -> tuple[int, ...]:
        """This block's position (0/1 per axis) within its parent."""
        return tuple(i % 2 for i in self.idx)

    def neighbor(self, axis: int, side: int) -> "BlockKey":
        """Same-level neighbour across face (axis, side) — may be outside
        the domain; validity is checked by the forest."""
        delta = 1 if side == 1 else -1
        idx = list(self.idx)
        idx[axis] += delta
        return BlockKey(self.level, tuple(idx))


class BlockLayout:
    """Geometry shared by every block: domain bounds, per-block cell count,
    root tiling, and the map from keys to physical grids."""

    def __init__(self, root_grid: Grid, block_size: int = 16):
        if block_size < 2 * root_grid.n_ghost:
            raise MeshError(
                f"block_size {block_size} too small for {root_grid.n_ghost} ghosts"
            )
        for n in root_grid.shape:
            if n % block_size != 0:
                raise MeshError(
                    f"root shape {root_grid.shape} not divisible by "
                    f"block_size {block_size}"
                )
        self.root_grid = root_grid
        self.block_size = block_size
        self.ndim = root_grid.ndim
        self.n_ghost = root_grid.n_ghost
        #: blocks per axis at level 0
        self.root_blocks = tuple(n // block_size for n in root_grid.shape)

    def level_blocks(self, level: int) -> tuple[int, ...]:
        """Block-grid extent at a given level."""
        return tuple(rb * 2**level for rb in self.root_blocks)

    def in_domain(self, key: BlockKey) -> bool:
        extent = self.level_blocks(key.level)
        return all(0 <= i < e for i, e in zip(key.idx, extent))

    def grid_for(self, key: BlockKey) -> Grid:
        """The ghosted grid patch of one block."""
        if not self.in_domain(key):
            raise MeshError(f"block {key} outside the domain")
        bounds = []
        for ax, (b0, b1) in enumerate(self.root_grid.bounds):
            width = (b1 - b0) / self.level_blocks(key.level)[ax]
            lo = b0 + key.idx[ax] * width
            bounds.append((lo, lo + width))
        shape = (self.block_size,) * self.ndim
        return Grid(shape, tuple(bounds), n_ghost=self.n_ghost)

    def root_keys(self) -> list[BlockKey]:
        return [
            BlockKey(0, idx)
            for idx in product(*(range(rb) for rb in self.root_blocks))
        ]

    def cells_per_block(self) -> int:
        return self.block_size**self.ndim


class LeafBlock:
    """One evolved leaf: its grid plus the conserved state array."""

    __slots__ = ("key", "grid", "cons")

    def __init__(self, key: BlockKey, grid: Grid, cons: np.ndarray):
        self.key = key
        self.grid = grid
        self.cons = cons

    def __repr__(self):
        return f"LeafBlock({self.key})"
