"""Refinement criteria: where does the mesh need resolution?

The standard shock-capturing indicator is the scaled gradient — for a field
q, ``|q_{i+1} - q_i| / (|q_{i+1}| + |q_i| + floor)`` — evaluated for density
and pressure. A block is flagged when any interior cell exceeds the
threshold; unflagged sibling sets become coarsening candidates below the
(hysteresis) lower threshold.
"""

from __future__ import annotations

import numpy as np

from ...physics.srhd import SRHDSystem
from ...utils.errors import ConfigurationError


def scaled_gradient(field: np.ndarray, axis: int, floor: float = 1e-12) -> np.ndarray:
    """Per-cell scaled jump along *axis*; same shape as *field* (edge cells
    take their one-sided value)."""
    fwd = np.abs(np.diff(field, axis=axis))
    scale_view = [slice(None)] * field.ndim
    scale_view[axis] = slice(0, -1)
    lo = field[tuple(scale_view)]
    scale_view[axis] = slice(1, None)
    hi = field[tuple(scale_view)]
    jump = fwd / (np.abs(lo) + np.abs(hi) + floor)
    # Deposit the face value on both adjacent cells (max).
    out = np.zeros_like(field)
    scale_view[axis] = slice(0, -1)
    np.maximum(out[tuple(scale_view)], jump, out=out[tuple(scale_view)])
    scale_view[axis] = slice(1, None)
    np.maximum(out[tuple(scale_view)], jump, out=out[tuple(scale_view)])
    return out


class GradientCriterion:
    """Flags cells by scaled gradients of density and pressure."""

    def __init__(self, refine_threshold: float = 0.1, coarsen_threshold: float | None = None):
        if refine_threshold <= 0:
            raise ConfigurationError("refine_threshold must be positive")
        self.refine_threshold = refine_threshold
        self.coarsen_threshold = (
            coarsen_threshold if coarsen_threshold is not None else refine_threshold / 4
        )
        if not 0 < self.coarsen_threshold <= self.refine_threshold:
            raise ConfigurationError(
                "coarsen_threshold must lie in (0, refine_threshold]"
            )

    def indicator(self, system: SRHDSystem, prim_interior: np.ndarray) -> np.ndarray:
        """Max scaled gradient over {rho, p} and all axes, per cell."""
        ind = np.zeros_like(prim_interior[0])
        for var in (system.RHO, system.P):
            for axis in range(prim_interior.ndim - 1):
                np.maximum(
                    ind, scaled_gradient(prim_interior[var], axis), out=ind
                )
        return ind

    def needs_refinement(self, system: SRHDSystem, prim_interior: np.ndarray) -> bool:
        return bool(
            np.any(self.indicator(system, prim_interior) > self.refine_threshold)
        )

    def allows_coarsening(self, system: SRHDSystem, prim_interior: np.ndarray) -> bool:
        return bool(
            np.all(self.indicator(system, prim_interior) < self.coarsen_threshold)
        )
