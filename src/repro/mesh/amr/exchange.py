"""Inter-rank exchange planning for distributed AMR.

Every rank holds the full (replicated) forest *topology* but evolves only
the leaves assigned to it.  Ghost zones are still filled through the
composite-level construction of :meth:`AMRForest.fill_ghosts`, which
consumes **only the interiors** of the input arrays — so a rank can rebuild
the exact ghost bytes of its own leaves from a *partial* composite, as long
as it holds the interiors of every leaf whose data can reach its blocks'
ghost windows.  This module computes that dependency set and turns it into
deterministic send/recv plans.

The dependency computation is conservative (a superset is always safe — the
partial composite then matches the full composite on a larger region), and
purely topological: given the same forest and assignment, every rank
computes identical plans, so message schedules never need negotiation.

Also here: the block-migration wire format used by dynamic rebalancing.  A
migrating block travels as a fixed int64 header frame followed by its full
ghosted conserved array and (optionally) its primitive warm-start cache;
:func:`check_block_frame` validates the frame *before* any forest state is
touched and raises :class:`~repro.utils.errors.BlockMigrationError` on torn
or corrupt messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...physics.con2prim import RecoveryStats
from ...utils.errors import BlockMigrationError
from .blocks import BlockKey
from .forest import AMRForest

#: tag block for AMR payload traffic on the shm rings (must stay below the
#: communicator's CONTROL_TAG_BASE = 2000)
TAG_AMR_HALO = 1500
TAG_AMR_FLUX = 1501
TAG_AMR_MERGE = 1502
TAG_AMR_MIGRATE = 1503

_STATS_FIELDS = (
    "n_cells",
    "n_newton_converged",
    "n_bisection",
    "n_failed",
    "n_unbracketed",
    "n_failsafe",
    "max_iterations",
)

MIGRATION_MAGIC = 0x4D494752  # "MIGR"


# ---------------------------------------------------------------------------
# Ghost dependencies
# ---------------------------------------------------------------------------


def _owned_boxes(layout, owned, top_level):
    """Per-level cell boxes (one tuple of per-axis [lo, hi) intervals per
    box) that cover every composite cell the owned leaves' ghost fill can
    read, with a safety margin.

    Level ``l`` boxes are the owned windows at ``l`` plus the prolongation
    preimages of the level ``l+1`` boxes: fine cells ``[a, b)`` read coarse
    cells ``[floor(a/2) - 1, ceil(b/2) + 1)`` (minmod stencil), and a
    composite's own ghosts derive from up to ``n_ghost`` interior cells at
    the walls — the margin ``n_ghost + 2`` covers both with room to spare.
    """
    B = layout.block_size
    m = layout.n_ghost + 2
    boxes: list[list[tuple]] = [[] for _ in range(top_level + 1)]
    for key in owned:
        boxes[key.level].append(
            tuple((i * B - m, i * B + B + m) for i in key.idx)
        )
    for level in range(top_level, 0, -1):
        for box in boxes[level]:
            boxes[level - 1].append(
                tuple((a // 2 - m, -(-b // 2) + m) for a, b in box)
            )
    return boxes


def _interval_overlaps(flo, fhi, blo, bhi, n_cells, periodic):
    if periodic:
        # Wrapped reads (periodic walls copy [n-g, n) into the ghosts):
        # test the footprint shifted by one domain period either way.
        for shift in (-n_cells, 0, n_cells):
            if max(flo + shift, blo) < min(fhi + shift, bhi):
                return True
        return False
    # Non-periodic walls derive ghost values from near-boundary interior
    # cells that the clipped box still contains.
    blo = max(blo, 0)
    bhi = min(bhi, n_cells)
    return max(flo, blo) < min(fhi, bhi)


def ghost_dependencies(
    forest: AMRForest,
    owned,
    periodic: tuple[bool, ...],
) -> list[BlockKey]:
    """Leaves (beyond *owned*) whose interiors the partial ghost fill of
    *owned* needs, in forest iteration order.

    Correctness contract: filling ghosts of *owned* from a partial
    composite built from ``owned + ghost_dependencies(owned)`` is bitwise
    identical to filling them from the full composite.
    """
    layout = forest.layout
    owned_set = set(owned)
    if not owned_set:
        return []
    top = max(k.level for k in owned_set)
    boxes = _owned_boxes(layout, owned_set, top)
    B = layout.block_size
    deps = []
    for key in forest.leaves:
        if key in owned_set:
            continue
        needed = False
        for level in range(min(key.level, top) + 1):
            delta = key.level - level
            n_cells = tuple(nb * B for nb in layout.level_blocks(level))
            flo = tuple((i * B) >> delta for i in key.idx)
            fhi = tuple(
                ((i + 1) * B + (1 << delta) - 1) >> delta for i in key.idx
            )
            for box in boxes[level]:
                if all(
                    _interval_overlaps(
                        flo[ax], fhi[ax], box[ax][0], box[ax][1],
                        n_cells[ax], periodic[ax],
                    )
                    for ax in range(layout.ndim)
                ):
                    needed = True
                    break
            if needed:
                break
        if needed:
            deps.append(key)
    return deps


# ---------------------------------------------------------------------------
# Deterministic exchange plans
# ---------------------------------------------------------------------------


@dataclass
class HaloPlan:
    """Who sends which leaf interiors to whom for one ghost fill.

    All fields are identical on every rank (pure functions of the
    replicated topology + assignment), so sends and recvs pair up without
    negotiation.
    """

    #: rank -> leaves it owns, in forest order
    owned: dict[int, list[BlockKey]] = field(default_factory=dict)
    #: rank -> leaves whose interiors it must import, in forest order
    deps: dict[int, list[BlockKey]] = field(default_factory=dict)
    #: (src, dst) -> leaves src sends to dst, in forest order
    sends: dict[tuple[int, int], list[BlockKey]] = field(default_factory=dict)


def halo_plan(
    forest: AMRForest,
    assignment: dict[BlockKey, int],
    n_ranks: int,
    periodic: tuple[bool, ...],
) -> HaloPlan:
    plan = HaloPlan()
    for rank in range(n_ranks):
        plan.owned[rank] = [k for k in forest.leaves if assignment[k] == rank]
    for rank in range(n_ranks):
        deps = ghost_dependencies(forest, plan.owned[rank], periodic)
        plan.deps[rank] = deps
        for key in deps:
            src = assignment[key]
            plan.sends.setdefault((src, rank), []).append(key)
    return plan


def reflux_plan(
    forest: AMRForest,
    assignment: dict[BlockKey, int],
) -> dict[tuple[int, int], list[tuple[BlockKey, int]]]:
    """(src, dst) -> ``(fine_child, axis)`` face fluxes dst's refluxing
    needs from src, in deterministic coarse-leaf order.

    For each coarse leaf bordering a refined neighbour, the children of the
    neighbour that touch the shared face contribute their face-flux column;
    a ``(child, axis)`` pair identifies that column uniquely (which of the
    child's two faces is shared follows from its offset within the parent).
    """
    plan: dict[tuple[int, int], list[tuple[BlockKey, int]]] = {}
    ndim = forest.layout.ndim
    for key in forest.leaves:
        dst = assignment[key]
        for axis in range(ndim):
            for side in (0, 1):
                nbr = key.neighbor(axis, side)
                if not forest.layout.in_domain(nbr) or nbr not in forest.refined:
                    continue
                touching = 1 - side
                for child in nbr.children():
                    if child.child_offset()[axis] != touching:
                        continue
                    if child not in forest.leaves:
                        continue  # 2:1 violation; apply_reflux will raise
                    src = assignment[child]
                    if src != dst:
                        plan.setdefault((src, dst), []).append((child, axis))
    return plan


def face_flux_column(
    fluxes: dict[int, np.ndarray], child: BlockKey, axis: int, block_size: int
) -> np.ndarray:
    """The face-flux column of *child* on the face it shares with its
    parent's coarse neighbour along *axis*."""
    face_col = 0 if child.child_offset()[axis] == 0 else block_size
    return np.ascontiguousarray(fluxes[axis][..., face_col])


def merge_plan(
    merges,
    assignment: dict[BlockKey, int],
) -> list[tuple[BlockKey, BlockKey, int, int]]:
    """(parent, child, src, dst) transfers needed to assemble merged
    parents whose children live on other ranks.  The merged parent is owned
    by its first child's rank."""
    plan = []
    for parent in merges:
        children = parent.children()
        dst = assignment[children[0]]
        for child in children:
            src = assignment[child]
            if src != dst:
                plan.append((parent, child, src, dst))
    return plan


def migration_plan(
    forest: AMRForest,
    old: dict[BlockKey, int],
    new: dict[BlockKey, int],
) -> list[tuple[BlockKey, int, int]]:
    """(key, src, dst) moves in forest order for a repartition."""
    return [
        (key, old[key], new[key])
        for key in forest.leaves
        if new[key] != old[key]
    ]


# ---------------------------------------------------------------------------
# Rank-work accounting
# ---------------------------------------------------------------------------


def rank_loads(
    forest: AMRForest,
    assignment: dict[BlockKey, int],
    n_ranks: int,
    work: dict[BlockKey, float] | None = None,
) -> np.ndarray:
    cells = forest.layout.cells_per_block()
    loads = np.zeros(n_ranks)
    for key in forest.leaves:
        loads[assignment[key]] += cells if work is None else work[key]
    return loads


def measured_imbalance(loads: np.ndarray) -> float:
    mean = loads.mean()
    return float(loads.max() / mean) if mean > 0 else 1.0


# ---------------------------------------------------------------------------
# Block-migration wire format
# ---------------------------------------------------------------------------


def stats_vector(stats: RecoveryStats) -> list[int]:
    return [int(getattr(stats, f)) for f in _STATS_FIELDS]


def stats_from_vector(vec) -> RecoveryStats:
    return RecoveryStats(**{f: int(v) for f, v in zip(_STATS_FIELDS, vec)})


def block_frame_header(
    key: BlockKey,
    cons: np.ndarray,
    p_cache: np.ndarray | None,
    stats: RecoveryStats | None,
) -> np.ndarray:
    """Fixed-layout int64 frame announcing one migrating block:
    ``[magic, level, ndim, idx..., has_pcache, stats x7, cons_shape...]``."""
    vec = stats_vector(stats or RecoveryStats())
    head = [MIGRATION_MAGIC, key.level, len(key.idx), *key.idx,
            1 if p_cache is not None else 0, *vec, *cons.shape]
    return np.asarray(head, dtype=np.int64)


def check_block_frame(
    header: np.ndarray,
    expected_key: BlockKey,
    expected_shape: tuple[int, ...],
) -> tuple[bool, RecoveryStats]:
    """Validate a migration frame against the (replicated) plan entry.

    Returns ``(has_pcache, stats)``; raises
    :class:`~repro.utils.errors.BlockMigrationError` on any mismatch so a
    torn or corrupt message is rejected before forest state changes.
    """
    header = np.asarray(header)
    ndim = len(expected_key.idx)
    want_len = 3 + ndim + 1 + len(_STATS_FIELDS) + len(expected_shape)
    if header.ndim != 1 or header.size != want_len:
        raise BlockMigrationError(
            f"torn migration frame for {expected_key}: "
            f"{header.size} header words, expected {want_len}"
        )
    head = [int(v) for v in header]
    if head[0] != MIGRATION_MAGIC:
        raise BlockMigrationError(
            f"bad migration frame magic {head[0]:#x} for {expected_key}"
        )
    level, got_ndim = head[1], head[2]
    idx = tuple(head[3:3 + ndim])
    if got_ndim != ndim or BlockKey(level, idx) != expected_key:
        raise BlockMigrationError(
            f"migration frame addresses block {BlockKey(level, idx)}, "
            f"expected {expected_key}"
        )
    base = 3 + ndim
    has_pcache = bool(head[base])
    vec = head[base + 1:base + 1 + len(_STATS_FIELDS)]
    shape = tuple(head[base + 1 + len(_STATS_FIELDS):])
    if shape != tuple(expected_shape):
        raise BlockMigrationError(
            f"migration frame for {expected_key} announces cons shape "
            f"{shape}, expected {tuple(expected_shape)}"
        )
    return has_pcache, stats_from_vector(vec)


def check_block_payload(
    arr: np.ndarray,
    expected_shape: tuple[int, ...],
    what: str,
    key: BlockKey,
) -> np.ndarray:
    if tuple(arr.shape) != tuple(expected_shape):
        raise BlockMigrationError(
            f"{what} payload for {key} has shape {tuple(arr.shape)}, "
            f"expected {tuple(expected_shape)}"
        )
    return arr
