"""The AMR forest: leaf bookkeeping, refinement topology, and ghost fill.

Topology is a 2^d-tree over fixed-size blocks (see
:mod:`~repro.mesh.amr.blocks`). Ghost zones of every leaf are filled from
*composite level arrays*: a uniform snapshot of the solution is assembled
per refinement level (coarse levels by restriction of finer leaves, fine
levels by prolongation of the next-coarser composite, leaf footprints
deposited verbatim), and each leaf copies its halo from the composite at
its own level. This handles same-level faces, coarse-fine faces, corners,
and physical walls through a single code path.

Production codes exchange ghosts neighbour-to-neighbour instead; the
composite construction trades asymptotic cost for exactness and simplicity
on this substrate (see DESIGN.md section 2). The *evolved* work — the
quantity the AMR-efficiency experiment counts — is per-leaf only.
"""

from __future__ import annotations

import numpy as np

from ...boundary.conditions import BoundarySet
from ...physics.srhd import SRHDSystem
from ...utils.errors import MeshError
from ..grid import Grid
from .blocks import BlockKey, BlockLayout, LeafBlock
from .transfer import prolong_array, restrict_array


class AMRForest:
    """Leaf set plus refinement topology over a :class:`BlockLayout`."""

    def __init__(self, layout: BlockLayout, max_levels: int = 3):
        if max_levels < 1:
            raise MeshError("max_levels must be >= 1")
        self.layout = layout
        self.max_levels = max_levels  # levels 0 .. max_levels-1
        self.leaves: dict[BlockKey, LeafBlock] = {}
        self.refined: set[BlockKey] = set()

    # -- topology -----------------------------------------------------------

    def is_leaf(self, key: BlockKey) -> bool:
        return key in self.leaves

    def finest_level(self) -> int:
        return max((k.level for k in self.leaves), default=0)

    def n_leaf_cells(self) -> int:
        return len(self.leaves) * self.layout.cells_per_block()

    def add_leaf(self, key: BlockKey, cons: np.ndarray) -> LeafBlock:
        if key in self.leaves or key in self.refined:
            raise MeshError(f"block {key} already present")
        if key.level >= self.max_levels:
            raise MeshError(f"block {key} exceeds max level {self.max_levels - 1}")
        leaf = LeafBlock(key, self.layout.grid_for(key), cons)
        self.leaves[key] = leaf
        return leaf

    def split(self, key: BlockKey, child_cons: dict[BlockKey, np.ndarray]) -> None:
        """Replace leaf *key* by its 2^d children (data supplied by caller)."""
        if key not in self.leaves:
            raise MeshError(f"cannot split non-leaf {key}")
        children = key.children()
        if set(child_cons) != set(children):
            raise MeshError(f"split of {key} must supply all children")
        del self.leaves[key]
        self.refined.add(key)
        for child in children:
            self.add_leaf(child, child_cons[child])

    def merge(self, parent: BlockKey, parent_cons: np.ndarray) -> None:
        """Replace the 2^d children of *parent* by the parent leaf."""
        children = parent.children()
        if not all(c in self.leaves for c in children):
            raise MeshError(f"cannot merge {parent}: children are not all leaves")
        if parent not in self.refined:
            raise MeshError(f"{parent} is not a refined block")
        for c in children:
            del self.leaves[c]
        self.refined.discard(parent)
        self.add_leaf(parent, parent_cons)

    def max_adjacent_level(self, key: BlockKey, axis: int, side: int) -> int | None:
        """Finest leaf level touching face (axis, side) of *key*, or None at
        a domain wall."""
        nbr = key.neighbor(axis, side)
        if not self.layout.in_domain(nbr):
            return None
        # Walk up to the covering ancestor if the same-level key is absent.
        probe = nbr
        while probe.level > 0 and probe not in self.leaves and probe not in self.refined:
            probe = probe.parent()
        if probe in self.leaves:
            return probe.level
        if probe not in self.refined:
            raise MeshError(f"no block covers {nbr}")
        # Descend through refined blocks along the shared face.
        level = probe.level
        frontier = [probe]
        touching_side = 1 - side  # children of the neighbour facing us
        while frontier:
            nxt = []
            for blk in frontier:
                for child in blk.children():
                    if child.child_offset()[axis] != touching_side:
                        continue
                    if child in self.leaves:
                        level = max(level, child.level)
                    elif child in self.refined:
                        nxt.append(child)
            frontier = nxt
        return level

    def is_balanced(self) -> bool:
        """2:1 face balance: adjacent leaves differ by at most one level."""
        for key in self.leaves:
            for axis in range(self.layout.ndim):
                for side in (0, 1):
                    adj = self.max_adjacent_level(key, axis, side)
                    if adj is not None and adj > key.level + 1:
                        return False
        return True

    def unbalanced_leaves(self) -> list[BlockKey]:
        out = []
        for key in self.leaves:
            for axis in range(self.layout.ndim):
                for side in (0, 1):
                    adj = self.max_adjacent_level(key, axis, side)
                    if adj is not None and adj > key.level + 1:
                        out.append(key)
                        break
                else:
                    continue
                break
        return out

    # -- composite levels and ghost fill -----------------------------------------

    def composite_levels(
        self,
        fields: dict[BlockKey, np.ndarray],
        nvars: int,
        system: SRHDSystem,
        wall_bcs: BoundarySet,
        up_to_level: int | None = None,
        partial: bool = False,
    ) -> list[tuple[Grid, np.ndarray]]:
        """Uniform (grid, ghosted-array) snapshots per level, 0..finest.

        *fields* maps every leaf to its ghosted per-leaf array (typically
        primitives); only interiors are consumed.  With ``partial=True``
        leaves absent from *fields* are skipped instead of raising — the
        distributed driver deposits only the blocks a rank owns plus their
        ghost dependencies (see :func:`repro.mesh.amr.exchange.
        ghost_dependencies` for why the filled windows still match the full
        composite bit for bit).
        """
        finest = self.finest_level() if up_to_level is None else up_to_level
        root = self.layout.root_grid
        out: list[tuple[Grid, np.ndarray]] = []
        for level in range(finest + 1):
            grid = root.refined(2**level) if level else root
            arr = grid.allocate(nvars)
            if level == 0:
                # Everything restricted down to the root resolution.
                for key, leaf in self.leaves.items():
                    if partial and key not in fields:
                        continue
                    data = self.layout_interior(fields[key], leaf.grid)
                    for _ in range(key.level):
                        data = restrict_array(data, self.layout.ndim)
                    self._deposit(arr, grid, key, 0, data)
            else:
                prev_grid, prev = out[level - 1]
                # Prolong the previous composite (interior + 1-ring pad).
                g = prev_grid.n_ghost
                pad = tuple(
                    slice(g - 1, g + n + 1) for n in prev_grid.shape
                )
                fine = prolong_array(prev[(slice(None),) + pad], self.layout.ndim)
                grid.interior_of(arr)[...] = fine
                # Overwrite with real data wherever leaves at >= this level live.
                for key, leaf in self.leaves.items():
                    if key.level < level:
                        continue
                    if partial and key not in fields:
                        continue
                    data = self.layout_interior(fields[key], leaf.grid)
                    for _ in range(key.level - level):
                        data = restrict_array(data, self.layout.ndim)
                    self._deposit(arr, grid, key, level, data)
            wall_bcs.apply(system, grid, arr)
            out.append((grid, arr))
        return out

    @staticmethod
    def layout_interior(field: np.ndarray, grid: Grid) -> np.ndarray:
        return grid.interior_of(field)

    def _deposit(
        self, arr: np.ndarray, grid: Grid, key: BlockKey, level: int, data: np.ndarray
    ) -> None:
        """Write block data (already at *level* resolution) into the
        composite array's interior."""
        if level > key.level:
            raise MeshError("deposit data must be at or below the leaf level")
        # Footprint of the block in composite-level cells.
        size = self.layout.block_size // (2 ** (key.level - level))
        g = grid.n_ghost
        idx = [slice(None)]
        for ax in range(self.layout.ndim):
            lo = key.idx[ax] * size
            idx.append(slice(g + lo, g + lo + size))
        arr[tuple(idx)] = data

    def fill_ghosts(
        self,
        fields: dict[BlockKey, np.ndarray],
        nvars: int,
        system: SRHDSystem,
        wall_bcs: BoundarySet,
        only=None,
    ) -> None:
        """Fill every leaf's ghost zones in place from the composites.

        With ``only=<keys>`` just those leaves' ghosts are written (their
        arrays must be in *fields*); other entries of *fields* contribute
        interiors to the composites but are never modified.  The composites
        are then built partially, from exactly the entries present in
        *fields*.
        """
        if only is None:
            composites = self.composite_levels(fields, nvars, system, wall_bcs)
            targets = list(self.leaves)
        else:
            targets = list(only)
            if not targets:
                return
            composites = self.composite_levels(
                fields,
                nvars,
                system,
                wall_bcs,
                up_to_level=max(k.level for k in targets),
                partial=True,
            )
        g = self.layout.n_ghost
        B = self.layout.block_size
        for key in targets:
            leaf = self.leaves[key]
            comp_grid, comp = composites[key.level]
            idx = [slice(None)]
            for ax in range(self.layout.ndim):
                lo = key.idx[ax] * B  # block origin in level interior cells
                # Copy footprint +- g (ghosted block) from the composite,
                # whose own ghosts cover the domain boundary overhang.
                idx.append(slice(lo, lo + B + 2 * g))
            block_view = comp[tuple(idx)]
            # Preserve the leaf interior (it is the authoritative data).
            interior = leaf.grid.interior_of(fields[key]).copy()
            fields[key][...] = block_view
            leaf.grid.interior_of(fields[key])[...] = interior
