"""Space-filling-curve partitioning of AMR leaves across ranks.

The Dendro-family frameworks owe their scalability to Morton (Z-order)
traversal of the octree: sorting leaves along the curve and cutting it into
equal-work segments yields partitions that are simultaneously
load-balanced and *spatially compact* (small surface area => small halo
traffic). This module implements Morton keys for :class:`BlockKey`
addresses, the SFC partitioner, and the two baselines the comparison
experiment (E14) evaluates against: round-robin and random assignment.

Partition quality metrics:

- ``imbalance`` — max rank work / mean rank work (1.0 is perfect);
- ``edge_cut`` — leaf-face adjacencies whose endpoints live on different
  ranks (each is a halo message per exchange);
- ``comm_volume`` — total cells crossing rank boundaries per exchange.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...utils.errors import MeshError
from .blocks import BlockKey
from .forest import AMRForest


def morton_key(key: BlockKey, max_level: int) -> int:
    """Z-order index of a block, comparable across levels.

    Coordinates are normalized to the finest level (each block is mapped to
    the position of its first descendant at ``max_level``), then bits are
    interleaved; the level is appended as a tiebreaker so ancestors sort
    immediately before their descendants.
    """
    shift = max_level - key.level
    if shift < 0:
        raise MeshError(f"block level {key.level} exceeds max_level {max_level}")
    coords = [i << shift for i in key.idx]
    nbits = max_level + max(int(np.ceil(np.log2(max(max(coords), 1) + 1))), 1)
    code = 0
    ndim = len(coords)
    for bit in range(nbits):
        for d, c in enumerate(coords):
            code |= ((c >> bit) & 1) << (bit * ndim + d)
    return (code << 6) | key.level  # 6 bits of level tiebreak


def sfc_order(keys, max_level: int | None = None) -> list[BlockKey]:
    """Leaves sorted along the Morton curve."""
    keys = list(keys)
    if not keys:
        return []
    ml = max_level if max_level is not None else max(k.level for k in keys)
    return sorted(keys, key=lambda k: morton_key(k, ml))


@dataclass(frozen=True)
class Partition:
    """An assignment of leaves to ranks plus its quality metrics."""

    assignment: dict  # BlockKey -> rank
    n_ranks: int
    imbalance: float
    edge_cut: int
    comm_volume: int

    def rank_of(self, key: BlockKey) -> int:
        return self.assignment[key]


def _measure(forest: AMRForest, assignment: dict, n_ranks: int,
             work: dict | None = None) -> Partition:
    cells = forest.layout.cells_per_block()
    work = work or {k: cells for k in forest.leaves}
    loads = np.zeros(n_ranks)
    for key, rank in assignment.items():
        loads[rank] += work[key]
    imbalance = float(loads.max() / loads.mean()) if loads.mean() > 0 else 1.0

    edge_cut = 0
    comm_volume = 0
    B = forest.layout.block_size
    face_cells = B ** (forest.layout.ndim - 1)
    for key in forest.leaves:
        for axis in range(forest.layout.ndim):
            for side in (0, 1):
                for nbr in _adjacent_leaves(forest, key, axis, side):
                    if assignment[nbr] != assignment[key]:
                        edge_cut += 1
                        comm_volume += face_cells
    # Each adjacency was visited from both endpoints.
    return Partition(
        assignment=assignment,
        n_ranks=n_ranks,
        imbalance=imbalance,
        edge_cut=edge_cut // 2,
        comm_volume=comm_volume // 2,
    )


def _adjacent_leaves(forest: AMRForest, key: BlockKey, axis: int, side: int):
    """Leaves sharing face (axis, side) with *key* (any level)."""
    nbr = key.neighbor(axis, side)
    if not forest.layout.in_domain(nbr):
        return
    probe = nbr
    while probe.level > 0 and probe not in forest.leaves and probe not in forest.refined:
        probe = probe.parent()
    if probe in forest.leaves:
        yield probe
        return
    if probe not in forest.refined:
        raise MeshError(f"no block covers {nbr}")
    touching = 1 - side
    frontier = [probe]
    while frontier:
        nxt = []
        for blk in frontier:
            for child in blk.children():
                if child.child_offset()[axis] != touching:
                    continue
                if child in forest.leaves:
                    yield child
                elif child in forest.refined:
                    nxt.append(child)
        frontier = nxt


def partition_sfc(forest: AMRForest, n_ranks: int, work: dict | None = None) -> Partition:
    """Morton-order partition: cut the curve into equal-work segments."""
    if n_ranks < 1:
        raise MeshError("need at least one rank")
    cells = forest.layout.cells_per_block()
    work = work or {k: cells for k in forest.leaves}
    ordered = sfc_order(forest.leaves)
    total = sum(work[k] for k in ordered)
    target = total / n_ranks
    assignment = {}
    rank, acc = 0, 0.0
    for key in ordered:
        assignment[key] = rank
        acc += work[key]
        # Advance to the next rank once its quota fills (keep the last rank
        # open so every leaf lands somewhere).
        if acc >= target * (rank + 1) and rank < n_ranks - 1:
            rank += 1
    return _measure(forest, assignment, n_ranks, work)


def partition_round_robin(forest: AMRForest, n_ranks: int) -> Partition:
    """Leaves dealt to ranks in dictionary order — balanced but scattered."""
    if n_ranks < 1:
        raise MeshError("need at least one rank")
    assignment = {
        key: i % n_ranks
        for i, key in enumerate(sorted(forest.leaves, key=lambda k: (k.level, k.idx)))
    }
    return _measure(forest, assignment, n_ranks)


def partition_random(forest: AMRForest, n_ranks: int, seed: int = 0) -> Partition:
    """Uniform random assignment — the no-structure baseline."""
    if n_ranks < 1:
        raise MeshError("need at least one rank")
    rng = np.random.default_rng(seed)
    keys = sorted(forest.leaves, key=lambda k: (k.level, k.idx))
    assignment = {key: int(rng.integers(0, n_ranks)) for key in keys}
    return _measure(forest, assignment, n_ranks)


PARTITIONERS = {
    "sfc": partition_sfc,
    "round-robin": lambda forest, n: partition_round_robin(forest, n),
    "random": lambda forest, n: partition_random(forest, n),
}
