"""Flux correction (refluxing) at coarse-fine AMR interfaces.

Without correction, the flux a coarse leaf computes through a face shared
with finer leaves differs from the (more accurate) area-averaged fine flux,
so mass/momentum/energy leak at refinement boundaries.  Refluxing replaces
the coarse face flux with the restriction of the fine fluxes in the coarse
cell's update — the Berger-Colella fix, applied here per RK stage (the
evolution is not subcycled, so no time-averaging of fine fluxes is needed).

For the coarse cell column adjacent to the face:

    side = 1 (high):  dU_edge -= (avg(F_fine) - F_coarse) / dx
    side = 0 (low):   dU_edge += (avg(F_fine) - F_coarse) / dx
"""

from __future__ import annotations

from itertools import product

import numpy as np

from ...utils.errors import MeshError
from .blocks import BlockKey
from .forest import AMRForest
from .transfer import restrict_array


def _restrict_face(face: np.ndarray, n_transverse_dims: int) -> np.ndarray:
    """Average 2^k fine face values per coarse face (k transverse dims)."""
    if n_transverse_dims == 0:
        return face
    return restrict_array(face, n_transverse_dims)


def fine_face_flux(
    forest: AMRForest,
    fluxes: dict[BlockKey, dict[int, np.ndarray]],
    coarse_key: BlockKey,
    axis: int,
    side: int,
    remote_faces: dict | None = None,
) -> np.ndarray | None:
    """Restricted fine flux through face (axis, side) of *coarse_key*.

    Returns None when the neighbour is not refined (no correction needed).
    *fluxes* maps each leaf to its per-axis face-flux arrays (shape
    ``(nvars, *transverse_interior, n+1)``, face index last).  In the
    distributed driver, face columns of children owned by other ranks
    arrive pre-sliced in *remote_faces* keyed by ``(child, axis)``.
    """
    nbr = coarse_key.neighbor(axis, side)
    if not forest.layout.in_domain(nbr) or nbr not in forest.refined:
        return None
    ndim = forest.layout.ndim
    B = forest.layout.block_size
    trans_axes = [ax for ax in range(ndim) if ax != axis]
    touching = 1 - side  # the children of nbr facing us

    probe = next(iter(fluxes.values()), None)
    nvars = (
        probe[axis].shape[0]
        if probe is not None
        else next(iter(remote_faces.values())).shape[0]
    )
    out = np.empty((nvars,) + (B,) * len(trans_axes))
    for child in nbr.children():
        off = child.child_offset()
        if off[axis] != touching:
            continue
        if child not in forest.leaves:
            raise MeshError(
                f"2:1 balance violated: {child} borders {coarse_key} but is "
                "not a leaf"
            )
        if child in fluxes:
            face_col = 0 if touching == 0 else B
            child_face = fluxes[child][axis][..., face_col]
        else:
            child_face = remote_faces[(child, axis)]
        reduced = _restrict_face(child_face, len(trans_axes))
        sel = [slice(None)]
        for t_ax in trans_axes:
            o = off[t_ax]
            sel.append(slice(o * B // 2, (o + 1) * B // 2))
        out[tuple(sel)] = reduced
    return out


def apply_reflux(
    forest: AMRForest,
    fluxes: dict[BlockKey, dict[int, np.ndarray]],
    dU: dict[BlockKey, np.ndarray],
    remote_faces: dict | None = None,
    only=None,
) -> int:
    """Correct every coarse leaf's dU at faces shared with finer leaves.

    *dU* arrays are full ghosted right-hand sides, modified in place.
    Returns the number of faces corrected (useful for diagnostics/tests).
    The distributed driver restricts the sweep to its own coarse leaves
    (*only*) and supplies imported fine-face columns via *remote_faces*.
    """
    ndim = forest.layout.ndim
    corrected = 0
    keys = forest.leaves if only is None else only
    for key in keys:
        leaf = forest.leaves[key]
        for axis in range(ndim):
            for side in (0, 1):
                fine = fine_face_flux(
                    forest, fluxes, key, axis, side, remote_faces
                )
                if fine is None:
                    continue
                coarse_faces = fluxes[key][axis]
                col = coarse_faces.shape[-1] - 1 if side == 1 else 0
                delta = (fine - coarse_faces[..., col]) / leaf.grid.dx[axis]
                # Edge-cell column of the interior along *axis*.
                interior = leaf.grid.interior_of(dU[key])
                moved = np.moveaxis(interior, axis + 1, -1)
                if side == 1:
                    moved[..., -1] -= delta
                else:
                    moved[..., 0] += delta
                corrected += 1
    return corrected
