"""Inter-level data transfer: conservative prolongation and restriction.

- :func:`restrict_array` — fine -> coarse by 2^d-cell averaging (exactly
  conservative for cell averages).
- :func:`prolong_array` — coarse -> fine by slope-limited (minmod) piecewise
  linear interpolation; each coarse cell's children average back to the
  parent value, so prolongation is conservative and non-oscillatory.

Both operate on plain arrays with an optional leading variable axis and are
dimension-generic (1-D/2-D/3-D) via per-axis passes.
"""

from __future__ import annotations

import numpy as np

from ...utils.errors import MeshError
from ..grid import Grid


def restrict_array(fine: np.ndarray, ndim: int) -> np.ndarray:
    """Average 2^ndim fine cells into each coarse cell.

    *fine* has shape ``([nvars,] n_0, ..., n_{ndim-1})`` with every grid
    extent even.
    """
    extra = fine.ndim - ndim
    if extra not in (0, 1):
        raise MeshError(f"array rank {fine.ndim} incompatible with ndim {ndim}")
    for ax in range(extra, fine.ndim):
        if fine.shape[ax] % 2 != 0:
            raise MeshError(f"fine extent {fine.shape[ax]} along axis {ax} is odd")
    out = fine
    for ax in range(extra, extra + ndim):
        shape = list(out.shape)
        shape[ax] //= 2
        shape.insert(ax + 1, 2)
        out = out.reshape(shape).mean(axis=ax + 1)
    return out


def _minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.where(a * b > 0.0, np.where(np.abs(a) < np.abs(b), a, b), 0.0)


def prolong_array(coarse: np.ndarray, ndim: int) -> np.ndarray:
    """Interpolate each coarse cell into its 2^ndim children.

    Uses minmod-limited central slopes per axis; child values are
    ``parent +- slope/4`` so each parent's children average to the parent.
    The one-cell boundary ring of the input is consumed for slopes: the
    output covers only the *interior* of the input (input extent n gives
    output extent 2(n-2) per grid axis). Callers pass a strip padded by one
    cell on each side.
    """
    extra = coarse.ndim - ndim
    if extra not in (0, 1):
        raise MeshError(f"array rank {coarse.ndim} incompatible with ndim {ndim}")
    out = coarse
    for ax in range(extra, extra + ndim):
        n = out.shape[ax]
        if n < 3:
            raise MeshError(
                f"need >= 3 cells along axis {ax} for slopes, got {n}"
            )
        sl = [slice(None)] * out.ndim

        def take(a, b):
            sl[ax] = slice(a, b)
            return out[tuple(sl)]

        center = take(1, n - 1)
        slope = _minmod(center - take(0, n - 2), take(2, n) - center)
        lo = center - 0.25 * slope
        hi = center + 0.25 * slope
        # Interleave children along this axis: shape doubles (minus ring).
        stacked = np.stack([lo, hi], axis=ax + 1)
        shape = list(center.shape)
        shape[ax] *= 2
        out = stacked.reshape(shape)
    return out


def prolong_to_children(coarse_interior: np.ndarray, ndim: int) -> np.ndarray:
    """Prolong a full block interior (padded by 1 ghost ring on each side).

    Convenience wrapper documenting the padding contract: the input must be
    the block interior plus exactly one ghost layer per side; the output is
    the refined interior (2x extent per axis).
    """
    return prolong_array(coarse_interior, ndim)


def conservation_check(coarse: np.ndarray, fine: np.ndarray, ndim: int) -> float:
    """Mismatch between coarse cells and their children's mean, normalized by
    the global data scale (per-cell normalization would amplify pure
    floating-point absorption in near-zero cells)."""
    back = restrict_array(fine, ndim)
    extra = coarse.ndim - ndim
    sl = (slice(None),) * extra + (slice(1, -1),) * ndim
    ref = coarse[sl]
    scale = max(float(np.max(np.abs(coarse))), 1e-30)
    return float(np.max(np.abs(back - ref))) / scale
