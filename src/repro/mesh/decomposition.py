"""Cartesian domain decomposition of a global grid across ranks.

Mirrors the MPI Cartesian-topology pattern (``MPI_Cart_create``): ranks are
laid out on a process grid, each owns a contiguous interior block of the
global grid (with its own ghost layers), and neighbour lookup follows the
torus/boundary rules per axis.
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import MeshError
from .grid import Grid


def balanced_split(n_cells: int, n_parts: int) -> list[tuple[int, int]]:
    """Split ``n_cells`` into ``n_parts`` contiguous near-equal ranges.

    The first ``n_cells % n_parts`` parts get one extra cell — the standard
    balanced block distribution.
    """
    if n_parts < 1 or n_cells < n_parts:
        raise MeshError(f"cannot split {n_cells} cells into {n_parts} parts")
    base, extra = divmod(n_cells, n_parts)
    ranges = []
    start = 0
    for p in range(n_parts):
        size = base + (1 if p < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def choose_dims(n_ranks: int, ndim: int) -> tuple[int, ...]:
    """Near-cubic process-grid dimensions for *n_ranks* (MPI_Dims_create)."""
    dims = [1] * ndim
    remaining = n_ranks
    # Greedily peel off the largest factor for the least-loaded axis.
    factor = 2
    factors = []
    while remaining > 1:
        while remaining % factor == 0:
            factors.append(factor)
            remaining //= factor
        factor += 1
    for f in sorted(factors, reverse=True):
        dims[int(np.argmin(dims))] *= f
    return tuple(sorted(dims, reverse=True))


class CartesianDecomposition:
    """Block decomposition of a global :class:`Grid` over a process grid.

    Parameters
    ----------
    global_grid:
        The full-domain grid (its ghost count is inherited by every rank).
    dims:
        Process-grid shape, e.g. ``(4, 2)`` for 8 ranks in 2-D. Use
        :func:`choose_dims` for an automatic near-cubic layout.
    periodic:
        Per-axis periodicity flags for neighbour lookup.
    """

    def __init__(self, global_grid: Grid, dims, periodic=None):
        dims = tuple(int(d) for d in np.atleast_1d(dims))
        if len(dims) != global_grid.ndim:
            raise MeshError(
                f"dims rank {len(dims)} != grid rank {global_grid.ndim}"
            )
        self.global_grid = global_grid
        self.dims = dims
        self.size = int(np.prod(dims))
        self.periodic = tuple(
            bool(p) for p in (periodic if periodic is not None else [False] * len(dims))
        )
        self._splits = [
            balanced_split(n, d) for n, d in zip(global_grid.shape, dims)
        ]

    # -- rank <-> coordinates ----------------------------------------------

    def rank_coords(self, rank: int) -> tuple[int, ...]:
        """Process-grid coordinates of *rank* (row-major order)."""
        if not 0 <= rank < self.size:
            raise MeshError(f"rank {rank} out of range [0, {self.size})")
        return tuple(int(c) for c in np.unravel_index(rank, self.dims))

    def coords_rank(self, coords) -> int:
        return int(np.ravel_multi_index(tuple(coords), self.dims))

    # -- geometry -----------------------------------------------------------

    def cell_range(self, rank: int, axis: int) -> tuple[int, int]:
        """Global interior cell range [lo, hi) owned by *rank* along *axis*."""
        return self._splits[axis][self.rank_coords(rank)[axis]]

    def subgrid(self, rank: int) -> Grid:
        """The local grid patch (with ghosts) owned by *rank*."""
        coords = self.rank_coords(rank)
        lo = tuple(self._splits[ax][c][0] for ax, c in enumerate(coords))
        hi = tuple(self._splits[ax][c][1] for ax, c in enumerate(coords))
        return self.global_grid.subgrid(lo, hi)

    def local_cells(self, rank: int) -> int:
        return self.subgrid(rank).n_cells

    def neighbor(self, rank: int, axis: int, side: int) -> int | None:
        """Neighbouring rank across face (axis, side), or None at a wall."""
        coords = list(self.rank_coords(rank))
        coords[axis] += 1 if side == 1 else -1
        if not 0 <= coords[axis] < self.dims[axis]:
            if not self.periodic[axis]:
                return None
            coords[axis] %= self.dims[axis]
        return self.coords_rank(coords)

    def halo_cells(self, rank: int, axis: int) -> int:
        """Cells in one ghost slab exchanged across faces along *axis*."""
        sub = self.subgrid(rank)
        transverse = sub.n_cells // sub.shape[axis]
        return transverse * sub.n_ghost

    # -- global assembly ------------------------------------------------------

    def scatter(self, global_field: np.ndarray) -> dict[int, np.ndarray]:
        """Split a global interior field (nvars, *shape) into per-rank interiors."""
        if global_field.shape[1:] != self.global_grid.shape:
            raise MeshError(
                f"field shape {global_field.shape[1:]} != "
                f"{self.global_grid.shape}"
            )
        parts = {}
        for rank in range(self.size):
            coords = self.rank_coords(rank)
            idx = tuple(
                slice(*self._splits[ax][c]) for ax, c in enumerate(coords)
            )
            parts[rank] = global_field[(slice(None),) + idx].copy()
        return parts

    def gather(self, parts: dict[int, np.ndarray], nvars: int) -> np.ndarray:
        """Reassemble per-rank interior fields into the global interior."""
        out = np.empty((nvars,) + self.global_grid.shape)
        for rank in range(self.size):
            coords = self.rank_coords(rank)
            idx = tuple(
                slice(*self._splits[ax][c]) for ax, c in enumerate(coords)
            )
            out[(slice(None),) + idx] = parts[rank]
        return out

    def __repr__(self):
        return (
            f"CartesianDecomposition(dims={self.dims}, "
            f"global={self.global_grid.shape}, periodic={self.periodic})"
        )
