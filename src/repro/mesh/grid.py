"""Uniform cell-centered grids with ghost zones (1-D/2-D/3-D).

A :class:`Grid` describes the index space only; field data lives in plain
NumPy arrays of shape ``(nvars, *grid.shape_with_ghosts)`` so kernels stay
vectorized and allocation-free (views, not copies — per the hpc-parallel
guides).
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import MeshError


class Grid:
    """A uniform cell-centered grid patch with ghost cells on every face.

    Parameters
    ----------
    shape:
        Interior cells per dimension, e.g. ``(400,)`` or ``(128, 128)``.
    bounds:
        Physical extents per dimension, ``((x0, x1), (y0, y1), ...)``.
    n_ghost:
        Ghost-cell layers on each face (must cover the reconstruction
        stencil: 1 for PC, 2 for TVD, 3 for PPM/WENO5).
    """

    def __init__(self, shape, bounds, n_ghost: int = 3):
        shape = tuple(int(n) for n in np.atleast_1d(shape))
        bounds = tuple(tuple(map(float, b)) for b in np.atleast_2d(bounds))
        if len(shape) != len(bounds):
            raise MeshError(f"shape {shape} and bounds {bounds} rank mismatch")
        if any(n < 1 for n in shape):
            raise MeshError(f"grid shape must be positive, got {shape}")
        if any(b1 <= b0 for b0, b1 in bounds):
            raise MeshError(f"degenerate bounds {bounds}")
        if n_ghost < 1:
            raise MeshError("need at least one ghost layer")
        self.shape = shape
        self.bounds = bounds
        self.n_ghost = int(n_ghost)
        self.ndim = len(shape)
        self.dx = tuple((b1 - b0) / n for (b0, b1), n in zip(bounds, shape))

    # -- derived geometry ----------------------------------------------------

    @property
    def shape_with_ghosts(self) -> tuple[int, ...]:
        return tuple(n + 2 * self.n_ghost for n in self.shape)

    @property
    def n_cells(self) -> int:
        """Number of interior cells."""
        return int(np.prod(self.shape))

    @property
    def cell_volume(self) -> float:
        return float(np.prod(self.dx))

    @property
    def min_dx(self) -> float:
        return min(self.dx)

    def coords(self, axis: int) -> np.ndarray:
        """Interior cell-center coordinates along *axis*."""
        b0, _ = self.bounds[axis]
        n = self.shape[axis]
        return b0 + (np.arange(n) + 0.5) * self.dx[axis]

    def coords_with_ghosts(self, axis: int) -> np.ndarray:
        """Cell-center coordinates along *axis*, including ghost cells."""
        b0, _ = self.bounds[axis]
        g = self.n_ghost
        n = self.shape[axis]
        return b0 + (np.arange(-g, n + g) + 0.5) * self.dx[axis]

    def face_coords(self, axis: int) -> np.ndarray:
        """Interior face coordinates along *axis* (n+1 values)."""
        b0, _ = self.bounds[axis]
        return b0 + np.arange(self.shape[axis] + 1) * self.dx[axis]

    # -- slicing helpers -------------------------------------------------------

    @property
    def interior(self) -> tuple[slice, ...]:
        """Slices selecting interior cells of a ghosted array."""
        g = self.n_ghost
        return tuple(slice(g, g + n) for n in self.shape)

    def interior_of(self, array: np.ndarray) -> np.ndarray:
        """View of the interior cells of a (nvars, ...) or plain ghosted array."""
        extra = array.ndim - self.ndim
        if extra not in (0, 1):
            raise MeshError(
                f"array rank {array.ndim} incompatible with grid rank {self.ndim}"
            )
        idx = (slice(None),) * extra + self.interior
        return array[idx]

    def allocate(self, nvars: int, fill: float = 0.0) -> np.ndarray:
        """Allocate a ghosted state array of shape (nvars, *shape_with_ghosts)."""
        arr = np.empty((nvars,) + self.shape_with_ghosts, dtype=float)
        arr.fill(fill)
        return arr

    # -- refinement -------------------------------------------------------------

    def refined(self, factor: int = 2) -> "Grid":
        """A grid covering the same region with *factor*x cells per dimension."""
        return Grid(
            tuple(n * factor for n in self.shape), self.bounds, self.n_ghost
        )

    def subgrid(self, lo_idx, hi_idx) -> "Grid":
        """Grid covering interior index block [lo, hi) of this grid."""
        lo_idx = tuple(int(i) for i in np.atleast_1d(lo_idx))
        hi_idx = tuple(int(i) for i in np.atleast_1d(hi_idx))
        if len(lo_idx) != self.ndim or len(hi_idx) != self.ndim:
            raise MeshError("index rank mismatch")
        for lo, hi, n in zip(lo_idx, hi_idx, self.shape):
            if not 0 <= lo < hi <= n:
                raise MeshError(f"index block [{lo_idx}, {hi_idx}) outside grid")
        bounds = tuple(
            (b0 + lo * dx, b0 + hi * dx)
            for (b0, _), dx, lo, hi in zip(self.bounds, self.dx, lo_idx, hi_idx)
        )
        shape = tuple(hi - lo for lo, hi in zip(lo_idx, hi_idx))
        return Grid(shape, bounds, self.n_ghost)

    def __eq__(self, other):
        return (
            isinstance(other, Grid)
            and self.shape == other.shape
            and self.bounds == other.bounds
            and self.n_ghost == other.n_ghost
        )

    def __hash__(self):
        return hash((self.shape, self.bounds, self.n_ghost))

    def __repr__(self):
        return f"Grid(shape={self.shape}, bounds={self.bounds}, n_ghost={self.n_ghost})"
