"""Observability layer: metrics instruments and structured JSONL events.

Every hot layer of the code reports through this package — con2prim
convergence counters, atmosphere resets, face-state sanitizations, kernel
wall times, halo traffic — and every solver driver can stream one
self-contained JSON record per step via :class:`StepRecorder`. The
simulated heterogeneous runtime exports its modelled timelines in the same
schema (:func:`repro.runtime.trace.to_metrics_records`), so measured and
modelled runs are directly comparable.
"""

from .events import (
    SCHEMA_VERSION,
    BufferSink,
    EventSink,
    JsonlEventSink,
    TeeSink,
    canonical_stream,
    read_events,
    steps_of,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_deltas,
    merge_histogram_summaries,
    summary_quantile,
)
from .recorder import StepRecorder

__all__ = [
    "SCHEMA_VERSION",
    "BufferSink",
    "Counter",
    "EventSink",
    "Gauge",
    "Histogram",
    "JsonlEventSink",
    "MetricsRegistry",
    "StepRecorder",
    "TeeSink",
    "canonical_stream",
    "counter_deltas",
    "merge_histogram_summaries",
    "summary_quantile",
    "read_events",
    "steps_of",
]
