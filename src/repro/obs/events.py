"""Structured JSONL event stream: the export format of the metrics layer.

One JSON object per line, every record carrying ``schema`` (version),
``event`` (record kind) and ``source`` (``"measured"`` for wall-clock runs,
``"modelled"`` for the simulated heterogeneous runtime — identical schema so
the two are directly comparable). Record kinds:

``run_start``
    Run metadata (problem, grid, scheme, ranks, ...).
``step``
    One solver step: ``step``, ``t``, ``dt``, ``wall_seconds``, per-kernel
    ``kernel_seconds`` deltas, per-counter ``counters`` deltas, current
    ``gauges``, plus driver-specific extras (halo bytes, leaf counts).
``run_end``
    Cumulative totals for the whole run.
"""

from __future__ import annotations

import json

from ..utils.errors import ConfigurationError

#: version stamp written into every record
SCHEMA_VERSION = 1


class EventSink:
    """Destination for structured event records."""

    def emit(self, record: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resource (idempotent)."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BufferSink(EventSink):
    """In-memory sink: records accumulate on :attr:`records`."""

    def __init__(self):
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)


class JsonlEventSink(EventSink):
    """Append events to a JSONL file, one record per line, flushed eagerly
    so a crashed run still leaves every completed step on disk."""

    def __init__(self, path):
        self.path = path
        self._fh = open(path, "w")

    def emit(self, record: dict) -> None:
        if self._fh is None:
            raise ConfigurationError(f"event sink {self.path!r} already closed")
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class TeeSink(EventSink):
    """Fan one event stream out to several sinks."""

    def __init__(self, *sinks: EventSink):
        self.sinks = sinks

    def emit(self, record: dict) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_events(path) -> list[dict]:
    """Load a JSONL metrics file back into a list of records."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def steps_of(records) -> list[dict]:
    """The ``step`` records of an event stream, in order."""
    return [r for r in records if r.get("event") == "step"]


#: metric-name suffixes that mark wall-clock-derived values (never stable
#: run to run, so excluded from golden streams)
_TIMING_SUFFIXES = ("_s", "_seconds", "_frac")

#: metric-name prefixes that describe the transport substrate rather than
#: the numerics (e.g. real shared-memory bytes/waits of the process
#: backend, modelled distributed-AMR ghost traffic, or the supervisor's
#: failure/recovery accounting) — excluded so serial, process, and
#: fault-recovered streams canonicalize equal
_SUBSTRATE_PREFIXES = ("comm.shm.", "comm.amr.", "supervision.")

#: exact metric names with the same substrate character (a recovered run
#: must canonicalize byte-identical to a fault-free one; rank counts and
#: rebalance bookkeeping describe how the forest was executed, not what
#: it computed, so an N-rank distributed-AMR stream canonicalizes equal
#: to the serial one)
_SUBSTRATE_NAMES = frozenset(
    {
        "resilience.worker_restarts",
        "amr.imbalance",
        "amr.migrated_blocks",
        "amr.repartitions",
    }
)

#: non-step event kinds describing the execution substrate, dropped from
#: the canonical projection entirely
_SUBSTRATE_EVENTS = frozenset({"supervision", "amr_rebalance"})

#: the executor-independent part of a step record's ``amr`` block — the
#: distributed extras (imbalance, migrations, per-rank block counts) are
#: projected away for the same reason as the substrate metrics above
_AMR_CANONICAL_KEYS = ("n_leaves", "cells_updated", "regrids", "leaves_by_level")


def _is_timing_metric(name: str) -> bool:
    return (
        name.endswith(_TIMING_SUFFIXES)
        or name.startswith(_SUBSTRATE_PREFIXES)
        or name in _SUBSTRATE_NAMES
    )


def _filter_metrics(mapping: dict) -> dict:
    return {k: v for k, v in mapping.items() if not _is_timing_metric(k)}


def canonical_stream(records) -> str:
    """Deterministic JSONL projection of an event stream for golden tests.

    Keeps everything that is a pure function of the numerics — the
    ``run_start`` metadata, per-step ``step``/``t``/``dt``, counter deltas,
    gauges, histogram summaries, and the ``comm`` byte accounting — and
    drops every wall-clock-derived field: ``wall_seconds``,
    ``kernel_seconds``, and any metric whose name ends in ``_s``,
    ``_seconds``, or ``_frac``.  Substrate records are dropped too:
    ``supervision`` events, ``supervision.*`` counters and
    ``resilience.worker_restarts`` describe how the run was executed and
    recovered, not what it computed, so a supervised run that survived a
    rank failure canonicalizes identical to a fault-free one.  The
    distributed-AMR bookkeeping (``amr_rebalance`` events, ``amr.imbalance``
    and migration counters, per-rank block counts) is dropped the same way:
    an N-rank run canonicalizes identical to the serial forest.  Rendered
    with sorted keys, the result is
    byte-stable across runs of the same build, so committed fixtures catch
    metric renames, schema drift, and numerical regressions loudly.
    """
    lines = []
    for r in records:
        event = r.get("event")
        if event in _SUBSTRATE_EVENTS:
            continue
        if event == "step":
            proj = {
                "schema": r.get("schema"),
                "event": event,
                "source": r.get("source"),
                "step": r.get("step"),
                "t": r.get("t"),
                "dt": r.get("dt"),
                "counters": _filter_metrics(r.get("counters", {})),
                "gauges": _filter_metrics(r.get("gauges", {})),
                "histograms": _filter_metrics(r.get("histograms", {})),
            }
            if "comm" in r:
                proj["comm"] = r["comm"]
            if "amr" in r:
                proj["amr"] = {
                    k: r["amr"][k] for k in _AMR_CANONICAL_KEYS if k in r["amr"]
                }
        else:
            proj = {
                k: v
                for k, v in r.items()
                if k not in ("wall_seconds", "kernel_seconds_total")
                and not (isinstance(v, (int, float)) and _is_timing_metric(k))
            }
            if "counters_total" in proj:
                proj["counters_total"] = _filter_metrics(proj["counters_total"])
        lines.append(json.dumps(proj, sort_keys=True))
    return "\n".join(lines) + "\n"
