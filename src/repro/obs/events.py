"""Structured JSONL event stream: the export format of the metrics layer.

One JSON object per line, every record carrying ``schema`` (version),
``event`` (record kind) and ``source`` (``"measured"`` for wall-clock runs,
``"modelled"`` for the simulated heterogeneous runtime — identical schema so
the two are directly comparable). Record kinds:

``run_start``
    Run metadata (problem, grid, scheme, ranks, ...).
``step``
    One solver step: ``step``, ``t``, ``dt``, ``wall_seconds``, per-kernel
    ``kernel_seconds`` deltas, per-counter ``counters`` deltas, current
    ``gauges``, plus driver-specific extras (halo bytes, leaf counts).
``run_end``
    Cumulative totals for the whole run.
"""

from __future__ import annotations

import json

from ..utils.errors import ConfigurationError

#: version stamp written into every record
SCHEMA_VERSION = 1


class EventSink:
    """Destination for structured event records."""

    def emit(self, record: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resource (idempotent)."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BufferSink(EventSink):
    """In-memory sink: records accumulate on :attr:`records`."""

    def __init__(self):
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)


class JsonlEventSink(EventSink):
    """Append events to a JSONL file, one record per line, flushed eagerly
    so a crashed run still leaves every completed step on disk."""

    def __init__(self, path):
        self.path = path
        self._fh = open(path, "w")

    def emit(self, record: dict) -> None:
        if self._fh is None:
            raise ConfigurationError(f"event sink {self.path!r} already closed")
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class TeeSink(EventSink):
    """Fan one event stream out to several sinks."""

    def __init__(self, *sinks: EventSink):
        self.sinks = sinks

    def emit(self, record: dict) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_events(path) -> list[dict]:
    """Load a JSONL metrics file back into a list of records."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def steps_of(records) -> list[dict]:
    """The ``step`` records of an event stream, in order."""
    return [r for r in records if r.get("event") == "step"]
