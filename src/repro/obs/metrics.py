"""Metrics primitives: counters, gauges, histograms, and a registry.

The observability layer every hot path reports through. Three instrument
kinds cover the measurement needs of a CLUSTER-style systems study:

- :class:`Counter` — monotone totals (cells recovered, bytes sent, cells
  floored to atmosphere);
- :class:`Gauge` — last-written values (current dt, deepest Newton
  iteration count of the latest sweep);
- :class:`Histogram` — streaming min/max/mean/count plus log-spaced
  buckets over observations (per-step dt, per-sweep Newton iteration
  maxima, message sizes), so tail quantiles (p50/p99) survive without
  storing samples.

A :class:`MetricsRegistry` names and owns instruments; snapshots are plain
dicts so per-step *deltas* (what the structured-event recorder emits) are a
dictionary subtraction away.

Histogram summaries are *mergeable*: bucket counts are integers, so
combining per-rank summaries with :func:`merge_histogram_summaries`
reproduces exactly the summary a single shared registry would have
produced — the property the process executor's bit-exactness contract
rests on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..utils.errors import ConfigurationError

#: log2 bucket resolution: 4 buckets per octave keeps any quantile's
#: bucket-edge representative within ~19% of the true sample value.
BUCKETS_PER_OCTAVE = 4


def bucket_index(value: float) -> int:
    """Bucket of a positive observation: smallest i with 2**(i/B) >= value."""
    return math.ceil(BUCKETS_PER_OCTAVE * math.log2(value))


def bucket_edge(index: int) -> float:
    """Upper edge (inclusive) of bucket *index*."""
    return 2.0 ** (index / BUCKETS_PER_OCTAVE)


def empty_histogram_summary() -> dict:
    return {
        "count": 0,
        "sum": 0.0,
        "min": 0.0,
        "max": 0.0,
        "mean": 0.0,
        "p50": 0.0,
        "p99": 0.0,
        "nonpos": 0,
        "buckets": {},
    }


def _normalize_buckets(buckets: dict) -> dict[int, int]:
    """Bucket counts keyed by int index, summing int/str key collisions.

    Bucket keys may be ints (live registry) or strings (JSON round-trip) —
    or *both at once*, e.g. a live registry summary merged with one read
    back from a JSONL stream.  Key collisions (``3`` and ``"3"``) are
    summed so no sample is dropped.
    """
    out: dict[int, int] = {}
    for k, v in buckets.items():
        idx = int(k)
        out[idx] = out.get(idx, 0) + v
    return out


def _quantile(
    q: float, count: int, nonpos: int, buckets: dict, vmin: float, vmax: float
) -> float:
    """The q-quantile as a bucket upper edge, clamped to [vmin, vmax].

    Observations <= 0 (the ``nonpos`` bucket) sort below every log bucket
    and are represented by the sample minimum.  Bucket keys are normalized
    up front (see :func:`_normalize_buckets`), so summaries holding a mix
    of int and str keys for the same index count every sample exactly once.
    """
    if count <= 0:
        return 0.0
    normalized = _normalize_buckets(buckets)
    rank = min(max(math.ceil(q * count), 1), count)
    if rank <= nonpos:
        return min(vmin, 0.0)
    acc = nonpos
    for idx in sorted(normalized):
        acc += normalized[idx]
        if rank <= acc:
            return min(max(bucket_edge(idx), vmin), vmax)
    return vmax


def summary_quantile(summary: dict, q: float) -> float:
    """Quantile of a stored histogram summary (JSON round-trip safe)."""
    return _quantile(
        q,
        summary.get("count", 0),
        summary.get("nonpos", 0),
        summary.get("buckets", {}),
        summary.get("min", 0.0),
        summary.get("max", 0.0),
    )


def merge_histogram_summaries(cur: dict | None, new: dict | None) -> dict:
    """Combine two histogram summaries exactly.

    Bucket counts are integers, so the merged summary is bit-identical to
    the one a single registry observing both sample streams would emit
    (float ``sum`` re-association is exact for the canonical
    integer-valued observations).  Either side may be ``None`` or empty.
    """
    if new is None or new.get("count", 0) == 0:
        new = None
    if cur is None or cur.get("count", 0) == 0:
        cur = None
    if cur is None and new is None:
        return empty_histogram_summary()
    if cur is None or new is None:
        # One-sided merge still re-derives the quantiles: the surviving
        # summary may predate the p50/p99 fields (an older stream) or
        # carry stale values — propagating them unrepaired would poison
        # every downstream merge.
        src = cur if new is None else new
        out = dict(src)
        count = src.get("count", 0)
        nonpos = src.get("nonpos", 0)
        raw = src.get("buckets", {})
        vmin = src.get("min", 0.0)
        vmax = src.get("max", 0.0)
        out["buckets"] = {
            str(k): v for k, v in sorted(_normalize_buckets(raw).items())
        }
        out["p50"] = _quantile(0.5, count, nonpos, raw, vmin, vmax)
        out["p99"] = _quantile(0.99, count, nonpos, raw, vmin, vmax)
        return out
    count = cur["count"] + new["count"]
    total = cur["sum"] + new["sum"]
    vmin = min(cur["min"], new["min"])
    vmax = max(cur["max"], new["max"])
    nonpos = cur.get("nonpos", 0) + new.get("nonpos", 0)
    buckets: dict[str, int] = {}
    for src in (cur, new):
        for k, v in _normalize_buckets(src.get("buckets", {})).items():
            key = str(k)
            buckets[key] = buckets.get(key, 0) + v
    return {
        "count": count,
        "sum": total,
        "min": vmin,
        "max": vmax,
        "mean": total / count,
        "p50": _quantile(0.5, count, nonpos, buckets, vmin, vmax),
        "p99": _quantile(0.99, count, nonpos, buckets, vmin, vmax),
        "nonpos": nonpos,
        "buckets": dict(sorted(buckets.items(), key=lambda kv: int(kv[0]))),
    }


@dataclass
class Counter:
    """Monotonically increasing total."""

    name: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


@dataclass
class Gauge:
    """Last-written value (not monotone)."""

    name: str = ""
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def max(self, value: float) -> None:
        """Keep the running maximum (e.g. deepest iteration count)."""
        self.value = max(self.value, float(value))

    def reset(self) -> None:
        self.value = 0.0


@dataclass
class Histogram:
    """Streaming summary of observed samples.

    Alongside count/sum/min/max, observations land in log-spaced buckets
    (:data:`BUCKETS_PER_OCTAVE` per power of two, keyed by integer bucket
    index) so the summary can answer tail-quantile questions — what a mean
    over thousands of steps hides.  Observations <= 0 (or non-finite) are
    pooled in a single ``nonpos`` underflow bucket below every log bucket.
    """

    name: str = ""
    count: int = 0
    total: float = 0.0
    vmin: float = field(default=float("inf"))
    vmax: float = field(default=float("-inf"))
    nonpos: int = 0
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)
        if value > 0.0 and math.isfinite(value):
            idx = bucket_index(value)
            self.buckets[idx] = self.buckets.get(idx, 0) + 1
        else:
            self.nonpos += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (0..1) from the bucket counts; see module docs."""
        return _quantile(
            q, self.count, self.nonpos, self.buckets,
            self.vmin if self.count else 0.0,
            self.vmax if self.count else 0.0,
        )

    def summary(self) -> dict:
        if not self.count:
            return empty_histogram_summary()
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "nonpos": self.nonpos,
            # str keys so a live summary equals its JSON round-trip.
            "buckets": {str(k): v for k in sorted(self.buckets)
                        if (v := self.buckets[k])},
        }

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self.nonpos = 0
        self.buckets = {}

    def restore_summary(self, summary: dict) -> None:
        """Reset, then adopt the state captured by :meth:`summary`.

        The round trip is exact: a restored histogram's next
        :meth:`summary` is equal to the one it was restored from (bucket
        counts are integers; ``sum`` is carried verbatim).
        """
        self.reset()
        count = int(summary.get("count", 0))
        if not count:
            return
        self.count = count
        self.total = float(summary.get("sum", 0.0))
        self.vmin = float(summary.get("min", 0.0))
        self.vmax = float(summary.get("max", 0.0))
        self.nonpos = int(summary.get("nonpos", 0))
        self.buckets = {
            int(k): int(v) for k, v in summary.get("buckets", {}).items()
        }


class MetricsRegistry:
    """Named collection of instruments; one name maps to one kind."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: dict) -> None:
        for pool in (self._counters, self._gauges, self._histograms):
            if pool is not kind and name in pool:
                raise ConfigurationError(
                    f"metric {name!r} already registered with a different kind"
                )

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._check_free(name, self._counters)
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._check_free(name, self._gauges)
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._check_free(name, self._histograms)
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument's current state."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {n: h.summary() for n, h in self._histograms.items()},
        }

    def reset(self) -> None:
        for pool in (self._counters, self._gauges, self._histograms):
            for instrument in pool.values():
                instrument.reset()

    def restore(self, snapshot: dict) -> None:
        """Replace the registry's whole state with a prior :meth:`snapshot`.

        Instruments not present in *snapshot* are dropped (a partially
        executed step may have registered instruments the snapshot
        predates), so after restoring, :meth:`snapshot` returns exactly
        the dict that was passed in. Used by the supervised process
        executor to roll a rank back to the last consistent step boundary.
        """
        self._counters = {
            n: Counter(n, float(v))
            for n, v in snapshot.get("counters", {}).items()
        }
        self._gauges = {
            n: Gauge(n, float(v)) for n, v in snapshot.get("gauges", {}).items()
        }
        self._histograms = {}
        for n, summ in snapshot.get("histograms", {}).items():
            hist = Histogram(n)
            hist.restore_summary(summ)
            self._histograms[n] = hist


def counter_deltas(new: dict, old: dict | None) -> dict[str, float]:
    """Per-counter increments between two :meth:`MetricsRegistry.snapshot`\\ s.

    Counters absent from *old* are treated as having been zero, so the
    first delta after an instrument appears reports its full value.

    A counter whose *new* value is **smaller** than its *old* value can only
    mean the registry was reset between the snapshots (counters are
    monotone). The naive difference would be negative — and counters the
    reset removed entirely would be dropped — silently corrupting per-step
    deltas. Both cases re-baseline from zero: the delta is the counter's
    full post-reset value.
    """
    prev = (old or {}).get("counters", {})
    out = {}
    for name, value in new.get("counters", {}).items():
        base = prev.get(name, 0.0)
        out[name] = value - base if value >= base else value
    return out
