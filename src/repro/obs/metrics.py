"""Metrics primitives: counters, gauges, histograms, and a registry.

The observability layer every hot path reports through. Three instrument
kinds cover the measurement needs of a CLUSTER-style systems study:

- :class:`Counter` — monotone totals (cells recovered, bytes sent, cells
  floored to atmosphere);
- :class:`Gauge` — last-written values (current dt, deepest Newton
  iteration count of the latest sweep);
- :class:`Histogram` — streaming min/max/mean/count over observations
  (per-step wall times, message sizes).

A :class:`MetricsRegistry` names and owns instruments; snapshots are plain
dicts so per-step *deltas* (what the structured-event recorder emits) are a
dictionary subtraction away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..utils.errors import ConfigurationError


@dataclass
class Counter:
    """Monotonically increasing total."""

    name: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


@dataclass
class Gauge:
    """Last-written value (not monotone)."""

    name: str = ""
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def max(self, value: float) -> None:
        """Keep the running maximum (e.g. deepest iteration count)."""
        self.value = max(self.value, float(value))

    def reset(self) -> None:
        self.value = 0.0


@dataclass
class Histogram:
    """Streaming summary of observed samples (no bucket storage)."""

    name: str = ""
    count: int = 0
    total: float = 0.0
    vmin: float = field(default=float("inf"))
    vmax: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "mean": self.mean,
        }

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")


class MetricsRegistry:
    """Named collection of instruments; one name maps to one kind."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: dict) -> None:
        for pool in (self._counters, self._gauges, self._histograms):
            if pool is not kind and name in pool:
                raise ConfigurationError(
                    f"metric {name!r} already registered with a different kind"
                )

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._check_free(name, self._counters)
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._check_free(name, self._gauges)
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._check_free(name, self._histograms)
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument's current state."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {n: h.summary() for n, h in self._histograms.items()},
        }

    def reset(self) -> None:
        for pool in (self._counters, self._gauges, self._histograms):
            for instrument in pool.values():
                instrument.reset()


def counter_deltas(new: dict, old: dict | None) -> dict[str, float]:
    """Per-counter increments between two :meth:`MetricsRegistry.snapshot`\\ s.

    Counters absent from *old* are treated as having been zero, so the
    first delta after an instrument appears reports its full value.

    A counter whose *new* value is **smaller** than its *old* value can only
    mean the registry was reset between the snapshots (counters are
    monotone). The naive difference would be negative — and counters the
    reset removed entirely would be dropped — silently corrupting per-step
    deltas. Both cases re-baseline from zero: the delta is the counter's
    full post-reset value.
    """
    prev = (old or {}).get("counters", {})
    out = {}
    for name, value in new.get("counters", {}).items():
        base = prev.get(name, 0.0)
        out[name] = value - base if value >= base else value
    return out
