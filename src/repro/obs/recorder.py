"""Per-step structured-event recorder shared by all solver drivers.

A :class:`StepRecorder` sits between a solver and an :class:`EventSink`: the
solver calls :meth:`record_step` once per time step with its registries, and
the recorder turns cumulative state (timer totals, counter totals) into
per-step deltas so each ``step`` record is self-contained. The unigrid,
distributed, and AMR drivers all emit through this one class, which is what
makes their streams comparable row-for-row.
"""

from __future__ import annotations

from ..utils.timers import TimerRegistry
from .events import SCHEMA_VERSION, EventSink
from .metrics import MetricsRegistry, counter_deltas


def _timer_totals(timers: TimerRegistry | None) -> dict[str, float]:
    if timers is None:
        return {}
    return {name: timer.elapsed for name, timer in timers.items()}


class StepRecorder:
    """Emit one structured record per solver step.

    Parameters
    ----------
    sink:
        Destination of the event stream.
    source:
        ``"measured"`` for wall-clock runs, ``"modelled"`` for simulated
        executions (same schema either way).
    meta:
        Run metadata included in the ``run_start`` record.
    """

    def __init__(
        self,
        sink: EventSink,
        source: str = "measured",
        meta: dict | None = None,
    ):
        self.sink = sink
        self.source = source
        self._prev_metrics: dict | None = None
        self._prev_timers: dict[str, float] = {}
        self.steps_recorded = 0
        self._emit("run_start", meta=dict(meta or {}))

    def _emit(self, event: str, **fields) -> None:
        self.sink.emit(
            {"schema": SCHEMA_VERSION, "event": event, "source": self.source, **fields}
        )

    def record_step(
        self,
        *,
        step: int,
        t: float,
        dt: float,
        wall_seconds: float,
        timers: TimerRegistry | None = None,
        metrics: MetricsRegistry | None = None,
        **extra,
    ) -> None:
        """Emit the ``step`` record for one completed time step.

        ``kernel_seconds`` and ``counters`` are deltas against the previous
        call, so cumulative registries can be handed over as-is.
        """
        totals = _timer_totals(timers)
        kernel_seconds = {
            name: total - self._prev_timers.get(name, 0.0)
            for name, total in totals.items()
        }
        self._prev_timers = totals
        snap = metrics.snapshot() if metrics is not None else {}
        record = {
            "step": step,
            "t": t,
            "dt": dt,
            "wall_seconds": wall_seconds,
            "kernel_seconds": kernel_seconds,
            "counters": counter_deltas(snap, self._prev_metrics),
            "gauges": dict(snap.get("gauges", {})),
            # Cumulative histogram summaries (count/sum/min/max/mean): the
            # last step record carries the whole run's distribution.
            "histograms": dict(snap.get("histograms", {})),
        }
        self._prev_metrics = snap
        self.steps_recorded += 1
        self._emit("step", **record, **extra)

    def emit_step(self, record: dict, **extra) -> None:
        """Emit an already-built ``step`` record (merged worker shards).

        The process backend computes per-step deltas inside each worker
        and merges the shards in the parent; this entry point emits the
        merged record while keeping the recorder's cumulative state
        (timer and counter totals) consistent, so :meth:`finish` reports
        the same run totals as a serially recorded stream.
        """
        for name, seconds in record.get("kernel_seconds", {}).items():
            self._prev_timers[name] = self._prev_timers.get(name, 0.0) + seconds
        prev = self._prev_metrics or {}
        counters = dict(prev.get("counters", {}))
        for name, delta in record.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + delta
        self._prev_metrics = {
            "counters": counters,
            "gauges": dict(record.get("gauges", {})),
            "histograms": dict(record.get("histograms", {})),
        }
        self.steps_recorded += 1
        self._emit("step", **record, **extra)

    def emit_event(self, event: str, **fields) -> None:
        """Emit an auxiliary (non-``step``) record, e.g. supervision events.

        The record shares the stream's schema/source envelope but does not
        advance the recorder's cumulative step state, so interleaving
        events between steps leaves the step deltas untouched.
        """
        self._emit(event, **fields)

    def state(self) -> dict:
        """Serializable snapshot of the recorder's cumulative delta state."""
        prev = self._prev_metrics
        return {
            "prev_timers": dict(self._prev_timers),
            "prev_metrics": None if prev is None else {
                "counters": dict(prev.get("counters", {})),
                "gauges": dict(prev.get("gauges", {})),
                "histograms": dict(prev.get("histograms", {})),
            },
            "steps_recorded": self.steps_recorded,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a prior :meth:`state` snapshot (does not rewind the sink).

        Used by the supervised process executor so post-recovery step
        deltas are computed against the last *emitted* step, not against
        partially executed work that was rolled back.
        """
        self._prev_timers = dict(state.get("prev_timers", {}))
        prev = state.get("prev_metrics")
        self._prev_metrics = None if prev is None else {
            "counters": dict(prev.get("counters", {})),
            "gauges": dict(prev.get("gauges", {})),
            "histograms": dict(prev.get("histograms", {})),
        }
        self.steps_recorded = int(state.get("steps_recorded", 0))

    def finish(self, **summary) -> None:
        """Emit the ``run_end`` record with cumulative totals."""
        self._emit(
            "run_end",
            steps=self.steps_recorded,
            kernel_seconds_total=dict(self._prev_timers),
            counters_total=dict((self._prev_metrics or {}).get("counters", {})),
            **summary,
        )

    def close(self) -> None:
        self.sink.close()
