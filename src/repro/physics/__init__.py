"""SRHD physics: conservation-law system, recovery, exact solutions, data."""

from .atmosphere import Atmosphere
from .con2prim import RecoveryStats, con_to_prim
from .exact_riemann import ExactRiemannSolver, RiemannState
from .initial_data import (
    RP1,
    RP2,
    SHOCK_TUBES,
    JetInflow,
    ShockTubeProblem,
    blast_wave_2d,
    kelvin_helmholtz_2d,
    relativistic_jet_inflow,
    shock_tube,
    smooth_wave,
)
from .srhd import SRHDSystem
from .tracers import TracerSystem

__all__ = [
    "SRHDSystem",
    "TracerSystem",
    "con_to_prim",
    "RecoveryStats",
    "Atmosphere",
    "ExactRiemannSolver",
    "RiemannState",
    "ShockTubeProblem",
    "RP1",
    "RP2",
    "SHOCK_TUBES",
    "shock_tube",
    "smooth_wave",
    "blast_wave_2d",
    "kelvin_helmholtz_2d",
    "relativistic_jet_inflow",
    "JetInflow",
]
