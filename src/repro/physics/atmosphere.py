"""Atmosphere (floor) treatment for near-vacuum regions.

HRSC schemes for relativistic hydrodynamics cannot evolve true vacuum: the
conservative-to-primitive map degenerates as ``D -> 0``. Production codes
impose a tenuous static *atmosphere*: wherever the evolved density falls
below a threshold, the state is reset to a low-density fluid at rest.  This
module applies that policy to primitive and conserved states.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .srhd import SRHDSystem


@dataclass(frozen=True)
class Atmosphere:
    """Floor parameters.

    Attributes
    ----------
    rho_atmo:
        Rest-mass density assigned to atmosphere cells.
    threshold_factor:
        Cells with ``rho < threshold_factor * rho_atmo`` are reset.
    p_atmo:
        Pressure assigned to atmosphere cells (defaults to a cold value
        consistent with ``rho_atmo`` if not given).
    """

    rho_atmo: float = 1e-10
    threshold_factor: float = 10.0
    p_atmo: float = 1e-12

    def apply_prim(self, system: SRHDSystem, prim: np.ndarray) -> np.ndarray:
        """Reset sub-threshold cells of a primitive state in place.

        Returns the boolean mask of cells that were reset (useful for
        diagnostics and tests).
        """
        mask = prim[system.RHO] < self.threshold_factor * self.rho_atmo
        if mask.any():
            prim[system.RHO][mask] = self.rho_atmo
            for ax in range(system.ndim):
                prim[system.V(ax)][mask] = 0.0
            prim[system.P][mask] = self.p_atmo
        # Independently floor the pressure everywhere (shock heating can
        # produce transient negative-pressure undershoots at high W).
        np.maximum(prim[system.P], self.p_atmo, out=prim[system.P])
        np.maximum(prim[system.RHO], self.rho_atmo, out=prim[system.RHO])
        return mask

    def apply_cons(self, system: SRHDSystem, cons: np.ndarray) -> np.ndarray:
        """Floor the conserved density/energy in place before recovery.

        Guards the con2prim solve against unphysical ``D <= 0`` or
        ``tau < 0`` produced by aggressive reconstruction near vacuum.
        Returns the mask of modified cells.
        """
        bad_d = cons[system.D] < self.rho_atmo
        bad_tau = cons[system.TAU] < self.p_atmo
        mask = bad_d | bad_tau
        if mask.any():
            cons[system.D][bad_d] = self.rho_atmo
            cons[system.TAU][bad_tau] = self.p_atmo
            # Zero momentum in fully-floored cells to keep v well below 1.
            for ax in range(system.ndim):
                cons[system.S(ax)][bad_d] = 0.0
        return mask
