"""Conservative-to-primitive recovery for SRHD (vectorized).

The inversion solves a single nonlinear scalar equation per cell for the
pressure.  Given conserved ``(D, S_i, tau)`` and a trial pressure ``p``:

.. math::

   Q = \\tau + D + p = \\rho h W^2, \\quad
   v_i = S_i / Q, \\quad
   W = (1 - v^2)^{-1/2}, \\quad
   \\rho = D / W, \\quad
   \\epsilon = (Q (1 - v^2) - p) / \\rho - 1

and the residual is ``f(p) = p_EOS(rho, eps) - p``.  We run a vectorized
Newton iteration with the quasi-exact derivative ``f'(p) = v^2 cs^2 - 1``
(strictly negative, so Newton is monotone-safe) and fall back to bisection
for any cells that fail to converge — the pattern a production GPU kernel
uses, since divergent warps make per-cell scalar root-finders prohibitive.

Physical admissibility requires ``|S| < tau + D + p``; the lower pressure
bracket enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.workspace import scratch_buf
from ..eos.base import EOS
from ..utils.errors import RecoveryError
from .srhd import SRHDSystem


@dataclass
class RecoveryStats:
    """Convergence accounting for one con2prim sweep.

    The counters partition the sweep: ``n_newton_converged + n_bisection +
    n_failed == n_cells`` always holds, including on the failure path
    (stats are populated *before* :class:`RecoveryError` is raised).
    ``n_unbracketed`` counts cells whose bisection bracket never found a
    sign change — a subset of ``n_failed``.  ``n_failsafe`` counts failed
    cells that were atmosphere-reset instead of raising (a subset of
    ``n_failed``; see the ``failsafe_frac`` argument of
    :func:`con_to_prim`).
    """

    n_cells: int = 0
    n_newton_converged: int = 0
    n_bisection: int = 0
    n_failed: int = 0
    n_unbracketed: int = 0
    n_failsafe: int = 0
    max_iterations: int = 0

    def merge(self, other: "RecoveryStats") -> None:
        """Accumulate another sweep's counters into this one."""
        self.n_cells += other.n_cells
        self.n_newton_converged += other.n_newton_converged
        self.n_bisection += other.n_bisection
        self.n_failed += other.n_failed
        self.n_unbracketed += other.n_unbracketed
        self.n_failsafe += other.n_failsafe
        self.max_iterations = max(self.max_iterations, other.max_iterations)


def _eval_state(eos: EOS, D, S2, tau, p, scratch=None, tag="c2p"):
    """Trial primitive state and EOS pressure residual at pressure *p*.

    Returns (rho, eps, v2, residual). All inputs/outputs are arrays; the
    outputs live in *scratch* buffers when a workspace is given (the
    Newton hot loop), fresh arrays otherwise (the bisection cold path).
    The in-place evaluation preserves the original operation order.
    """
    n = D.shape
    # Q = tau + D + p
    Q = scratch_buf(scratch, (tag, "Q"), n)
    np.add(tau, D, out=Q)
    np.add(Q, p, out=Q)
    # v2 = clip(S2 / Q**2, 0, 1 - 1e-14)
    v2 = scratch_buf(scratch, (tag, "v2"), n)
    np.square(Q, out=v2)
    np.divide(S2, v2, out=v2)
    np.clip(v2, 0.0, 1.0 - 1e-14, out=v2)
    # W = 1/sqrt(1 - v2); rho = D/W
    W = scratch_buf(scratch, (tag, "W"), n)
    np.subtract(1.0, v2, out=W)
    np.sqrt(W, out=W)
    np.divide(1.0, W, out=W)
    rho = scratch_buf(scratch, (tag, "rho"), n)
    np.divide(D, W, out=rho)
    # eps = max((Q (1 - v2) - p)/rho - 1, 0)
    eps = scratch_buf(scratch, (tag, "eps"), n)
    np.subtract(1.0, v2, out=eps)
    np.multiply(Q, eps, out=eps)
    np.subtract(eps, p, out=eps)
    np.divide(eps, rho, out=eps)
    np.subtract(eps, 1.0, out=eps)
    np.maximum(eps, 0.0, out=eps)
    residual = scratch_buf(scratch, (tag, "res"), n)
    np.subtract(eos.pressure(rho, eps), p, out=residual)
    return rho, eps, v2, residual


def _p_lower_bracket(D, S2, tau, p_floor, scratch=None, tag="c2p"):
    """Smallest admissible pressure: keeps v < 1 with a safety margin."""
    out = scratch_buf(scratch, (tag, "p_lo"), D.shape)
    np.sqrt(S2, out=out)
    np.subtract(out, tau, out=out)
    np.subtract(out, D, out=out)
    np.multiply(out, 1.0 + 1e-10, out=out)
    np.maximum(out, p_floor, out=out)
    return out


def con_to_prim(
    system: SRHDSystem,
    cons: np.ndarray,
    p_guess: np.ndarray | None = None,
    tol: float = 1e-12,
    max_newton: int = 50,
    max_bisect: int = 80,
    p_floor: float = 1e-16,
    stats: RecoveryStats | None = None,
    failsafe_frac: float = 0.0,
    atmosphere: tuple[float, float] | None = None,
    scratch=None,
    out: np.ndarray | None = None,
    positivity_guess: bool = False,
    newton_damping: float = 1.0,
) -> np.ndarray:
    """Invert conserved variables to primitives over a whole grid.

    Parameters
    ----------
    system:
        The SRHD system (supplies the EOS and variable indexing).
    cons:
        Conserved state array ``(nvars, *shape)``; may be modified in place
        when the failsafe resets cells (see below).
    p_guess:
        Optional pressure initial guess (e.g. last step's pressure); a
        crude estimate is used otherwise.
    stats:
        Optional :class:`RecoveryStats` filled with convergence counters.
    scratch:
        Optional :class:`~repro.core.workspace.ScratchWorkspace`; the
        Newton hot loop's flat temporaries then reuse preallocated
        buffers. The bisection fallback (cold path, data-dependent
        sizes) always allocates fresh. Results are bit-identical.
    out:
        Optional preallocated primitive array receiving the result.
    positivity_guess:
        Cold-start seeding only (ignored when *p_guess* is given): seed
        the Newton iteration with the EOS pressure of the trial state
        evaluated at the lower admissibility bracket.  The clamped
        ``eps >= 0`` keeps that pressure nonnegative by construction, and
        on atmosphere-dominated grids it starts at the right magnitude
        (~``p_atmo``) where the kinetic-gap estimate overshoots by many
        orders — which is what sends those cells into the bisection
        fallback.  The same seed tightens the bisection bracket for any
        stragglers (``hi`` scales with the seed).
    newton_damping:
        Scale factor on the Newton step (1.0 = undamped; bit-identical
        to the historical iteration).  Values below 1 trade iterations
        for robustness when sweeps report unbracketed cells or exhausted
        Newton budgets.
    failsafe_frac, atmosphere:
        Bounded non-convergence failsafe.  When ``failsafe_frac > 0`` and
        ``atmosphere=(rho_atmo, p_atmo)`` is given, up to
        ``failsafe_frac * n_cells`` unrecoverable cells are reset to the
        static atmosphere (both the returned primitives and *cons* in
        place, keeping the pair consistent) instead of raising — the
        standard production compromise: a handful of pathological cells
        must not kill a cluster-scale run, but silent mass resets past the
        bound would corrupt the physics, so larger failures still raise.
        Reset cells are counted in ``stats.n_failsafe`` (they remain in
        ``n_failed`` too — the partition invariant holds).

    Returns
    -------
    prim:
        Primitive array ``(nvars, *shape)``.

    Raises
    ------
    RecoveryError
        If any cell fails both Newton and bisection, and the failsafe is
        disabled or the failure count exceeds its budget.
    """
    eos = system.eos
    shape = cons.shape[1:]
    D = cons[system.D].reshape(-1)
    tau = cons[system.TAU].reshape(-1)
    S2 = scratch_buf(scratch, ("c2p", "S2"), D.shape)
    S2.fill(0.0)
    sq = scratch_buf(scratch, ("c2p", "S2sq"), D.shape)
    for ax in range(system.ndim):
        np.square(cons[system.S(ax)].reshape(-1), out=sq)
        S2 += sq

    p_lo = _p_lower_bracket(D, S2, tau, p_floor, scratch=scratch)
    p = scratch_buf(scratch, ("c2p", "p"), D.shape)
    if p_guess is not None:
        np.maximum(p_guess.reshape(-1), p_lo, out=p)
    elif positivity_guess:
        # Positivity-preserving seed: evaluate the trial state at the lower
        # admissibility bracket, where the clamped eps >= 0 guarantees a
        # nonnegative EOS pressure; residual + base = p_EOS(rho0, eps0).
        np.maximum(p_lo, p_floor, out=p)
        _, _, _, f0 = _eval_state(eos, D, S2, tau, p, scratch=scratch)
        np.add(p, f0, out=p)
        np.maximum(p, p_lo, out=p)
        np.maximum(p, p_floor, out=p)
    else:
        # Gamma-law-flavoured seed: thermal pressure of order the kinetic gap.
        np.sqrt(S2, out=p)
        np.subtract(tau, p, out=p)
        np.abs(p, out=p)
        np.multiply(p, 0.5, out=p)
        np.add(p, p_floor, out=p)
        np.maximum(p, p_lo, out=p)

    fused = getattr(system, "c2p_newton", None)
    if fused is not None:
        # Compiled per-cell Newton (the cext target's fused kernel). The C
        # loop mirrors the vectorized iteration below operation for
        # operation — same clips, same damped step, same convergence test —
        # so compiled and interpreted sweeps agree to the solver tolerance
        # (bit-exactly when the kernel was built without FP contraction).
        converged, newton_iters = fused(
            D, S2, tau, p, p_lo,
            tol=tol, p_floor=p_floor, max_newton=max_newton,
            damping=newton_damping,
        )
    else:
        converged = np.zeros(D.shape, dtype=bool)
        newton_iters = 0
        for newton_iters in range(1, max_newton + 1):
            rho, eps, v2, f = _eval_state(eos, D, S2, tau, p, scratch=scratch)
            cs2 = np.clip(
                eos.sound_speed_sq(rho, np.maximum(eps, 1e-300)), 0.0, 1.0 - 1e-12
            )
            newly = np.abs(f) <= tol * np.maximum(p, p_floor)
            converged |= newly
            if converged.all():
                break
            dfdp = v2 * cs2 - 1.0  # strictly negative
            step = f / dfdp
            # Multiplying by a damping of exactly 1.0 is an IEEE identity, so
            # the undamped iteration stays bit-identical to the historical one.
            p_new = p - newton_damping * step
            # Keep the iterate inside the admissible region.
            p_new = np.maximum(p_new, 0.5 * (p + p_lo))
            p = np.where(converged, p, p_new)

    n_bisect = 0
    n_unbracketed = 0
    if not converged.all():
        # Bisection fallback on the stragglers only.
        bad = ~converged
        idx = np.nonzero(bad)[0]
        n_bisect = idx.size
        lo = p_lo[idx].copy()
        # Expand upper bracket until the residual changes sign. The seed is
        # scale-relative: anchoring it to the local pressure scale keeps the
        # bracket tight for atmosphere-level pressures (p ~ 1e-12), where an
        # absolute offset of order unity would cost ~40 bisections just to
        # return to the right magnitude.
        p_scale = np.maximum(np.maximum(p[idx], lo), p_floor)
        hi = np.maximum(p[idx] * 4.0, lo * 2.0 + 4.0 * p_scale)
        unbracketed = np.zeros(idx.shape, dtype=bool)
        for _ in range(60):
            _, _, _, f_hi = _eval_state(eos, D[idx], S2[idx], tau[idx], hi)
            unbracketed = f_hi > 0.0
            if not unbracketed.any():
                break
            hi = np.where(unbracketed, hi * 4.0, hi)
        else:
            # Expansion budget exhausted: re-evaluate at the final bracket so
            # the unbracketed mask reflects the hi actually bisected.
            _, _, _, f_hi = _eval_state(eos, D[idx], S2[idx], tau[idx], hi)
            unbracketed = f_hi > 0.0
        n_unbracketed = int(unbracketed.sum())
        for _ in range(max_bisect):
            mid = 0.5 * (lo + hi)
            _, _, _, f_mid = _eval_state(eos, D[idx], S2[idx], tau[idx], mid)
            take_low = f_mid > 0.0  # residual positive => root above mid
            lo = np.where(take_low, mid, lo)
            hi = np.where(take_low, hi, mid)
        p_bis = 0.5 * (lo + hi)
        _, _, _, f_fin = _eval_state(eos, D[idx], S2[idx], tau[idx], p_bis)
        # Bisection halves the bracket max_bisect times; accept a looser
        # relative residual than Newton, plus the cancellation noise floor
        # of the residual: eps = (Q(1-v^2)-p)/rho - 1 loses ~eps_mach * Q
        # absolutely, so demanding less is demanding noise. (The old
        # absolute 1e-12 was scale-wrong both ways: 100% error at
        # atmosphere-level pressures, yet below the noise floor for
        # Q >> 1.) Cells with no sign change bisected an unbracketed
        # interval: never accept them.
        noise = 64.0 * np.finfo(float).eps * (tau[idx] + D[idx] + p_bis)
        ok = np.abs(f_fin) <= 1e-8 * np.maximum(p_bis, p_floor) + noise
        ok &= ~unbracketed
        p[idx] = p_bis
        converged[idx] = ok

    n_failed = 0
    failed = None
    if not converged.all():
        failed = np.nonzero(~converged)[0]
        n_failed = int(failed.size)

    # Bounded failsafe: a small number of unrecoverable cells may be reset
    # to atmosphere instead of killing the run; past the budget we still
    # hard-fail.
    failsafed = (
        failed is not None
        and atmosphere is not None
        and failsafe_frac > 0.0
        and n_failed <= failsafe_frac * D.size
    )

    if stats is not None:
        # Populate counters before any raise: the failing sweep is exactly
        # the one whose accounting the caller needs.
        stats.n_cells += D.size
        stats.n_newton_converged += D.size - int(n_bisect)
        stats.n_bisection += int(n_bisect) - n_failed
        stats.n_failed += n_failed
        stats.n_unbracketed += n_unbracketed
        if failsafed:
            stats.n_failsafe += n_failed
        stats.max_iterations = max(stats.max_iterations, newton_iters)

    if failed is not None and not failsafed:
        raise RecoveryError(
            f"con2prim failed for {failed.size} cells "
            f"({n_unbracketed} unbracketed; "
            f"first few indices: {failed[:8].tolist()})",
            n_failed=n_failed,
            indices=failed[:1024],
        )

    rho, eps, v2, _ = _eval_state(eos, D, S2, tau, p, scratch=scratch)
    Q = scratch_buf(scratch, ("c2p", "Qfin"), D.shape)
    np.add(tau, D, out=Q)
    np.add(Q, p, out=Q)
    prim = np.empty_like(cons) if out is None else out
    prim[system.RHO] = rho.reshape(shape)
    for ax in range(system.ndim):
        np.divide(
            cons[system.S(ax)].reshape(-1), Q, out=sq
        )
        prim[system.V(ax)] = sq.reshape(shape)
    prim[system.P] = p.reshape(shape)

    if failsafed:
        reset_cells_to_atmosphere(system, cons, prim, failed, atmosphere)

    # Passive scalars (TracerSystem) recover algebraically after the hydro
    # sector: Y = D_Y / D.
    if hasattr(system, "recover_tracers"):
        system.recover_tracers(cons, prim)
    return prim


def reset_cells_to_atmosphere(
    system: SRHDSystem,
    cons: np.ndarray,
    prim: np.ndarray,
    flat_indices: np.ndarray,
    atmosphere: tuple[float, float],
) -> None:
    """Reset the given cells of a (cons, prim) pair to the static atmosphere.

    Both arrays are modified in place and stay mutually consistent
    (``cons = prim_to_con(prim)`` at the reset cells).  *flat_indices* are
    flat indices into the cell shape ``cons.shape[1:]``.
    """
    rho_a, p_a = atmosphere
    k = int(np.asarray(flat_indices).size)
    if k == 0:
        return
    prim_cells = np.zeros((system.nvars, k))
    prim_cells[system.RHO] = rho_a
    prim_cells[system.P] = p_a
    cons_cells = system.prim_to_con(prim_cells)
    cell_idx = np.unravel_index(np.asarray(flat_indices), cons.shape[1:])
    for var in range(system.nvars):
        cons[(var,) + cell_idx] = cons_cells[var]
        prim[(var,) + cell_idx] = prim_cells[var]
