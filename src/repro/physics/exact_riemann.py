"""Exact Riemann solver for 1-D special-relativistic hydrodynamics.

Implements the Marti & Muller (1994; Living Reviews 2003) exact solution for
an ideal-gas (Gamma-law) fluid with purely normal velocity.  This is the
validation anchor for every shock-tube experiment: L1 errors and convergence
orders in the benchmark tables are measured against this solution.

The wave structure is: left wave (shock or rarefaction), contact
discontinuity, right wave.  The star pressure ``p*`` is the root of

    f(p) = v*_L(p) - v*_R(p)

where ``v*_a(p)`` is the normal velocity behind the wave adjacent to state
``a``, given by the relativistic Rankine-Hugoniot conditions (shock,
``p > p_a``) or the isentropic Riemann invariant (rarefaction, ``p <= p_a``).

Limitations: ideal-gas EOS only, zero transverse velocity (sufficient for
the standard relativistic shock-tube problems RP1/RP2).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import atanh, sqrt, tanh

import numpy as np
from scipy.optimize import brentq

from ..utils.errors import ConfigurationError


@dataclass(frozen=True)
class RiemannState:
    """A constant fluid state (rho, v, p) on one side of the diaphragm."""

    rho: float
    v: float
    p: float

    def __post_init__(self):
        if self.rho <= 0 or self.p < 0:
            raise ConfigurationError(f"invalid Riemann state {self}")
        if abs(self.v) >= 1:
            raise ConfigurationError(f"superluminal Riemann state {self}")


def _ideal_cs(gamma: float, rho: float, p: float) -> float:
    """Sound speed of the Gamma-law gas."""
    h = 1.0 + gamma / (gamma - 1.0) * p / rho
    return sqrt(gamma * p / (rho * h)) if p > 0 else 0.0


def _rarefaction_invariant(gamma: float, cs: float) -> float:
    """f(cs) such that atanh(v) + s*f(cs) is constant across a rarefaction."""
    sg = sqrt(gamma - 1.0)
    return (2.0 / sg) * atanh(cs / sg)


class ExactRiemannSolver:
    """Exact solution of the SRHD Riemann problem for an ideal gas.

    Parameters
    ----------
    left, right:
        The two constant initial states.
    gamma:
        Adiabatic index of the Gamma-law EOS.

    After construction, :attr:`p_star` and :attr:`v_star` hold the star-region
    pressure and velocity; :meth:`sample` evaluates the self-similar solution.
    """

    def __init__(self, left: RiemannState, right: RiemannState, gamma: float = 5.0 / 3.0):
        if not 1.0 < gamma <= 2.0:
            raise ConfigurationError(f"gamma must be in (1, 2], got {gamma}")
        self.left = left
        self.right = right
        self.gamma = float(gamma)
        self.p_star, self.v_star = self._solve_star()
        self._build_star_states()

    # ------------------------------------------------------------------
    # Wave relations
    # ------------------------------------------------------------------

    def _shock_state(self, ahead: RiemannState, p: float, s: int):
        """State behind a shock with post pressure *p* into state *ahead*.

        Returns (v_behind, rho_behind, h_behind, V_shock). ``s`` is +1 for
        the right-moving (right-state) shock, -1 for the left.
        """
        g = self.gamma
        rho_a, v_a, p_a = ahead.rho, ahead.v, ahead.p
        h_a = 1.0 + g / (g - 1.0) * p_a / rho_a
        W_a = 1.0 / sqrt(1.0 - v_a * v_a)

        # Taub adiabat with the Gamma-law closure gives a quadratic in h.
        b = (g - 1.0) * (p - p_a) / (g * p)
        c = h_a * h_a + h_a * (p - p_a) / rho_a
        h = (-b + sqrt(b * b + 4.0 * (1.0 - b) * c)) / (2.0 * (1.0 - b))
        rho = g * p / ((g - 1.0) * (h - 1.0))

        # Mass flux across the shock (positive by construction for p > p_a).
        # A vanishing-strength shock (p -> p_a) degenerates to an acoustic
        # wave: 0/0 in j^2, so handle it explicitly.
        denom = h_a / rho_a - h / rho
        if abs(p - p_a) <= 1e-12 * max(p, p_a, 1e-300) or denom <= 0.0:
            cs_a = _ideal_cs(g, rho_a, p_a)
            V_s = (v_a + s * cs_a) / (1.0 + s * v_a * cs_a)
            return v_a, rho_a, h_a, V_s
        j2 = (p - p_a) / denom
        j = sqrt(max(j2, 0.0))

        # Shock velocity from the mass-flux definition j = W_s rho_a W_a (V_s - v_a).
        A = rho_a * rho_a * W_a * W_a
        V_s = (A * v_a + s * j * sqrt(rho_a * rho_a + j2)) / (A + j2)

        # Post-shock velocity (Marti & Muller Living Reviews eq. 4.5); the
        # mass-flux terms carry the shock Lorentz factor W_s and the signed
        # flux s*j (negative for left-moving shocks).
        if j > 0:
            W_s = 1.0 / sqrt(max(1.0 - V_s * V_s, 1e-16))
            js = s * j
            num = h_a * W_a * v_a + W_s * (p - p_a) / js
            den = h_a * W_a + (p - p_a) * (1.0 / (rho_a * W_a) + W_s * v_a / js)
            v = num / den
        else:
            v = v_a
        return v, rho, h, V_s

    def _rarefaction_state(self, ahead: RiemannState, p: float, s: int):
        """State behind a rarefaction with tail pressure *p* adjacent to *ahead*.

        Returns (v_behind, rho_behind, cs_behind). ``s`` is -1 for the left
        (head moves left), +1 for the right wave.
        """
        g = self.gamma
        rho_a, v_a, p_a = ahead.rho, ahead.v, ahead.p
        cs_a = _ideal_cs(g, rho_a, p_a)
        if p_a <= 0:
            # Degenerate cold state: no rarefaction structure possible.
            return v_a, rho_a, 0.0
        K = p_a / rho_a**g  # isentrope constant
        rho = (p / K) ** (1.0 / g) if p > 0 else 0.0
        cs = _ideal_cs(g, rho, p) if rho > 0 else 0.0
        v = tanh(
            atanh(v_a)
            + s * (_rarefaction_invariant(g, cs) - _rarefaction_invariant(g, cs_a))
        )
        return v, rho, cs

    def _v_behind(self, ahead: RiemannState, p: float, s: int) -> float:
        """Velocity behind the wave adjacent to state *ahead* at pressure p."""
        if p > ahead.p:
            return self._shock_state(ahead, p, s)[0]
        return self._rarefaction_state(ahead, p, s)[0]

    # ------------------------------------------------------------------
    # Star-region solve
    # ------------------------------------------------------------------

    def _solve_star(self):
        left, right = self.left, self.right

        def f(p):
            return self._v_behind(left, p, -1) - self._v_behind(right, p, +1)

        p_lo = 1e-14
        p_hi = max(left.p, right.p, 1e-10)
        # f decreases with p; expand the upper bracket until f(p_hi) < 0.
        for _ in range(200):
            if f(p_hi) < 0.0:
                break
            p_hi *= 4.0
        else:
            raise ConfigurationError("failed to bracket the star pressure from above")
        if f(p_lo) < 0.0:
            raise ConfigurationError(
                "vacuum-generating Riemann problem (receding states); the "
                "exact solver does not handle vacuum formation"
            )
        p_star = brentq(f, p_lo, p_hi, xtol=1e-15, rtol=1e-14, maxiter=300)
        v_star = self._v_behind(left, p_star, -1)
        return p_star, v_star

    def _build_star_states(self):
        """Cache the star densities and wave speeds for sampling."""
        g = self.gamma
        p, v = self.p_star, self.v_star

        # Left wave.
        if p > self.left.p:  # left shock
            _, rho, _, V_s = self._shock_state(self.left, p, -1)
            self._left_wave = ("shock", V_s, V_s)
            self.rho_star_left = rho
        else:  # left rarefaction
            cs_a = _ideal_cs(g, self.left.rho, self.left.p)
            _, rho, cs_t = self._rarefaction_state(self.left, p, -1)
            head = (self.left.v - cs_a) / (1.0 - self.left.v * cs_a)
            tail = (v - cs_t) / (1.0 - v * cs_t)
            self._left_wave = ("rarefaction", head, tail)
            self.rho_star_left = rho

        # Right wave.
        if p > self.right.p:  # right shock
            _, rho, _, V_s = self._shock_state(self.right, p, +1)
            self._right_wave = ("shock", V_s, V_s)
            self.rho_star_right = rho
        else:  # right rarefaction
            cs_a = _ideal_cs(g, self.right.rho, self.right.p)
            _, rho, cs_t = self._rarefaction_state(self.right, p, +1)
            tail = (v + cs_t) / (1.0 + v * cs_t)
            head = (self.right.v + cs_a) / (1.0 + self.right.v * cs_a)
            self._right_wave = ("rarefaction", head, tail)
            self.rho_star_right = rho

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _sample_rarefaction_fan(self, ahead: RiemannState, xi: float, s: int):
        """Solve for (rho, v, p) inside a rarefaction fan at similarity xi.

        Bisection on the sound speed: each trial cs fixes v through the
        Riemann invariant, and the fan condition requires the characteristic
        (v + s*cs)/(1 + s*v*cs) to equal xi.
        """
        g = self.gamma
        cs_a = _ideal_cs(g, ahead.rho, ahead.p)
        K = ahead.p / ahead.rho**g

        def char_minus_xi(cs):
            v = tanh(
                atanh(ahead.v)
                + s * (_rarefaction_invariant(g, cs) - _rarefaction_invariant(g, cs_a))
            )
            return (v + s * cs) / (1.0 + s * v * cs) - xi

        lo, hi = 1e-14, cs_a
        flo, fhi = char_minus_xi(lo), char_minus_xi(hi)
        if flo * fhi > 0:  # xi outside the fan due to round-off; clamp
            cs = hi if abs(fhi) < abs(flo) else lo
        else:
            cs = brentq(char_minus_xi, lo, hi, xtol=1e-15, maxiter=200)
        v = tanh(
            atanh(ahead.v)
            + s * (_rarefaction_invariant(g, cs) - _rarefaction_invariant(g, cs_a))
        )
        # Invert cs(rho) on the isentrope: cs^2 = g p / (rho h), p = K rho^g.
        # => rho = [ (g-1) cs^2 / (K g (g - 1 - cs^2)) ]^(1/(g-1))
        rho = ((g - 1.0) * cs * cs / (g * K * (g - 1.0 - cs * cs))) ** (1.0 / (g - 1.0))
        p = K * rho**g
        return rho, v, p

    def sample(self, xi):
        """Evaluate the self-similar solution at similarity coordinates xi = x/t.

        Parameters
        ----------
        xi:
            Scalar or array of x/t values (diaphragm at xi = 0).

        Returns
        -------
        (rho, v, p):
            Arrays of the same shape as *xi*.
        """
        xi_arr = np.atleast_1d(np.asarray(xi, dtype=float))
        rho = np.empty_like(xi_arr)
        v = np.empty_like(xi_arr)
        p = np.empty_like(xi_arr)

        lkind, lhead, ltail = self._left_wave
        rkind, rhead, rtail = self._right_wave

        for i, x in enumerate(xi_arr):
            if x <= lhead:
                st = (self.left.rho, self.left.v, self.left.p)
            elif lkind == "rarefaction" and x < ltail:
                st = self._sample_rarefaction_fan(self.left, x, -1)
            elif x <= self.v_star:
                st = (self.rho_star_left, self.v_star, self.p_star)
            elif rkind == "rarefaction" and x <= rtail:
                st = (self.rho_star_right, self.v_star, self.p_star)
            elif rkind == "rarefaction" and x < rhead:
                st = self._sample_rarefaction_fan(self.right, x, +1)
            elif rkind == "shock" and x < rhead:
                st = (self.rho_star_right, self.v_star, self.p_star)
            else:
                st = (self.right.rho, self.right.v, self.right.p)
            rho[i], v[i], p[i] = st

        if np.isscalar(xi) or np.ndim(xi) == 0:
            return float(rho[0]), float(v[0]), float(p[0])
        return rho, v, p

    def solution_on_grid(self, x: np.ndarray, t: float, x0: float = 0.0):
        """Sample the solution on physical coordinates at time t > 0."""
        if t <= 0:
            raise ConfigurationError("sampling requires t > 0")
        return self.sample((np.asarray(x, dtype=float) - x0) / t)

    def wave_structure(self) -> dict:
        """Summary of the wave pattern (kinds and speeds) for reports/tests."""
        return {
            "left": self._left_wave,
            "right": self._right_wave,
            "p_star": self.p_star,
            "v_star": self.v_star,
            "rho_star_left": self.rho_star_left,
            "rho_star_right": self.rho_star_right,
        }
