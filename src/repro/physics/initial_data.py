"""Initial-data library for the HRSC test and benchmark suite.

Each generator fills a primitive-state array for a given grid. The canonical
problems are the ones the evaluation reconstructs:

- :func:`shock_tube` — generic two-state diaphragm problem (1D)
- :data:`RP1`, :data:`RP2` — the Marti & Muller relativistic shock-tube
  problems used in the convergence tables
- :func:`blast_wave_2d` — cylindrical relativistic blast (2D)
- :func:`kelvin_helmholtz_2d` — relativistic shear layer with seeded modes
- :func:`relativistic_jet_inflow` — ambient medium + jet nozzle description
- :func:`smooth_wave` — smooth density advection for measuring high-order
  convergence away from discontinuities
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh.grid import Grid
from ..utils.errors import ConfigurationError
from .exact_riemann import RiemannState
from .srhd import SRHDSystem


@dataclass(frozen=True)
class ShockTubeProblem:
    """A named 1-D two-state problem with its standard run parameters."""

    name: str
    left: RiemannState
    right: RiemannState
    gamma: float
    t_final: float
    x0: float = 0.5


#: Marti & Muller Problem 1: moderate blast, gamma = 5/3.
RP1 = ShockTubeProblem(
    name="RP1",
    left=RiemannState(rho=10.0, v=0.0, p=13.33),
    right=RiemannState(rho=1.0, v=0.0, p=1e-8),
    gamma=5.0 / 3.0,
    t_final=0.4,
)

#: Marti & Muller Problem 2: strong blast wave, gamma = 5/3.
RP2 = ShockTubeProblem(
    name="RP2",
    left=RiemannState(rho=1.0, v=0.0, p=1000.0),
    right=RiemannState(rho=1.0, v=0.0, p=0.01),
    gamma=5.0 / 3.0,
    t_final=0.35,
)

#: All named shock-tube problems, keyed by name.
SHOCK_TUBES = {p.name: p for p in (RP1, RP2)}


def shock_tube(system: SRHDSystem, grid: Grid, problem: ShockTubeProblem) -> np.ndarray:
    """Primitive state for a 1-D diaphragm problem on *grid* (with ghosts)."""
    if grid.ndim != 1:
        raise ConfigurationError("shock_tube requires a 1-D grid")
    x = grid.coords_with_ghosts(0)
    prim = np.empty((system.nvars,) + x.shape)
    left_mask = x < problem.x0
    prim[system.RHO] = np.where(left_mask, problem.left.rho, problem.right.rho)
    prim[system.V(0)] = np.where(left_mask, problem.left.v, problem.right.v)
    for ax in range(1, system.ndim):
        prim[system.V(ax)] = 0.0
    prim[system.P] = np.where(left_mask, problem.left.p, problem.right.p)
    return prim


def smooth_wave(
    system: SRHDSystem,
    grid: Grid,
    rho0: float = 1.0,
    amplitude: float = 0.2,
    velocity: float = 0.5,
    pressure: float = 1.0,
) -> np.ndarray:
    """Smooth advected density wave: rho = rho0 (1 + A sin 2 pi x), uniform v, p.

    With constant velocity and pressure this is an exact advection solution of
    the SRHD system, so it measures the design order of the scheme without
    shocks.
    """
    if grid.ndim != 1:
        raise ConfigurationError("smooth_wave requires a 1-D grid")
    if not 0 <= amplitude < 1:
        raise ConfigurationError("amplitude must be in [0, 1)")
    x = grid.coords_with_ghosts(0)
    prim = np.empty((system.nvars,) + x.shape)
    prim[system.RHO] = rho0 * (1.0 + amplitude * np.sin(2.0 * np.pi * x))
    prim[system.V(0)] = velocity
    for ax in range(1, system.ndim):
        prim[system.V(ax)] = 0.0
    prim[system.P] = pressure
    return prim


def blast_wave_2d(
    system: SRHDSystem,
    grid: Grid,
    rho_in: float = 1.0,
    p_in: float = 100.0,
    rho_out: float = 1.0,
    p_out: float = 0.01,
    radius: float = 0.1,
    center=(0.5, 0.5),
    smoothing: float = 0.0,
) -> np.ndarray:
    """Cylindrical relativistic blast wave on a 2-D grid.

    A hot over-pressured disc of radius *radius* drives a cylindrical shock
    into a cold ambient medium. ``smoothing > 0`` applies a tanh profile of
    that width to reduce start-up noise.
    """
    if grid.ndim != 2 or system.ndim != 2:
        raise ConfigurationError("blast_wave_2d requires 2-D grid and system")
    x = grid.coords_with_ghosts(0)[:, None]
    y = grid.coords_with_ghosts(1)[None, :]
    r = np.sqrt((x - center[0]) ** 2 + (y - center[1]) ** 2)
    if smoothing > 0:
        inside = 0.5 * (1.0 - np.tanh((r - radius) / smoothing))
    else:
        inside = (r < radius).astype(float)
    prim = np.empty((system.nvars,) + r.shape)
    prim[system.RHO] = rho_out + (rho_in - rho_out) * inside
    prim[system.V(0)] = 0.0
    prim[system.V(1)] = 0.0
    prim[system.P] = p_out + (p_in - p_out) * inside
    return prim


def kelvin_helmholtz_2d(
    system: SRHDSystem,
    grid: Grid,
    shear_v: float = 0.5,
    rho_band: float = 2.0,
    rho_ambient: float = 1.0,
    pressure: float = 2.5,
    perturb_amplitude: float = 0.01,
    layer_width: float = 0.035,
    mode: int = 2,
    seed: int | None = None,
) -> np.ndarray:
    """Relativistic Kelvin-Helmholtz shear layer on a periodic 2-D grid.

    A dense band occupying ``|y - 0.5| < 0.25`` moves at ``+shear_v`` while
    the ambient medium moves at ``-shear_v``; the interface is smoothed over
    *layer_width* and seeded with a sinusoidal transverse-velocity
    perturbation of the given *mode* (plus optional noise when *seed* is set).
    The single-mode growth rate is what experiment E5 measures.
    """
    if grid.ndim != 2 or system.ndim != 2:
        raise ConfigurationError("kelvin_helmholtz_2d requires 2-D grid and system")
    if abs(shear_v) >= 1:
        raise ConfigurationError("shear velocity must be subluminal")
    x = grid.coords_with_ghosts(0)[:, None]
    y = grid.coords_with_ghosts(1)[None, :]
    # Smooth double interface at y = 0.25 and y = 0.75.
    profile = 0.5 * (
        np.tanh((y - 0.25) / layer_width) - np.tanh((y - 0.75) / layer_width)
    )
    prim = np.empty((system.nvars,) + np.broadcast_shapes(x.shape, y.shape))
    prim[system.RHO] = rho_ambient + (rho_band - rho_ambient) * profile
    prim[system.V(0)] = -shear_v + 2.0 * shear_v * profile
    vy = perturb_amplitude * np.sin(2.0 * np.pi * mode * x) * (
        np.exp(-((y - 0.25) ** 2) / (2 * layer_width**2))
        + np.exp(-((y - 0.75) ** 2) / (2 * layer_width**2))
    )
    if seed is not None:
        rng = np.random.default_rng(seed)
        vy = vy + perturb_amplitude * 0.1 * rng.standard_normal(vy.shape)
    prim[system.V(1)] = np.broadcast_to(vy, prim[system.RHO].shape).copy()
    prim[system.P] = pressure
    return prim


@dataclass(frozen=True)
class JetInflow:
    """Description of a relativistic jet nozzle for inflow boundaries.

    Attributes mirror the classic axisymmetric jet setups: beam density,
    Lorentz factor, Mach-like pressure ratio, and nozzle radius. Consumed by
    :class:`repro.boundary.conditions.JetInflowBC`.
    """

    rho_beam: float = 0.1
    lorentz: float = 7.0
    p_beam: float = 0.01
    radius: float = 0.1

    @property
    def v_beam(self) -> float:
        return float(np.sqrt(1.0 - 1.0 / self.lorentz**2))


def relativistic_jet_inflow(
    system: SRHDSystem,
    grid: Grid,
    jet: JetInflow | None = None,
    rho_ambient: float = 1.0,
    p_ambient: float = 0.01,
) -> tuple[np.ndarray, JetInflow]:
    """Quiescent ambient medium plus a jet nozzle description (2-D).

    Returns the ambient primitive state and the :class:`JetInflow` record;
    the nozzle itself is enforced by the inflow boundary condition each step.
    """
    if grid.ndim != 2 or system.ndim != 2:
        raise ConfigurationError("relativistic_jet_inflow requires 2-D grid/system")
    jet = jet or JetInflow()
    shape = grid.shape_with_ghosts
    prim = np.empty((system.nvars,) + shape)
    prim[system.RHO] = rho_ambient
    prim[system.V(0)] = 0.0
    prim[system.V(1)] = 0.0
    prim[system.P] = p_ambient
    return prim, jet
