"""Special-relativistic hydrodynamics in flat-space Valencia form.

State layout (C-order ``(nvars, *grid_shape)`` float64):

- primitives ``P = [rho, v_1, ..., v_ndim, p]``
  (rest-mass density, coordinate 3-velocity components, pressure)
- conserved  ``U = [D, S_1, ..., S_ndim, tau]`` with

  .. math::

     W   &= (1 - v^2)^{-1/2}, \\qquad h = 1 + \\epsilon + p/\\rho \\\\
     D   &= \\rho W \\\\
     S_i &= \\rho h W^2 v_i \\\\
     \\tau &= \\rho h W^2 - p - D

and the flux along direction *k*:

  .. math::

     F^k = [D v^k,\\; S_i v^k + p \\delta_i^k,\\; S_k - D v^k].

Characteristic speeds of the 1-D Jacobian along *k* (Marti & Muller 2003,
Living Reviews):

  .. math::

     \\lambda_0 = v^k, \\quad
     \\lambda_\\pm = \\frac{v^k (1 - c_s^2) \\pm c_s
        \\sqrt{(1 - v^2)\\,[1 - v^k v^k - (v^2 - v^k v^k) c_s^2]}}
       {1 - v^2 c_s^2}.

Everything in this module is fully vectorized over the trailing grid axes.
"""

from __future__ import annotations

import numpy as np

from ..core.workspace import scratch_buf
from ..eos.base import EOS
from ..utils.errors import ConfigurationError


class SRHDSystem:
    """The SRHD conservation-law system for a given EOS and dimensionality.

    Parameters
    ----------
    eos:
        Equation of state closing the system.
    ndim:
        Number of velocity components carried (1, 2, or 3). The grid the
        states live on may have the same or lower dimensionality.
    """

    def __init__(self, eos: EOS, ndim: int = 1):
        if ndim not in (1, 2, 3):
            raise ConfigurationError(f"ndim must be 1, 2, or 3, got {ndim}")
        self.eos = eos
        self.ndim = ndim
        #: number of conserved/primitive variables: rho + ndim velocities + p
        self.nvars = ndim + 2

    # -- index helpers -------------------------------------------------------

    @property
    def RHO(self) -> int:
        return 0

    def V(self, axis: int) -> int:
        """Index of velocity component along *axis* (0-based)."""
        return 1 + axis

    @property
    def P(self) -> int:
        return self.nvars - 1

    @property
    def D(self) -> int:
        return 0

    def S(self, axis: int) -> int:
        """Index of momentum component along *axis* (0-based)."""
        return 1 + axis

    @property
    def TAU(self) -> int:
        return self.nvars - 1

    # -- kinematics ----------------------------------------------------------

    def v_squared(self, prim: np.ndarray, out=None, scratch=None, tag="v2") -> np.ndarray:
        """v^2 = sum_i v_i v_i (flat metric).

        With *out* the sum accumulates in place; *scratch* supplies the
        per-component square buffer (see :mod:`repro.core.workspace`).
        """
        if out is None:
            out = np.zeros_like(prim[0])
        else:
            out.fill(0.0)
        t = scratch_buf(scratch, (tag, "sq"), prim.shape[1:])
        for ax in range(self.ndim):
            np.square(prim[self.V(ax)], out=t)
            out += t
        return out

    def lorentz_factor(self, prim: np.ndarray) -> np.ndarray:
        """W = 1/sqrt(1 - v^2); raises on superluminal input."""
        v2 = self.v_squared(prim)
        if np.any(v2 >= 1.0):
            raise ConfigurationError(
                f"superluminal primitive state: max v^2 = {v2.max():.6g}"
            )
        return 1.0 / np.sqrt(1.0 - v2)

    # -- conversions ---------------------------------------------------------

    def prim_to_con(self, prim: np.ndarray, out=None, scratch=None, tag="p2c") -> np.ndarray:
        """Map primitives [rho, v_i, p] to conserved [D, S_i, tau].

        *out* receives the conserved state in place; *scratch* supplies the
        intermediate buffers (Lorentz factor, enthalpy) so a steady-state
        call allocates nothing. Results are bit-identical either way.
        """
        rho = prim[self.RHO]
        p = prim[self.P]
        cell = prim.shape[1:]
        v2 = self.v_squared(
            prim, out=scratch_buf(scratch, (tag, "v2"), cell), scratch=scratch, tag=tag
        )
        if np.any(v2 >= 1.0):
            raise ConfigurationError(
                f"superluminal primitive state: max v^2 = {v2.max():.6g}"
            )
        # W = 1/sqrt(1 - v2), computed in place in the same op order.
        W = scratch_buf(scratch, (tag, "W"), cell)
        np.subtract(1.0, v2, out=W)
        np.sqrt(W, out=W)
        np.divide(1.0, W, out=W)
        eps = self.eos.eps_from_pressure(rho, p)
        # h = 1 + eps + p/rho  ==  (1 + eps) + (p/rho)
        h = scratch_buf(scratch, (tag, "h"), cell)
        t = scratch_buf(scratch, (tag, "t"), cell)
        np.divide(p, rho, out=h)
        np.add(1.0, eps, out=t)
        np.add(t, h, out=h)
        # rhohW2 = (rho*h) * W**2
        rhohW2 = scratch_buf(scratch, (tag, "rhw"), cell)
        np.square(W, out=t)
        np.multiply(rho, h, out=rhohW2)
        np.multiply(rhohW2, t, out=rhohW2)
        cons = np.empty_like(prim) if out is None else out
        np.multiply(rho, W, out=cons[self.D])
        for ax in range(self.ndim):
            np.multiply(rhohW2, prim[self.V(ax)], out=cons[self.S(ax)])
        # tau = (rhohW2 - p) - D
        np.subtract(rhohW2, p, out=cons[self.TAU])
        cons[self.TAU] -= cons[self.D]
        return cons

    # -- fluxes and signal speeds ---------------------------------------------

    def flux(self, prim: np.ndarray, cons: np.ndarray, axis: int = 0, out=None) -> np.ndarray:
        """Physical flux F^axis(U) evaluated from matching prim/cons states."""
        vk = prim[self.V(axis)]
        p = prim[self.P]
        F = np.empty_like(cons) if out is None else out
        np.multiply(cons[self.D], vk, out=F[self.D])
        for ax in range(self.ndim):
            np.multiply(cons[self.S(ax)], vk, out=F[self.S(ax)])
        F[self.S(axis)] += p
        # tau flux: S_axis - D*vk, staged in the output row.
        np.multiply(cons[self.D], vk, out=F[self.TAU])
        np.subtract(cons[self.S(axis)], F[self.TAU], out=F[self.TAU])
        return F

    def sound_speed_sq_into(self, prim: np.ndarray, out, scratch=None, tag="cs2") -> np.ndarray:
        """:meth:`sound_speed_sq` writing its clipped result into *out*."""
        rho = prim[self.RHO]
        p = prim[self.P]
        eps = self.eos.eps_from_pressure(rho, p)
        np.clip(self.eos.sound_speed_sq(rho, eps), 0.0, 1.0 - 1e-12, out=out)
        return out

    def sound_speed_sq(self, prim: np.ndarray) -> np.ndarray:
        rho = prim[self.RHO]
        p = prim[self.P]
        eps = self.eos.eps_from_pressure(rho, p)
        return np.clip(self.eos.sound_speed_sq(rho, eps), 0.0, 1.0 - 1e-12)

    def char_speeds(self, prim: np.ndarray, axis: int = 0, out=None, scratch=None, tag="cs"):
        """Fastest left/right characteristic speeds (lam_minus, lam_plus).

        *out* is an optional ``(lam_minus, lam_plus)`` buffer pair;
        *scratch* supplies the intermediates. The in-place evaluation
        preserves the original operation order bit-for-bit.
        """
        vk = prim[self.V(axis)]
        cell = prim.shape[1:]
        v2 = self.v_squared(
            prim, out=scratch_buf(scratch, (tag, "v2"), cell), scratch=scratch, tag=tag
        )
        cs2 = self.sound_speed_sq_into(
            prim, scratch_buf(scratch, (tag, "cs2"), cell), scratch=scratch, tag=tag
        )
        lam_minus, lam_plus = out if out is not None else (
            np.empty(cell), np.empty(cell)
        )
        t1 = scratch_buf(scratch, (tag, "t1"), cell)
        t2 = scratch_buf(scratch, (tag, "t2"), cell)
        t3 = scratch_buf(scratch, (tag, "t3"), cell)
        # disc = max(1 - v2, 1e-16) * ((1 - vk**2) - (v2 - vk**2) * cs2)
        np.square(vk, out=t1)
        np.subtract(v2, t1, out=t2)
        np.multiply(t2, cs2, out=t2)
        np.subtract(1.0, t1, out=t1)
        np.subtract(t1, t2, out=t1)
        np.subtract(1.0, v2, out=t3)
        np.maximum(t3, 1e-16, out=t3)
        np.multiply(t3, t1, out=t1)
        # root = sqrt(max(disc, 0))
        np.maximum(t1, 0.0, out=t1)
        np.sqrt(t1, out=t1)
        # denom = 1 - v2 * cs2
        np.multiply(v2, cs2, out=t2)
        np.subtract(1.0, t2, out=t2)
        # a = vk * (1 - cs2); b = sqrt(cs2) * root
        a = scratch_buf(scratch, (tag, "a"), cell)
        np.subtract(1.0, cs2, out=a)
        np.multiply(vk, a, out=a)
        np.sqrt(cs2, out=t3)
        np.multiply(t3, t1, out=t3)
        np.subtract(a, t3, out=lam_minus)
        np.divide(lam_minus, t2, out=lam_minus)
        np.add(a, t3, out=lam_plus)
        np.divide(lam_plus, t2, out=lam_plus)
        return lam_minus, lam_plus

    def max_signal_speed(self, prim: np.ndarray, axis: int | None = None) -> float:
        """Largest |characteristic speed|, over one axis or all of them."""
        axes = range(self.ndim) if axis is None else [axis]
        vmax = 0.0
        for ax in axes:
            lam_m, lam_p = self.char_speeds(prim, ax)
            vmax = max(vmax, float(np.max(np.abs(lam_m))), float(np.max(np.abs(lam_p))))
        return vmax

    # -- derived diagnostics ---------------------------------------------------

    def specific_enthalpy(self, prim: np.ndarray) -> np.ndarray:
        rho = prim[self.RHO]
        p = prim[self.P]
        eps = self.eos.eps_from_pressure(rho, p)
        return 1.0 + eps + p / rho

    def total_energy(self, cons: np.ndarray) -> np.ndarray:
        """E = tau + D, the full energy density."""
        return cons[self.TAU] + cons[self.D]

    def __repr__(self):
        return f"SRHDSystem(ndim={self.ndim}, eos={self.eos!r})"
