"""Special-relativistic hydrodynamics in flat-space Valencia form.

State layout (C-order ``(nvars, *grid_shape)`` float64):

- primitives ``P = [rho, v_1, ..., v_ndim, p]``
  (rest-mass density, coordinate 3-velocity components, pressure)
- conserved  ``U = [D, S_1, ..., S_ndim, tau]`` with

  .. math::

     W   &= (1 - v^2)^{-1/2}, \\qquad h = 1 + \\epsilon + p/\\rho \\\\
     D   &= \\rho W \\\\
     S_i &= \\rho h W^2 v_i \\\\
     \\tau &= \\rho h W^2 - p - D

and the flux along direction *k*:

  .. math::

     F^k = [D v^k,\\; S_i v^k + p \\delta_i^k,\\; S_k - D v^k].

Characteristic speeds of the 1-D Jacobian along *k* (Marti & Muller 2003,
Living Reviews):

  .. math::

     \\lambda_0 = v^k, \\quad
     \\lambda_\\pm = \\frac{v^k (1 - c_s^2) \\pm c_s
        \\sqrt{(1 - v^2)\\,[1 - v^k v^k - (v^2 - v^k v^k) c_s^2]}}
       {1 - v^2 c_s^2}.

Everything in this module is fully vectorized over the trailing grid axes.
"""

from __future__ import annotations

import numpy as np

from ..eos.base import EOS
from ..utils.errors import ConfigurationError


class SRHDSystem:
    """The SRHD conservation-law system for a given EOS and dimensionality.

    Parameters
    ----------
    eos:
        Equation of state closing the system.
    ndim:
        Number of velocity components carried (1, 2, or 3). The grid the
        states live on may have the same or lower dimensionality.
    """

    def __init__(self, eos: EOS, ndim: int = 1):
        if ndim not in (1, 2, 3):
            raise ConfigurationError(f"ndim must be 1, 2, or 3, got {ndim}")
        self.eos = eos
        self.ndim = ndim
        #: number of conserved/primitive variables: rho + ndim velocities + p
        self.nvars = ndim + 2

    # -- index helpers -------------------------------------------------------

    @property
    def RHO(self) -> int:
        return 0

    def V(self, axis: int) -> int:
        """Index of velocity component along *axis* (0-based)."""
        return 1 + axis

    @property
    def P(self) -> int:
        return self.nvars - 1

    @property
    def D(self) -> int:
        return 0

    def S(self, axis: int) -> int:
        """Index of momentum component along *axis* (0-based)."""
        return 1 + axis

    @property
    def TAU(self) -> int:
        return self.nvars - 1

    # -- kinematics ----------------------------------------------------------

    def v_squared(self, prim: np.ndarray) -> np.ndarray:
        """v^2 = sum_i v_i v_i (flat metric)."""
        v2 = np.zeros_like(prim[0])
        for ax in range(self.ndim):
            v2 += prim[self.V(ax)] ** 2
        return v2

    def lorentz_factor(self, prim: np.ndarray) -> np.ndarray:
        """W = 1/sqrt(1 - v^2); raises on superluminal input."""
        v2 = self.v_squared(prim)
        if np.any(v2 >= 1.0):
            raise ConfigurationError(
                f"superluminal primitive state: max v^2 = {v2.max():.6g}"
            )
        return 1.0 / np.sqrt(1.0 - v2)

    # -- conversions ---------------------------------------------------------

    def prim_to_con(self, prim: np.ndarray) -> np.ndarray:
        """Map primitives [rho, v_i, p] to conserved [D, S_i, tau]."""
        rho = prim[self.RHO]
        p = prim[self.P]
        W = self.lorentz_factor(prim)
        eps = self.eos.eps_from_pressure(rho, p)
        h = 1.0 + eps + p / rho
        rhohW2 = rho * h * W**2
        cons = np.empty_like(prim)
        cons[self.D] = rho * W
        for ax in range(self.ndim):
            cons[self.S(ax)] = rhohW2 * prim[self.V(ax)]
        cons[self.TAU] = rhohW2 - p - cons[self.D]
        return cons

    # -- fluxes and signal speeds ---------------------------------------------

    def flux(self, prim: np.ndarray, cons: np.ndarray, axis: int = 0) -> np.ndarray:
        """Physical flux F^axis(U) evaluated from matching prim/cons states."""
        vk = prim[self.V(axis)]
        p = prim[self.P]
        F = np.empty_like(cons)
        F[self.D] = cons[self.D] * vk
        for ax in range(self.ndim):
            F[self.S(ax)] = cons[self.S(ax)] * vk
        F[self.S(axis)] += p
        F[self.TAU] = cons[self.S(axis)] - cons[self.D] * vk
        return F

    def sound_speed_sq(self, prim: np.ndarray) -> np.ndarray:
        rho = prim[self.RHO]
        p = prim[self.P]
        eps = self.eos.eps_from_pressure(rho, p)
        return np.clip(self.eos.sound_speed_sq(rho, eps), 0.0, 1.0 - 1e-12)

    def char_speeds(self, prim: np.ndarray, axis: int = 0):
        """Fastest left/right characteristic speeds (lam_minus, lam_plus)."""
        vk = prim[self.V(axis)]
        v2 = self.v_squared(prim)
        cs2 = self.sound_speed_sq(prim)
        one_m_v2 = np.maximum(1.0 - v2, 1e-16)
        disc = one_m_v2 * (1.0 - vk**2 - (v2 - vk**2) * cs2)
        root = np.sqrt(np.maximum(disc, 0.0))
        denom = 1.0 - v2 * cs2
        lam_minus = (vk * (1.0 - cs2) - np.sqrt(cs2) * root) / denom
        lam_plus = (vk * (1.0 - cs2) + np.sqrt(cs2) * root) / denom
        return lam_minus, lam_plus

    def max_signal_speed(self, prim: np.ndarray, axis: int | None = None) -> float:
        """Largest |characteristic speed|, over one axis or all of them."""
        axes = range(self.ndim) if axis is None else [axis]
        vmax = 0.0
        for ax in axes:
            lam_m, lam_p = self.char_speeds(prim, ax)
            vmax = max(vmax, float(np.max(np.abs(lam_m))), float(np.max(np.abs(lam_p))))
        return vmax

    # -- derived diagnostics ---------------------------------------------------

    def specific_enthalpy(self, prim: np.ndarray) -> np.ndarray:
        rho = prim[self.RHO]
        p = prim[self.P]
        eps = self.eos.eps_from_pressure(rho, p)
        return 1.0 + eps + p / rho

    def total_energy(self, cons: np.ndarray) -> np.ndarray:
        """E = tau + D, the full energy density."""
        return cons[self.TAU] + cons[self.D]

    def __repr__(self):
        return f"SRHDSystem(ndim={self.ndim}, eos={self.eos!r})"
