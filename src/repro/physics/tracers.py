"""Passive tracer (composition) transport.

Production relativistic-hydro codes in this family advect passive scalars
alongside the fluid — electron fraction Y_e for ejecta composition, jet
material markers, etc. A tracer Y obeys

    d_t (D Y) + d_k (D Y v^k) = 0,

i.e. its conserved density ``D_Y = rho W Y`` moves with the mass flux.

:class:`TracerSystem` wraps an :class:`~repro.physics.srhd.SRHDSystem`,
appending one conserved/primitive slot per tracer. Recovery is trivial
(``Y = D_Y / D``) and characteristic speeds are unchanged (tracers ride the
contact), so the wrapper simply extends the state layout and delegates the
hydro sector.
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import ConfigurationError
from .srhd import SRHDSystem


class TracerSystem:
    """SRHD system extended with *n_tracers* passively advected scalars.

    Primitive layout: ``[rho, v_i..., p, Y_0, ..., Y_{m-1}]``; conserved
    layout: ``[D, S_i..., tau, D*Y_0, ..., D*Y_{m-1}]``. The hydro sector
    (first ``base.nvars`` slots) is exactly the wrapped system's.
    """

    def __init__(self, base: SRHDSystem, n_tracers: int = 1):
        if n_tracers < 1:
            raise ConfigurationError("need at least one tracer")
        self.base = base
        self.n_tracers = n_tracers
        self.eos = base.eos
        self.ndim = base.ndim
        self.nvars = base.nvars + n_tracers

    # -- index helpers ------------------------------------------------------

    @property
    def RHO(self):
        """Density slot (hydro sector, delegated)."""
        return self.base.RHO

    def V(self, axis):
        """Velocity slot along *axis* (delegated)."""
        return self.base.V(axis)

    @property
    def P(self):
        """Pressure slot (delegated)."""
        return self.base.P

    @property
    def D(self):
        """Conserved rest-mass density slot (delegated)."""
        return self.base.D

    def S(self, axis):
        """Momentum slot along *axis* (delegated)."""
        return self.base.S(axis)

    @property
    def TAU(self):
        """Conserved energy (tau) slot (delegated)."""
        return self.base.TAU

    def Y(self, tracer: int) -> int:
        """Slot of tracer *tracer* (in both prim and cons layouts)."""
        if not 0 <= tracer < self.n_tracers:
            raise ConfigurationError(
                f"tracer index {tracer} out of range [0, {self.n_tracers})"
            )
        return self.base.nvars + tracer

    def _hydro(self, state: np.ndarray) -> np.ndarray:
        return state[: self.base.nvars]

    # -- SRHDSystem interface -------------------------------------------------

    def v_squared(self, prim, out=None, scratch=None, tag="v2"):
        """|v|^2 of the hydro sector (delegated)."""
        return self.base.v_squared(self._hydro(prim), out=out, scratch=scratch, tag=tag)

    def lorentz_factor(self, prim):
        """Lorentz factor of the hydro sector (delegated)."""
        return self.base.lorentz_factor(self._hydro(prim))

    def prim_to_con(self, prim: np.ndarray, out=None, scratch=None, tag="p2c") -> np.ndarray:
        """Hydro conversion plus D_Y = D * Y for every tracer."""
        cons = np.empty_like(prim) if out is None else out
        self.base.prim_to_con(
            self._hydro(prim), out=cons[: self.base.nvars], scratch=scratch, tag=tag
        )
        for m in range(self.n_tracers):
            np.multiply(cons[self.D], prim[self.Y(m)], out=cons[self.Y(m)])
        return cons

    def flux(self, prim: np.ndarray, cons: np.ndarray, axis: int = 0, out=None) -> np.ndarray:
        """Hydro flux plus tracer advection fluxes D_Y v^k."""
        F = np.empty_like(cons) if out is None else out
        self.base.flux(
            self._hydro(prim), self._hydro(cons), axis, out=F[: self.base.nvars]
        )
        vk = prim[self.V(axis)]
        for m in range(self.n_tracers):
            np.multiply(cons[self.Y(m)], vk, out=F[self.Y(m)])
        return F

    def sound_speed_sq(self, prim):
        """Sound speed squared (tracers do not alter acoustics)."""
        return self.base.sound_speed_sq(self._hydro(prim))

    def sound_speed_sq_into(self, prim, out, scratch=None, tag="cs2"):
        """:meth:`sound_speed_sq` writing into *out* (delegated)."""
        return self.base.sound_speed_sq_into(
            self._hydro(prim), out, scratch=scratch, tag=tag
        )

    def char_speeds(self, prim, axis=0, out=None, scratch=None, tag="cs"):
        """Characteristic speeds (tracers ride the contact; unchanged)."""
        return self.base.char_speeds(
            self._hydro(prim), axis, out=out, scratch=scratch, tag=tag
        )

    def max_signal_speed(self, prim, axis=None):
        """Largest |characteristic speed| (delegated)."""
        return self.base.max_signal_speed(self._hydro(prim), axis)

    def specific_enthalpy(self, prim):
        """Specific enthalpy of the hydro sector (delegated)."""
        return self.base.specific_enthalpy(self._hydro(prim))

    def total_energy(self, cons):
        """Total energy E = tau + D of the hydro sector (delegated)."""
        return self.base.total_energy(self._hydro(cons))

    def recover_tracers(self, cons: np.ndarray, prim: np.ndarray) -> None:
        """Fill the tracer slots of *prim* from *cons* (Y = D_Y / D)."""
        D = np.maximum(cons[self.D], 1e-300)
        for m in range(self.n_tracers):
            prim[self.Y(m)] = cons[self.Y(m)] / D

    def __repr__(self):
        return f"TracerSystem(base={self.base!r}, n_tracers={self.n_tracers})"
