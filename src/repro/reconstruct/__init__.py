"""Interface-state reconstruction schemes for the HRSC pipeline.

Use :func:`make_reconstruction` to build a scheme by name:

>>> recon = make_reconstruction("weno5")
>>> qL, qR = recon.interface_states(prim, axis=0, n_ghost=3)
"""

from __future__ import annotations

from ..utils.errors import ConfigurationError
from .base import Reconstruction
from .pc import PiecewiseConstant
from .ppm import PPM
from .tvd import LIMITERS, TVDSlope, minmod, minmod3
from .weno import WENO5, WENOZ

#: all reconstruction scheme names accepted by make_reconstruction
SCHEMES = ("pc", "minmod", "mc", "vanleer", "superbee", "ppm", "weno5", "wenoz")


def make_reconstruction(name: str) -> Reconstruction:
    """Factory: reconstruction scheme by registry name."""
    if name == "pc":
        return PiecewiseConstant()
    if name in LIMITERS:
        return TVDSlope(limiter=name)
    if name == "ppm":
        return PPM()
    if name == "weno5":
        return WENO5()
    if name == "wenoz":
        return WENOZ()
    raise ConfigurationError(f"unknown reconstruction {name!r}; choose from {SCHEMES}")


__all__ = [
    "Reconstruction",
    "PiecewiseConstant",
    "TVDSlope",
    "PPM",
    "WENO5",
    "WENOZ",
    "LIMITERS",
    "SCHEMES",
    "make_reconstruction",
    "minmod",
    "minmod3",
]
