"""Reconstruction interface: cell averages -> left/right interface states.

A reconstruction scheme produces, for every interior face of a ghosted state
array, the states immediately left and right of that face. With ``n``
interior cells along the working axis there are ``n + 1`` interior faces;
face ``k`` (k = 0..n) separates ghosted cells ``g - 1 + k`` and ``g + k``.

All schemes are vectorized: the working axis is moved to the end (a view, no
copy), the formulas are pure slice arithmetic on the last axis, and the
result is moved back.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..utils.errors import ConfigurationError


class Reconstruction(ABC):
    """Base class for interface-state reconstruction schemes."""

    #: registry name
    name: str = "abstract"
    #: ghost layers required on each side
    required_ghosts: int = 1
    #: formal order of accuracy in smooth regions
    order: int = 1

    def interface_states(
        self, q: np.ndarray, axis: int, n_ghost: int, out=None, scratch=None
    ):
        """Left/right states at the n+1 interior faces along *axis*.

        Parameters
        ----------
        q:
            Ghosted array ``(nvars, *shape)``; reconstruction is applied
            componentwise.
        axis:
            Grid axis (0-based, excluding the variable axis).
        n_ghost:
            Ghost layers present in *q* along every axis.
        out:
            Optional preallocated ``(qL, qR)`` pair (face shape along
            *axis*); the states are written in place and *out* returned.
        scratch:
            Optional :class:`~repro.core.workspace.ScratchWorkspace`
            supplying the scheme's intermediate buffers.

        Returns
        -------
        (qL, qR):
            Arrays shaped like *q* but with ``n + 1`` entries along *axis*
            and ghost zones dropped on the remaining axes kept intact.
        """
        if n_ghost < self.required_ghosts:
            raise ConfigurationError(
                f"{self.name} needs {self.required_ghosts} ghost layers, "
                f"grid has {n_ghost}"
            )
        work = np.moveaxis(q, axis + 1, -1)  # view
        wout = None
        if out is not None:
            wout = (
                np.moveaxis(out[0], axis + 1, -1),
                np.moveaxis(out[1], axis + 1, -1),
            )
        qL, qR = self._reconstruct_last_axis(
            work, n_ghost, out=wout, scratch=scratch, tag=(self.name, axis)
        )
        if out is not None:
            return out
        return (
            np.moveaxis(qL, -1, axis + 1),
            np.moveaxis(qR, -1, axis + 1),
        )

    @abstractmethod
    def _reconstruct_last_axis(self, q: np.ndarray, g: int, out=None, scratch=None, tag=None):
        """Compute (qL, qR) with the working axis last.

        Schemes without a native in-place path may compute fresh arrays and
        copy them into *out* — values are identical either way."""

    def __repr__(self):
        return f"<Reconstruction {self.name} (order {self.order})>"


def _nfaces(q: np.ndarray, g: int) -> int:
    """Number of interior faces along the last axis: n + 1."""
    return q.shape[-1] - 2 * g + 1


def cell_view(q: np.ndarray, offset: int, g: int) -> np.ndarray:
    """View of cells ``g - 1 + offset + k`` for faces k = 0..n (length n+1).

    ``offset = 0`` is the cell left of each face, ``offset = 1`` right.
    """
    n_faces = _nfaces(q, g)
    start = g - 1 + offset
    return q[..., start : start + n_faces]
