"""Piecewise-constant (Godunov) reconstruction: first order, unconditionally
monotone. Mostly useful as the robustness baseline in the comparison tables.
"""

from __future__ import annotations

import numpy as np

from .base import Reconstruction, cell_view


class PiecewiseConstant(Reconstruction):
    """First-order reconstruction: interface states are the cell averages."""

    name = "pc"
    required_ghosts = 1
    order = 1

    def _reconstruct_last_axis(self, q: np.ndarray, g: int, out=None, scratch=None, tag=None):
        if out is not None:
            qL, qR = out
            np.copyto(qL, cell_view(q, 0, g))
            np.copyto(qR, cell_view(q, 1, g))
            return qL, qR
        qL = cell_view(q, 0, g).copy()
        qR = cell_view(q, 1, g).copy()
        return qL, qR
