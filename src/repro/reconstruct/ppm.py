"""Piecewise Parabolic Method (Colella & Woodward 1984), simplified.

Fourth-order interface interpolation followed by the CW monotonization of
the parabola in each cell. The steepening and flattening extensions of the
original paper are omitted (standard in relativistic applications that pair
PPM with a characteristic-free componentwise reconstruction).
"""

from __future__ import annotations

import numpy as np

from .base import Reconstruction, cell_view
from .tvd import slope_mc


def _monotonize(a: np.ndarray, aL: np.ndarray, aR: np.ndarray):
    """CW84 parabola limiting for cell averages *a* with edges aL/aR.

    Returns monotonized (aL, aR) without modifying the inputs.
    """
    aL = aL.copy()
    aR = aR.copy()
    # Local extremum: flatten to piecewise constant.
    extremum = (aR - a) * (a - aL) <= 0.0
    aL[extremum] = a[extremum]
    aR[extremum] = a[extremum]
    # Overshoot control: keep the parabola's extremum outside the cell.
    d = aR - aL
    mid = a - 0.5 * (aL + aR)
    over_l = d * mid > d * d / 6.0
    over_r = -(d * d) / 6.0 > d * mid
    aL[over_l] = (3.0 * a - 2.0 * aR)[over_l]
    aR[over_r] = (3.0 * a - 2.0 * aL)[over_r]
    return aL, aR


class PPM(Reconstruction):
    """Simplified piecewise-parabolic reconstruction (3rd order smooth)."""

    name = "ppm"
    required_ghosts = 3
    order = 3

    def _reconstruct_last_axis(self, q: np.ndarray, g: int, out=None, scratch=None, tag=None):
        def iface(offset):
            """4th-order interface value at face (offset) relative to each face.

            offset=0 gives the face itself; offset=-1 the face one cell left.
            Uses cells offset-1..offset+2 around the face.
            """
            cm1 = cell_view(q, offset - 1, g)
            c0 = cell_view(q, offset, g)
            c1 = cell_view(q, offset + 1, g)
            c2 = cell_view(q, offset + 2, g)
            # Limited 4th-order interpolation (CW84 eq. 1.6 with MC slopes).
            d0 = 0.5 * slope_mc(c0 - cm1, c1 - c0)
            d1 = 0.5 * slope_mc(c1 - c0, c2 - c1)
            return 0.5 * (c0 + c1) - (d1 - d0) / 3.0

        # Interface values bracketing the left cell (i) and right cell (i+1)
        # of every face k.
        f_m = iface(-1)  # face i-1/2
        f_0 = iface(0)  # face i+1/2 (the working face)
        f_p = iface(1)  # face i+3/2

        a_l = cell_view(q, 0, g)  # cell i averages
        a_r = cell_view(q, 1, g)  # cell i+1 averages

        # Monotonize the parabola in cell i -> right edge is the face-L state.
        _, qL = _monotonize(a_l, f_m, f_0.copy())
        # Monotonize in cell i+1 -> left edge is the face-R state.
        qR, _ = _monotonize(a_r, f_0.copy(), f_p)
        if out is not None:
            np.copyto(out[0], qL)
            np.copyto(out[1], qR)
            return out
        return qL, qR
