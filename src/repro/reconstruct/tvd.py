"""TVD slope-limited linear reconstruction (second order).

Cell *i* gets a limited slope ``sigma_i`` from its neighbour differences;
interface states are ``qL = q_i + sigma_i / 2`` and ``qR = q_{i+1} -
sigma_{i+1} / 2``. Limiters: minmod, MC (monotonized central), van Leer,
superbee — the standard menu in relativistic HRSC codes.

Every limiter takes optional ``out``/``scratch``/``tag`` arguments and then
runs fully in place (the hot path allocates nothing); without them the
behaviour is the original allocate-per-call one. Both paths produce
bit-identical values: the in-place forms replicate the original
``np.where`` selections with masked ``np.copyto`` and preserve the
operation order of every arithmetic expression. ``out`` must not alias the
inputs.
"""

from __future__ import annotations

import numpy as np

from ..core.workspace import scratch_buf
from ..utils.errors import ConfigurationError
from .base import Reconstruction, cell_view


def minmod(a: np.ndarray, b: np.ndarray, out=None, scratch=None, tag="mm") -> np.ndarray:
    """Classic two-argument minmod:
    ``where(a*b > 0, where(|a| < |b|, a, b), 0)``."""
    if out is None:
        out = np.empty_like(np.asarray(a, dtype=float))
    shape = out.shape
    t = scratch_buf(scratch, (tag, "mm_t"), shape)
    np.multiply(a, b, out=t)
    pos = scratch_buf(scratch, (tag, "mm_pos"), shape, dtype=bool)
    np.greater(t, 0.0, out=pos)
    ta = scratch_buf(scratch, (tag, "mm_ta"), shape)
    np.abs(a, out=ta)
    np.abs(b, out=t)
    lt = scratch_buf(scratch, (tag, "mm_lt"), shape, dtype=bool)
    np.less(ta, t, out=lt)
    np.copyto(out, b)
    np.copyto(out, a, where=lt)
    np.logical_not(pos, out=pos)
    np.copyto(out, 0.0, where=pos)
    return out


def minmod3(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, out=None, scratch=None, tag="m3"
) -> np.ndarray:
    """Three-argument minmod (all same sign -> smallest magnitude, else 0)."""
    if out is None:
        out = np.empty_like(np.asarray(a, dtype=float))
    shape = out.shape
    sa = scratch_buf(scratch, (tag, "m3_sa"), shape)
    np.sign(a, out=sa)
    t1 = scratch_buf(scratch, (tag, "m3_t1"), shape)
    t2 = scratch_buf(scratch, (tag, "m3_t2"), shape)
    same = scratch_buf(scratch, (tag, "m3_same"), shape, dtype=bool)
    bt = scratch_buf(scratch, (tag, "m3_bt"), shape, dtype=bool)
    # same = (sign(a) == sign(b)) & (sign(b) == sign(c)) & (a != 0)
    np.sign(b, out=t1)
    np.sign(c, out=t2)
    np.equal(sa, t1, out=same)
    np.equal(t1, t2, out=bt)
    np.logical_and(same, bt, out=same)
    np.not_equal(a, 0.0, out=bt)
    np.logical_and(same, bt, out=same)
    # mag = min(|a|, min(|b|, |c|))
    np.abs(b, out=t1)
    np.abs(c, out=t2)
    np.minimum(t1, t2, out=t1)
    np.abs(a, out=t2)
    np.minimum(t2, t1, out=t1)
    np.multiply(sa, t1, out=out)
    np.logical_not(same, out=same)
    np.copyto(out, 0.0, where=same)
    return out


def slope_minmod(dm: np.ndarray, dp: np.ndarray, out=None, scratch=None, tag="mm"):
    return minmod(dm, dp, out=out, scratch=scratch, tag=tag)


def slope_mc(dm: np.ndarray, dp: np.ndarray, out=None, scratch=None, tag="mc"):
    """Monotonized central: minmod(2 dm, 2 dp, (dm + dp)/2)."""
    shape = np.asarray(dm).shape
    a2 = scratch_buf(scratch, (tag, "mc_a"), shape)
    b2 = scratch_buf(scratch, (tag, "mc_b"), shape)
    cc = scratch_buf(scratch, (tag, "mc_c"), shape)
    np.multiply(dm, 2.0, out=a2)
    np.multiply(dp, 2.0, out=b2)
    np.add(dm, dp, out=cc)
    np.multiply(cc, 0.5, out=cc)
    return minmod3(a2, b2, cc, out=out, scratch=scratch, tag=tag)


def slope_vanleer(dm: np.ndarray, dp: np.ndarray, out=None, scratch=None, tag="vl"):
    if out is None:
        out = np.empty_like(np.asarray(dm, dtype=float))
    shape = out.shape
    prod = scratch_buf(scratch, (tag, "vl_p"), shape)
    np.multiply(dm, dp, out=prod)
    denom = scratch_buf(scratch, (tag, "vl_d"), shape)
    np.add(dm, dp, out=denom)
    safe = scratch_buf(scratch, (tag, "vl_safe"), shape, dtype=bool)
    np.greater(prod, 0.0, out=safe)
    t = scratch_buf(scratch, (tag, "vl_t"), shape)
    np.abs(denom, out=t)
    bt = scratch_buf(scratch, (tag, "vl_bt"), shape, dtype=bool)
    np.greater(t, 1e-300, out=bt)
    np.logical_and(safe, bt, out=safe)
    # 2 prod / where(safe, denom, 1), zeroed outside the safe mask.
    t.fill(1.0)
    np.copyto(t, denom, where=safe)
    np.multiply(prod, 2.0, out=prod)
    np.divide(prod, t, out=out)
    np.logical_not(safe, out=safe)
    np.copyto(out, 0.0, where=safe)
    return out


def slope_superbee(dm: np.ndarray, dp: np.ndarray, out=None, scratch=None, tag="sb"):
    if out is None:
        out = np.empty_like(np.asarray(dm, dtype=float))
    shape = out.shape
    d2 = scratch_buf(scratch, (tag, "sb_d2"), shape)
    s1 = scratch_buf(scratch, (tag, "sb_s1"), shape)
    np.multiply(dm, 2.0, out=d2)
    minmod(d2, dp, out=s1, scratch=scratch, tag=(tag, "sb"))
    np.multiply(dp, 2.0, out=d2)
    s2 = scratch_buf(scratch, (tag, "sb_s2"), shape)
    minmod(dm, d2, out=s2, scratch=scratch, tag=(tag, "sb"))
    t1 = scratch_buf(scratch, (tag, "sb_t1"), shape)
    np.abs(s1, out=t1)
    np.abs(s2, out=d2)
    gt = scratch_buf(scratch, (tag, "sb_gt"), shape, dtype=bool)
    np.greater(t1, d2, out=gt)
    np.copyto(out, s2)
    np.copyto(out, s1, where=gt)
    return out


LIMITERS = {
    "minmod": slope_minmod,
    "mc": slope_mc,
    "vanleer": slope_vanleer,
    "superbee": slope_superbee,
}


class TVDSlope(Reconstruction):
    """Second-order TVD reconstruction with a selectable slope limiter."""

    required_ghosts = 2
    order = 2

    def __init__(self, limiter: str = "mc"):
        if limiter not in LIMITERS:
            raise ConfigurationError(
                f"unknown limiter {limiter!r}; choose from {sorted(LIMITERS)}"
            )
        self.limiter_name = limiter
        self.limiter = LIMITERS[limiter]
        self.name = limiter

    def _reconstruct_last_axis(self, q: np.ndarray, g: int, out=None, scratch=None, tag=None):
        # Slopes for the left cell (offset 0) and the right cell (offset 1)
        # of every face.  d{m,p} are backward/forward neighbour differences.
        cm1 = cell_view(q, -1, g)
        c0 = cell_view(q, 0, g)
        c1 = cell_view(q, 1, g)
        c2 = cell_view(q, 2, g)
        dm = np.subtract(c0, cm1, out=scratch_buf(scratch, (tag, "dm"), c0.shape))
        d0 = np.subtract(c1, c0, out=scratch_buf(scratch, (tag, "d0"), c0.shape))
        dp = np.subtract(c2, c1, out=scratch_buf(scratch, (tag, "dp"), c0.shape))
        if out is not None:
            qL, qR = out
        else:
            qL = np.empty(c0.shape)
            qR = np.empty(c0.shape)
        # The limited slopes land directly in the face-state outputs.
        self.limiter(dm, d0, out=qL, scratch=scratch, tag=(tag, "lim"))
        self.limiter(d0, dp, out=qR, scratch=scratch, tag=(tag, "lim"))
        # qL = c0 + sigma_l / 2, qR = c1 - sigma_r / 2, staged in the outputs.
        np.multiply(qL, 0.5, out=qL)
        np.add(c0, qL, out=qL)
        np.multiply(qR, 0.5, out=qR)
        np.subtract(c1, qR, out=qR)
        return qL, qR
