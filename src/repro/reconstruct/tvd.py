"""TVD slope-limited linear reconstruction (second order).

Cell *i* gets a limited slope ``sigma_i`` from its neighbour differences;
interface states are ``qL = q_i + sigma_i / 2`` and ``qR = q_{i+1} -
sigma_{i+1} / 2``. Limiters: minmod, MC (monotonized central), van Leer,
superbee — the standard menu in relativistic HRSC codes.
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import ConfigurationError
from .base import Reconstruction, cell_view


def minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Classic two-argument minmod."""
    return np.where(a * b > 0.0, np.where(np.abs(a) < np.abs(b), a, b), 0.0)


def minmod3(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Three-argument minmod (all same sign -> smallest magnitude, else 0)."""
    same = (np.sign(a) == np.sign(b)) & (np.sign(b) == np.sign(c)) & (a != 0.0)
    mag = np.minimum(np.abs(a), np.minimum(np.abs(b), np.abs(c)))
    return np.where(same, np.sign(a) * mag, 0.0)


def slope_minmod(dm: np.ndarray, dp: np.ndarray) -> np.ndarray:
    return minmod(dm, dp)


def slope_mc(dm: np.ndarray, dp: np.ndarray) -> np.ndarray:
    """Monotonized central: minmod(2 dm, 2 dp, (dm + dp)/2)."""
    return minmod3(2.0 * dm, 2.0 * dp, 0.5 * (dm + dp))


def slope_vanleer(dm: np.ndarray, dp: np.ndarray) -> np.ndarray:
    prod = dm * dp
    denom = dm + dp
    safe = (prod > 0.0) & (np.abs(denom) > 1e-300)
    return np.where(safe, 2.0 * prod / np.where(safe, denom, 1.0), 0.0)


def slope_superbee(dm: np.ndarray, dp: np.ndarray) -> np.ndarray:
    s1 = minmod(2.0 * dm, dp)
    s2 = minmod(dm, 2.0 * dp)
    return np.where(np.abs(s1) > np.abs(s2), s1, s2)


LIMITERS = {
    "minmod": slope_minmod,
    "mc": slope_mc,
    "vanleer": slope_vanleer,
    "superbee": slope_superbee,
}


class TVDSlope(Reconstruction):
    """Second-order TVD reconstruction with a selectable slope limiter."""

    required_ghosts = 2
    order = 2

    def __init__(self, limiter: str = "mc"):
        if limiter not in LIMITERS:
            raise ConfigurationError(
                f"unknown limiter {limiter!r}; choose from {sorted(LIMITERS)}"
            )
        self.limiter_name = limiter
        self.limiter = LIMITERS[limiter]
        self.name = limiter

    def _reconstruct_last_axis(self, q: np.ndarray, g: int):
        # Slopes for the left cell (offset 0) and the right cell (offset 1)
        # of every face.  d{m,p} are backward/forward neighbour differences.
        cm1 = cell_view(q, -1, g)
        c0 = cell_view(q, 0, g)
        c1 = cell_view(q, 1, g)
        c2 = cell_view(q, 2, g)
        sigma_l = self.limiter(c0 - cm1, c1 - c0)
        sigma_r = self.limiter(c1 - c0, c2 - c1)
        qL = c0 + 0.5 * sigma_l
        qR = c1 - 0.5 * sigma_r
        return qL, qR
