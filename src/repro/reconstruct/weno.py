"""WENO5 reconstruction (Jiang & Shu 1996), componentwise.

Fifth-order accurate in smooth regions, essentially non-oscillatory at
discontinuities. The left-biased reconstruction at face i+1/2 combines the
three 3-cell candidate stencils {i-2..i}, {i-1..i+1}, {i..i+2}; the
right-biased one is its mirror image.
"""

from __future__ import annotations

import numpy as np

from .base import Reconstruction, cell_view

#: ideal (linear) weights of the three candidate stencils
_IDEAL = (0.1, 0.6, 0.3)
#: smoothness-indicator regularization
_EPS_WENO = 1e-40


def _weno5_biased(cm2, cm1, c0, cp1, cp2):
    """Left-biased WENO5 value at the right face of the central cell c0.

    Arguments are the five cell averages of the stencil, ordered along the
    bias direction. The mirrored call gives the right-biased value.
    """
    # Candidate polynomial values at the face.
    p0 = (2.0 * cm2 - 7.0 * cm1 + 11.0 * c0) / 6.0
    p1 = (-cm1 + 5.0 * c0 + 2.0 * cp1) / 6.0
    p2 = (2.0 * c0 + 5.0 * cp1 - cp2) / 6.0

    # Jiang-Shu smoothness indicators.
    b0 = (13.0 / 12.0) * (cm2 - 2.0 * cm1 + c0) ** 2 + 0.25 * (
        cm2 - 4.0 * cm1 + 3.0 * c0
    ) ** 2
    b1 = (13.0 / 12.0) * (cm1 - 2.0 * c0 + cp1) ** 2 + 0.25 * (cm1 - cp1) ** 2
    b2 = (13.0 / 12.0) * (c0 - 2.0 * cp1 + cp2) ** 2 + 0.25 * (
        3.0 * c0 - 4.0 * cp1 + cp2
    ) ** 2

    a0 = _IDEAL[0] / (b0 + _EPS_WENO) ** 2
    a1 = _IDEAL[1] / (b1 + _EPS_WENO) ** 2
    a2 = _IDEAL[2] / (b2 + _EPS_WENO) ** 2
    asum = a0 + a1 + a2
    return (a0 * p0 + a1 * p1 + a2 * p2) / asum


def _wenoz_biased(cm2, cm1, c0, cp1, cp2):
    """WENO-Z variant (Borges et al. 2008): the global indicator
    ``tau5 = |b0 - b2|`` restores 5th order at smooth critical points where
    classic Jiang-Shu weights degrade to 3rd."""
    p0 = (2.0 * cm2 - 7.0 * cm1 + 11.0 * c0) / 6.0
    p1 = (-cm1 + 5.0 * c0 + 2.0 * cp1) / 6.0
    p2 = (2.0 * c0 + 5.0 * cp1 - cp2) / 6.0

    b0 = (13.0 / 12.0) * (cm2 - 2.0 * cm1 + c0) ** 2 + 0.25 * (
        cm2 - 4.0 * cm1 + 3.0 * c0
    ) ** 2
    b1 = (13.0 / 12.0) * (cm1 - 2.0 * c0 + cp1) ** 2 + 0.25 * (cm1 - cp1) ** 2
    b2 = (13.0 / 12.0) * (c0 - 2.0 * cp1 + cp2) ** 2 + 0.25 * (
        3.0 * c0 - 4.0 * cp1 + cp2
    ) ** 2

    tau5 = np.abs(b0 - b2)
    a0 = _IDEAL[0] * (1.0 + (tau5 / (b0 + _EPS_WENO)) ** 2)
    a1 = _IDEAL[1] * (1.0 + (tau5 / (b1 + _EPS_WENO)) ** 2)
    a2 = _IDEAL[2] * (1.0 + (tau5 / (b2 + _EPS_WENO)) ** 2)
    asum = a0 + a1 + a2
    return (a0 * p0 + a1 * p1 + a2 * p2) / asum


class WENO5(Reconstruction):
    """Fifth-order weighted essentially non-oscillatory reconstruction."""

    name = "weno5"
    required_ghosts = 3
    order = 5
    _biased = staticmethod(_weno5_biased)

    def _reconstruct_last_axis(self, q: np.ndarray, g: int, out=None, scratch=None, tag=None):
        # Left state at face k comes from cell i = g-1+k, biased rightward.
        qL = self._biased(
            cell_view(q, -2, g),
            cell_view(q, -1, g),
            cell_view(q, 0, g),
            cell_view(q, 1, g),
            cell_view(q, 2, g),
        )
        # Right state comes from cell i+1, biased leftward (mirror).
        qR = self._biased(
            cell_view(q, 3, g),
            cell_view(q, 2, g),
            cell_view(q, 1, g),
            cell_view(q, 0, g),
            cell_view(q, -1, g),
        )
        if out is not None:
            np.copyto(out[0], qL)
            np.copyto(out[1], qR)
            return out
        return qL, qR


class WENOZ(WENO5):
    """WENO-Z: improved weights, full order at smooth extrema."""

    name = "wenoz"
    _biased = staticmethod(_wenoz_biased)
