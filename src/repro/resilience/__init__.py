"""Fault injection and recovery for chaos-tested runs.

Two halves, deliberately separated:

- :mod:`~repro.resilience.faults` — *what goes wrong*: a seeded, declarative
  :class:`FaultPlan` (JSON round-trip) executed by a :class:`FaultInjector`
  hooked into the communicator, the con2prim pipeline, and the cluster
  simulator.
- :mod:`~repro.resilience.policies` — *how the system survives*: halo retry
  with exponential backoff, bounded con2prim failsafe (configured via
  ``SolverConfig.failsafe_frac``), device blacklisting + task re-execution
  (built into the scheduler/simulator), and periodic checkpoint with
  :func:`run_with_restart`.

:mod:`~repro.resilience.chaos` ties them together into reference scenarios
the chaos test suite (and ``pytest -m chaos``) exercises end to end.
"""

from .chaos import default_chaos_plan, run_chaos_shocktube, run_modelled_failover
from .faults import (
    Con2PrimFault,
    DeviceFault,
    FaultInjector,
    FaultPlan,
    HaloFault,
    ProcessFault,
    corrupt_payload,
)
from .oracle import ExchangeSchedule, FaultOracle, RankStridedFaultInjector
from .policies import (
    HaloRetryPolicy,
    RestartPolicy,
    SupervisionPolicy,
    blocking_retry_policy,
    run_with_restart,
)

__all__ = [
    "FaultPlan",
    "HaloFault",
    "DeviceFault",
    "Con2PrimFault",
    "ProcessFault",
    "FaultInjector",
    "corrupt_payload",
    "ExchangeSchedule",
    "FaultOracle",
    "RankStridedFaultInjector",
    "HaloRetryPolicy",
    "blocking_retry_policy",
    "RestartPolicy",
    "SupervisionPolicy",
    "run_with_restart",
    "default_chaos_plan",
    "run_chaos_shocktube",
    "run_modelled_failover",
]
