"""Reference chaos scenarios: seeded fault plans run end to end.

These are the executable form of the resilience story: a distributed
shock-tube that survives dropped/corrupted/duplicated halo messages plus a
con2prim non-convergence burst, and a modelled heterogeneous node that loses
a device mid-timeline and re-executes its in-flight work elsewhere.  The
chaos test suite (``pytest -m chaos``) asserts both that recovery happened
(``resilience.*`` counters advanced) and that the recovered physics matches
a fault-free run.
"""

from __future__ import annotations

import numpy as np

from ..boundary.conditions import make_boundaries
from ..core.config import SolverConfig
from ..core.distributed import DistributedSolver
from ..eos import IdealGasEOS
from ..mesh.grid import Grid
from ..obs.events import BufferSink, JsonlEventSink
from ..obs.recorder import StepRecorder
from ..physics.initial_data import RP1, shock_tube
from ..physics.srhd import SRHDSystem
from .faults import Con2PrimFault, DeviceFault, FaultInjector, FaultPlan, HaloFault
from .policies import HaloRetryPolicy


def default_chaos_plan(seed: int = 12345) -> FaultPlan:
    """A representative mixed fault plan for the distributed shock-tube.

    Exchange 0 is the constructor's initial ghost fill; each SSP-RK3 step
    adds three stage exchanges (plus one dt-recovery exchange from step 2
    on), so the indices below land within the first handful of steps of any
    run.  The device fault only matters to :func:`run_modelled_failover` —
    the distributed solver has no devices and ignores it.
    """
    return FaultPlan(
        seed=seed,
        halo=[
            HaloFault(kind="drop", exchange=2, message=0),
            HaloFault(kind="corrupt", exchange=5, message=1),
            HaloFault(kind="duplicate", exchange=8, message=0),
            HaloFault(kind="drop", exchange=12, message=1),
        ],
        devices=[DeviceFault(device="gpu0", kind="fail", at_s=5e-4)],
        con2prim=[Con2PrimFault(sweep=20, n_cells=3)],
    )


def run_chaos_shocktube(
    plan: FaultPlan | None = None,
    n: int = 128,
    dims=(2,),
    t_final: float = 0.1,
    max_steps: int | None = None,
    failsafe_frac: float = 0.05,
    policy: HaloRetryPolicy | None = None,
    events_path=None,
    reference: bool = True,
) -> dict:
    """Run the RP1 shock-tube distributed over *dims* under a fault plan.

    Returns a dict with the faulted solver, its gathered interior
    primitives, the final metrics snapshot, the per-step records (or the
    JSONL path when *events_path* is given), and — with *reference* — the
    fault-free primitives plus ``max_abs_diff`` against them.

    Halo faults are fully absorbed by checksum-verified retransmission, so
    the only physical deviation from the fault-free run comes from
    atmosphere-reset burst cells; with the default 3-cell burst the
    difference stays localized and bounded (the chaos tests pin the
    tolerance).
    """
    problem = RP1
    system = SRHDSystem(IdealGasEOS(gamma=problem.gamma), ndim=1)
    grid = Grid((n,), ((0.0, 1.0),))
    config = SolverConfig(failsafe_frac=failsafe_frac)
    bcs = make_boundaries("outflow")

    plan = plan if plan is not None else default_chaos_plan()
    injector = FaultInjector(plan)
    policy = policy if policy is not None else HaloRetryPolicy()
    sink = JsonlEventSink(events_path) if events_path else BufferSink()
    recorder = StepRecorder(
        sink,
        meta={"problem": problem.name, "chaos": True, "plan_seed": plan.seed},
    )
    solver = DistributedSolver(
        system,
        grid,
        shock_tube(system, grid, problem),
        dims,
        config,
        bcs,
        recorder=recorder,
        fault_injector=injector,
        halo_policy=policy,
    )
    solver.run(t_final, max_steps=max_steps)
    primitives = solver.gather_primitives()
    recorder.finish(t_end=solver.t)
    recorder.close()

    result = {
        "solver": solver,
        "primitives": primitives,
        "metrics": solver.metrics.snapshot(),
        "records": getattr(sink, "records", None),
        "events_path": events_path,
    }
    if reference:
        ref = DistributedSolver(
            system,
            grid,
            shock_tube(system, grid, problem),
            dims,
            SolverConfig(failsafe_frac=failsafe_frac),
            bcs,
        )
        ref.run(t_final, max_steps=max_steps)
        ref_prim = ref.gather_primitives()
        result["reference"] = ref_prim
        result["max_abs_diff"] = float(np.max(np.abs(primitives - ref_prim)))
    return result


def run_modelled_failover(
    plan: FaultPlan | None = None,
    n_blocks: int = 16,
    cells_per_block: int = 64 * 64,
    scheduler: str = "dynamic",
    metrics=None,
) -> dict:
    """One modelled hydro step on a CPU+GPU node that loses the GPU mid-run.

    Builds the same per-block kernel DAG the scheduler experiments use,
    injects the plan's device faults into a :class:`ClusterSimulator`, and
    returns the completed timeline plus the metrics snapshot — every task
    that was in flight on the failed device is re-executed on a survivor
    (``resilience.tasks_reexecuted``), and the timeline still validates all
    DAG dependencies.
    """
    # Deferred imports keep repro.resilience importable without the runtime
    # extra dependencies (networkx) when only solver-side chaos is wanted.
    from ..obs.metrics import MetricsRegistry
    from ..runtime.device import make_cpu, make_gpu
    from ..runtime.scheduler import make_scheduler
    from ..runtime.simulator import ClusterSimulator

    plan = plan if plan is not None else default_chaos_plan()
    metrics = metrics if metrics is not None else MetricsRegistry()
    injector = FaultInjector(plan, metrics=metrics)

    cpu = make_cpu("cpu0")
    gpu = make_gpu("gpu0", cpu=cpu)
    graph = _failover_dag(n_blocks, cells_per_block)

    def cost(task, device):
        return device.kernel_time(task.kernel, task.n_cells)

    sim = ClusterSimulator(
        [cpu, gpu],
        cost,
        make_scheduler(scheduler),
        fault_injector=injector,
        metrics=metrics,
    )
    timeline = sim.run(graph)
    return {
        "timeline": timeline,
        "metrics": metrics.snapshot(),
        "makespan": timeline.makespan,
        "devices_used": sorted({r.device for r in timeline.records}),
    }


def _failover_dag(n_blocks: int, cells_per_block: int):
    """Per-block con2prim -> reconstruct -> riemann -> update chains with a
    halo wavefront between neighbours (the E9 DAG shape, fixed sizes)."""
    from ..runtime.dag import TaskGraph
    from ..runtime.task import Task

    tasks = []
    for b in range(n_blocks):
        tasks.append(
            Task(id=f"c2p-{b}", kernel="con2prim", n_cells=cells_per_block, block=b)
        )
        halo_deps = [f"c2p-{b}"] + [
            f"c2p-{nbr}" for nbr in (b - 1, b + 1) if 0 <= nbr < n_blocks
        ]
        tasks.append(
            Task(
                id=f"recon-{b}",
                kernel="reconstruct",
                n_cells=cells_per_block,
                deps=tuple(halo_deps),
                block=b,
            )
        )
        tasks.append(
            Task(
                id=f"rie-{b}",
                kernel="riemann",
                n_cells=cells_per_block,
                deps=(f"recon-{b}",),
                block=b,
            )
        )
        tasks.append(
            Task(
                id=f"upd-{b}",
                kernel="update",
                n_cells=cells_per_block,
                deps=(f"rie-{b}",),
                block=b,
            )
        )
    return TaskGraph(tasks)
