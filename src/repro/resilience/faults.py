"""Deterministic, seeded fault injection for chaos testing.

A :class:`FaultPlan` is a declarative description of every fault a run must
survive — dropped/duplicated/corrupted halo messages, devices that die or
slow down mid-timeline, and forced con2prim non-convergence bursts.  Plans
are plain data (JSON round-trip) and seeded, so the same plan always yields
the same fault sequence: chaos runs are reproducible experiments, not
flaky ones.

A :class:`FaultInjector` executes a plan.  It is handed to the layers it
targets (:class:`~repro.comm.communicator.SimCommunicator`,
:class:`~repro.core.pipeline.HydroPipeline`,
:class:`~repro.runtime.simulator.ClusterSimulator`) and consulted at each
injection point; every injected fault is counted through the shared
:class:`~repro.obs.metrics.MetricsRegistry` under ``resilience.fault.*``.

Fault addressing
----------------
Halo faults are keyed by ``(exchange, message)``: the exchange index counts
calls to :func:`~repro.comm.halo.exchange_halos` on the faulted
communicator, and the message index counts injectable sends *within* that
exchange — including retransmissions, which is what makes ``times > 1``
(hit the retry too) meaningful.  Con2prim faults are keyed by the global
sweep index (one sweep per :meth:`HydroPipeline.recover_primitives` call).
Device faults are keyed by device name and simulated time.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass, field

import numpy as np

from ..utils.errors import ConfigurationError

HALO_FAULT_KINDS = ("drop", "duplicate", "corrupt")
DEVICE_FAULT_KINDS = ("fail", "straggle")
PROCESS_FAULT_KINDS = ("kill_rank", "hang_rank")


def corrupt_payload(payload: np.ndarray, scale: float) -> np.ndarray:
    """The canonical in-flight corruption: perturb ~4 evenly spread entries.

    Shared by the serial injector and the shared-memory sender so a
    corrupted strip is bit-identical on both substrates.
    """
    corrupted = np.array(payload, copy=True)
    flat = corrupted.reshape(-1)
    stride = max(1, flat.size // 4)
    flat[::stride] += scale * (1.0 + np.abs(flat[::stride]))
    return corrupted


@dataclass(frozen=True)
class HaloFault:
    """One fault on a halo message.

    Attributes
    ----------
    kind:
        ``"drop"`` (message lost), ``"duplicate"`` (delivered twice), or
        ``"corrupt"`` (payload perturbed in flight).
    exchange:
        Index of the halo exchange the fault strikes (0-based).
    message:
        Index of the injectable send within that exchange.
    times:
        How many consecutive sends of the *same* (src, dest, tag) message
        to affect — ``times > max_attempts`` exhausts the retry budget.
    scale:
        Corruption amplitude (``corrupt`` only).
    """

    kind: str
    exchange: int
    message: int
    times: int = 1
    scale: float = 10.0

    def __post_init__(self):
        if self.kind not in HALO_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown halo fault kind {self.kind!r}; "
                f"choose from {HALO_FAULT_KINDS}"
            )
        if self.times < 1:
            raise ConfigurationError(f"halo fault times must be >= 1, got {self.times}")


@dataclass(frozen=True)
class DeviceFault:
    """A device that fails or slows down at a simulated time.

    Attributes
    ----------
    device:
        Device name in the simulated cluster.
    kind:
        ``"fail"`` (device dies; in-flight work is lost and re-executed) or
        ``"straggle"`` (tasks starting after *at_s* run *factor* x slower).
    at_s:
        Onset time in simulated seconds.
    factor:
        Slowdown multiplier (``straggle`` only).
    """

    device: str
    kind: str
    at_s: float
    factor: float = 4.0

    def __post_init__(self):
        if self.kind not in DEVICE_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown device fault kind {self.kind!r}; "
                f"choose from {DEVICE_FAULT_KINDS}"
            )
        if self.at_s < 0:
            raise ConfigurationError(f"device fault at_s must be >= 0, got {self.at_s}")
        if self.kind == "straggle" and self.factor <= 1:
            raise ConfigurationError(
                f"straggler factor must be > 1, got {self.factor}"
            )


@dataclass(frozen=True)
class Con2PrimFault:
    """Force *n_cells* of one recovery sweep to be treated as unrecoverable."""

    sweep: int
    n_cells: int

    def __post_init__(self):
        if self.n_cells < 1:
            raise ConfigurationError(
                f"con2prim fault n_cells must be >= 1, got {self.n_cells}"
            )


@dataclass(frozen=True)
class ProcessFault:
    """Kill or wedge one real rank process of a supervised run.

    Injected by the *parent* of the process executor (the targeted worker
    cannot cooperate — that is the point): ``kill_rank`` delivers SIGKILL,
    ``hang_rank`` delivers SIGSTOP, right after the ``step`` command for
    the addressed step is issued, so the fault lands mid-step.

    Attributes
    ----------
    kind:
        ``"kill_rank"`` (process dies instantly) or ``"hang_rank"``
        (process freezes; detected via heartbeat staleness).
    rank:
        The rank process to target.
    step:
        1-based step index during which the fault strikes.
    """

    kind: str
    rank: int
    step: int = 1

    def __post_init__(self):
        if self.kind not in PROCESS_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown process fault kind {self.kind!r}; "
                f"choose from {PROCESS_FAULT_KINDS}"
            )
        if self.rank < 0:
            raise ConfigurationError(
                f"process fault rank must be >= 0, got {self.rank}"
            )
        if self.step < 1:
            raise ConfigurationError(
                f"process fault step must be >= 1, got {self.step}"
            )


@dataclass
class FaultPlan:
    """A complete, seeded fault schedule for one chaos run.

    ``halo_random`` adds Bernoulli faults on top of the deterministic list:
    ``{"p_drop": 0.01, "p_duplicate": 0.0, "p_corrupt": 0.0}`` — draws come
    from a generator seeded with ``seed``, so the sequence is still fully
    reproducible.
    """

    seed: int = 0
    halo: list[HaloFault] = field(default_factory=list)
    devices: list[DeviceFault] = field(default_factory=list)
    con2prim: list[Con2PrimFault] = field(default_factory=list)
    halo_random: dict[str, float] = field(default_factory=dict)
    processes: list[ProcessFault] = field(default_factory=list)

    def __post_init__(self):
        known = {"p_drop", "p_duplicate", "p_corrupt"}
        bad = set(self.halo_random) - known
        if bad:
            raise ConfigurationError(
                f"unknown halo_random keys {sorted(bad)}; choose from {sorted(known)}"
            )
        names = [d.device for d in self.devices]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate device fault targets: {names}")

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "halo": [asdict(f) for f in self.halo],
            "devices": [asdict(f) for f in self.devices],
            "con2prim": [asdict(f) for f in self.con2prim],
            "halo_random": dict(self.halo_random),
            "processes": [asdict(f) for f in self.processes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        unknown = set(data) - {
            "seed", "halo", "devices", "con2prim", "halo_random", "processes"
        }
        if unknown:
            raise ConfigurationError(f"unknown fault plan keys {sorted(unknown)}")
        return cls(
            seed=int(data.get("seed", 0)),
            halo=[HaloFault(**f) for f in data.get("halo", [])],
            devices=[DeviceFault(**f) for f in data.get("devices", [])],
            con2prim=[Con2PrimFault(**f) for f in data.get("con2prim", [])],
            halo_random=dict(data.get("halo_random", {})),
            processes=[ProcessFault(**f) for f in data.get("processes", [])],
        )

    def save(self, path) -> None:
        pathlib.Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "FaultPlan":
        try:
            data = json.loads(pathlib.Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot read fault plan {path}: {exc}") from exc
        return cls.from_dict(data)


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan`.

    One injector serves one run: it keeps the exchange/message/sweep
    counters that address the plan's faults, so reusing an injector across
    runs would misplace them — build a fresh one per run (cheap).

    The ``metrics`` registry is optional and usually bound lazily by the
    first component that adopts the injector (solver pipeline, distributed
    solver, or cluster simulator), so all ``resilience.fault.*`` counters
    land in that component's registry.
    """

    def __init__(self, plan: FaultPlan, metrics=None):
        self.plan = plan
        self.metrics = metrics
        self._rng = np.random.default_rng(plan.seed)
        self._exchange = -1  # becomes 0 on the first begin_exchange()
        self._message = 0
        self._sweep = -1
        #: (src, dest, tag) -> (kind, remaining, scale) for times > 1 faults
        self._repeat: dict[tuple[int, int, int], tuple[str, int, float]] = {}
        self._halo_by_key = {(f.exchange, f.message): f for f in plan.halo}
        self._con2prim_by_sweep = {f.sweep: f for f in plan.con2prim}
        self._fail_time = {
            f.device: f.at_s for f in plan.devices if f.kind == "fail"
        }
        self._straggle = {
            f.device: (f.at_s, f.factor)
            for f in plan.devices
            if f.kind == "straggle"
        }

    # -- accounting ----------------------------------------------------------

    def _count(self, name: str, amount: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    # -- halo messages -------------------------------------------------------

    def begin_exchange(self) -> int:
        """Start a new halo exchange; returns its index."""
        self._exchange += 1
        self._message = 0
        return self._exchange

    def decide(self, src: int, dest: int, tag: int) -> tuple[str | None, float]:
        """Advance the message counter and decide one message's fate.

        Returns ``(kind, scale)`` with kind in ``HALO_FAULT_KINDS`` or
        ``None`` for clean delivery.  Pure plan/seed state transition —
        no metrics are recorded, so the fault oracle for the process
        backend can replay the identical decision sequence off-line.
        """
        msg_idx = self._message
        self._message += 1
        key = (src, dest, tag)

        kind, scale = None, 0.0
        pending = self._repeat.get(key)
        if pending is not None:
            kind, remaining, scale = pending
            if remaining > 1:
                self._repeat[key] = (kind, remaining - 1, scale)
            else:
                del self._repeat[key]
        else:
            fault = self._halo_by_key.get((self._exchange, msg_idx))
            if fault is not None:
                kind, scale = fault.kind, fault.scale
                if fault.times > 1:
                    self._repeat[key] = (kind, fault.times - 1, scale)
            elif self.plan.halo_random:
                rates = self.plan.halo_random
                draw = self._rng.random()
                acc = 0.0
                for name in ("drop", "duplicate", "corrupt"):
                    acc += rates.get(f"p_{name}", 0.0)
                    if draw < acc:
                        kind, scale = name, 10.0
                        break
        return kind, scale

    def on_send(
        self, src: int, dest: int, tag: int, payload: np.ndarray
    ) -> tuple[str, np.ndarray]:
        """Decide the fate of one injectable message.

        Returns ``(action, payload)`` where action is ``"deliver"``,
        ``"drop"``, ``"duplicate"``, or ``"corrupt"`` (payload already
        corrupted in the last case).
        """
        kind, scale = self.decide(src, dest, tag)
        if kind is None:
            return "deliver", payload
        self._count(f"resilience.fault.halo_{kind}")
        if kind == "corrupt":
            return "corrupt", corrupt_payload(payload, scale)
        return kind, payload

    # -- con2prim ------------------------------------------------------------

    def con2prim_burst(self, n_cells: int) -> int:
        """Cells of the next recovery sweep to force unrecoverable (0 = none)."""
        self._sweep += 1
        fault = self._con2prim_by_sweep.get(self._sweep)
        if fault is None:
            return 0
        n = min(fault.n_cells, n_cells)
        self._count("resilience.fault.con2prim_burst")
        return n

    @staticmethod
    def burst_indices(n: int, n_cells: int) -> np.ndarray:
        """Deterministic, evenly spread flat cell indices for a burst."""
        return np.unique(np.linspace(0, n_cells - 1, n).astype(np.intp))

    # -- devices -------------------------------------------------------------

    def fail_time(self, device: str) -> float | None:
        """Simulated time at which *device* dies, or None if it survives."""
        return self._fail_time.get(device)

    def straggle_factor(self, device: str, start: float) -> float:
        """Slowdown multiplier for a task starting at *start* on *device*."""
        onset = self._straggle.get(device)
        if onset is None or start < onset[0]:
            return 1.0
        return onset[1]
