"""Rank-local fault oracle for the process-parallel backend.

The serial chaos path takes every fault decision inside one global
:class:`~repro.resilience.faults.FaultInjector` whose message counter
advances in the deterministic SPMD-by-phases order of
:func:`repro.comm.halo.exchange_halos`.  Worker processes cannot share
that counter — so instead every worker runs a :class:`FaultOracle`: a
dry-run replay of the *global* exchange protocol against a private
injector seeded from the same plan.  Because the replay visits sends
and retransmissions in exactly the serial order, every worker derives
the identical fault decision sequence without any communication, and
each applies only the decisions whose sender it is.

The replay has to model just enough of the receive side to know *when*
retransmissions happen (a retransmit consumes the injector's next
message index at the point the serial receiver would have re-posted):

* each posted data message becomes delivery tokens in a virtual mailbox
  (``ok``/``corrupt``; duplicates two tokens, drops none),
* checksums (never injectable, never dropped) become per-key credits,
* :func:`_sim_recv_reliable` walks the same attempt/orphan-drain/retry
  control flow as :func:`repro.comm.halo._recv_reliable`.

The one idealisation is that a CRC32 always detects an injected
corruption (collision probability 2**-32 per message); the serial path
shares the same assumption, so the two substrates stay aligned.

:class:`RankStridedFaultInjector` covers the other injector consumer:
con2prim bursts are keyed by a global sweep counter that serially
advances in rank order within each recovery round, so a worker that
owns rank ``r`` of ``P`` sees global sweeps ``round * P + r``.
"""

from __future__ import annotations

from .faults import FaultInjector, FaultPlan


class ExchangeSchedule:
    """Pre-decided fault attempts for one halo exchange.

    ``attempts`` maps ``(src, dest, tag)`` to the ordered list of
    ``(kind, scale)`` posts for that message slot — first the original
    send, then any retransmissions the receiver will request.  The
    sending rank pops its own keys and posts every attempt up front;
    unclaimed keys (other ranks' sends) are simply dropped.
    """

    def __init__(self):
        self.attempts: dict[tuple[int, int, int], list[tuple[str | None, float]]] = {}

    def add(self, src: int, dest: int, tag: int,
            kind: str | None, scale: float) -> None:
        self.attempts.setdefault((src, dest, tag), []).append((kind, scale))

    def pop_attempts(self, src: int, dest: int, tag: int):
        return self.attempts.pop((src, dest, tag), [(None, 0.0)])

    def has_faults(self) -> bool:
        return any(
            kind is not None
            for posts in self.attempts.values()
            for kind, _ in posts
        )


class FaultOracle:
    """Replays the serial fault-decision sequence for one exchange at a time.

    Every rank constructs an identical oracle (same plan, decomposition,
    and retry policy) and calls :meth:`next_exchange` once per halo
    exchange, in the same order the serial solver would perform them.
    """

    def __init__(self, plan: FaultPlan, decomp, policy=None):
        self._inj = FaultInjector(plan)  # metrics-less: pure decisions
        self._decomp = decomp
        self._policy = policy
        #: virtual mailboxes: (src, dest, tag) -> delivery tokens
        self._box: dict[tuple[int, int, int], list[str]] = {}
        #: per-key count of checksum messages in flight
        self._crc: dict[tuple[int, int, int], int] = {}

    def next_exchange(self, overlapped: bool = False) -> ExchangeSchedule:
        """Decide every fault of the next halo exchange (global replay)."""
        sched = ExchangeSchedule()
        self._inj.begin_exchange()
        resilient = self._policy is not None
        decomp = self._decomp
        ndim = decomp.global_grid.ndim
        if overlapped:
            # post_halos: every axis's strips go out before any receive.
            for axis in range(ndim):
                self._sim_post_phase(sched, axis, resilient)
            for axis in range(ndim):
                self._sim_recv_phase(sched, axis, resilient)
        else:
            for axis in range(ndim):
                self._sim_post_phase(sched, axis, resilient)
                self._sim_recv_phase(sched, axis, resilient)
        if resilient:
            # Serial discard_pending(): stale tokens never cross exchanges.
            self._box.clear()
            self._crc.clear()
        return sched

    def rewind(self, calls: list[bool]) -> None:
        """Reset to plan start, then fast-forward through *calls*.

        *calls* is the ordered list of ``overlapped`` flags of every
        :meth:`next_exchange` already consumed up to a step boundary (as
        recorded by the worker's supervision snapshot).  Replaying them
        against a fresh injector reproduces the exact internal state —
        message counters, repeat bookkeeping, RNG stream, virtual
        mailboxes — so a rank restored after a failure keeps deriving the
        identical fault decisions the serial run would.
        """
        self._inj = FaultInjector(self._inj.plan)
        self._box = {}
        self._crc = {}
        for overlapped in calls:
            self.next_exchange(overlapped=overlapped)

    # -- protocol replay -------------------------------------------------
    def _sim_post_phase(self, sched, axis: int, resilient: bool) -> None:
        decomp = self._decomp
        for rank in range(decomp.size):
            for side in (0, 1):
                nbr = decomp.neighbor(rank, axis, side)
                if nbr is None:
                    continue
                self._sim_post(sched, rank, nbr, axis, side, resilient)

    def _sim_recv_phase(self, sched, axis: int, resilient: bool) -> None:
        decomp = self._decomp
        for rank in range(decomp.size):
            for side in (0, 1):
                nbr = decomp.neighbor(rank, axis, side)
                if nbr is None:
                    continue
                if resilient:
                    self._sim_recv_reliable(sched, nbr, rank, axis, side)
                else:
                    box = self._box.get((nbr, rank, axis * 2 + (1 - side)))
                    if box:
                        box.pop(0)

    def _sim_post(self, sched, sender: int, dest: int, axis: int, side: int,
                  checksum: bool) -> None:
        tag = axis * 2 + side
        kind, scale = self._inj.decide(sender, dest, tag)
        sched.add(sender, dest, tag, kind, scale)
        key = (sender, dest, tag)
        if kind == "drop":
            tokens = []
        elif kind == "duplicate":
            tokens = ["ok", "ok"]
        elif kind == "corrupt":
            tokens = ["corrupt"]
        else:
            tokens = ["ok"]
        if tokens:
            self._box.setdefault(key, []).extend(tokens)
        if checksum:
            self._crc[key] = self._crc.get(key, 0) + 1

    def _sim_recv_reliable(self, sched, nbr: int, rank: int,
                           axis: int, side: int) -> None:
        """Mirror of halo._recv_reliable over the virtual mailboxes."""
        tag = axis * 2 + (1 - side)
        key = (nbr, rank, tag)
        policy = self._policy
        for attempt in range(policy.max_attempts):
            token = None
            box = self._box.get(key)
            if box:
                token = box.pop(0)
            else:
                # data lost: the receiver drains the orphaned checksum
                if self._crc.get(key, 0) > 0:
                    self._crc[key] -= 1
            if token is not None:
                have_crc = self._crc.get(key, 0) > 0
                if have_crc:
                    self._crc[key] -= 1
                if have_crc and token == "ok":
                    return
            if attempt == policy.max_attempts - 1:
                return  # budget exhausted; the real receiver raises
            # The retransmission consumes the injector's next message
            # index exactly where the serial receiver would re-post.
            self._sim_post(sched, nbr, rank, axis, 1 - side, checksum=True)


class RankStridedFaultInjector(FaultInjector):
    """Worker-side injector that maps local sweeps to global sweep indices.

    The serial solver recovers primitives rank-by-rank inside each
    round, so the global con2prim sweep counter advances as
    ``round * size + rank``.  A worker owns one rank and performs one
    local sweep per round; striding its counter reproduces exactly the
    serial keying of :class:`Con2PrimFault` entries.

    Only the con2prim hook is used in workers — halo faults flow through
    the :class:`FaultOracle` schedule instead, so this injector is never
    attached to a communicator.
    """

    def __init__(self, plan: FaultPlan, rank: int, size: int, metrics=None):
        super().__init__(plan, metrics=metrics)
        self._rank = int(rank)
        self._size = int(size)

    def con2prim_burst(self, n_cells: int) -> int:
        self._sweep += 1
        fault = self._con2prim_by_sweep.get(self._sweep * self._size + self._rank)
        if fault is None:
            return 0
        n = min(fault.n_cells, n_cells)
        self._count("resilience.fault.con2prim_burst")
        return n
