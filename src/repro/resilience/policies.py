"""Recovery policies: halo retry with exponential backoff, auto-restart.

The counterpart of :mod:`repro.resilience.faults` — faults describe what
goes wrong, policies describe how the system survives it.  The policies are
deliberately small value objects so the layers that apply them (halo
exchange, solver run loops) stay testable without a chaos harness.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable

from ..utils.errors import ConfigurationError, ReproError
from ..utils.logging import get_logger

_log = get_logger("resilience")


@dataclass(frozen=True)
class HaloRetryPolicy:
    """Retry budget for one halo message.

    ``max_attempts`` counts the first delivery too, so ``max_attempts=4``
    allows three retransmissions before
    :class:`~repro.utils.errors.CommunicationError` is raised.  Backoff is
    exponential (``base * 2**retry``) and capped; by default it is only
    *recorded* (the simulated communicator has no real wire to wait on) —
    pass ``sleep_fn=time.sleep`` to actually block, as a real transport
    would.
    """

    max_attempts: int = 4
    backoff_base_s: float = 1e-4
    backoff_cap_s: float = 0.1
    sleep_fn: Callable[[float], None] | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigurationError("backoff times must be >= 0")

    def backoff_s(self, retry: int) -> float:
        """Backoff before the *retry*-th retransmission (0-based)."""
        return min(self.backoff_base_s * (2.0**retry), self.backoff_cap_s)

    def wait(self, retry: int) -> float:
        """Apply (and return) the backoff for one retry."""
        delay = self.backoff_s(retry)
        if self.sleep_fn is not None and delay > 0:
            self.sleep_fn(delay)
        return delay


def blocking_retry_policy(**overrides) -> HaloRetryPolicy:
    """A :class:`HaloRetryPolicy` that really sleeps (production transport)."""
    overrides.setdefault("sleep_fn", time.sleep)
    return HaloRetryPolicy(**overrides)


@dataclass(frozen=True)
class RestartPolicy:
    """Periodic checkpointing plus a bounded auto-restart budget."""

    checkpoint_path: str | os.PathLike
    checkpoint_every: int = 10
    max_restarts: int = 3

    def __post_init__(self):
        if self.checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )


@dataclass(frozen=True)
class SupervisionPolicy:
    """In-run rank supervision knobs for the process executor.

    Governs the supervision layer of
    :class:`~repro.core.parallel.ProcessSolver`: how failures are
    detected (heartbeat staleness vs ``hang_timeout_s`` for hangs,
    ``is_alive()``/pipe EOF for crashes), how often the parent captures a
    consistent in-memory snapshot of every rank (``snapshot_every``, in
    steps — the rollback point of in-run recovery), how many rank
    respawns the run may spend (``max_rank_restarts``, with exponential
    backoff between recovery rounds), and what happens when the budget
    runs out: raise :class:`~repro.utils.errors.SupervisionExhausted`, or
    — with ``degrade=True`` — fold the run down to the serial
    ``DistributedSolver`` from the last snapshot and finish there.
    """

    max_rank_restarts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    heartbeat_interval_s: float = 0.25
    hang_timeout_s: float = 30.0
    quiesce_timeout_s: float = 30.0
    snapshot_every: int = 1
    degrade: bool = False

    def __post_init__(self):
        if self.max_rank_restarts < 0:
            raise ConfigurationError(
                f"max_rank_restarts must be >= 0, got {self.max_rank_restarts}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigurationError("backoff times must be >= 0")
        if self.heartbeat_interval_s <= 0:
            raise ConfigurationError(
                f"heartbeat_interval_s must be > 0, got {self.heartbeat_interval_s}"
            )
        if self.hang_timeout_s <= 0:
            raise ConfigurationError(
                f"hang_timeout_s must be > 0, got {self.hang_timeout_s}"
            )
        if self.quiesce_timeout_s <= 0:
            raise ConfigurationError(
                f"quiesce_timeout_s must be > 0, got {self.quiesce_timeout_s}"
            )
        if self.snapshot_every < 1:
            raise ConfigurationError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )


def run_with_restart(
    solver,
    t_final: float,
    policy: RestartPolicy,
    loader: Callable[[str | os.PathLike], object],
    metrics=None,
    max_steps: int | None = None,
):
    """Drive ``solver.run`` to *t_final*, auto-restarting from checkpoints.

    The solver checkpoints every ``policy.checkpoint_every`` steps to
    ``policy.checkpoint_path``.  When the run dies with a
    :class:`~repro.utils.errors.ReproError` (non-convergence past the
    failsafe budget, exhausted communication retries, injected chaos, ...),
    the last checkpoint is reloaded via ``loader(path)`` and the run
    continues — up to ``policy.max_restarts`` times, after which the error
    propagates.  Restart is bit-exact: the checkpoint carries the con2prim
    warm-start cache, so a recovered trajectory is identical to one that
    never crashed.

    Returns ``(solver, n_restarts)``; the returned solver is the restored
    instance when any restart happened.

    Restarts are counted on *metrics* (``resilience.restarts``) when given,
    falling back to the solver's own registry if it has one — note the
    solver registry is rebuilt by *loader*, so pass an external registry
    when counters must survive the restart.
    """
    restarts = 0
    while True:
        try:
            solver.run(
                t_final,
                max_steps=max_steps,
                checkpoint_every=policy.checkpoint_every,
                checkpoint_path=policy.checkpoint_path,
            )
            return solver, restarts
        except ReproError as exc:
            if restarts >= policy.max_restarts or not os.path.exists(
                policy.checkpoint_path
            ):
                raise
            restarts += 1
            registry = metrics if metrics is not None else getattr(
                solver, "metrics", None
            )
            if registry is not None:
                registry.counter("resilience.restarts").inc()
            _log.warning(
                "run failed at t=%g (%s); restart %d/%d from %s",
                getattr(solver, "t", float("nan")),
                exc,
                restarts,
                policy.max_restarts,
                policy.checkpoint_path,
            )
            solver = loader(policy.checkpoint_path)
