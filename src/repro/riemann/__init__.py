"""Approximate Riemann solvers for the SRHD face-flux computation."""

from __future__ import annotations

from ..utils.errors import ConfigurationError
from .base import RiemannSolver
from .hll import HLL
from .hllc import HLLC
from .llf import LLF

#: registry of available solvers
SOLVERS = {"llf": LLF, "hll": HLL, "hllc": HLLC}


def make_riemann_solver(name: str) -> RiemannSolver:
    """Factory: Riemann solver by registry name (llf, hll, hllc)."""
    try:
        return SOLVERS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown Riemann solver {name!r}; choose from {sorted(SOLVERS)}"
        ) from None


__all__ = ["RiemannSolver", "LLF", "HLL", "HLLC", "SOLVERS", "make_riemann_solver"]
