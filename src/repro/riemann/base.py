"""Approximate Riemann solver interface.

A solver consumes the reconstructed primitive states on the two sides of
each face and returns the numerical flux in the conserved convention
``(D, S_i, tau)``. Wave-speed estimates are the Davis bounds built from the
characteristic speeds of both sides.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..physics.srhd import SRHDSystem


class RiemannSolver(ABC):
    """Base class for approximate Riemann solvers."""

    name: str = "abstract"

    def flux(
        self,
        system: SRHDSystem,
        primL: np.ndarray,
        primR: np.ndarray,
        axis: int = 0,
    ) -> np.ndarray:
        """Numerical flux at faces with left/right primitive states."""
        consL = system.prim_to_con(primL)
        consR = system.prim_to_con(primR)
        FL = system.flux(primL, consL, axis)
        FR = system.flux(primR, consR, axis)
        sL, sR = self.wave_speeds(system, primL, primR, axis)
        return self._combine(system, primL, primR, consL, consR, FL, FR, sL, sR, axis)

    @staticmethod
    def wave_speeds(system: SRHDSystem, primL, primR, axis):
        """Davis estimates: outermost characteristic speeds of both states."""
        lamL_m, lamL_p = system.char_speeds(primL, axis)
        lamR_m, lamR_p = system.char_speeds(primR, axis)
        sL = np.minimum(lamL_m, lamR_m)
        sR = np.maximum(lamL_p, lamR_p)
        return sL, sR

    @abstractmethod
    def _combine(self, system, primL, primR, consL, consR, FL, FR, sL, sR, axis):
        """Assemble the numerical flux from states, fluxes and speeds."""

    def __repr__(self):
        return f"<RiemannSolver {self.name}>"
