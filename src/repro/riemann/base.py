"""Approximate Riemann solver interface.

A solver consumes the reconstructed primitive states on the two sides of
each face and returns the numerical flux in the conserved convention
``(D, S_i, tau)``. Wave-speed estimates are the Davis bounds built from the
characteristic speeds of both sides.

All solvers evaluate through a single in-place code path: ``flux`` accepts
an optional output buffer and a :class:`~repro.core.workspace.ScratchWorkspace`
supplying every intermediate (conserved states, physical fluxes, wave
speeds, combine temporaries). Without a workspace each intermediate is a
fresh allocation — the original behaviour — and the two paths are
bit-identical because they share the same operations in the same order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.workspace import scratch_buf
from ..physics.srhd import SRHDSystem


class RiemannSolver(ABC):
    """Base class for approximate Riemann solvers."""

    name: str = "abstract"

    def flux(
        self,
        system: SRHDSystem,
        primL: np.ndarray,
        primR: np.ndarray,
        axis: int = 0,
        out: np.ndarray | None = None,
        scratch=None,
    ) -> np.ndarray:
        """Numerical flux at faces with left/right primitive states.

        Parameters
        ----------
        out:
            Optional preallocated flux array (shape of *primL*).
        scratch:
            Optional :class:`~repro.core.workspace.ScratchWorkspace`; when
            given, every intermediate lives in reused buffers keyed by this
            solver's name and *axis*.
        """
        k = (self.name, axis)
        consL = system.prim_to_con(
            primL, out=scratch_buf(scratch, (k, "consL"), primL.shape),
            scratch=scratch, tag=(k, "p2cL"),
        )
        consR = system.prim_to_con(
            primR, out=scratch_buf(scratch, (k, "consR"), primR.shape),
            scratch=scratch, tag=(k, "p2cR"),
        )
        FL = system.flux(
            primL, consL, axis, out=scratch_buf(scratch, (k, "FL"), primL.shape)
        )
        FR = system.flux(
            primR, consR, axis, out=scratch_buf(scratch, (k, "FR"), primR.shape)
        )
        sL, sR = self.wave_speeds(system, primL, primR, axis, scratch=scratch, tag=k)
        if out is None:
            out = np.empty_like(primL)
        return self._combine(
            system, primL, primR, consL, consR, FL, FR, sL, sR, axis,
            out=out, scratch=scratch,
        )

    @staticmethod
    def wave_speeds(system: SRHDSystem, primL, primR, axis, scratch=None, tag="ws"):
        """Davis estimates: outermost characteristic speeds of both states.

        The returned arrays are owned by the caller (workspace buffers or
        fresh allocations) and may be clobbered by ``_combine``.
        """
        cell = primL.shape[1:]
        lamL_m, lamL_p = system.char_speeds(
            primL, axis,
            out=(
                scratch_buf(scratch, (tag, "lamLm"), cell),
                scratch_buf(scratch, (tag, "lamLp"), cell),
            ),
            scratch=scratch, tag=(tag, "csL"),
        )
        lamR_m, lamR_p = system.char_speeds(
            primR, axis,
            out=(
                scratch_buf(scratch, (tag, "lamRm"), cell),
                scratch_buf(scratch, (tag, "lamRp"), cell),
            ),
            scratch=scratch, tag=(tag, "csR"),
        )
        sL = np.minimum(lamL_m, lamR_m, out=lamL_m)
        sR = np.maximum(lamL_p, lamR_p, out=lamL_p)
        return sL, sR

    @abstractmethod
    def _combine(
        self, system, primL, primR, consL, consR, FL, FR, sL, sR, axis,
        out, scratch=None,
    ):
        """Assemble the numerical flux from states, fluxes and speeds into *out*.

        ``sL``/``sR`` are scratch-owned and may be modified in place.
        """

    def __repr__(self):
        return f"<RiemannSolver {self.name}>"
