"""HLL (Harten-Lax-van Leer) two-wave approximate Riemann solver."""

from __future__ import annotations

import numpy as np

from .base import RiemannSolver


class HLL(RiemannSolver):
    """Two-wave HLL flux with Davis wave-speed estimates."""

    name = "hll"

    def _combine(self, system, primL, primR, consL, consR, FL, FR, sL, sR, axis):
        # Clip the fan to include the interface so the standard single
        # expression applies everywhere (equivalent to the 3-branch form).
        sL = np.minimum(sL, 0.0)
        sR = np.maximum(sR, 0.0)
        denom = sR - sL
        # Degenerate fan (both speeds zero) only occurs for identical
        # quiescent states, where any consistent flux is exact.
        safe = np.where(denom > 1e-300, denom, 1.0)
        flux = (sR * FL - sL * FR + sL * sR * (consR - consL)) / safe
        return np.where(denom > 1e-300, flux, FL)
