"""HLL (Harten-Lax-van Leer) two-wave approximate Riemann solver."""

from __future__ import annotations

import numpy as np

from ..core.workspace import scratch_buf
from .base import RiemannSolver


class HLL(RiemannSolver):
    """Two-wave HLL flux with Davis wave-speed estimates."""

    name = "hll"

    def _combine(
        self, system, primL, primR, consL, consR, FL, FR, sL, sR, axis,
        out, scratch=None,
    ):
        k = (self.name, axis)
        # Clip the fan to include the interface so the standard single
        # expression applies everywhere (equivalent to the 3-branch form).
        np.minimum(sL, 0.0, out=sL)
        np.maximum(sR, 0.0, out=sR)
        denom = scratch_buf(scratch, (k, "denom"), sL.shape)
        np.subtract(sR, sL, out=denom)
        # Degenerate fan (both speeds zero) only occurs for identical
        # quiescent states, where any consistent flux is exact.
        mask = scratch_buf(scratch, (k, "mask"), sL.shape, dtype=bool)
        np.greater(denom, 1e-300, out=mask)
        safe = scratch_buf(scratch, (k, "safe"), sL.shape)
        safe.fill(1.0)
        np.copyto(safe, denom, where=mask)
        # flux = (sR*FL - sL*FR + sL*sR*(consR - consL)) / safe
        t = scratch_buf(scratch, (k, "t"), FL.shape)
        tc = scratch_buf(scratch, (k, "tc"), sL.shape)
        np.multiply(FL, sR, out=out)
        np.multiply(FR, sL, out=t)
        np.subtract(out, t, out=out)
        np.multiply(sL, sR, out=tc)
        np.subtract(consR, consL, out=t)
        np.multiply(t, tc, out=t)
        np.add(out, t, out=out)
        np.divide(out, safe, out=out)
        np.logical_not(mask, out=mask)
        np.copyto(out, FL, where=mask)
        return out
