"""HLLC approximate Riemann solver for SRHD (Mignone & Bodo 2005).

Restores the contact wave that HLL smears: the Riemann fan is modelled with
three waves (sL, lambda*, sR), where the contact speed lambda* is the causal
root of a quadratic built from the HLL-average state, and the two star
states satisfy exact jump conditions across the outer waves.

Internally the solver works in the total-energy convention ``E = tau + D``
(for which the energy flux is simply ``S_k``), converting back to the
``tau`` convention at the end.

All arithmetic runs through preallocatable buffers (see
:mod:`repro.core.workspace`) in the exact operation order of the original
expression form, so results are bit-identical with or without a workspace.
"""

from __future__ import annotations

import numpy as np

from ..core.workspace import scratch_buf
from .base import RiemannSolver

_SMALL = 1e-12


class HLLC(RiemannSolver):
    """Three-wave HLLC flux with contact restoration."""

    name = "hllc"

    def _combine(
        self, system, primL, primR, consL, consR, FL, FR, sL, sR, axis,
        out, scratch=None,
    ):
        D, TAU = system.D, system.TAU
        Sx = system.S(axis)
        k = (self.name, axis)
        cell = sL.shape

        def cbuf(name):
            return scratch_buf(scratch, (k, name), cell)

        # Unclipped speeds (sL, sR) decide the supersonic sectors at the end;
        # clipped copies keep the fan open so divisions are safe.
        sLc = np.minimum(sL, -_SMALL, out=cbuf("sLc"))
        sRc = np.maximum(sR, _SMALL, out=cbuf("sRc"))
        dS = np.subtract(sRc, sLc, out=cbuf("dS"))

        # Total-energy convention: E = tau + D, F_E = F_tau + F_D = S_x flux.
        EL = np.add(consL[TAU], consL[D], out=cbuf("EL"))
        ER = np.add(consR[TAU], consR[D], out=cbuf("ER"))
        FEL = np.add(FL[TAU], FL[D], out=cbuf("FEL"))
        FER = np.add(FR[TAU], FR[D], out=cbuf("FER"))

        t = cbuf("t")
        t2 = cbuf("t2")

        def hll_state(qL, qR, dst):
            # (sR*qR - sL*qL) / dS with the flux-difference term added by caller
            np.multiply(sRc, qR, out=dst)
            np.multiply(sLc, qL, out=t)
            np.subtract(dst, t, out=dst)
            return dst

        # HLL averages of (Sx, E) and their fluxes:
        #   q_hll  = (sR qR - sL qL + FqL - FqR) / dS
        #   Fq_hll = (sR FqL - sL FqR + sL sR (qR - qL)) / dS
        S_hll = hll_state(consL[Sx], consR[Sx], cbuf("S_hll"))
        np.add(S_hll, FL[Sx], out=S_hll)
        np.subtract(S_hll, FR[Sx], out=S_hll)
        np.divide(S_hll, dS, out=S_hll)

        E_hll = hll_state(EL, ER, cbuf("E_hll"))
        np.add(E_hll, FEL, out=E_hll)
        np.subtract(E_hll, FER, out=E_hll)
        np.divide(E_hll, dS, out=E_hll)

        def hll_flux(FqL, FqR, qL, qR, dst):
            np.multiply(sRc, FqL, out=dst)
            np.multiply(sLc, FqR, out=t)
            np.subtract(dst, t, out=dst)
            np.multiply(sLc, sRc, out=t)
            np.subtract(qR, qL, out=t2)
            np.multiply(t, t2, out=t)
            np.add(dst, t, out=dst)
            np.divide(dst, dS, out=dst)
            return dst

        FS_hll = hll_flux(FL[Sx], FR[Sx], consL[Sx], consR[Sx], cbuf("FS_hll"))
        FE_hll = hll_flux(FEL, FER, EL, ER, cbuf("FE_hll"))

        # Contact speed: FE lam^2 - (E + FS) lam + S = 0, causal (minus) root.
        # Written in Citardauq form lam = 2c / (-b + sqrt(b^2 - 4ac)): since
        # b = -(E + FS) < 0 the denominator never cancels, which keeps the
        # near-linear (FE -> 0) limit accurate to round-off.
        a = FE_hll
        b = cbuf("b")
        np.add(E_hll, FS_hll, out=b)
        np.negative(b, out=b)
        c = S_hll
        # disc = sqrt(max(b*b - 4 a c, 0))
        disc = cbuf("disc")
        np.multiply(b, b, out=disc)
        np.multiply(a, 4.0, out=t)
        np.multiply(t, c, out=t)
        np.subtract(disc, t, out=disc)
        np.maximum(disc, 0.0, out=disc)
        np.sqrt(disc, out=disc)
        denom = cbuf("denom")
        np.negative(b, out=denom)
        np.add(denom, disc, out=denom)
        # lam_star = where(|denom| > SMALL, 2c / where(|denom| > SMALL, denom, 1), 0)
        mask = scratch_buf(scratch, (k, "mask"), cell, dtype=bool)
        np.abs(denom, out=t)
        np.greater(t, _SMALL, out=mask)
        inner = cbuf("inner")
        inner.fill(1.0)
        np.copyto(inner, denom, where=mask)
        lam_star = cbuf("lam_star")
        np.multiply(c, 2.0, out=lam_star)
        np.divide(lam_star, inner, out=lam_star)
        np.logical_not(mask, out=mask)
        np.copyto(lam_star, 0.0, where=mask)
        np.clip(lam_star, sLc, sRc, out=lam_star)

        # Star-region pressure from the contact conditions:
        # p* = -FE_hll lam* + FS_hll
        p_star = cbuf("p_star")
        np.negative(FE_hll, out=p_star)
        np.multiply(p_star, lam_star, out=p_star)
        np.add(p_star, FS_hll, out=p_star)

        # Variables beyond the hydro sector (passive tracers) behave like
        # transverse momenta across the outer waves: U* = U (s-v)/(s-lam*).
        hydro = {D, TAU} | {system.S(ax) for ax in range(system.ndim)}
        extras = [var for var in range(system.nvars) if var not in hydro]

        smv = cbuf("smv")
        smlam = cbuf("smlam")
        factor = cbuf("factor")
        D_star = cbuf("D_star")
        E_star = cbuf("E_star")
        Sx_star = cbuf("Sx_star")
        FE_star = cbuf("FE_star")
        flux_sides = (
            scratch_buf(scratch, (k, "fluxL"), FL.shape),
            scratch_buf(scratch, (k, "fluxR"), FL.shape),
        )
        for side, (prim, cons, F, s, E, FE) in enumerate(
            ((primL, consL, FL, sLc, EL, FEL), (primR, consR, FR, sRc, ER, FER))
        ):
            F_side = flux_sides[side]
            v = prim[system.V(axis)]
            p = prim[system.P]
            np.subtract(s, v, out=smv)
            np.subtract(s, lam_star, out=smlam)
            np.divide(smv, smlam, out=factor)
            # Star state in (D, S_i, E) convention.
            np.multiply(cons[D], factor, out=D_star)
            # E* = (E (s-v) + p* lam* - p v) / (s - lam*)
            np.multiply(E, smv, out=E_star)
            np.multiply(p_star, lam_star, out=t)
            np.add(E_star, t, out=E_star)
            np.multiply(p, v, out=t)
            np.subtract(E_star, t, out=E_star)
            np.divide(E_star, smlam, out=E_star)
            # S*_axis = (S_x (s-v) + p* - p) / (s - lam*)
            np.multiply(cons[Sx], smv, out=Sx_star)
            np.add(Sx_star, p_star, out=Sx_star)
            np.subtract(Sx_star, p, out=Sx_star)
            np.divide(Sx_star, smlam, out=Sx_star)
            # Flux across the outer wave: F* = F + s (U* - U).
            np.subtract(D_star, cons[D], out=t)
            np.multiply(t, s, out=t)
            np.add(F[D], t, out=F_side[D])
            for ax in range(system.ndim):
                if ax == axis:
                    np.subtract(Sx_star, cons[Sx], out=t)
                else:
                    np.multiply(cons[system.S(ax)], factor, out=t)
                    np.subtract(t, cons[system.S(ax)], out=t)
                np.multiply(t, s, out=t)
                np.add(F[system.S(ax)], t, out=F_side[system.S(ax)])
            for var in extras:
                np.multiply(cons[var], factor, out=t)
                np.subtract(t, cons[var], out=t)
                np.multiply(t, s, out=t)
                np.add(F[var], t, out=F_side[var])
            # Energy flux in E convention, then back to tau = E - D.
            np.subtract(E_star, E, out=t)
            np.multiply(t, s, out=t)
            np.add(FE, t, out=FE_star)
            np.subtract(FE_star, F_side[D], out=F_side[TAU])
        flux_L, flux_R = flux_sides

        # Select the sector containing the interface (xi = 0).
        np.greater_equal(lam_star, 0.0, out=mask)
        for var in range(system.nvars):
            np.copyto(out[var], flux_R[var])
            np.copyto(out[var], flux_L[var], where=mask)
        # Supersonic cases: the fan does not straddle the interface.
        np.greater_equal(sL, 0.0, out=mask)
        for var in range(system.nvars):
            np.copyto(out[var], FL[var], where=mask)
        np.less_equal(sR, 0.0, out=mask)
        for var in range(system.nvars):
            np.copyto(out[var], FR[var], where=mask)
        return out
