"""HLLC approximate Riemann solver for SRHD (Mignone & Bodo 2005).

Restores the contact wave that HLL smears: the Riemann fan is modelled with
three waves (sL, lambda*, sR), where the contact speed lambda* is the causal
root of a quadratic built from the HLL-average state, and the two star
states satisfy exact jump conditions across the outer waves.

Internally the solver works in the total-energy convention ``E = tau + D``
(for which the energy flux is simply ``S_k``), converting back to the
``tau`` convention at the end.
"""

from __future__ import annotations

import numpy as np

from .base import RiemannSolver

_SMALL = 1e-12


class HLLC(RiemannSolver):
    """Three-wave HLLC flux with contact restoration."""

    name = "hllc"

    def _combine(self, system, primL, primR, consL, consR, FL, FR, sL, sR, axis):
        D, TAU = system.D, system.TAU
        Sx = system.S(axis)

        sL0, sR0 = sL, sR  # unclipped speeds decide the supersonic sectors
        sL = np.minimum(sL, -_SMALL)  # keep the fan open so divisions are safe
        sR = np.maximum(sR, _SMALL)
        dS = sR - sL

        # Total-energy convention: E = tau + D, F_E = F_tau + F_D = S_x flux.
        EL = consL[TAU] + consL[D]
        ER = consR[TAU] + consR[D]
        FEL = FL[TAU] + FL[D]
        FER = FR[TAU] + FR[D]

        # HLL averages of (Sx, E) and their fluxes.
        S_hll = (sR * consR[Sx] - sL * consL[Sx] + FL[Sx] - FR[Sx]) / dS
        E_hll = (sR * ER - sL * EL + FEL - FER) / dS
        FS_hll = (sR * FL[Sx] - sL * FR[Sx] + sL * sR * (consR[Sx] - consL[Sx])) / dS
        FE_hll = (sR * FEL - sL * FER + sL * sR * (ER - EL)) / dS

        # Contact speed: FE lam^2 - (E + FS) lam + S = 0, causal (minus) root.
        # Written in Citardauq form lam = 2c / (-b + sqrt(b^2 - 4ac)): since
        # b = -(E + FS) < 0 the denominator never cancels, which keeps the
        # near-linear (FE -> 0) limit accurate to round-off.
        a = FE_hll
        b = -(E_hll + FS_hll)
        c = S_hll
        disc = np.sqrt(np.maximum(b * b - 4.0 * a * c, 0.0))
        denom = -b + disc
        lam_star = np.where(np.abs(denom) > _SMALL, 2.0 * c / np.where(
            np.abs(denom) > _SMALL, denom, 1.0), 0.0)
        lam_star = np.clip(lam_star, sL, sR)

        # Star-region pressure from the contact conditions.
        p_star = -FE_hll * lam_star + FS_hll

        # Variables beyond the hydro sector (passive tracers) behave like
        # transverse momenta across the outer waves: U* = U (s-v)/(s-lam*).
        hydro = {D, TAU} | {system.S(ax) for ax in range(system.ndim)}
        extras = [var for var in range(system.nvars) if var not in hydro]

        flux = np.empty_like(FL)
        for side, (prim, cons, F, s, E, FE) in enumerate(
            ((primL, consL, FL, sL, EL, FEL), (primR, consR, FR, sR, ER, FER))
        ):
            v = prim[system.V(axis)]
            p = prim[system.P]
            factor = (s - v) / (s - lam_star)
            # Star state in (D, S_i, E) convention.
            D_star = cons[D] * factor
            E_star = (E * (s - v) + p_star * lam_star - p * v) / (s - lam_star)
            S_star = {}
            S_star[axis] = (cons[Sx] * (s - v) + p_star - p) / (s - lam_star)
            for ax in range(system.ndim):
                if ax != axis:
                    S_star[ax] = cons[system.S(ax)] * factor
            # Flux across the outer wave: F* = F + s (U* - U).
            F_side = np.empty_like(F)
            F_side[D] = F[D] + s * (D_star - cons[D])
            for ax in range(system.ndim):
                F_side[system.S(ax)] = F[system.S(ax)] + s * (
                    S_star[ax] - cons[system.S(ax)]
                )
            for var in extras:
                F_side[var] = F[var] + s * (cons[var] * factor - cons[var])
            # Energy flux in E convention, then back to tau = E - D.
            FE_star = FE + s * (E_star - E)
            F_side[TAU] = FE_star - F_side[D]
            if side == 0:
                flux_L = F_side
            else:
                flux_R = F_side

        # Select the sector containing the interface (xi = 0).
        take_left = lam_star >= 0.0
        for var in range(system.nvars):
            flux[var] = np.where(take_left, flux_L[var], flux_R[var])
        # Supersonic cases: the fan does not straddle the interface.
        pure_left = sL0 >= 0.0
        pure_right = sR0 <= 0.0
        for var in range(system.nvars):
            flux[var] = np.where(pure_left, FL[var], flux[var])
            flux[var] = np.where(pure_right, FR[var], flux[var])
        return flux
