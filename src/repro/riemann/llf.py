"""Local Lax-Friedrichs (Rusanov) flux: maximally dissipative, maximally
robust. The baseline entry in the solver-comparison table.
"""

from __future__ import annotations

import numpy as np

from .base import RiemannSolver


class LLF(RiemannSolver):
    """Rusanov flux F = (FL + FR)/2 - smax (UR - UL)/2."""

    name = "llf"

    def _combine(self, system, primL, primR, consL, consR, FL, FR, sL, sR, axis):
        smax = np.maximum(np.abs(sL), np.abs(sR))
        return 0.5 * (FL + FR) - 0.5 * smax * (consR - consL)
