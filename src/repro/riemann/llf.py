"""Local Lax-Friedrichs (Rusanov) flux: maximally dissipative, maximally
robust. The baseline entry in the solver-comparison table.
"""

from __future__ import annotations

import numpy as np

from ..core.workspace import scratch_buf
from .base import RiemannSolver


class LLF(RiemannSolver):
    """Rusanov flux F = (FL + FR)/2 - smax (UR - UL)/2."""

    name = "llf"

    def _combine(
        self, system, primL, primR, consL, consR, FL, FR, sL, sR, axis,
        out, scratch=None,
    ):
        k = (self.name, axis)
        # smax = max(|sL|, |sR|); the speed buffers are scratch-owned here.
        np.abs(sL, out=sL)
        np.abs(sR, out=sR)
        smax = np.maximum(sL, sR, out=sL)
        smax *= 0.5
        diff = scratch_buf(scratch, (k, "diff"), FL.shape)
        np.subtract(consR, consL, out=diff)
        np.multiply(diff, smax, out=diff)
        np.add(FL, FR, out=out)
        out *= 0.5
        np.subtract(out, diff, out=out)
        return out
