"""Simulated heterogeneous runtime: devices, cost model, task DAG,
schedulers, and the discrete-event cluster simulator.

This package substitutes for the paper's real GPU cluster + HPX-style task
runtime (see DESIGN.md section 2): kernel costs are calibrated from measured
NumPy timings, devices/links are parametric models, and scheduling decisions
are exact — so load-balance and scaling *shapes* are faithful even though no
physical accelerator is present.
"""

from .cluster import Cluster, Node, cpu_cluster, gpu_cluster, imbalanced_node
from .dag import TaskGraph
from .device import DEFAULT_GPU_SPEEDUP, KERNELS, Device, make_cpu, make_gpu
from .perfmodel import KernelCostModel
from .scheduler import (
    SCHEDULERS,
    DynamicGreedyScheduler,
    Scheduler,
    StaticScheduler,
    WorkStealingScheduler,
    make_scheduler,
)
from .simulator import ClusterSimulator
from .task import Task, TaskRecord, Timeline
from .trace import ascii_gantt, save_chrome_trace, to_chrome_trace, utilization

__all__ = [
    "Device",
    "make_cpu",
    "make_gpu",
    "KERNELS",
    "DEFAULT_GPU_SPEEDUP",
    "KernelCostModel",
    "Task",
    "TaskRecord",
    "Timeline",
    "TaskGraph",
    "Scheduler",
    "StaticScheduler",
    "DynamicGreedyScheduler",
    "WorkStealingScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "ClusterSimulator",
    "Node",
    "Cluster",
    "cpu_cluster",
    "gpu_cluster",
    "imbalanced_node",
    "to_chrome_trace",
    "save_chrome_trace",
    "ascii_gantt",
    "utilization",
]
