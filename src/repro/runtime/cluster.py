"""Cluster composition: nodes of devices joined by an interconnect.

Convenience constructors build the configurations the scaling experiments
sweep: homogeneous CPU clusters, GPU-accelerated clusters, and deliberately
imbalanced heterogeneous nodes for the scheduler comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..comm.costs import LinkModel, make_link
from ..utils.errors import ConfigurationError
from .device import Device, make_cpu, make_gpu
from .perfmodel import KernelCostModel


@dataclass(frozen=True)
class Node:
    """One cluster node: a named set of devices sharing a host."""

    name: str
    devices: tuple[Device, ...]

    def __post_init__(self):
        if not self.devices:
            raise ConfigurationError(f"node {self.name!r} has no devices")

    @property
    def cpus(self) -> tuple[Device, ...]:
        return tuple(d for d in self.devices if d.kind == "cpu")

    @property
    def gpus(self) -> tuple[Device, ...]:
        return tuple(d for d in self.devices if d.kind == "gpu")


@dataclass(frozen=True)
class Cluster:
    """Nodes plus the inter-node link model."""

    nodes: tuple[Node, ...]
    interconnect: LinkModel = field(default_factory=lambda: make_link("infiniband-fdr"))

    def __post_init__(self):
        if not self.nodes:
            raise ConfigurationError("cluster has no nodes")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names: {names}")

    @property
    def size(self) -> int:
        return len(self.nodes)

    def all_devices(self) -> list[Device]:
        return [d for node in self.nodes for d in node.devices]

    def node(self, index: int) -> Node:
        return self.nodes[index]


def cpu_cluster(
    n_nodes: int, model: KernelCostModel, interconnect: str = "infiniband-fdr"
) -> Cluster:
    """Homogeneous cluster: one calibrated CPU socket per node."""
    if n_nodes < 1:
        raise ConfigurationError("need at least one node")
    nodes = tuple(
        Node(
            name=f"node{i}",
            devices=(
                Device(
                    name=f"node{i}-cpu",
                    kind="cpu",
                    throughput=dict(model.cpu.throughput),
                    launch_overhead_s=model.cpu.launch_overhead_s,
                ),
            ),
        )
        for i in range(n_nodes)
    )
    return Cluster(nodes=nodes, interconnect=make_link(interconnect))


def gpu_cluster(
    n_nodes: int,
    model: KernelCostModel,
    gpus_per_node: int = 1,
    keep_cpu: bool = True,
    interconnect: str = "infiniband-fdr",
) -> Cluster:
    """CPU+GPU cluster in the paper's heterogeneous configuration."""
    if n_nodes < 1 or gpus_per_node < 1:
        raise ConfigurationError("need at least one node and one GPU per node")
    nodes = []
    for i in range(n_nodes):
        devices: list[Device] = []
        if keep_cpu:
            devices.append(
                Device(
                    name=f"node{i}-cpu",
                    kind="cpu",
                    throughput=dict(model.cpu.throughput),
                    launch_overhead_s=model.cpu.launch_overhead_s,
                )
            )
        for g in range(gpus_per_node):
            devices.append(model.gpu(name=f"node{i}-gpu{g}"))
        nodes.append(Node(name=f"node{i}", devices=tuple(devices)))
    return Cluster(nodes=tuple(nodes), interconnect=make_link(interconnect))


def imbalanced_node(model: KernelCostModel, slow_factor: float = 4.0) -> Node:
    """One node with a fast GPU and a CPU *slow_factor*x slower than the
    calibrated reference — the configuration that separates the schedulers."""
    if slow_factor <= 0:
        raise ConfigurationError("slow_factor must be positive")
    slow_cpu = Device(
        name="slow-cpu",
        kind="cpu",
        throughput={k: v / slow_factor for k, v in model.cpu.throughput.items()},
        launch_overhead_s=model.cpu.launch_overhead_s,
    )
    return Node(name="hetero-node", devices=(slow_cpu, model.gpu("fast-gpu")))
