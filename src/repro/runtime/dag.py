"""Dependency DAG over tasks, built on networkx.

Provides cycle checking, topological ready-set iteration for the simulator,
and critical-path analysis (the lower bound no scheduler can beat).
"""

from __future__ import annotations

from typing import Callable, Iterable

import networkx as nx

from ..utils.errors import SchedulerError
from .task import Task


class TaskGraph:
    """A DAG of :class:`Task` objects keyed by task id."""

    def __init__(self, tasks: Iterable[Task] = ()):
        self._graph = nx.DiGraph()
        self._tasks: dict[str, Task] = {}
        for task in tasks:
            self.add(task)

    def add(self, task: Task) -> None:
        if task.id in self._tasks:
            raise SchedulerError(f"duplicate task id {task.id!r}")
        self._tasks[task.id] = task
        self._graph.add_node(task.id)
        for dep in task.deps:
            self._graph.add_edge(dep, task.id)

    def finalize(self) -> None:
        """Validate: all dependencies exist and the graph is acyclic."""
        missing = set(self._graph.nodes) - set(self._tasks)
        if missing:
            raise SchedulerError(f"dangling dependencies: {sorted(missing)}")
        if not nx.is_directed_acyclic_graph(self._graph):
            cycle = nx.find_cycle(self._graph)
            raise SchedulerError(f"task graph has a cycle: {cycle}")

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def task(self, task_id: str) -> Task:
        return self._tasks[task_id]

    def tasks(self) -> list[Task]:
        return list(self._tasks.values())

    def dependents(self, task_id: str) -> list[str]:
        return list(self._graph.successors(task_id))

    def dependencies(self, task_id: str) -> list[str]:
        return list(self._graph.predecessors(task_id))

    def roots(self) -> list[str]:
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]

    def topological_order(self) -> list[str]:
        return list(nx.topological_sort(self._graph))

    def critical_path(self, cost: Callable[[Task], float]) -> tuple[float, list[str]]:
        """Longest path through the DAG under *cost* — the ideal-parallel
        lower bound on makespan.

        Returns (length_seconds, path_task_ids).
        """
        self.finalize()
        dist: dict[str, float] = {}
        pred: dict[str, str | None] = {}
        for node in self.topological_order():
            node_cost = cost(self._tasks[node])
            best, best_pred = 0.0, None
            for p in self._graph.predecessors(node):
                if dist[p] > best:
                    best, best_pred = dist[p], p
            dist[node] = best + node_cost
            pred[node] = best_pred
        if not dist:
            return 0.0, []
        end = max(dist, key=dist.get)  # type: ignore[arg-type]
        path = [end]
        while pred[path[-1]] is not None:
            path.append(pred[path[-1]])  # type: ignore[arg-type]
        return dist[end], list(reversed(path))

    def total_work(self, cost: Callable[[Task], float]) -> float:
        """Sum of all task costs — the serial-execution upper bound."""
        return sum(cost(t) for t in self._tasks.values())
