"""Device models for the simulated heterogeneous cluster.

A :class:`Device` is a compute endpoint (CPU socket or accelerator) with a
per-kernel throughput table (cells/second), a per-task launch overhead, and
— for accelerators — a host link (PCIe) whose transfer cost the simulator
charges when data crosses the host/device boundary.

Throughput numbers are *relative* by design: the CPU table is calibrated
from measured NumPy kernel timings (see
:meth:`repro.runtime.perfmodel.KernelCostModel.calibrate`), and accelerator
tables are derived from it with per-kernel speedup factors typical of
memory-bound stencil kernels on 2015-era GPUs. The scaling experiments
depend only on these ratios, not on absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..comm.costs import LinkModel, make_link
from ..utils.errors import ConfigurationError

#: kernel stages of one hydro step, in execution order
KERNELS = ("con2prim", "boundary", "reconstruct", "riemann", "update")

#: default per-kernel GPU:CPU speedup factors. Streaming, regular kernels
#: (reconstruct/riemann/update) enjoy full memory-bandwidth ratios; the
#: iterative, divergent con2prim kernel and the copy-bound boundary fill
#: benefit far less — the shape Table III (E8) reports.
DEFAULT_GPU_SPEEDUP = {
    "con2prim": 6.0,
    "boundary": 3.0,
    "reconstruct": 18.0,
    "riemann": 16.0,
    "update": 20.0,
}


@dataclass(frozen=True)
class Device:
    """One compute endpoint of a node."""

    name: str
    kind: str  # "cpu" or "gpu"
    #: cells/second per kernel
    throughput: dict[str, float] = field(default_factory=dict)
    #: fixed per-task cost (kernel launch / loop startup)
    launch_overhead_s: float = 5e-6
    #: host link for accelerators (None for host-resident CPUs)
    host_link: LinkModel | None = None
    #: optional per-kernel fixed overhead (falls back to launch_overhead_s);
    #: two-point calibration fills this with measured NumPy call overheads
    overhead: dict[str, float] | None = None

    def __post_init__(self):
        if self.kind not in ("cpu", "gpu"):
            raise ConfigurationError(f"unknown device kind {self.kind!r}")
        missing = [k for k in KERNELS if k not in self.throughput]
        if missing:
            raise ConfigurationError(
                f"device {self.name!r} missing throughput for kernels {missing}"
            )
        for kernel, rate in self.throughput.items():
            if rate <= 0:
                raise ConfigurationError(
                    f"device {self.name!r}: non-positive throughput for {kernel}"
                )
        if self.kind == "gpu" and self.host_link is None:
            raise ConfigurationError(f"gpu device {self.name!r} needs a host_link")

    def kernel_time(self, kernel: str, n_cells: int) -> float:
        """Modelled execution time of one kernel over *n_cells*."""
        if kernel not in self.throughput:
            raise ConfigurationError(
                f"device {self.name!r} has no throughput for kernel {kernel!r}"
            )
        fixed = self.launch_overhead_s
        if self.overhead is not None and kernel in self.overhead:
            fixed = self.overhead[kernel]
        return fixed + n_cells / self.throughput[kernel]


def make_cpu(
    name: str = "cpu0",
    base_mcells_s: float | None = None,
    throughput: dict[str, float] | None = None,
) -> Device:
    """A CPU socket device.

    Either pass an explicit per-kernel *throughput* table (e.g. from
    calibration) or a single *base_mcells_s* applied to every kernel with
    representative relative weights.
    """
    if throughput is None:
        base = (base_mcells_s or 5.0) * 1e6
        # Relative kernel weights from measured NumPy pipeline profiles:
        # con2prim (iterative) is the most expensive per cell.
        weights = {
            "con2prim": 0.5,
            "boundary": 4.0,
            "reconstruct": 0.8,
            "riemann": 0.6,
            "update": 2.0,
        }
        throughput = {k: base * w for k, w in weights.items()}
    return Device(
        name=name, kind="cpu", throughput=throughput, launch_overhead_s=2e-6
    )


def make_gpu(
    name: str = "gpu0",
    cpu: Device | None = None,
    speedup: dict[str, float] | None = None,
    link: LinkModel | None = None,
) -> Device:
    """A GPU accelerator derived from a reference CPU via per-kernel speedups."""
    cpu = cpu or make_cpu()
    speedup = dict(DEFAULT_GPU_SPEEDUP, **(speedup or {}))
    throughput = {k: cpu.throughput[k] * speedup[k] for k in KERNELS}
    return Device(
        name=name,
        kind="gpu",
        throughput=throughput,
        launch_overhead_s=1e-5,  # kernel-launch latency dominates small grids
        host_link=link or make_link("pcie-gen3"),
    )
