"""Roofline-style kernel cost model, calibrated from real measurements.

The model answers "how long does kernel K over N cells take on device D".
Its CPU throughputs come from *measured* wall-clock timings of the actual
NumPy pipeline (``Solver.summary.kernel_seconds``), so relative kernel
weights — which decide every who-wins comparison in the evaluation — are
real, not guessed. Accelerators scale those rates by per-kernel speedup
factors (memory-bandwidth-bound reasoning; see
:data:`~repro.runtime.device.DEFAULT_GPU_SPEEDUP`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.errors import ConfigurationError
from .device import KERNELS, Device, make_cpu, make_gpu


@dataclass
class KernelCostModel:
    """Prices kernel tasks and host/device transfers on devices."""

    #: reference CPU device (the calibration target)
    cpu: Device
    #: bytes per cell per variable moved across the host link when a task's
    #: data must migrate (nvars * 8 bytes by default, set by the harness)
    bytes_per_cell: int = 40

    @classmethod
    def from_calibration(
        cls,
        kernel_seconds: dict[str, float],
        cells_updated: int,
        bytes_per_cell: int = 40,
    ) -> "KernelCostModel":
        """Build the model from a measured solver run.

        Parameters
        ----------
        kernel_seconds:
            ``Solver.summary.kernel_seconds`` — accumulated wall time per
            kernel stage.
        cells_updated:
            Total cell-updates of that run (n_cells x steps x rk_stages).
        """
        if cells_updated <= 0:
            raise ConfigurationError("cells_updated must be positive")
        throughput = {}
        for kernel in KERNELS:
            seconds = kernel_seconds.get(kernel, 0.0)
            if seconds <= 0:
                raise ConfigurationError(
                    f"no measured time for kernel {kernel!r}; "
                    f"got keys {sorted(kernel_seconds)}"
                )
            throughput[kernel] = cells_updated / seconds
        return cls(cpu=make_cpu("cpu-calibrated", throughput=throughput),
                   bytes_per_cell=bytes_per_cell)

    @classmethod
    def from_two_point_calibration(
        cls,
        small: tuple[int, dict[str, float]],
        big: tuple[int, dict[str, float]],
        bytes_per_cell: int = 40,
    ) -> "KernelCostModel":
        """Fit ``t(n) = overhead + n / throughput`` per kernel from two
        measured operating points.

        Parameters are ``(cells_per_call, {kernel: seconds_per_call})`` at a
        small and a large grid size. Capturing the fixed per-call overhead
        matters on this substrate: NumPy dispatch costs tens of
        microseconds per kernel invocation, which dominates small blocks —
        exactly the effect that throttles the strong-scaling tail.
        """
        n1, t1 = small
        n2, t2 = big
        if n2 <= n1:
            raise ConfigurationError("big calibration point must exceed small")
        throughput: dict[str, float] = {}
        overhead: dict[str, float] = {}
        for kernel in KERNELS:
            if kernel not in t1 or kernel not in t2:
                raise ConfigurationError(f"missing calibration for {kernel!r}")
            if t1[kernel] <= 0 or t2[kernel] <= 0:
                raise ConfigurationError(
                    f"non-positive measured time for {kernel!r}"
                )
            slope = (t2[kernel] - t1[kernel]) / (n2 - n1)
            # Overhead-dominated kernels (e.g. the boundary fill) can measure
            # a flat or inverted slope under timing noise; clamp to a tiny
            # per-cell cost so the fit degrades gracefully to overhead-only.
            min_slope = 0.01 * t2[kernel] / n2
            slope = max(slope, min_slope)
            throughput[kernel] = 1.0 / slope
            overhead[kernel] = max(t1[kernel] - slope * n1, 0.0)
        cpu = Device(
            name="cpu-calibrated-2pt",
            kind="cpu",
            throughput=throughput,
            launch_overhead_s=float(np.mean(list(overhead.values())))
            if overhead
            else 2e-6,
            overhead=overhead,
        )
        return cls(cpu=cpu, bytes_per_cell=bytes_per_cell)

    def gpu(self, name: str = "gpu0", speedup: dict[str, float] | None = None) -> Device:
        """An accelerator device consistent with this model's CPU."""
        return make_gpu(name, cpu=self.cpu, speedup=speedup)

    # -- pricing ----------------------------------------------------------

    def kernel_time(self, device: Device, kernel: str, n_cells: int) -> float:
        return device.kernel_time(kernel, n_cells)

    def step_time(self, device: Device, n_cells: int, rk_stages: int = 3) -> float:
        """One full hydro step (all kernel stages x RK stages) on one device."""
        per_stage = sum(device.kernel_time(k, n_cells) for k in KERNELS)
        return rk_stages * per_stage

    def transfer_time(self, device: Device, n_cells: int) -> float:
        """Host <-> device migration cost of a block's state."""
        if device.host_link is None:
            return 0.0
        return device.host_link.transfer_time(n_cells * self.bytes_per_cell)

    def speedup_table(self, gpu: Device) -> dict[str, float]:
        """Per-kernel GPU:CPU speedups implied by the model (Table III)."""
        return {
            k: gpu.throughput[k] / self.cpu.throughput[k] for k in KERNELS
        }
