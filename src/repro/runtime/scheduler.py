"""Task schedulers for the heterogeneous device simulator.

Three policies reproduce the scheduling comparison (experiment E9):

- :class:`StaticScheduler` — blocks pre-assigned to devices round-robin;
  simple, no runtime decisions, suffers on heterogeneous device mixes.
- :class:`DynamicGreedyScheduler` — HEFT-flavoured: tasks prioritized by
  upward rank (critical path to the exit), each dispatched to the device
  with the earliest finish time.
- :class:`WorkStealingScheduler` — static owner queues plus stealing from
  the most-loaded queue when a device runs dry; the HPX-style policy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..utils.errors import SchedulerError
from .dag import TaskGraph
from .device import Device
from .task import Task


class SchedulerContext:
    """What a scheduler may inspect when making a decision."""

    def __init__(self, devices: list[Device], cost_fn):
        self.devices = devices
        self.device_by_name = {d.name: d for d in devices}
        self.cost_fn = cost_fn  # (Task, Device) -> seconds
        self.device_free: dict[str, float] = {d.name: 0.0 for d in devices}
        #: devices blacklisted mid-run (injected failures); they no longer
        #: appear in device_free and are never eligible again
        self.failed: set[str] = set()

    def mark_failed(self, name: str) -> None:
        """Blacklist *name*: remove it from the schedulable device pool."""
        self.failed.add(name)
        self.device_free.pop(name, None)

    @staticmethod
    def can_run(task: Task, device: Device) -> bool:
        """Capability check: fixed-cost tasks run anywhere, modelled tasks
        need a throughput entry for their kernel."""
        return task.fixed_cost_s is not None or task.kernel in device.throughput

    def eligible_devices(self, task: Task) -> list[Device]:
        if task.pinned_device is not None:
            dev = self.device_by_name.get(task.pinned_device)
            if dev is None:
                raise SchedulerError(
                    f"task {task.id!r} pinned to unknown device "
                    f"{task.pinned_device!r}"
                )
            if dev.name in self.failed:
                raise SchedulerError(
                    f"task {task.id!r} pinned to failed device {dev.name!r}"
                )
            if not self.can_run(task, dev):
                raise SchedulerError(
                    f"task {task.id!r} pinned to device {dev.name!r}, which "
                    f"cannot run kernel {task.kernel!r}"
                )
            return [dev]
        eligible = [
            d
            for d in self.devices
            if d.name not in self.failed and self.can_run(task, d)
        ]
        if not eligible:
            raise SchedulerError(
                f"no eligible device for task {task.id!r} "
                f"(kernel {task.kernel!r}, {len(self.failed)} device(s) failed)"
            )
        return eligible


class Scheduler(ABC):
    """Base: pick the next (task, device) pair from the ready set."""

    name = "abstract"

    def prepare(self, graph: TaskGraph, ctx: SchedulerContext) -> None:
        """Called once before simulation starts (for precomputation)."""

    @abstractmethod
    def select(
        self, ready: dict[str, float], graph: TaskGraph, ctx: SchedulerContext
    ) -> tuple[str, str]:
        """Return (task_id, device_name) to dispatch next.

        *ready* maps ready task ids to the time their dependencies finished.
        """


class StaticScheduler(Scheduler):
    """Round-robin block->device pre-assignment, FIFO within a device."""

    name = "static"

    def prepare(self, graph, ctx):
        self._assignment: dict[str, str] = {}
        ndev = len(ctx.devices)
        for task in graph.tasks():
            if task.pinned_device is not None:
                self._assignment[task.id] = task.pinned_device
            else:
                self._assignment[task.id] = ctx.devices[task.block % ndev].name

    def _device_for(self, tid: str, graph, ctx) -> str:
        """The pre-assigned device, re-assigned deterministically when it has
        failed or cannot run the task's kernel."""
        dev = self._assignment[tid]
        task = graph.task(tid)
        device = ctx.device_by_name.get(dev)
        if dev in ctx.device_free and device is not None and ctx.can_run(task, device):
            return dev
        # Failover: least-loaded eligible device, name-tiebroken.
        fallback = min(
            ctx.eligible_devices(task),
            key=lambda d: (ctx.device_free[d.name], d.name),
        ).name
        self._assignment[tid] = fallback
        return fallback

    def select(self, ready, graph, ctx):
        # Dispatch the assignment that can start earliest.
        best = None
        for tid, t_ready in ready.items():
            dev = self._device_for(tid, graph, ctx)
            start = max(t_ready, ctx.device_free[dev])
            key = (start, tid)
            if best is None or key < best[0]:
                best = (key, tid, dev)
        assert best is not None
        return best[1], best[2]


class DynamicGreedyScheduler(Scheduler):
    """Upward-rank priority + earliest-finish-time device selection (HEFT)."""

    name = "dynamic"

    def prepare(self, graph, ctx):
        # Upward rank with device-mean costs: rank(t) = cost(t) +
        # max over dependents of rank.
        mean_cost = {
            t.id: sum(ctx.cost_fn(t, d) for d in ctx.eligible_devices(t))
            / len(ctx.eligible_devices(t))
            for t in graph.tasks()
        }
        self._rank: dict[str, float] = {}
        for tid in reversed(graph.topological_order()):
            succ = graph.dependents(tid)
            self._rank[tid] = mean_cost[tid] + max(
                (self._rank[s] for s in succ), default=0.0
            )

    def select(self, ready, graph, ctx):
        # Highest upward rank first (critical tasks dispatched earliest).
        tid = max(ready, key=lambda t: (self._rank[t], t))
        task = graph.task(tid)
        t_ready = ready[tid]
        best_dev, best_finish = None, None
        for dev in ctx.eligible_devices(task):
            start = max(t_ready, ctx.device_free[dev.name])
            finish = start + ctx.cost_fn(task, dev)
            if best_finish is None or finish < best_finish:
                best_dev, best_finish = dev.name, finish
        assert best_dev is not None
        return tid, best_dev


class WorkStealingScheduler(Scheduler):
    """Owner-computes queues with idle-device stealing.

    Tasks start in their block's owner queue (round-robin like static); when
    the earliest-free device has no ready task of its own, it steals the
    ready task with the most remaining work from the most-loaded peer.
    """

    name = "work-stealing"

    def prepare(self, graph, ctx):
        ndev = len(ctx.devices)
        self._owner: dict[str, str] = {}
        for task in graph.tasks():
            if task.pinned_device is not None:
                self._owner[task.id] = task.pinned_device
            else:
                self._owner[task.id] = ctx.devices[task.block % ndev].name

    def select(self, ready, graph, ctx):
        # The device that frees up first gets to act.
        actor = min(ctx.device_free, key=lambda d: (ctx.device_free[d], d))
        actor_dev = ctx.device_by_name[actor]
        own = [
            tid
            for tid in ready
            if self._owner[tid] == actor and ctx.can_run(graph.task(tid), actor_dev)
        ]
        if own:
            # FIFO on the ready time within the owner queue.
            tid = min(own, key=lambda t: (ready[t], t))
            return tid, actor
        # Steal: pick the ready task whose owner has the largest backlog,
        # provided the task is not pinned elsewhere and the actor can run it.
        stealable = [
            tid
            for tid in ready
            if graph.task(tid).pinned_device is None
            and ctx.can_run(graph.task(tid), actor_dev)
        ]
        if not stealable:
            # Nothing this actor can take: dispatch the oldest ready task on
            # its own (eligible) device instead.
            tid = min(ready, key=lambda t: (ready[t], t))
            task = graph.task(tid)
            owner = self._owner[tid]
            owner_dev = ctx.device_by_name.get(owner)
            if owner in ctx.device_free and owner_dev is not None and ctx.can_run(
                task, owner_dev
            ):
                return tid, owner
            dev = min(
                ctx.eligible_devices(task),
                key=lambda d: (ctx.device_free[d.name], d.name),
            )
            return tid, dev.name
        backlog: dict[str, int] = {}
        for tid in stealable:
            backlog[self._owner[tid]] = backlog.get(self._owner[tid], 0) + 1
        victim = max(backlog, key=lambda d: (backlog[d], d))
        candidates = [tid for tid in stealable if self._owner[tid] == victim]
        tid = max(candidates, key=lambda t: (graph.task(t).n_cells, t))
        return tid, actor


SCHEDULERS = {
    "static": StaticScheduler,
    "dynamic": DynamicGreedyScheduler,
    "work-stealing": WorkStealingScheduler,
}


def make_scheduler(name: str) -> Scheduler:
    """Factory: scheduler by registry name."""
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise SchedulerError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
