"""Task schedulers for the heterogeneous device simulator.

Three policies reproduce the scheduling comparison (experiment E9):

- :class:`StaticScheduler` — blocks pre-assigned to devices round-robin;
  simple, no runtime decisions, suffers on heterogeneous device mixes.
- :class:`DynamicGreedyScheduler` — HEFT-flavoured: tasks prioritized by
  upward rank (critical path to the exit), each dispatched to the device
  with the earliest finish time.
- :class:`WorkStealingScheduler` — static owner queues plus stealing from
  the most-loaded queue when a device runs dry; the HPX-style policy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..utils.errors import SchedulerError
from .dag import TaskGraph
from .device import Device
from .task import Task


class SchedulerContext:
    """What a scheduler may inspect when making a decision."""

    def __init__(self, devices: list[Device], cost_fn):
        self.devices = devices
        self.device_by_name = {d.name: d for d in devices}
        self.cost_fn = cost_fn  # (Task, Device) -> seconds
        self.device_free: dict[str, float] = {d.name: 0.0 for d in devices}

    def eligible_devices(self, task: Task) -> list[Device]:
        if task.pinned_device is not None:
            dev = self.device_by_name.get(task.pinned_device)
            if dev is None:
                raise SchedulerError(
                    f"task {task.id!r} pinned to unknown device "
                    f"{task.pinned_device!r}"
                )
            return [dev]
        return self.devices


class Scheduler(ABC):
    """Base: pick the next (task, device) pair from the ready set."""

    name = "abstract"

    def prepare(self, graph: TaskGraph, ctx: SchedulerContext) -> None:
        """Called once before simulation starts (for precomputation)."""

    @abstractmethod
    def select(
        self, ready: dict[str, float], graph: TaskGraph, ctx: SchedulerContext
    ) -> tuple[str, str]:
        """Return (task_id, device_name) to dispatch next.

        *ready* maps ready task ids to the time their dependencies finished.
        """


class StaticScheduler(Scheduler):
    """Round-robin block->device pre-assignment, FIFO within a device."""

    name = "static"

    def prepare(self, graph, ctx):
        self._assignment: dict[str, str] = {}
        ndev = len(ctx.devices)
        for task in graph.tasks():
            if task.pinned_device is not None:
                self._assignment[task.id] = task.pinned_device
            else:
                self._assignment[task.id] = ctx.devices[task.block % ndev].name

    def select(self, ready, graph, ctx):
        # Dispatch the assignment that can start earliest.
        best = None
        for tid, t_ready in ready.items():
            dev = self._assignment[tid]
            start = max(t_ready, ctx.device_free[dev])
            key = (start, tid)
            if best is None or key < best[0]:
                best = (key, tid, dev)
        assert best is not None
        return best[1], best[2]


class DynamicGreedyScheduler(Scheduler):
    """Upward-rank priority + earliest-finish-time device selection (HEFT)."""

    name = "dynamic"

    def prepare(self, graph, ctx):
        # Upward rank with device-mean costs: rank(t) = cost(t) +
        # max over dependents of rank.
        mean_cost = {
            t.id: sum(ctx.cost_fn(t, d) for d in ctx.eligible_devices(t))
            / len(ctx.eligible_devices(t))
            for t in graph.tasks()
        }
        self._rank: dict[str, float] = {}
        for tid in reversed(graph.topological_order()):
            succ = graph.dependents(tid)
            self._rank[tid] = mean_cost[tid] + max(
                (self._rank[s] for s in succ), default=0.0
            )

    def select(self, ready, graph, ctx):
        # Highest upward rank first (critical tasks dispatched earliest).
        tid = max(ready, key=lambda t: (self._rank[t], t))
        task = graph.task(tid)
        t_ready = ready[tid]
        best_dev, best_finish = None, None
        for dev in ctx.eligible_devices(task):
            start = max(t_ready, ctx.device_free[dev.name])
            finish = start + ctx.cost_fn(task, dev)
            if best_finish is None or finish < best_finish:
                best_dev, best_finish = dev.name, finish
        assert best_dev is not None
        return tid, best_dev


class WorkStealingScheduler(Scheduler):
    """Owner-computes queues with idle-device stealing.

    Tasks start in their block's owner queue (round-robin like static); when
    the earliest-free device has no ready task of its own, it steals the
    ready task with the most remaining work from the most-loaded peer.
    """

    name = "work-stealing"

    def prepare(self, graph, ctx):
        ndev = len(ctx.devices)
        self._owner: dict[str, str] = {}
        for task in graph.tasks():
            if task.pinned_device is not None:
                self._owner[task.id] = task.pinned_device
            else:
                self._owner[task.id] = ctx.devices[task.block % ndev].name

    def select(self, ready, graph, ctx):
        # The device that frees up first gets to act.
        actor = min(ctx.device_free, key=lambda d: (ctx.device_free[d], d))
        own = [tid for tid in ready if self._owner[tid] == actor]
        if own:
            # FIFO on the ready time within the owner queue.
            tid = min(own, key=lambda t: (ready[t], t))
            return tid, actor
        # Steal: pick the ready task whose owner has the largest backlog,
        # provided the task is not pinned elsewhere.
        stealable = [
            tid for tid in ready if graph.task(tid).pinned_device is None
        ]
        if not stealable:
            # Nothing stealable: dispatch a pinned task on its own device.
            tid = min(ready, key=lambda t: (ready[t], t))
            return tid, self._owner[tid]
        backlog: dict[str, int] = {}
        for tid in stealable:
            backlog[self._owner[tid]] = backlog.get(self._owner[tid], 0) + 1
        victim = max(backlog, key=lambda d: (backlog[d], d))
        candidates = [tid for tid in stealable if self._owner[tid] == victim]
        tid = max(candidates, key=lambda t: (graph.task(t).n_cells, t))
        return tid, actor


SCHEDULERS = {
    "static": StaticScheduler,
    "dynamic": DynamicGreedyScheduler,
    "work-stealing": WorkStealingScheduler,
}


def make_scheduler(name: str) -> Scheduler:
    """Factory: scheduler by registry name."""
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise SchedulerError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
