"""Discrete-event execution of a task DAG on modelled devices.

The simulator advances a ready-set/device-availability loop: the scheduler
picks a (task, device) pair, the task runs at ``max(deps_done,
device_free)`` for its modelled cost, completion unlocks dependents. The
output :class:`Timeline` carries per-task records, device busy times, and
the makespan — the quantities the scaling and scheduler experiments report.
"""

from __future__ import annotations

from typing import Callable

from ..utils.errors import SchedulerError
from .dag import TaskGraph
from .device import Device
from .scheduler import Scheduler, SchedulerContext
from .task import Task, TaskRecord, Timeline


class ClusterSimulator:
    """Simulates one task graph on a fixed set of devices.

    Parameters
    ----------
    devices:
        The compute endpoints available to the scheduler.
    cost_fn:
        ``(Task, Device) -> seconds``. Tasks with ``fixed_cost_s`` bypass it.
    scheduler:
        Scheduling policy instance.
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector`. Devices
        with a scheduled ``fail`` fault are blacklisted the moment a task
        would run past the failure time — the in-flight task is lost and
        re-queued for another device; ``straggle`` faults multiply the cost
        of tasks starting after the onset.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving the
        ``resilience.device_failed`` / ``resilience.tasks_reexecuted`` /
        ``resilience.task_straggled`` counters and the
        ``resilience.task_reexec_delay_s`` histogram (simulated seconds lost
        to each failed execution attempt).
    """

    def __init__(
        self,
        devices: list[Device],
        cost_fn: Callable[[Task, Device], float],
        scheduler: Scheduler,
        fault_injector=None,
        metrics=None,
    ):
        if not devices:
            raise SchedulerError("need at least one device")
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise SchedulerError(f"duplicate device names: {names}")
        self.devices = devices
        self.scheduler = scheduler
        self._user_cost = cost_fn
        self.fault_injector = fault_injector
        if metrics is None and fault_injector is not None:
            metrics = fault_injector.metrics
        self.metrics = metrics
        if fault_injector is not None and fault_injector.metrics is None:
            fault_injector.metrics = metrics

    def _cost(self, task: Task, device: Device) -> float:
        if task.fixed_cost_s is not None:
            return task.fixed_cost_s
        return self._user_cost(task, device)

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def run(self, graph: TaskGraph) -> Timeline:
        graph.finalize()
        ctx = SchedulerContext(self.devices, self._cost)
        self.scheduler.prepare(graph, ctx)

        n_waiting = {
            t.id: len(graph.dependencies(t.id)) for t in graph.tasks()
        }
        ready: dict[str, float] = {tid: 0.0 for tid in graph.roots()}
        done_at: dict[str, float] = {}
        timeline = Timeline()

        remaining = len(graph)
        while remaining:
            if not ready:
                raise SchedulerError(
                    "no ready tasks but work remains — cyclic or dangling graph"
                )
            tid, dev_name = self.scheduler.select(dict(ready), graph, ctx)
            if tid not in ready:
                raise SchedulerError(
                    f"scheduler {self.scheduler.name} selected non-ready task {tid!r}"
                )
            if dev_name not in ctx.device_free:
                if dev_name in ctx.failed:
                    raise SchedulerError(
                        f"scheduler {self.scheduler.name} routed task {tid!r} "
                        f"to failed device {dev_name!r}"
                    )
                raise SchedulerError(
                    f"scheduler selected unknown device {dev_name!r}"
                )
            task = graph.task(tid)
            if task.pinned_device is not None and dev_name != task.pinned_device:
                raise SchedulerError(
                    f"task {tid!r} pinned to {task.pinned_device!r} but "
                    f"scheduled on {dev_name!r}"
                )
            device = ctx.device_by_name[dev_name]
            t_ready = ready[tid]
            start = max(t_ready, ctx.device_free[dev_name])
            cost = self._cost(task, device)
            if self.fault_injector is not None:
                factor = self.fault_injector.straggle_factor(dev_name, start)
                if factor != 1.0:
                    cost *= factor
                    self._count("resilience.task_straggled")
                t_fail = self.fault_injector.fail_time(dev_name)
                if t_fail is not None and start + cost > t_fail:
                    # The device dies before this task would complete: the
                    # attempt is lost, the device is blacklisted, and the
                    # task goes back to the ready set to run elsewhere (no
                    # earlier than the failure time — that is when the loss
                    # is detected).
                    ctx.mark_failed(dev_name)
                    ready[tid] = max(t_ready, t_fail)
                    self._count("resilience.device_failed")
                    self._count("resilience.tasks_reexecuted")
                    if self.metrics is not None:
                        self.metrics.histogram(
                            "resilience.task_reexec_delay_s"
                        ).observe(max(0.0, t_fail - start))
                    continue
            ready.pop(tid)
            end = start + cost
            ctx.device_free[dev_name] = end
            done_at[tid] = end
            timeline.add(TaskRecord(task=task, device=dev_name, start=start, end=end))
            remaining -= 1
            for succ in graph.dependents(tid):
                n_waiting[succ] -= 1
                if n_waiting[succ] == 0:
                    ready[succ] = max(
                        (done_at[d] for d in graph.dependencies(succ)), default=0.0
                    )
        timeline.validate_dependencies()
        return timeline
