"""Tasks and futures for the simulated dataflow runtime.

The execution model mirrors HPX/ParalleX as used in this line of work: work
is decomposed into tasks over blocks, dependencies form a DAG, and a
scheduler maps ready tasks onto heterogeneous devices. Here the tasks carry
*cost descriptors* (kernel kind + cell count) instead of code; the
discrete-event simulator charges them against the device model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..utils.errors import SchedulerError


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    Attributes
    ----------
    id:
        Unique identifier (hashable).
    kernel:
        Kernel kind priced by the cost model (e.g. ``"riemann"``), or
        ``"comm"`` for communication placeholders.
    n_cells:
        Work size in cells.
    deps:
        IDs of tasks that must complete first.
    block:
        Owning block/rank id — static schedulers map by block affinity.
    pinned_device:
        Optional device name this task must run on (e.g. comm tasks).
    fixed_cost_s:
        If set, overrides the cost model (used for comm tasks priced by the
        link model).
    """

    id: str
    kernel: str
    n_cells: int = 0
    deps: tuple[str, ...] = ()
    block: int = 0
    pinned_device: str | None = None
    fixed_cost_s: float | None = None


@dataclass
class TaskRecord:
    """Execution record of one task in a simulated timeline."""

    task: Task
    device: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """Result of one simulated execution: records plus summary metrics."""

    records: list[TaskRecord] = field(default_factory=list)

    def add(self, record: TaskRecord) -> None:
        self.records.append(record)

    @property
    def makespan(self) -> float:
        return max((r.end for r in self.records), default=0.0)

    def busy_time(self) -> dict[str, float]:
        busy: dict[str, float] = {}
        for r in self.records:
            busy[r.device] = busy.get(r.device, 0.0) + r.duration
        return busy

    def imbalance(self) -> float:
        """max / mean device busy time; 1.0 is perfect balance."""
        busy = list(self.busy_time().values())
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        if mean == 0:
            return 1.0
        return max(busy) / mean

    def record_for(self, task_id: str) -> TaskRecord:
        for r in self.records:
            if r.task.id == task_id:
                return r
        raise SchedulerError(f"task {task_id!r} not in timeline")

    def validate_dependencies(self) -> None:
        """Assert no task started before all of its dependencies ended."""
        end_of = {r.task.id: r.end for r in self.records}
        for r in self.records:
            for dep in r.task.deps:
                if dep not in end_of:
                    raise SchedulerError(
                        f"task {r.task.id!r} depends on unexecuted {dep!r}"
                    )
                if r.start < end_of[dep] - 1e-12:
                    raise SchedulerError(
                        f"task {r.task.id!r} started at {r.start} before "
                        f"dependency {dep!r} ended at {end_of[dep]}"
                    )
