"""Timeline export and visualization for simulated executions.

Converts a :class:`~repro.runtime.task.Timeline` into:

- Chrome trace-event JSON (loadable in ``chrome://tracing`` / Perfetto),
  the interchange format HPC tracing tools speak;
- a plain-text Gantt chart for terminal inspection;
- a per-device utilization summary;
- the structured metrics schema of :mod:`repro.obs` (``source:
  "modelled"``), so simulated executions are directly comparable with
  measured solver runs, record for record.
"""

from __future__ import annotations

import json

from ..obs.events import SCHEMA_VERSION, JsonlEventSink
from ..utils.errors import SchedulerError
from .task import Timeline


def to_chrome_trace(timeline: Timeline) -> str:
    """Serialize as Chrome trace-event JSON (microsecond timestamps)."""
    events = []
    devices = sorted({r.device for r in timeline.records})
    tid_of = {name: i for i, name in enumerate(devices)}
    for record in sorted(timeline.records, key=lambda r: r.start):
        events.append(
            {
                "name": record.task.id,
                "cat": record.task.kernel,
                "ph": "X",  # complete event
                "ts": record.start * 1e6,
                "dur": record.duration * 1e6,
                "pid": 0,
                "tid": tid_of[record.device],
                "args": {
                    "kernel": record.task.kernel,
                    "n_cells": record.task.n_cells,
                    "block": record.task.block,
                },
            }
        )
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": device},
        }
        for device, tid in tid_of.items()
    ]
    return json.dumps({"traceEvents": meta + events}, indent=1)


def save_chrome_trace(timeline: Timeline, path) -> None:
    with open(path, "w") as fh:
        fh.write(to_chrome_trace(timeline))


def ascii_gantt(timeline: Timeline, width: int = 72) -> str:
    """Terminal Gantt chart: one row per device, one glyph per time slot."""
    if not timeline.records:
        return "(empty timeline)"
    if width < 10:
        raise SchedulerError("gantt width must be at least 10")
    span = timeline.makespan
    devices = sorted({r.device for r in timeline.records})
    name_w = max(len(d) for d in devices)
    glyphs = {}

    def glyph(kernel):
        if kernel not in glyphs:
            palette = "#*+=o%@&x"
            glyphs[kernel] = palette[len(glyphs) % len(palette)]
        return glyphs[kernel]

    rows = []
    for device in devices:
        lane = [" "] * width
        for r in timeline.records:
            if r.device != device:
                continue
            lo = int(r.start / span * (width - 1))
            hi = max(int(r.end / span * (width - 1)), lo)
            for i in range(lo, hi + 1):
                lane[i] = glyph(r.task.kernel)
        rows.append(f"{device:<{name_w}} |{''.join(lane)}|")
    legend = "  ".join(f"{g}={k}" for k, g in sorted(glyphs.items(), key=lambda kv: kv[1]))
    header = f"makespan = {span:.6g} s, imbalance = {timeline.imbalance():.3f}"
    return "\n".join([header, *rows, legend])


def utilization(timeline: Timeline) -> dict[str, float]:
    """Busy fraction of the makespan per device."""
    span = timeline.makespan
    if span == 0:
        return {}
    return {dev: busy / span for dev, busy in sorted(timeline.busy_time().items())}


def to_metrics_records(timeline: Timeline, meta: dict | None = None) -> list[dict]:
    """Export a simulated timeline in the :mod:`repro.obs` event schema.

    The whole timeline becomes one ``step`` record (``source: "modelled"``)
    whose ``kernel_seconds`` are the per-kernel modelled busy times and
    whose ``wall_seconds`` is the makespan — the same keys a measured
    solver run emits, so modelled and measured streams diff directly.
    Per-device busy seconds land in ``gauges``.
    """
    kernels: dict[str, float] = {}
    n_cells_total = 0
    for r in timeline.records:
        kernels[r.task.kernel] = kernels.get(r.task.kernel, 0.0) + r.duration
        n_cells_total += r.task.n_cells
    gauges = {
        f"device.{dev}.busy_seconds": busy
        for dev, busy in sorted(timeline.busy_time().items())
    }
    common = {"schema": SCHEMA_VERSION, "source": "modelled"}
    return [
        {
            **common,
            "event": "run_start",
            "meta": {
                "n_tasks": len(timeline.records),
                "devices": sorted({r.device for r in timeline.records}),
                **(meta or {}),
            },
        },
        {
            **common,
            "event": "step",
            "step": 1,
            "t": timeline.makespan,
            "dt": timeline.makespan,
            "wall_seconds": timeline.makespan,
            "kernel_seconds": kernels,
            "counters": {"tasks.cells": n_cells_total},
            "gauges": gauges,
        },
        {
            **common,
            "event": "run_end",
            "steps": 1,
            "kernel_seconds_total": kernels,
            "counters_total": {"tasks.cells": n_cells_total},
            "makespan": timeline.makespan,
            "imbalance": timeline.imbalance(),
        },
    ]


def scaling_to_metrics_records(
    costs, meta: dict | None = None, source: str = "modelled"
) -> list[dict]:
    """Export a scaling sweep (list of ``StepCost``) in the event schema.

    One ``step`` record per cluster size: ``wall_seconds`` is the step
    time, ``kernel_seconds`` splits it into the compute/halo/allreduce
    phases, and the counters carry the geometry (node count, max local
    cells).  *source* tags the stream: the analytic model exports with the
    default ``"modelled"``, while a real scaling run distilled into the
    same :class:`~repro.harness.scaling.StepCost` shape exports with
    ``source="measured"`` — the two then diff row for row (see
    :meth:`repro.harness.Report.diff_metrics`).
    """
    common = {"schema": SCHEMA_VERSION, "source": source}
    records = [
        {
            **common,
            "event": "run_start",
            "meta": {"n_points": len(costs), **(meta or {})},
        }
    ]
    totals: dict[str, float] = {}
    t = 0.0
    base = costs[0].total_s if costs else 0.0
    for i, cost in enumerate(costs, 1):
        t += cost.total_s
        kernels = {
            "compute": cost.compute_s,
            "halo": cost.halo_s,
            "allreduce": cost.allreduce_s,
        }
        for k, v in kernels.items():
            totals[k] = totals.get(k, 0.0) + v
        records.append(
            {
                **common,
                "event": "step",
                "step": i,
                "t": t,
                "dt": cost.total_s,
                "wall_seconds": cost.total_s,
                "kernel_seconds": kernels,
                "counters": {
                    "scaling.nodes": cost.n_nodes,
                    "scaling.local_cells_max": cost.local_cells_max,
                },
                "gauges": {
                    "scaling.speedup": base / cost.total_s if cost.total_s else 0.0
                },
            }
        )
    records.append(
        {
            **common,
            "event": "run_end",
            "steps": len(costs),
            "kernel_seconds_total": totals,
            "counters_total": {},
        }
    )
    return records


def save_metrics_jsonl(source, path, meta: dict | None = None) -> None:
    """Write a modelled event stream as a JSONL metrics file.

    *source* is either a :class:`Timeline` (converted with
    :func:`to_metrics_records`) or an already-built list of event records
    (e.g. from :func:`scaling_to_metrics_records` or
    :func:`overlap_to_metrics_records`), written verbatim.
    """
    records = (
        list(source)
        if isinstance(source, (list, tuple))
        else to_metrics_records(source, meta)
    )
    with JsonlEventSink(path) as sink:
        for record in records:
            sink.emit(record)


def overlap_to_metrics_records(
    overlap_log: list[dict], meta: dict | None = None
) -> list[dict]:
    """Export a :class:`DistributedSolver` overlap log in the event schema.

    Each overlapped exchange (one ``overlap_log`` entry, see
    ``DistributedSolver.overlap_log``) becomes one modelled ``step`` record:
    ``kernel_seconds`` splits the measured compute into the interior phase
    (running while the exchange was in flight) and the strip phase, and the
    ``counters`` carry the modelled/hidden/exposed wire-time split plus the
    posted traffic.  ``wall_seconds`` is the modelled critical path —
    interior compute, any exposed wire time, then strips — so the stream
    diffs directly against a measured run of the same scenario.
    """
    common = {"schema": SCHEMA_VERSION, "source": "modelled"}
    records = [
        {
            **common,
            "event": "run_start",
            "meta": {"n_exchanges": len(overlap_log), **(meta or {})},
        }
    ]
    t = 0.0
    totals = {"modeled_comm_s": 0.0, "hidden_s": 0.0, "exposed_s": 0.0}
    for i, entry in enumerate(overlap_log, 1):
        wall = entry["interior_s"] + entry["exposed_s"] + entry["strip_s"]
        t += wall
        for key in totals:
            totals[key] += entry[key]
        records.append(
            {
                **common,
                "event": "step",
                "step": i,
                "t": t,
                "dt": wall,
                "wall_seconds": wall,
                "kernel_seconds": {
                    "interior": entry["interior_s"],
                    "strips": entry["strip_s"],
                },
                "counters": {
                    "comm.overlap.modeled_comm_s": entry["modeled_comm_s"],
                    "comm.overlap.hidden_s": entry["hidden_s"],
                    "comm.overlap.exposed_s": entry["exposed_s"],
                },
                "comm": {
                    "halo_bytes": entry["posted_bytes"],
                    "messages": entry["posted_messages"],
                },
            }
        )
    records.append(
        {
            **common,
            "event": "run_end",
            "steps": len(overlap_log),
            "counters_total": {
                f"comm.overlap.{k}": v for k, v in totals.items()
            },
            "hidden_frac": (
                totals["hidden_s"] / totals["modeled_comm_s"]
                if totals["modeled_comm_s"] > 0
                else 1.0
            ),
        }
    )
    return records


def save_overlap_metrics_jsonl(
    overlap_log: list[dict], path, meta: dict | None = None
) -> None:
    """Write :func:`overlap_to_metrics_records` as a JSONL metrics file."""
    with JsonlEventSink(path) as sink:
        for record in overlap_to_metrics_records(overlap_log, meta):
            sink.emit(record)
