"""Scenario-sweep batch service: admission queue + SoA-batched solves.

See :mod:`repro.serve.service` for the architecture overview.
"""

from .scenario import ScenarioSpec
from .service import BatchService, Request

__all__ = ["ScenarioSpec", "BatchService", "Request"]
