"""Scenario specifications: one request = one small, fully-described problem.

A :class:`ScenarioSpec` is the service's request schema — a flat,
JSON-friendly description of a small solver run (problem family, grid
size, physics, numerics) validated against a template of defaults, in the
style of Mara3's config-driven subprograms: every knob has a default,
unknown keys are rejected loudly, and a spec is immutable once admitted.

Specs that agree on everything except their *initial data* share a
:meth:`ScenarioSpec.batch_key` and can be stacked into one
:class:`~repro.core.batch.BatchSolver` sweep: same grid, same EOS, same
numerics, same end time — so the shared CFL step sequence and the batched
kernels are valid for every member.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..eos.ideal import IdealGasEOS
from ..mesh.grid import Grid
from ..physics.exact_riemann import RiemannState
from ..physics.initial_data import (
    SHOCK_TUBES,
    ShockTubeProblem,
    blast_wave_2d,
    shock_tube,
    smooth_wave,
)
from ..physics.srhd import SRHDSystem
from ..reconstruct import SCHEMES
from ..riemann import SOLVERS
from ..time_integration.ssprk import INTEGRATORS
from ..utils.errors import ConfigurationError

KINDS = ("shock_tube", "smooth_wave", "blast_wave_2d")
KERNEL_TARGETS = ("numpy", "flat", "cext")


def _state(value, where: str) -> RiemannState | None:
    if value is None:
        return None
    if isinstance(value, RiemannState):
        return value
    if not isinstance(value, dict):
        raise ConfigurationError(
            f"{where} must be a dict with keys rho/v/p, got {value!r}"
        )
    unknown = set(value) - {"rho", "v", "p"}
    if unknown:
        raise ConfigurationError(f"unknown {where} keys: {sorted(unknown)}")
    try:
        return RiemannState(
            rho=float(value["rho"]), v=float(value["v"]), p=float(value["p"])
        )
    except KeyError as exc:
        raise ConfigurationError(f"{where} is missing key {exc}") from None


@dataclass(frozen=True)
class ScenarioSpec:
    """One request: a small scenario plus the numerics to run it with.

    ``shock_tube`` starts from a named Marti & Muller preset (``problem``)
    with optional per-side state overrides — the knobs a parameter sweep
    varies.  ``smooth_wave`` and ``blast_wave_2d`` expose their generators'
    physical parameters directly.
    """

    kind: str = "shock_tube"
    nx: int = 128
    ny: int | None = None
    t_final: float = 0.2
    gamma: float = 5.0 / 3.0
    # shock_tube
    problem: str = "RP1"
    left: RiemannState | None = None
    right: RiemannState | None = None
    # smooth_wave
    amplitude: float = 0.2
    velocity: float = 0.5
    # blast_wave_2d
    p_in: float = 100.0
    radius: float = 0.1
    # numerics (everything else rides on SolverConfig defaults)
    reconstruction: str = "mc"
    riemann: str = "hllc"
    integrator: str = "ssprk3"
    cfl: float = 0.5
    kernel_target: str = "numpy"

    def __post_init__(self):
        object.__setattr__(self, "left", _state(self.left, "left"))
        object.__setattr__(self, "right", _state(self.right, "right"))
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown scenario kind {self.kind!r}; choose from {KINDS}"
            )
        if self.kernel_target not in KERNEL_TARGETS:
            raise ConfigurationError(
                f"unknown kernel_target {self.kernel_target!r}; "
                f"choose from {KERNEL_TARGETS}"
            )
        for field, choices in (
            ("reconstruction", tuple(SCHEMES)),
            ("riemann", tuple(sorted(SOLVERS))),
            ("integrator", tuple(sorted(INTEGRATORS))),
        ):
            if getattr(self, field) not in choices:
                raise ConfigurationError(
                    f"unknown {field} {getattr(self, field)!r}; "
                    f"choose from {choices}"
                )
        if self.nx < 8:
            raise ConfigurationError(f"nx must be >= 8, got {self.nx}")
        if self.kind == "blast_wave_2d":
            ny = self.ny if self.ny is not None else self.nx
            if ny < 8:
                raise ConfigurationError(f"ny must be >= 8, got {ny}")
        elif self.ny is not None:
            raise ConfigurationError(f"ny only applies to blast_wave_2d, got ny={self.ny}")
        if not self.t_final > 0:
            raise ConfigurationError(f"t_final must be > 0, got {self.t_final}")
        if not self.gamma > 1:
            raise ConfigurationError(f"gamma must be > 1, got {self.gamma}")
        if not 0 < self.cfl <= 1:
            raise ConfigurationError(f"cfl must be in (0, 1], got {self.cfl}")
        # Preset names are case-insensitive, like the `repro run` CLI.
        object.__setattr__(self, "problem", self.problem.upper())
        if self.kind == "shock_tube" and self.problem not in SHOCK_TUBES:
            raise ConfigurationError(
                f"unknown shock-tube problem {self.problem!r}; "
                f"choose from {tuple(SHOCK_TUBES)}"
            )

    # -- request schema -------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Validated spec from a request payload; unknown keys are errors."""
        if not isinstance(data, dict):
            raise ConfigurationError(f"scenario spec must be a dict, got {data!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario keys: {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**data)

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        for side in ("left", "right"):
            if out[side] is not None:
                out[side] = dict(out[side])
        return out

    # -- batching -------------------------------------------------------

    def batch_key(self) -> tuple:
        """Scenarios sharing this key can run as one batched sweep.

        Everything that shapes the shared solve is in here — grid, EOS,
        numerics, end time, kernel target; the *initial data* knobs are
        deliberately excluded (they vary per scenario within a batch).
        """
        return (
            self.kind, self.nx, self.ny, self.t_final, self.gamma,
            self.reconstruction, self.riemann, self.integrator, self.cfl,
            self.kernel_target,
        )

    @property
    def ndim(self) -> int:
        return 2 if self.kind == "blast_wave_2d" else 1

    # -- construction ---------------------------------------------------

    def build_grid(self) -> Grid:
        if self.ndim == 2:
            ny = self.ny if self.ny is not None else self.nx
            return Grid((self.nx, ny), ((0.0, 1.0), (0.0, 1.0)))
        return Grid((self.nx,), ((0.0, 1.0),))

    def build_system(self) -> SRHDSystem:
        """Plain (unresolved) system; the service maps it to the requested
        kernel target through its cache."""
        return SRHDSystem(IdealGasEOS(gamma=self.gamma), ndim=self.ndim)

    def build_initial(self, system: SRHDSystem, grid: Grid) -> np.ndarray:
        if self.kind == "shock_tube":
            base = SHOCK_TUBES[self.problem]
            problem = ShockTubeProblem(
                name=base.name,
                left=self.left if self.left is not None else base.left,
                right=self.right if self.right is not None else base.right,
                gamma=self.gamma,
                t_final=self.t_final,
            )
            return shock_tube(system, grid, problem)
        if self.kind == "smooth_wave":
            return smooth_wave(
                system, grid, amplitude=self.amplitude, velocity=self.velocity
            )
        return blast_wave_2d(system, grid, p_in=self.p_in, radius=self.radius)
