"""Batch admission service: many small requests, few big kernel sweeps.

:class:`BatchService` is the request harness over the batched pipeline:

- **Admission queue with bounded depth** — :meth:`BatchService.submit`
  validates a :class:`~repro.serve.scenario.ScenarioSpec` and enqueues it,
  or raises :class:`~repro.utils.errors.AdmissionError` once the queue is
  full (the caller's backpressure signal; rejected requests are counted,
  never silently dropped).
- **Batch formation** — :meth:`BatchService.drain` groups queued requests
  by :meth:`~repro.serve.scenario.ScenarioSpec.batch_key` in FIFO order
  and runs each group (up to ``max_batch`` scenarios) as one
  :class:`~repro.core.batch.BatchSolver` sweep.
- **Kernel-system cache** — resolved codegen systems are cached by
  ``(ndim, EOS gamma, reconstruction, riemann, kernel_target)`` so a
  thousand requests for the same physics pay SymPy codegen once (the
  compiled artifact itself is additionally content-hash cached on disk by
  ``repro.codegen.cache``).
- **Per-request metrics** — queue wait, solve time, end-to-end latency,
  and batch occupancy flow through the ordinary
  :class:`~repro.obs.MetricsRegistry` histograms (``serve.*``), and an
  optional :class:`~repro.obs.StepRecorder` carries one JSONL event per
  request and per batch.

The service core is synchronous — ``submit`` then ``drain`` — which keeps
it deterministic and testable; the CLI (``repro serve`` / ``repro sweep``)
drives it from request files and parameter sweeps.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..boundary.conditions import make_boundaries
from ..core.batch import FAILED, BatchSolver
from ..core.config import SolverConfig
from ..obs.metrics import MetricsRegistry
from ..obs.recorder import StepRecorder
from ..physics.srhd import SRHDSystem
from ..utils.errors import AdmissionError, ConfigurationError, ReproError
from ..utils.logging import get_logger
from .scenario import ScenarioSpec

_log = get_logger("serve")

#: request lifecycle states
QUEUED, OK, FAILED_REQ, REJECTED = "queued", "ok", "failed", "rejected"


@dataclass
class Request:
    """One admitted scenario request and its lifecycle record."""

    id: int
    spec: ScenarioSpec
    enqueued_at: float
    status: str = QUEUED
    error: str | None = None
    result: dict | None = None
    queue_wait_s: float | None = None
    solve_s: float | None = None
    latency_s: float | None = None

    def summary(self) -> dict:
        """JSON-friendly response payload."""
        return {
            "id": self.id,
            "status": self.status,
            "error": self.error,
            "result": self.result,
            "queue_wait_s": self.queue_wait_s,
            "solve_s": self.solve_s,
            "latency_s": self.latency_s,
            "spec": self.spec.to_dict(),
        }


class BatchService:
    """Admission queue + batch scheduler over :class:`BatchSolver`.

    Parameters
    ----------
    max_queue_depth:
        Admission bound: :meth:`submit` raises :class:`AdmissionError`
        when this many requests are already queued.
    max_batch:
        Largest batch one solver sweep may carry; bigger compatible
        groups are split (FIFO order preserved).
    metrics, recorder:
        Optional externally-owned observability sinks; a private
        :class:`MetricsRegistry` is created when none is given.
    """

    def __init__(
        self,
        max_queue_depth: int = 1024,
        max_batch: int = 64,
        metrics: MetricsRegistry | None = None,
        recorder: StepRecorder | None = None,
    ):
        if max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        self.max_queue_depth = max_queue_depth
        self.max_batch = max_batch
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.recorder = recorder
        self._queue: list[Request] = []
        self._next_id = 0
        self._kernel_cache: dict[tuple, SRHDSystem] = {}

    # -- admission ------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def submit(self, spec: ScenarioSpec | dict) -> Request:
        """Admit one request; raises :class:`AdmissionError` when full.

        Spec validation happens *before* the depth check spends a slot:
        a malformed payload raises :class:`ConfigurationError` and costs
        nothing.
        """
        if isinstance(spec, dict):
            spec = ScenarioSpec.from_dict(spec)
        if len(self._queue) >= self.max_queue_depth:
            self.metrics.counter("serve.rejected").inc()
            raise AdmissionError(
                f"admission queue full ({self.max_queue_depth} requests); "
                "drain before submitting more"
            )
        req = Request(id=self._next_id, spec=spec, enqueued_at=time.perf_counter())
        self._next_id += 1
        self._queue.append(req)
        self.metrics.counter("serve.admitted").inc()
        self.metrics.gauge("serve.queue_depth").set(len(self._queue))
        return req

    # -- kernel-system cache --------------------------------------------

    def kernel_system(self, spec: ScenarioSpec) -> SRHDSystem:
        """Resolved system for *spec*, cached across requests.

        The key spans everything the resolved kernels depend on — system
        dimensionality, the EOS (ideal gamma), the scheme pair, and the
        kernel target — so cache hits are exact-reuse by construction.
        """
        key = (
            spec.ndim, spec.gamma, spec.reconstruction, spec.riemann,
            spec.kernel_target,
        )
        cached = self._kernel_cache.get(key)
        if cached is not None:
            self.metrics.counter("serve.kernel_cache.hits").inc()
            return cached
        self.metrics.counter("serve.kernel_cache.misses").inc()
        system = spec.build_system()
        if spec.kernel_target != "numpy":
            from ..codegen.system import make_kernel_system

            system = make_kernel_system(system, spec.kernel_target)
        self._kernel_cache[key] = system
        return system

    # -- batch execution ------------------------------------------------

    def drain(self) -> list[Request]:
        """Run every queued request to completion; returns them in
        admission order.  An empty queue drains to an empty list."""
        queue, self._queue = self._queue, []
        self.metrics.gauge("serve.queue_depth").set(0)
        groups: OrderedDict[tuple, list[Request]] = OrderedDict()
        for req in queue:
            groups.setdefault(req.spec.batch_key(), []).append(req)
        for members in groups.values():
            for lo in range(0, len(members), self.max_batch):
                self._run_batch(members[lo : lo + self.max_batch])
        return queue

    def sweep(self, specs) -> list[Request]:
        """Submit *specs* and drain: the one-shot parameter-sweep entry."""
        for spec in specs:
            self.submit(spec)
        return self.drain()

    def _run_batch(self, members: list[Request]) -> None:
        t_start = time.perf_counter()
        spec0 = members[0].spec
        for req in members:
            req.queue_wait_s = t_start - req.enqueued_at
            self.metrics.histogram("serve.queue_wait_s").observe(req.queue_wait_s)
        self.metrics.counter("serve.batches").inc()
        self.metrics.histogram("serve.batch_size").observe(len(members))
        try:
            self._solve(members)
        except ReproError as exc:
            # A failure the per-scenario isolation could not attribute
            # (bad batch-wide state, codegen breakage): fail the whole
            # batch but keep serving the other groups.
            _log.warning("batch of %d failed: %s", len(members), exc)
            for req in members:
                req.status = FAILED_REQ
                req.error = str(exc)
        t_done = time.perf_counter()
        solve_s = t_done - t_start
        for req in members:
            req.solve_s = solve_s
            req.latency_s = t_done - req.enqueued_at
            self.metrics.histogram("serve.request_latency_s").observe(req.latency_s)
            self.metrics.counter(
                "serve.completed" if req.status == OK else "serve.failed"
            ).inc()
            if self.recorder is not None:
                self.recorder.emit_event(
                    "serve.request", id=req.id, status=req.status,
                    error=req.error, queue_wait_s=req.queue_wait_s,
                    solve_s=req.solve_s, latency_s=req.latency_s,
                )
        self.metrics.histogram("serve.solve_s").observe(solve_s)
        self.metrics.histogram("serve.scenarios_per_sec").observe(
            len(members) / solve_s if solve_s > 0 else 0.0
        )
        if self.recorder is not None:
            self.recorder.emit_event(
                "serve.batch", size=len(members), solve_s=solve_s,
                batch_key=list(map(str, spec0.batch_key())),
                ok=sum(1 for r in members if r.status == OK),
            )

    def _solve(self, members: list[Request]) -> None:
        spec0 = members[0].spec
        system = self.kernel_system(spec0)
        grid = spec0.build_grid()
        # Initial data comes from the *plain* spec system only through
        # variable indices, which every kernel target shares.
        prims = [req.spec.build_initial(system, grid) for req in members]
        config = SolverConfig(
            reconstruction=spec0.reconstruction,
            riemann=spec0.riemann,
            integrator=spec0.integrator,
            cfl=spec0.cfl,
            # The service resolves kernel targets through its own cache
            # (kernel_system above); the pipeline must take the resolved
            # system as-is.
            kernel_target="numpy",
        )
        solver = BatchSolver(
            system, grid, prims, config, make_boundaries("outflow"),
        )
        outcome = solver.run(t_final=spec0.t_final)
        for i, req in enumerate(members):
            if outcome["status"][i] == FAILED:
                req.status = FAILED_REQ
                req.error = outcome["failures"].get(i, "scenario evicted")
            else:
                req.status = OK
                interior = solver.scenario_interior_primitives(i)
                req.result = {
                    "steps": outcome["steps"],
                    "t": outcome["t"],
                    "rho_max": float(np.max(interior[system.RHO])),
                    "p_max": float(np.max(interior[system.P])),
                }
