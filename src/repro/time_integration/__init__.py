"""Time integration: SSP Runge-Kutta steppers and CFL control."""

from .cfl import compute_dt
from .ssprk import (
    INTEGRATORS,
    ForwardEuler,
    SSPRK2,
    SSPRK3,
    TimeIntegrator,
    make_integrator,
)

__all__ = [
    "TimeIntegrator",
    "ForwardEuler",
    "SSPRK2",
    "SSPRK3",
    "INTEGRATORS",
    "make_integrator",
    "compute_dt",
]
