"""CFL time-step control.

In special relativity every characteristic speed is bounded by c = 1, so
``dt = cfl * min(dx)`` is always stable; using the actual max signal speed
(as here) recovers the sharper bound the paper-series codes use.
"""

from __future__ import annotations

import numpy as np

from ..mesh.grid import Grid
from ..physics.srhd import SRHDSystem
from ..utils.errors import ConfigurationError

#: remainders below this fraction of the CFL dt are absorbed by stretching
#: the final step instead of taking a junk micro-step
SLIVER_FRAC = 1e-6


def clip_dt_to_final(dt: float, t: float | None, t_final: float | None) -> float:
    """Clip *dt* so the run lands exactly on *t_final* — without slivers.

    The naive clip ``dt = t_final - t`` can leave a remainder of order
    ``1e-14 * t_final`` for the *next* step (a junk micro-step that then
    pollutes the dt histogram and CFL accounting). Instead, whenever the
    remaining time is within ``SLIVER_FRAC`` of one CFL step, this step is
    stretched (by at most that fraction) to land on *t_final* directly.
    """
    if t is None or t_final is None:
        return dt
    remainder = t_final - t
    if remainder <= dt * (1.0 + SLIVER_FRAC):
        return remainder
    return dt


def compute_dt(
    system: SRHDSystem,
    grid: Grid,
    prim: np.ndarray,
    cfl: float = 0.5,
    t: float | None = None,
    t_final: float | None = None,
) -> float:
    """CFL-limited time step, optionally clipped to land exactly on t_final.

    The signal-speed scan runs over interior cells only (ghosts may hold
    stale or extrapolated data).
    """
    if not 0.0 < cfl <= 1.0:
        raise ConfigurationError(f"cfl must be in (0, 1], got {cfl}")
    vmax = max_signal_per_axis(system, grid, prim)
    dt = dt_from_axis_maxima(grid, vmax, cfl)
    return clip_dt_to_final(dt, t, t_final)


def max_signal_per_axis(system: SRHDSystem, grid: Grid, prim: np.ndarray) -> list[float]:
    """Largest |characteristic speed| per axis over the interior.

    Exposed separately so distributed drivers can allreduce the per-axis
    maxima before forming dt — giving the identical step the single-grid
    solver takes (per-rank dt minima differ when the per-axis maxima live
    on different ranks)."""
    interior = grid.interior_of(prim)
    out = []
    for axis in range(grid.ndim):
        lam_m, lam_p = system.char_speeds(interior, axis)
        out.append(max(float(np.max(np.abs(lam_m))), float(np.max(np.abs(lam_p)))))
    return out


def dt_from_axis_maxima(grid: Grid, vmax_per_axis, cfl: float) -> float:
    """dt limited by the dimensionally-unsplit bound
    1/dt >= sum_d vmax_d / dx_d."""
    inv_dt = 0.0
    for axis in range(grid.ndim):
        inv_dt += max(vmax_per_axis[axis], 1e-12) / grid.dx[axis]
    return cfl / inv_dt
