"""Strong-stability-preserving Runge-Kutta integrators (Shu & Osher).

An integrator advances a conserved state given a right-hand-side callback
``rhs(cons) -> dU/dt`` that already includes the flux divergence (and any
sources). SSP methods are convex combinations of forward-Euler steps, so the
TVD property of the spatial scheme carries over to the full update.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from ..utils.errors import ConfigurationError

RHS = Callable[[np.ndarray], np.ndarray]


class TimeIntegrator(ABC):
    """Base class: one full step of size dt from state U.

    ``step`` accepts the step's start time *t0* and an optional *set_time*
    callback invoked with the correct stage abscissa ``t0 + c_i dt``
    immediately before each rhs evaluation — this is how time-dependent
    source terms see per-stage times (evaluating every stage at ``t0``
    silently degrades SSPRK2/3 to first order in the source).  The rhs
    signature itself stays ``rhs(U)`` so state-only callers are unaffected.
    """

    name = "abstract"
    order = 1
    stages = 1
    #: stage abscissae c_i (fractions of dt), one per rhs evaluation
    stage_fractions: tuple[float, ...] = (0.0,)

    @abstractmethod
    def step(
        self, U: np.ndarray, dt: float, rhs: RHS, t0: float = 0.0, set_time=None
    ) -> np.ndarray:
        """Return the state advanced by dt (input is not modified)."""


def _stage(set_time, t: float) -> None:
    if set_time is not None:
        set_time(t)


class ForwardEuler(TimeIntegrator):
    """First-order forward Euler (the SSP building block)."""

    name = "euler"
    order = 1
    stages = 1
    stage_fractions = (0.0,)

    def step(self, U, dt, rhs, t0=0.0, set_time=None):
        _stage(set_time, t0)
        return U + dt * rhs(U)


class SSPRK2(TimeIntegrator):
    """Heun's method in SSP (convex) form; second order, CFL coefficient 1."""

    name = "ssprk2"
    order = 2
    stages = 2
    stage_fractions = (0.0, 1.0)

    def step(self, U, dt, rhs, t0=0.0, set_time=None):
        _stage(set_time, t0)
        U1 = U + dt * rhs(U)
        _stage(set_time, t0 + dt)
        return 0.5 * U + 0.5 * (U1 + dt * rhs(U1))


class SSPRK3(TimeIntegrator):
    """Shu-Osher third-order SSP Runge-Kutta; the HRSC default."""

    name = "ssprk3"
    order = 3
    stages = 3
    stage_fractions = (0.0, 1.0, 0.5)

    def step(self, U, dt, rhs, t0=0.0, set_time=None):
        _stage(set_time, t0)
        U1 = U + dt * rhs(U)
        _stage(set_time, t0 + dt)
        U2 = 0.75 * U + 0.25 * (U1 + dt * rhs(U1))
        _stage(set_time, t0 + 0.5 * dt)
        return U / 3.0 + (2.0 / 3.0) * (U2 + dt * rhs(U2))


INTEGRATORS = {"euler": ForwardEuler, "ssprk2": SSPRK2, "ssprk3": SSPRK3}


def make_integrator(name: str) -> TimeIntegrator:
    """Factory: time integrator by registry name."""
    try:
        return INTEGRATORS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown integrator {name!r}; choose from {sorted(INTEGRATORS)}"
        ) from None
