"""Shared utilities: errors, logging, parameter validation, timers."""

from .errors import (
    CodegenError,
    CommunicationError,
    ConfigurationError,
    EOSError,
    MeshError,
    RecoveryError,
    ReproError,
    SchedulerError,
)
from .logging import get_logger
from .parameters import ParameterSet, param
from .timers import Timer, TimerRegistry

__all__ = [
    "ReproError",
    "ConfigurationError",
    "RecoveryError",
    "EOSError",
    "MeshError",
    "SchedulerError",
    "CommunicationError",
    "CodegenError",
    "get_logger",
    "ParameterSet",
    "param",
    "Timer",
    "TimerRegistry",
]
