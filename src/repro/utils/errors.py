"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single handler while still
distinguishing physics failures (e.g. primitive recovery) from configuration
mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Invalid solver, mesh, or runtime configuration."""


class RecoveryError(ReproError):
    """Conservative-to-primitive inversion failed for one or more cells.

    Attributes
    ----------
    n_failed:
        Number of cells for which recovery did not converge.
    indices:
        Flat indices of the failed cells (may be truncated for huge grids).
    """

    def __init__(self, message: str, n_failed: int = 0, indices=None):
        super().__init__(message)
        self.n_failed = n_failed
        self.indices = indices


class NumericsError(ReproError):
    """Numerically invalid state detected mid-run (non-finite dt, NaN/Inf
    conserved fields) — raised by the solver guards so corruption is caught
    at the step that produced it instead of propagating silently."""


class EOSError(ReproError):
    """Equation-of-state evaluation outside its domain of validity."""


class MeshError(ReproError):
    """Inconsistent mesh, block, or AMR hierarchy state."""


class SchedulerError(ReproError):
    """Task scheduling failure in the simulated heterogeneous runtime."""


class CommunicationError(ReproError):
    """Simulated communicator misuse (bad rank, mismatched message, ...)."""


class WorkerError(ReproError):
    """A process-backend worker failed or died; the message names the rank."""


class BlockMigrationError(CommunicationError):
    """A block-migration message arrived torn or corrupt (bad frame header,
    wrong block address, or mismatched payload shape).  Raised *before* any
    forest state is modified so a failed migration cannot corrupt the
    receiver's topology."""


class SupervisionExhausted(WorkerError):
    """The supervised process executor ran out of rank-restart budget.

    Attributes
    ----------
    snapshot:
        The last consistent parent-held supervision snapshot (or ``None``),
        from which the run can be folded down to the serial
        ``DistributedSolver`` when graceful degradation is enabled.
    """

    def __init__(self, message: str, snapshot=None):
        super().__init__(message)
        self.snapshot = snapshot


class CheckpointError(ReproError):
    """A checkpoint archive is unreadable (truncated, torn, or corrupt)."""


class CodegenError(ReproError):
    """Kernel generation or verification failure."""


class AdmissionError(ReproError):
    """The batch service refused a request (admission queue at capacity)."""
