"""Lightweight structured logging for solvers and the simulated runtime.

A thin wrapper over :mod:`logging` that gives every subsystem a namespaced
logger (``repro.core``, ``repro.runtime``, ...) with a single shared,
idempotent configuration. Verbosity is controlled either programmatically via
:func:`set_level` or with the ``REPRO_LOG`` environment variable
(``REPRO_LOG=DEBUG``).
"""

from __future__ import annotations

import logging
import os

_ROOT_NAME = "repro"
_configured = False


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("[%(levelname)s %(name)s] %(message)s")
        )
        root.addHandler(handler)
    level = os.environ.get("REPRO_LOG", "WARNING").upper()
    root.setLevel(getattr(logging, level, logging.WARNING))
    root.propagate = False
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    ``get_logger("core")`` and ``get_logger("repro.core")`` both return the
    ``repro.core`` logger.
    """
    _configure_root()
    if not name.startswith(_ROOT_NAME):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)


def set_level(level: int | str) -> None:
    """Set the verbosity of all repro loggers."""
    _configure_root()
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    logging.getLogger(_ROOT_NAME).setLevel(level)
