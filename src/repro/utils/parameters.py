"""Declarative, validated parameter sets for solver and runtime configuration.

Usage::

    class SolverConfig(ParameterSet):
        cfl = param(0.5, float, lambda v: 0 < v <= 1, "CFL number in (0, 1]")
        reconstruction = param("mc", str, choices=("pc", "minmod", "mc",
                                                   "ppm", "weno5"))

    cfg = SolverConfig(cfl=0.4)
    cfg.cfl            # 0.4
    cfg.reconstruction # "mc"

Invalid values raise :class:`~repro.utils.errors.ConfigurationError` at
construction time, so configuration bugs fail fast rather than deep inside a
run.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from .errors import ConfigurationError


class _Param:
    """Descriptor-ish record describing one parameter of a ParameterSet."""

    __slots__ = ("default", "type", "check", "doc", "choices", "name")

    def __init__(self, default, type_, check, doc, choices):
        self.default = default
        self.type = type_
        self.check = check
        self.doc = doc
        self.choices = tuple(choices) if choices is not None else None
        self.name = None  # filled in by the metaclass

    def validate(self, value):
        if self.type is not None and not isinstance(value, self.type):
            # Allow ints where floats are expected; be strict otherwise.
            if self.type is float and isinstance(value, int) and not isinstance(value, bool):
                value = float(value)
            else:
                raise ConfigurationError(
                    f"parameter {self.name!r}: expected {self.type.__name__}, "
                    f"got {type(value).__name__} ({value!r})"
                )
        if self.choices is not None and value not in self.choices:
            raise ConfigurationError(
                f"parameter {self.name!r}: {value!r} not in {self.choices}"
            )
        if self.check is not None and not self.check(value):
            raise ConfigurationError(
                f"parameter {self.name!r}: value {value!r} failed validation "
                f"({self.doc or 'no description'})"
            )
        return value


def param(
    default: Any,
    type_: type | None = None,
    check: Callable[[Any], bool] | None = None,
    doc: str = "",
    choices: Iterable[Any] | None = None,
) -> _Param:
    """Declare a validated parameter inside a :class:`ParameterSet` subclass."""
    return _Param(default, type_, check, doc, choices)


class _ParameterSetMeta(type):
    def __new__(mcs, name, bases, ns):
        params: dict[str, _Param] = {}
        for base in bases:
            params.update(getattr(base, "_params", {}))
        for key, value in list(ns.items()):
            if isinstance(value, _Param):
                value.name = key
                params[key] = value
                del ns[key]
        ns["_params"] = params
        return super().__new__(mcs, name, bases, ns)


class ParameterSet(metaclass=_ParameterSetMeta):
    """Base class for declaratively validated configuration objects."""

    _params: dict[str, _Param] = {}

    def __init__(self, **kwargs):
        unknown = set(kwargs) - set(self._params)
        if unknown:
            raise ConfigurationError(
                f"unknown parameter(s) {sorted(unknown)}; "
                f"valid: {sorted(self._params)}"
            )
        for key, spec in self._params.items():
            value = kwargs.get(key, spec.default)
            object.__setattr__(self, key, spec.validate(value))

    def replace(self, **kwargs) -> "ParameterSet":
        """Return a copy with some parameters replaced (validated)."""
        merged = self.to_dict()
        merged.update(kwargs)
        return type(self)(**merged)

    def to_dict(self) -> dict[str, Any]:
        return {key: getattr(self, key) for key in self._params}

    def __setattr__(self, key, value):
        if key in self._params:
            object.__setattr__(self, key, self._params[key].validate(value))
        else:
            raise ConfigurationError(
                f"cannot set unknown parameter {key!r} on {type(self).__name__}"
            )

    def __repr__(self):
        body = ", ".join(f"{k}={getattr(self, k)!r}" for k in sorted(self._params))
        return f"{type(self).__name__}({body})"

    def __eq__(self, other):
        return type(self) is type(other) and self.to_dict() == other.to_dict()
