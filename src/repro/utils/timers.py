"""Wall-clock timers for kernel calibration and harness reporting.

:class:`Timer` is a context manager accumulating elapsed wall time over
repeated entries; :class:`TimerRegistry` groups named timers and renders a
summary table. Simulated (modelled) times in :mod:`repro.runtime` are kept
deliberately separate from these wall-clock measurements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating wall-clock timer usable as a context manager.

    Intervals whose timed block raises are *discarded* (counted in
    :attr:`aborted`, not :attr:`elapsed`): a partially executed kernel's
    wall time would pollute the calibration data the runtime performance
    model consumes.
    """

    name: str = ""
    elapsed: float = 0.0
    count: int = 0
    aborted: int = 0
    _start: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError(f"timer {self.name!r} already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError(f"timer {self.name!r} not running")
        dt = time.perf_counter() - self._start
        self.elapsed += dt
        self.count += 1
        self._start = None
        return dt

    def abort(self) -> None:
        """Discard the running interval without accumulating it."""
        if self._start is None:
            raise RuntimeError(f"timer {self.name!r} not running")
        self._start = None
        self.aborted += 1

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.stop()

    @property
    def mean(self) -> float:
        """Mean elapsed time per entry (0 if never stopped)."""
        return self.elapsed / self.count if self.count else 0.0

    def reset(self) -> None:
        self.elapsed = 0.0
        self.count = 0
        self.aborted = 0
        self._start = None


class TimerRegistry:
    """Named collection of timers with a formatted summary."""

    def __init__(self):
        self._timers: dict[str, Timer] = {}

    def __call__(self, name: str) -> Timer:
        """Get (creating if needed) the timer called *name*."""
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    def __getitem__(self, name: str) -> Timer:
        return self._timers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    def items(self):
        return self._timers.items()

    def reset(self) -> None:
        for timer in self._timers.values():
            timer.reset()

    def state(self) -> dict[str, tuple[float, int, int]]:
        """Serializable ``{name: (elapsed, count, aborted)}`` snapshot."""
        return {
            name: (t.elapsed, t.count, t.aborted)
            for name, t in self._timers.items()
        }

    def restore(self, state: dict[str, tuple[float, int, int]]) -> None:
        """Replace all timers with a prior :meth:`state` snapshot.

        Timers absent from *state* are dropped; any running interval is
        discarded. Used when rolling a worker back to a step boundary.
        """
        self._timers = {
            name: Timer(name, float(el), int(cnt), int(ab))
            for name, (el, cnt, ab) in state.items()
        }

    def summary(self) -> str:
        if not self._timers:
            return "(no timers)"
        width = max(len(n) for n in self._timers)
        lines = [f"{'timer':<{width}}  {'calls':>7}  {'total [s]':>10}  {'mean [ms]':>10}"]
        for name in sorted(self._timers):
            t = self._timers[name]
            lines.append(
                f"{name:<{width}}  {t.count:>7d}  {t.elapsed:>10.4f}  {t.mean * 1e3:>10.4f}"
            )
        return "\n".join(lines)
