"""Terminal visualization helpers.

No plotting dependencies exist on this substrate, so the examples render
fields as ASCII intensity maps and unicode-free sparklines — enough to see
shock fronts, jet morphology, and growth curves directly in a terminal or
CI log.
"""

from __future__ import annotations

import numpy as np

from .utils.errors import ConfigurationError

#: intensity ramp from vacuum to peak
SHADES = " .:-=+*#%@"


def density_map(field: np.ndarray, width: int = 64, vmin: float | None = None,
                vmax: float | None = None, transpose: bool = True) -> str:
    """ASCII intensity map of a 2-D field.

    With ``transpose=True`` (default) the first array axis (x) runs
    rightward and the second (y) upward — matching the physics convention
    of the examples.
    """
    arr = np.asarray(field, dtype=float)
    if arr.ndim != 2:
        raise ConfigurationError(f"density_map needs a 2-D field, got {arr.ndim}-D")
    if transpose:
        arr = arr.T[::-1]  # y upward
    lo = float(arr.min()) if vmin is None else vmin
    hi = float(arr.max()) if vmax is None else vmax
    span = max(hi - lo, 1e-300)
    step = max(arr.shape[1] // width, 1)
    rows = []
    for row in arr[:: max(arr.shape[0] // (width // 2), 1)]:
        cells = row[::step]
        idx = np.clip(((cells - lo) / span * (len(SHADES) - 1)).astype(int),
                      0, len(SHADES) - 1)
        rows.append("".join(SHADES[i] for i in idx))
    return "\n".join(rows)


def sparkline(values, width: int = 60, height: int = 8,
              label_format: str = "{:.3g}") -> str:
    """Multi-row ASCII line chart of a 1-D series."""
    v = np.asarray(values, dtype=float)
    if v.ndim != 1 or v.size < 2:
        raise ConfigurationError("sparkline needs a 1-D series of length >= 2")
    if not np.all(np.isfinite(v)):
        raise ConfigurationError("sparkline values must be finite")
    # Resample to the display width.
    xi = np.linspace(0, v.size - 1, width)
    vi = np.interp(xi, np.arange(v.size), v)
    lo, hi = float(vi.min()), float(vi.max())
    span = max(hi - lo, 1e-300)
    levels = np.clip(((vi - lo) / span * (height - 1)).round().astype(int),
                     0, height - 1)
    grid = [[" "] * width for _ in range(height)]
    for col, lev in enumerate(levels):
        grid[height - 1 - lev][col] = "*"
    lines = ["".join(r) for r in grid]
    lines[0] += f"  {label_format.format(hi)}"
    lines[-1] += f"  {label_format.format(lo)}"
    return "\n".join(lines)


def profile_compare(x, numeric, exact, width: int = 64, height: int = 10) -> str:
    """Overlay a numeric profile (*) on an exact reference (.) vs x."""
    x = np.asarray(x, dtype=float)
    num = np.asarray(numeric, dtype=float)
    exa = np.asarray(exact, dtype=float)
    if not (x.shape == num.shape == exa.shape) or x.ndim != 1:
        raise ConfigurationError("profile_compare needs matching 1-D arrays")
    lo = float(min(num.min(), exa.min()))
    hi = float(max(num.max(), exa.max()))
    span = max(hi - lo, 1e-300)
    xi = np.linspace(x[0], x[-1], width)
    ni = np.interp(xi, x, num)
    ei = np.interp(xi, x, exa)
    grid = [[" "] * width for _ in range(height)]

    def put(series, glyph):
        levels = np.clip(((series - lo) / span * (height - 1)).round().astype(int),
                         0, height - 1)
        for col, lev in enumerate(levels):
            row = height - 1 - lev
            if grid[row][col] == " " or glyph == "*":
                grid[row][col] = glyph

    put(ei, ".")
    put(ni, "*")
    lines = ["".join(r) for r in grid]
    lines.append(f"x: [{x[0]:.3g}, {x[-1]:.3g}]   y: [{lo:.3g}, {hi:.3g}]   "
                 "(* numeric, . exact)")
    return "\n".join(lines)
