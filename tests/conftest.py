"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eos import IdealGasEOS
from repro.mesh.grid import Grid
from repro.physics.srhd import SRHDSystem


@pytest.fixture
def eos():
    return IdealGasEOS(gamma=5.0 / 3.0)


@pytest.fixture
def system1d(eos):
    return SRHDSystem(eos, ndim=1)


@pytest.fixture
def system2d(eos):
    return SRHDSystem(eos, ndim=2)


@pytest.fixture
def grid1d():
    return Grid((64,), ((0.0, 1.0),))


@pytest.fixture
def grid2d():
    return Grid((16, 16), ((0.0, 1.0), (0.0, 1.0)))


def random_prim(system, shape, rng, vmax=0.9):
    """A random, physically admissible primitive state array."""
    prim = np.empty((system.nvars,) + tuple(shape))
    prim[system.RHO] = rng.uniform(0.1, 10.0, shape)
    v2_budget = rng.uniform(0.0, vmax**2, shape)
    direction = rng.normal(size=(system.ndim,) + tuple(shape))
    norm = np.sqrt(np.sum(direction**2, axis=0))
    norm = np.where(norm > 0, norm, 1.0)
    for ax in range(system.ndim):
        prim[system.V(ax)] = direction[ax] / norm * np.sqrt(v2_budget)
    prim[system.P] = rng.uniform(0.01, 10.0, shape)
    return prim


@pytest.fixture
def rng():
    return np.random.default_rng(42)
